// The complete H-SYN flow on one design, mirroring the paper's toolchain
// end to end:
//
//   behavior (hierarchical DFG)
//     -> H-SYN synthesis (Vdd/clock/module selection, scheduling,
//        allocation, assignment)                       [src/synth]
//     -> RTL verification against the behavior          [src/power/rtlsim]
//     -> datapath netlist + FSM controller              [src/rtl]
//     -> synthesizable Verilog                          [src/verilog]
//     -> gate-level mapping (SIS/MSU substitute)        [src/gates]
//     -> floorplan + wirelength (OCTTOOLS substitute)   [src/place]
//
// Build & run:  ./build/examples/full_flow [benchmark] [laxity]
#include <cstdio>
#include <string>

#include "benchmarks/benchmarks.h"
#include "gates/gate_expand.h"
#include "place/floorplan.h"
#include "power/rtlsim.h"
#include "rtl/controller.h"
#include "synth/report.h"
#include "synth/synthesizer.h"
#include "verilog/verilog.h"

int main(int argc, char** argv) {
  using namespace hsyn;
  const std::string name = argc > 1 ? argv[1] : "iir";
  const double laxity = argc > 2 ? std::atof(argv[2]) : 2.2;

  const Library lib = default_library();
  const Benchmark bench = make_benchmark(name, lib);
  const double ts = laxity * min_sample_period_ns(bench.design, lib);

  std::printf("=== 1. synthesis (%s, L.F. %.1f) ===\n", name.c_str(), laxity);
  const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts,
                                   Objective::Power, Mode::Hierarchical);
  if (!r.ok) {
    std::printf("synthesis failed: %s\n", r.fail_reason.c_str());
    return 1;
  }
  std::printf("%s\n", result_summary(r, lib).c_str());

  std::printf("=== 2. RTL verification ===\n");
  const Trace trace = make_trace(bench.design.top().num_inputs(), 32, 11);
  const RtlSimResult sim = simulate_rtl(r.dp, 0, trace, lib, r.pt);
  std::printf("%s\n\n", sim.ok ? "PASS: cycle-accurate RTL matches the behavior"
                               : sim.violations.front().c_str());
  if (!sim.ok) return 1;

  std::printf("=== 3. controller ===\n");
  const Controller fsm = build_controller(r.dp, lib, r.pt);
  std::printf("%zu states, %d control signals\n\n", fsm.states.size(),
              fsm.num_signals);

  std::printf("=== 4. Verilog ===\n");
  const std::string v = to_verilog(r.dp, lib, r.pt);
  int modules = 0;
  for (std::size_t p = v.find("endmodule"); p != std::string::npos;
       p = v.find("endmodule", p + 9)) {
    ++modules;
  }
  std::printf("%d modules, %zu bytes (first lines below)\n", modules, v.size());
  std::printf("%s...\n\n", v.substr(0, v.find('\n', v.find("module "))).c_str());

  std::printf("=== 5. gate-level mapping ===\n");
  const gates::ModuleGates g = gates::expand_datapath(r.dp, lib);
  std::printf("%s\n", gates::gates_report(g).c_str());

  std::printf("=== 6. floorplan ===\n");
  const place::Floorplan fp = place::floorplan(r.dp, lib);
  std::printf("%s\n", place::floorplan_report(fp).c_str());

  std::printf("flow complete: behavior -> verified RTL -> Verilog -> %d "
              "gates -> %.0f x %.0f floorplan.\n",
              g.total_gates(), fp.width, fp.height);
  return 0;
}
