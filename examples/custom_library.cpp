// Using H-SYN with a user-defined module library and a textual design:
// defines a custom library (an aggressive fast adder, a tiny slow
// multiplier), parses a hierarchical design from the textual DFG format,
// and synthesizes it both ways.
//
// Build & run:  ./build/examples/custom_library
#include <cstdio>

#include "dfg/textio.h"
#include "synth/report.h"
#include "synth/synthesizer.h"

namespace {

const char* kDesignText = R"(
# A small hierarchical design: two dot-product blocks feeding an adder.
dfg dot2 inputs 4 outputs 1
  node 0 mult label=m0
  node 1 mult label=m1
  node 2 add label=acc
  edge in:0 -> 0.0
  edge in:1 -> 0.1
  edge in:2 -> 1.0
  edge in:3 -> 1.1
  edge 0.0 -> 2.0
  edge 1.0 -> 2.1
  edge 2.0 -> out:0
end
dfg top inputs 8 outputs 1
  hier 0 dot2 4 1 label=dpA
  hier 1 dot2 4 1 label=dpB
  node 2 add label=sum
  edge in:0 -> 0.0
  edge in:1 -> 0.1
  edge in:2 -> 0.2
  edge in:3 -> 0.3
  edge in:4 -> 1.0
  edge in:5 -> 1.1
  edge in:6 -> 1.2
  edge in:7 -> 1.3
  edge 0.0 -> 2.0
  edge 1.0 -> 2.1
  edge 2.0 -> out:0
end
top top
)";

}  // namespace

int main() {
  using namespace hsyn;
  const Design design = design_from_text(kDesignText);
  std::printf("parsed %zu behaviors, top = %s\n",
              design.behavior_names().size(), design.top_name().c_str());

  Library lib;
  lib.add_fu({.name = "fadd", .ops = {Op::Add}, .chain_depth = 1, .area = 48,
              .delay_ns = 12, .cap_sw = 14});
  lib.add_fu({.name = "sadd", .ops = {Op::Add}, .chain_depth = 1, .area = 16,
              .delay_ns = 44, .cap_sw = 4});
  lib.add_fu({.name = "fmult", .ops = {Op::Mult}, .chain_depth = 1, .area = 210,
              .delay_ns = 48, .cap_sw = 160});
  lib.add_fu({.name = "smult", .ops = {Op::Mult}, .chain_depth = 1, .area = 70,
              .delay_ns = 120, .cap_sw = 45});
  lib.set_reg({.name = "reg", .area = 8, .cap_sw = 1.5});

  const double min_ts = min_sample_period_ns(design, lib);
  std::printf("minimum sampling period with this library: %.1f ns\n\n", min_ts);

  for (const Objective obj : {Objective::Area, Objective::Power}) {
    const SynthResult r = synthesize(design, lib, nullptr, 2.0 * min_ts, obj,
                                     Mode::Hierarchical);
    if (!r.ok) {
      std::printf("%s synthesis failed: %s\n", objective_name(obj),
                  r.fail_reason.c_str());
      return 1;
    }
    std::printf("%s", result_summary(r, lib).c_str());
    std::printf("%s\n", architecture_summary(r.dp, lib).c_str());
  }
  return 0;
}
