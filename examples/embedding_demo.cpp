// RTL embedding demo (paper Example 3 / Table 2): two RTL modules
// executing different DFGs merge into one module that embeds both, with
// the component-correspondence table and the area accounting printed.
//
// Build & run:  ./build/examples/embedding_demo
#include <algorithm>
#include <cstdio>

#include "benchmarks/benchmarks.h"
#include "embed/embedder.h"
#include "power/rtlsim.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "util/fmt.h"
#include "util/table.h"

int main() {
  using namespace hsyn;
  const Library lib = default_library();
  const OpPoint pt{5.0, 20.0};
  const Benchmark bench = make_benchmark("test1", lib);

  // Two modules with different behaviors, as in Fig. 3.
  Datapath rtl1 = make_template_fast(bench.design.behavior("maddpair"), lib);
  Datapath rtl2 = make_template_fast(bench.design.behavior("seqmac"), lib);
  rtl1.name = "RTL1";
  rtl2.name = "RTL2";
  schedule_datapath(rtl1, lib, pt, kNoDeadline);
  schedule_datapath(rtl2, lib, pt, kNoDeadline);

  EmbedCorrespondence corr;
  auto merged = embed_modules(rtl1, rtl2, lib, pt, &corr);
  if (!merged) {
    std::printf("embedding rejected\n");
    return 1;
  }
  merged->name = "NewRTL";
  schedule_datapath(*merged, lib, pt, kNoDeadline);

  const double a1 = area_of(rtl1, lib, false).total();
  const double a2 = area_of(rtl2, lib, false).total();
  const double am = area_of(*merged, lib, false).total();
  std::printf("area(RTL1) = %.2f   area(RTL2) = %.2f\n", a1, a2);
  std::printf("area(NewRTL) = %.2f  (vs %.2f separate: %.1f%% saved, "
              "%.1f%% overhead over max)\n\n",
              am, a1 + a2, 100.0 * (1.0 - am / (a1 + a2)),
              100.0 * (am / std::max(a1, a2) - 1.0));

  std::printf("Correspondence (paper Table 2 layout):\n");
  TextTable t;
  t.row({"NewRTL", "RTL1", "RTL2", "Library", "Area"});
  t.rule();
  for (const auto& e : corr.entries) {
    t.row({e.merged, e.from_a, e.from_b, e.lib_type, fixed(e.area, 0)});
  }
  std::printf("%s\n", t.render().c_str());

  // Both behaviors still execute correctly on the merged module.
  for (const char* beh : {"maddpair", "seqmac"}) {
    const int b = merged->find_behavior(beh);
    const Trace trace = make_trace(4, 16, 3);
    const RtlSimResult r = simulate_rtl(*merged, b, trace, lib, pt, false);
    std::printf("behavior %-9s on NewRTL: %s\n", beh,
                r.ok ? "verified" : r.violations.front().c_str());
  }
  return 0;
}
