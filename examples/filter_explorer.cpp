// Filter design-space explorer: sweeps laxity factor x objective on the
// `iir` biquad-cascade benchmark and prints the area/power/Vdd trade-off
// curve -- the workload class the paper's introduction motivates (DSP
// filters under a throughput constraint).
//
// Build & run:  ./build/examples/filter_explorer [benchmark]
#include <cstdio>
#include <string>

#include "benchmarks/benchmarks.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"
#include "synth/synthesizer.h"
#include "util/fmt.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hsyn;
  const std::string name = argc > 1 ? argv[1] : "iir";
  const Library lib = default_library();
  const Benchmark bench = make_benchmark(name, lib);
  const double min_ts = min_sample_period_ns(bench.design, lib);
  std::printf("%s: minimum sampling period %.1f ns\n\n", name.c_str(), min_ts);

  TextTable table;
  table.row({"L.F.", "objective", "Vdd (V)", "clk (ns)", "cycles", "area",
             "power", "synth (s)"});
  table.rule();
  SynthOptions opts;
  opts.max_passes = 4;
  for (const double lf : {1.2, 1.6, 2.2, 3.2}) {
    for (const Objective obj : {Objective::Area, Objective::Power}) {
      const SynthResult r = synthesize(bench.design, lib, &bench.clib,
                                       lf * min_ts, obj, Mode::Hierarchical,
                                       opts);
      if (!r.ok) {
        table.row({fixed(lf, 1), objective_name(obj), "-", "-", "-", "-",
                   "infeasible", "-"});
        continue;
      }
      table.row({fixed(lf, 1), objective_name(obj), fixed(r.pt.vdd, 1),
                 fixed(r.pt.clk_ns, 1), std::to_string(r.makespan),
                 fixed(r.area, 0), fixed(r.power, 4),
                 fixed(r.synth_seconds, 2)});
    }
    table.rule();
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nReading the table: at higher laxity the power objective "
              "scales Vdd down\nand swaps in low-switched-capacitance "
              "modules; the area objective shares\naggressively instead.\n");
  std::printf("\nparallel runtime (%d thread(s)): %s\n", runtime::threads(),
              runtime::stats_snapshot().to_string().c_str());
  return 0;
}
