// Quickstart: synthesize the paper's Fig. 1(a) example (`test1`) for
// power and for area, print the resulting architectures, verify them
// with the cycle-accurate RTL simulator, and dump the netlist + FSM of
// the power-optimized circuit.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "benchmarks/benchmarks.h"
#include "power/rtlsim.h"
#include "rtl/controller.h"
#include "rtl/netlist.h"
#include "synth/report.h"
#include "synth/synthesizer.h"

int main() {
  using namespace hsyn;
  const Library lib = default_library();
  const Benchmark bench = make_benchmark("test1", lib);

  // Sampling-period constraint: laxity factor 2.2 over the minimum.
  const double min_ts = min_sample_period_ns(bench.design, lib);
  const double ts = 2.2 * min_ts;
  std::printf("test1: minimum sampling period %.1f ns, constraint %.1f ns "
              "(L.F. 2.2)\n\n",
              min_ts, ts);

  for (const Objective obj : {Objective::Area, Objective::Power}) {
    const SynthResult r = synthesize(bench.design, lib, &bench.clib, ts, obj,
                                     Mode::Hierarchical);
    if (!r.ok) {
      std::printf("synthesis failed: %s\n", r.fail_reason.c_str());
      return 1;
    }
    std::printf("%s", result_summary(r, lib).c_str());
    std::printf("%s\n", architecture_summary(r.dp, lib).c_str());

    // Verify the synthesized RTL against the behavior.
    const Trace trace = make_trace(bench.design.top().num_inputs(), 32, 7);
    const RtlSimResult sim = simulate_rtl(r.dp, 0, trace, lib, r.pt);
    std::printf("RTL simulation: %s\n\n",
                sim.ok ? "outputs match the behavioral model"
                       : sim.violations.front().c_str());

    if (obj == Objective::Power) {
      std::printf("--- structural netlist ---\n%s\n",
                  netlist_to_text(r.dp, lib).c_str());
      const Controller fsm = build_controller(r.dp, lib, r.pt);
      std::printf("--- controller ---\n%s\n",
                  controller_to_text(fsm).c_str());
    }
  }
  return 0;
}
