// Move ledger: a structured record of every move the improvement engine
// attempted -- move class, target, gain, accept/reject outcome, and
// (observational) evaluation time and cache traffic.
//
// Determinism contract. Candidate enumeration is serial: every move
// generator builds its candidate list on the enumerating thread before
// fanning evaluation out through runtime::parallel_best. The ledger
// exploits this: begin_group() is called at each (serial, totally
// ordered) enumeration site and returns a fresh group id from a global
// counter; inside the parallel evaluation lambda a CandidateScope tags
// the worker thread with (group, candidate index). finish_move() reads
// the tag and appends the record to a per-thread buffer with no
// cross-thread synchronization. merged() sorts by (group, cand) -- both
// ids are assigned independently of which worker ran the evaluation, so
// the merged ledger is identical at any thread count.
//
// Outcome marks (applied / rolled back / accepted) are produced by the
// serial improvement loop after evaluation, keyed by the same
// (group, cand), and folded in at merge time.
//
// Portfolio search relaxes "serial" to "serial per explorer": each
// concurrent search strategy runs its whole trajectory on one pool lane
// under a StrategyScope, and begin_group() then allocates from that
// strategy's *own* sequence counter, encoded into the group id
// ((strategy + 1) << kStrategyShift | seq). Group ids -- and therefore
// the merged, (group, cand)-sorted ledger -- stay a pure function of
// each strategy's deterministic trajectory, byte-identical at any
// thread count even when explorers interleave arbitrarily. Records are
// stamped with the allocating strategy (-1 outside any scope), exported
// as the `strategy` JSONL/CSV column.
//
// eval_us and cache_hits/misses are the exception: the evaluation
// caches are shared, so which candidate pays a miss depends on arrival
// order. They are exported for profiling but excluded from the
// determinism guarantee (to_jsonl(/*include_timing=*/false) omits
// them; that is what the determinism test compares).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hsyn::obs {

enum class MoveStatus : std::uint8_t {
  Evaluated = 0,   ///< scheduled + costed, never applied
  Infeasible = 1,  ///< failed scheduling/validation (no gain)
  Applied = 2,     ///< applied during a pass, prefix selection pending
  RolledBack = 3,  ///< applied then undone by best-prefix selection
  Accepted = 4,    ///< applied and kept in the best prefix
  /// Chosen by cost but refused by the rewrite-equivalence gate
  /// (--verify-rewrites, check/equiv.h): the move's DFG was not
  /// behaviorally equivalent to the one it replaced. Distinct from
  /// Infeasible/RolledBack so summaries separate "rejected by cost"
  /// from "rejected by the verifier".
  RejectedByVerifier = 5,
};

const char* move_status_name(MoveStatus s);

/// One attempted move.
struct MoveRecord {
  std::uint64_t group = 0;  ///< serial enumeration-site id
  std::uint64_t job = 0;    ///< obs::current_job() of the recording scope
  std::int32_t cand = 0;    ///< candidate index within the group
  /// Portfolio strategy that enumerated the group (-1 = no strategy
  /// scope was active; stamped at merge time from the group table).
  std::int32_t strategy = -1;
  std::string kind;         ///< move class ("A:replace-fu", "C:share", ...)
  std::string desc;         ///< human-readable target description
  int pass = 0;             ///< improvement pass (outermost improve())
  int depth = 0;            ///< resynthesis nesting depth (move B)
  double gain = 0;          ///< cost(before) - cost(after)
  double cost_before = 0;
  MoveStatus status = MoveStatus::Evaluated;
  // Observational fields (excluded from the determinism contract):
  double eval_us = 0;              ///< wall time of schedule + cost
  std::uint64_t cache_hits = 0;    ///< eval-cache hits during evaluation
  std::uint64_t cache_misses = 0;  ///< eval-cache misses during evaluation
};

/// Per-move-class rollup for the final report.
struct MoveClassSummary {
  std::uint64_t attempted = 0;   ///< records of any status
  std::uint64_t infeasible = 0;
  std::uint64_t applied = 0;     ///< Applied + RolledBack + Accepted
  std::uint64_t accepted = 0;
  /// Moves the equivalence gate refused (MoveStatus::RejectedByVerifier).
  std::uint64_t rejected_equiv = 0;
  double accepted_gain = 0;      ///< cumulative gain of accepted moves
};

class MoveLedger {
 public:
  /// Job filter accepting every record (see obs/job.h; the daemon passes
  /// a concrete job id to carve one job's moves out of the shared
  /// ledger).
  static constexpr std::uint64_t kAllJobs = ~std::uint64_t{0};

  /// Bit position of the strategy tag inside portfolio group ids:
  /// group = (strategy + 1) << kStrategyShift | per-strategy sequence.
  /// 2^40 groups per strategy is unreachable in practice, and ids sort
  /// by (strategy, sequence) -- exactly the deterministic order the
  /// merged ledger needs.
  static constexpr int kStrategyShift = 40;

  static MoveLedger& instance();

  MoveLedger(const MoveLedger&) = delete;
  MoveLedger& operator=(const MoveLedger&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Drop all records, marks, and the group counter.
  void reset();

  /// Records lost to the per-thread buffer cap since the last reset()
  /// (summed over every recording thread; safe to call while recording).
  std::uint64_t dropped() const;

  /// Allocate the id of the next enumeration group. Must be called from
  /// strategy-serial code (a generator's enumeration site): outside any
  /// StrategyScope the total order of calls is what makes ledger output
  /// thread-count independent; inside one, the per-strategy sequence
  /// counter is, so concurrent explorers may enumerate freely.
  std::uint64_t begin_group();

  /// Append one record to the calling thread's buffer (lock-free with
  /// respect to other recording threads).
  void record(MoveRecord rec);

  /// Mark the outcome of record (group, cand). Serial code only (the
  /// improvement loop); marks overwrite earlier marks for the same key.
  void set_status(std::uint64_t group, std::int32_t cand, MoveStatus status);

  /// Records (of one job, or all of them), sorted by (group, cand) with
  /// outcome marks applied. Must not race with active recording (call
  /// between runs, or for a job that has finished).
  std::vector<MoveRecord> merged(std::uint64_t job = kAllJobs) const;

  /// Records as JSON-lines, one object per move. With
  /// include_timing=false the observational fields (eval_us,
  /// cache_hits, cache_misses) are omitted and the output is
  /// bit-identical at any thread count.
  std::string to_jsonl(bool include_timing = true,
                       std::uint64_t job = kAllJobs) const;

  /// Records as CSV with a header row (same columns as the JSONL).
  std::string to_csv(std::uint64_t job = kAllJobs) const;

  /// Write to_jsonl() (or to_csv() when `path` ends in ".csv") to
  /// `path`; false on failure.
  bool write(const std::string& path) const;

  /// Per-move-class rollup, keyed by `kind`.
  std::map<std::string, MoveClassSummary> summary(
      std::uint64_t job = kAllJobs) const;

  /// The rollup rendered as the report's ASCII table.
  std::string summary_table(std::uint64_t job = kAllJobs) const;

  /// Per-strategy per-move-class rollup (key -1 collects records made
  /// outside any StrategyScope). The portfolio engine reads this to
  /// report per-strategy win rates and derive accept-rate priors.
  std::map<std::int32_t, std::map<std::string, MoveClassSummary>>
  summary_by_strategy(std::uint64_t job = kAllJobs) const;

 private:
  MoveLedger() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_group_{0};
};

/// RAII tag: "records produced on this thread belong to candidate
/// `cand` of group `group`". Constructed inside the parallel evaluation
/// lambda, immediately around the finish_move call chain.
class CandidateScope {
 public:
  CandidateScope(std::uint64_t group, std::int32_t cand);
  ~CandidateScope();
  CandidateScope(const CandidateScope&) = delete;
  CandidateScope& operator=(const CandidateScope&) = delete;

  /// The innermost active scope on this thread (group/cand of -1 when
  /// none): finish_move records only when a scope is active.
  static bool active();
  static std::uint64_t current_group();
  static std::int32_t current_cand();

 private:
  std::uint64_t prev_group_;
  std::int32_t prev_cand_;
  bool prev_active_;
};

/// RAII pass context: set by improve() around each pass so records
/// carry the pass number. Thread-local; nested improve() (move B
/// resynthesis) runs on the enumerating thread and restores the outer
/// value on exit.
class ImproveScope {
 public:
  explicit ImproveScope(int pass);
  ~ImproveScope();
  ImproveScope(const ImproveScope&) = delete;
  ImproveScope& operator=(const ImproveScope&) = delete;

  static int current_pass();

 private:
  int prev_pass_;
};

/// RAII strategy context: the portfolio engine wraps each explorer's
/// whole trajectory (one pool lane; nested regions run inline on it) so
/// begin_group() allocates from the strategy's own deterministic
/// sequence and records carry the strategy id. Thread-local.
class StrategyScope {
 public:
  explicit StrategyScope(std::int32_t strategy);
  ~StrategyScope();
  StrategyScope(const StrategyScope&) = delete;
  StrategyScope& operator=(const StrategyScope&) = delete;

  /// True when the calling thread is inside a StrategyScope.
  static bool active();
  /// The innermost scope's strategy id (-1 when none).
  static std::int32_t current();

 private:
  std::int32_t prev_;
};

/// RAII resynthesis-depth context: move B wraps its nested improve()
/// call so records from the inner engine carry depth > 0.
class ResynthScope {
 public:
  ResynthScope();
  ~ResynthScope();
  ResynthScope(const ResynthScope&) = delete;
  ResynthScope& operator=(const ResynthScope&) = delete;

  static int current_depth();

 private:
  int prev_depth_;
};

}  // namespace hsyn::obs
