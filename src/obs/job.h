// Per-job observability scoping.
//
// The serve daemon (src/serve/) multiplexes many synthesis jobs over one
// process: one global move ledger, one metrics registry, one set of eval
// caches. A JobScope tags the current thread with the job it is working
// for, so per-job consumers (the ledger's job-filtered views, the eval
// engine's per-job cache budgets) can attribute records and bytes to the
// right job without any per-record locking.
//
// Propagation: the deterministic thread pool captures the submitting
// thread's job id when a parallel region is dispatched and re-applies it
// on every lane that executes the region's chunks (see
// runtime/thread_pool.cpp), so work fanned out by a job stays attributed
// to that job. Job id 0 means "no job" -- the solo CLI path -- and every
// per-job consumer treats it as unscoped.
#pragma once

#include <cstdint>

namespace hsyn::obs {

/// The job the calling thread is currently working for (0 = none).
std::uint64_t current_job();

/// RAII: tag this thread with `job` for the scope's lifetime.
class JobScope {
 public:
  explicit JobScope(std::uint64_t job);
  ~JobScope();
  JobScope(const JobScope&) = delete;
  JobScope& operator=(const JobScope&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace hsyn::obs
