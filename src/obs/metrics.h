// Unified metrics registry: typed counters, gauges and histograms with
// one JSON snapshot exporter, shared by hsyn, hsyn-lint and the benches.
//
// The registry subsumes runtime::register_counter_source: that function
// now forwards here, so every legacy counter source (evaluation caches,
// template cache, check engine, the parallel runtime itself) shows up in
// the same --metrics-out snapshot as the typed instruments, and
// runtime::stats_snapshot() keeps polling them unchanged.
//
// Instruments are process-wide, created on first lookup and never
// destroyed (references stay valid forever -- cache them at call sites
// on hot paths). Recording is a single relaxed atomic op; none of the
// recorded values ever feed back into synthesis decisions, so metrics
// are always on and results stay bit-identical at any thread count.
//
//   obs::Registry& reg = obs::Registry::instance();
//   static obs::Counter& c = reg.counter("synth.runs");
//   c.add();
//   static obs::Histogram& h = reg.histogram("sched.makespan");
//   h.observe(static_cast<std::uint64_t>(makespan));
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace hsyn::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins gauge (double-valued).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Power-of-two-bucket histogram over unsigned values: bucket i counts
/// observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v == 0).
/// Cheap enough for per-candidate hot paths: one atomic add per
/// observe, plus count/sum upkeep.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::uint64_t v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Polled producer of a named counter group (the legacy
/// runtime::register_counter_source shape).
using CounterSourceFn = std::function<std::map<std::string, std::uint64_t>()>;

class Registry {
 public:
  static Registry& instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Lookup-or-create. Returned references are valid for the process
  /// lifetime. Names are dotted paths ("eval.move_us").
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Register (or replace) a polled counter source. Sources own their
  /// counters; reset_instruments() does not touch them.
  void register_source(const std::string& name, CounterSourceFn fn);

  /// Poll every registered source (outside the registry lock, so a
  /// source may take its own locks).
  std::map<std::string, std::map<std::string, std::uint64_t>> poll_sources() const;

  /// Zero every typed instrument (sources are polled, not owned, and
  /// keep their values).
  void reset_instruments();

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,buckets:[[lo,count],...]}},
  /// "sources":{source:{counter:value}}}.
  std::string to_json() const;

  /// Write to_json() to `path`; false on failure.
  bool write_json(const std::string& path) const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  // std::map: stable element addresses and deterministic export order.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, CounterSourceFn> sources_;
};

}  // namespace hsyn::obs
