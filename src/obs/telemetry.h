// Live telemetry: a low-overhead background sampler that periodically
// snapshots the metrics registry, runtime pool stats, eval-cache
// counters and per-job search progress into timestamped ring-buffered
// samples.
//
// Determinism contract. The sampler is strictly read-only with respect
// to synthesis: it polls relaxed atomics and mutex-guarded snapshots
// that already exist for the post-hoc exporters, and nothing it reads
// ever feeds back into a synthesis decision. The per-job progress
// atomics (JobSearchState) are *always* written by the search engine --
// turning the sampler on or off only changes who reads them -- so
// synthesis reports and move logs stay bit-identical at any thread
// count with telemetry on.
//
// Publication sites: SearchCore publishes pass/depth/accepted counts at
// the end of each improvement pass and the operating point (vdd, clock,
// best cost) per probe; the portfolio engine counts finished
// strategies; the eval caches and the replay kernel attribute hits,
// misses and samples to the current obs::job. All writes are relaxed
// single atomics on paths that already do comparable work.
//
// Consumers: the serve daemon's `stats`/`watch` protocol verbs, the
// optional Prometheus /metrics endpoint (--metrics-listen), and
// --telemetry-out JSONL export for solo runs (one sample_json() line
// per sample, analyzed offline by hsyn-report).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hsyn::obs {

/// Move-class indices used by the per-class telemetry arrays. Matches
/// synth::MoveClass (obs cannot include synth headers; the search core
/// casts its enum to these indices).
inline constexpr int kTelemetryClassReplace = 0;
inline constexpr int kTelemetryClassShare = 1;
inline constexpr int kTelemetryClassSplit = 2;
inline constexpr int kTelemetryClasses = 3;

/// Per-job search progress, published by the engine as relaxed atomics
/// and read by the sampler. One instance per obs::job id, created on
/// first use and never destroyed (references stay valid forever).
/// Writers never read these values back into decisions.
struct JobSearchState {
  std::atomic<std::uint64_t> passes{0};          ///< improvement passes finished
  std::atomic<std::uint64_t> moves_applied{0};   ///< moves applied during passes
  std::atomic<std::uint64_t> moves_accepted{0};  ///< moves kept by prefix selection
  std::atomic<std::uint64_t> applied_by_class[kTelemetryClasses]{};
  std::atomic<std::uint64_t> accepted_by_class[kTelemetryClasses]{};
  /// Moves refused by the --verify-rewrites equivalence gate.
  std::atomic<std::uint64_t> rewrites_refuted{0};
  std::atomic<std::uint64_t> strategies_done{0};  ///< portfolio explorers finished
  std::atomic<std::uint64_t> cache_hits{0};       ///< eval-cache hits on this job's threads
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> replay_samples{0};   ///< trace samples replayed
  /// Best objective cost seen so far (0 = nothing recorded yet; real
  /// costs are strictly positive in this cost model).
  std::atomic<double> best_cost{0};
  std::atomic<double> vdd{0};       ///< operating point under evaluation
  std::atomic<double> clock_ns{0};
  std::atomic<std::int32_t> pass{-1};   ///< last finished pass index
  std::atomic<std::int32_t> depth{-1};  ///< moves kept in that pass

  /// Keep-the-minimum update of best_cost (relaxed CAS loop).
  void note_best(double cost);
};

/// The progress slot for `job` (created on first use, process lifetime).
JobSearchState& job_state(std::uint64_t job);

/// The slot for the calling thread's current obs::job (0 = solo run).
/// TLS-memoized: a hot-path call is one thread-local compare plus a
/// pointer deref.
JobSearchState& current_job_state();

/// Every job id with a registered slot, ascending.
std::vector<std::uint64_t> job_state_ids();

/// Zero every slot (tests and benches; slots are never deallocated).
void reset_job_states();

/// Attribute one eval-cache lookup to the current job (hot path: one
/// relaxed add).
void note_job_cache(bool hit);

/// Attribute `n` replayed trace samples to the current job.
void note_job_replay_samples(std::uint64_t n);

/// Milliseconds since the process anchor (captured on the first call;
/// call early in main so "uptime" means what it says).
std::uint64_t process_uptime_ms();

/// One job's counters inside a sample (a plain copy of JobSearchState).
struct JobSample {
  std::uint64_t job = 0;
  std::uint64_t passes = 0;
  std::uint64_t moves_applied = 0;
  std::uint64_t moves_accepted = 0;
  std::uint64_t applied_by_class[kTelemetryClasses] = {0, 0, 0};
  std::uint64_t accepted_by_class[kTelemetryClasses] = {0, 0, 0};
  std::uint64_t rewrites_refuted = 0;
  std::uint64_t strategies_done = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t replay_samples = 0;
  double best_cost = 0;
  double vdd = 0;
  double clock_ns = 0;
  std::int32_t pass = -1;
  std::int32_t depth = -1;
};

/// One timestamped snapshot of the whole process.
struct TelemetrySample {
  std::uint64_t seq = 0;        ///< per-process sample sequence number
  std::uint64_t t_ms = 0;       ///< steady-clock milliseconds (monotonic)
  std::uint64_t uptime_ms = 0;  ///< process_uptime_ms() at sample time
  std::uint64_t pool_regions = 0;
  std::uint64_t pool_tasks = 0;
  std::uint64_t cache_hits = 0;   ///< summed over every eval-* cache
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t ledger_dropped = 0;
  std::uint64_t rewrites_refuted = 0;
  /// Selected replay kernel ISA: the `replay.isa` gauge, which holds the
  /// ReplayIsa ordinal + 1 (0 = no replay has resolved the table yet).
  std::uint64_t replay_isa = 0;
  std::vector<JobSample> jobs;  ///< ascending by job id
};

/// The background sampler. Process-wide, created on first use, never
/// destroyed; callers that start() it must stop() it before process
/// exit (the CLI paths do).
class Telemetry {
 public:
  static Telemetry& instance();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Start the sampler thread. interval_ms <= 0 resolves to
  /// HSYN_TELEMETRY_MS (when set to a positive integer) else 250.
  /// Idempotent: a second start() while running is a no-op.
  void start(int interval_ms = 0);

  /// Stop and join the sampler thread (no-op when not running).
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// The interval the sampler is (or was last) running at.
  int interval_ms() const { return interval_ms_.load(std::memory_order_relaxed); }

  /// Take one snapshot now. With record=true the sample is appended to
  /// the ring and delivered to listeners (what the sampler thread
  /// does); record=false is a pure one-shot read (the `stats` verb).
  TelemetrySample sample_now(bool record = false);

  /// Copy of the sample ring, oldest first (bounded; oldest samples are
  /// discarded when full).
  std::vector<TelemetrySample> ring() const;

  /// Drop all ring samples and reset the sequence counter (tests).
  void clear();

  /// Write the ring as JSON lines (one sample_json() per line); false
  /// on failure.
  bool write_jsonl(const std::string& path) const;

  /// One sample as a JSON object (the JSONL/`telemetry`-frame shape,
  /// minus the daemon's per-job state strings).
  static std::string sample_json(const TelemetrySample& s);

  /// Subscribe to recorded samples; returns a token for
  /// remove_listener. Listeners are invoked from the sampler thread
  /// with the listener lock held, so remove_listener() never returns
  /// while the removed listener is mid-invocation.
  std::uint64_t add_listener(std::function<void(const TelemetrySample&)> fn);
  void remove_listener(std::uint64_t id);

 private:
  Telemetry() = default;
  void loop();
  TelemetrySample collect();

  mutable std::mutex mu_;  ///< ring + sequence counter
  std::deque<TelemetrySample> ring_;
  std::uint64_t next_seq_ = 0;

  mutable std::mutex lmu_;  ///< listeners; held across invocation
  std::map<std::uint64_t, std::function<void(const TelemetrySample&)>> listeners_;
  std::uint64_t next_listener_ = 1;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int> interval_ms_{0};
  std::mutex cv_mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
};

/// The metrics registry rendered as Prometheus text exposition format
/// (counters, gauges, histograms with cumulative le-buckets, and polled
/// sources as hsyn_src_<source>_<counter>). Names are sanitized to
/// [A-Za-z0-9_].
std::string prometheus_text();

}  // namespace hsyn::obs
