#include "obs/metrics.h"

#include <fstream>
#include <utility>
#include <vector>

#include "util/json.h"

namespace hsyn::obs {

namespace {

/// Index of the histogram bucket for `v`: 0 for v == 0, otherwise
/// 1 + floor(log2(v)) so bucket i covers [2^(i-1), 2^i).
int bucket_index(std::uint64_t v) {
  if (v == 0) return 0;
  int i = 0;
  while (v != 0) {
    v >>= 1;
    ++i;
  }
  return i < Histogram::kBuckets ? i : Histogram::kBuckets - 1;
}

}  // namespace

void Histogram::observe(std::uint64_t v) {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  // Leaked: instrument references handed out must stay valid through
  // static destruction.
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

void Registry::register_source(const std::string& name, CounterSourceFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_[name] = std::move(fn);
}

std::map<std::string, std::map<std::string, std::uint64_t>>
Registry::poll_sources() const {
  std::vector<std::pair<std::string, CounterSourceFn>> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns.assign(sources_.begin(), sources_.end());
  }
  std::map<std::string, std::map<std::string, std::uint64_t>> out;
  for (const auto& [name, fn] : fns) out[name] = fn();
  return out;
}

void Registry::reset_instruments() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::string Registry::to_json() const {
  const auto sources = poll_sources();  // polled outside mu_
  JsonWriter w;
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c.value());
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g.value());
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.key("buckets").begin_array();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h.bucket(i);
      if (n == 0) continue;
      // [lower bound of bucket, count]
      w.begin_array();
      w.value(i == 0 ? std::uint64_t{0} : std::uint64_t{1} << (i - 1));
      w.value(n);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("sources").begin_object();
  for (const auto& [sname, counters] : sources) {
    w.key(sname).begin_object();
    for (const auto& [cname, v] : counters) w.key(cname).value(v);
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str();
}

bool Registry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace hsyn::obs
