// Low-overhead span tracer (Chrome trace-event JSON / Perfetto).
//
// Every instrumented scope -- synthesis phases, individual move
// evaluations, trace replays, cache fills, check passes -- opens an
// obs::Span. When tracing is disabled (the default) a Span costs one
// relaxed atomic load and nothing else; when enabled it costs two
// steady_clock reads plus one append into the calling thread's ring
// buffer. No lock is ever taken on the hot path, and recorded
// timestamps never feed back into any decision, so synthesis results
// are bit-identical with tracing on or off at any thread count.
//
// Buffers are fixed-size rings: when a thread records more than the
// ring holds, the oldest spans of that thread are overwritten and
// counted as dropped (the tail of a long run is usually the
// interesting part). Flushing merges every thread's ring into one
// Chrome trace-event document:
//
//   {"traceEvents":[{"name":"improve","ph":"X","pid":1,"tid":2,
//                    "ts":12.3,"dur":4.5}, ...]}
//
// loadable directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Enable via hsyn --trace-out=FILE, the HSYN_TRACE=FILE environment
// variable, or Tracer::instance().set_enabled(true) in tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hsyn::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when span recording is on (one relaxed load -- the entire cost
/// of a disabled Span).
inline bool tracing_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One completed span. `name` must point at storage that outlives the
/// tracer's use (string literals, or stable registry strings like the
/// check engine's per-pass phase names).
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;    ///< dense per-thread id (1-based)
  std::uint32_t depth = 0;  ///< nesting depth on its thread at begin
};

class Tracer {
 public:
  /// The process-wide tracer.
  static Tracer& instance();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) {
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return tracing_enabled(); }

  /// Drop all recorded spans and the dropped-span count.
  void reset();

  /// Merged snapshot of every thread's ring, ordered by (tid, begin).
  /// Must not race with active recording (call between runs).
  std::vector<SpanEvent> events() const;

  /// Spans lost to ring overflow since the last reset().
  std::uint64_t dropped() const;

  /// The Chrome trace-event document for the current contents.
  std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path`; false (with errno intact) on
  /// failure.
  bool write_chrome_json(const std::string& path) const;

  /// Append one completed span for the calling thread (used by Span).
  void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
              std::uint32_t depth);

 private:
  Tracer() = default;
};

/// RAII span around an instrumented scope.
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing_enabled()) open(name);
  }
  ~Span() {
    if (name_ != nullptr) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(const char* name);
  void close();

  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  std::uint32_t depth_ = 0;
};

/// Monotonic nanoseconds (steady clock), shared by the tracer and the
/// ledger's eval timing.
std::uint64_t now_ns();

}  // namespace hsyn::obs
