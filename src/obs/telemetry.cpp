#include "obs/telemetry.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "obs/job.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/stats.h"
#include "util/json.h"

namespace hsyn::obs {

namespace {

constexpr std::size_t kRingCapacity = 2048;

struct JobStateMap {
  std::mutex mu;
  // std::map: stable addresses, deterministic export order.
  std::map<std::uint64_t, std::unique_ptr<JobSearchState>> slots;
};

JobStateMap& job_states() {
  static JobStateMap* m = new JobStateMap();
  return *m;
}

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void JobSearchState::note_best(double cost) {
  double cur = best_cost.load(std::memory_order_relaxed);
  while ((cur == 0.0 || cost < cur) &&
         !best_cost.compare_exchange_weak(cur, cost,
                                          std::memory_order_relaxed)) {
  }
}

JobSearchState& job_state(std::uint64_t job) {
  JobStateMap& m = job_states();
  std::lock_guard<std::mutex> lock(m.mu);
  std::unique_ptr<JobSearchState>& slot = m.slots[job];
  if (!slot) slot = std::make_unique<JobSearchState>();
  return *slot;
}

JobSearchState& current_job_state() {
  // TLS memoization (the eval caches call this per lookup): revalidated
  // against the thread's job tag, which the pool changes only between
  // parallel regions.
  struct Cached {
    std::uint64_t job = ~std::uint64_t{0};
    JobSearchState* st = nullptr;
  };
  thread_local Cached c;
  const std::uint64_t job = current_job();
  if (c.st == nullptr || c.job != job) {
    c.job = job;
    c.st = &job_state(job);
  }
  return *c.st;
}

std::vector<std::uint64_t> job_state_ids() {
  JobStateMap& m = job_states();
  std::lock_guard<std::mutex> lock(m.mu);
  std::vector<std::uint64_t> ids;
  ids.reserve(m.slots.size());
  for (const auto& [id, slot] : m.slots) ids.push_back(id);
  return ids;
}

void reset_job_states() {
  JobStateMap& m = job_states();
  std::lock_guard<std::mutex> lock(m.mu);
  for (auto& [id, slot] : m.slots) {
    JobSearchState& s = *slot;
    s.passes.store(0, std::memory_order_relaxed);
    s.moves_applied.store(0, std::memory_order_relaxed);
    s.moves_accepted.store(0, std::memory_order_relaxed);
    for (int k = 0; k < kTelemetryClasses; ++k) {
      s.applied_by_class[k].store(0, std::memory_order_relaxed);
      s.accepted_by_class[k].store(0, std::memory_order_relaxed);
    }
    s.rewrites_refuted.store(0, std::memory_order_relaxed);
    s.strategies_done.store(0, std::memory_order_relaxed);
    s.cache_hits.store(0, std::memory_order_relaxed);
    s.cache_misses.store(0, std::memory_order_relaxed);
    s.replay_samples.store(0, std::memory_order_relaxed);
    s.best_cost.store(0, std::memory_order_relaxed);
    s.vdd.store(0, std::memory_order_relaxed);
    s.clock_ns.store(0, std::memory_order_relaxed);
    s.pass.store(-1, std::memory_order_relaxed);
    s.depth.store(-1, std::memory_order_relaxed);
  }
}

void note_job_cache(bool hit) {
  JobSearchState& s = current_job_state();
  (hit ? s.cache_hits : s.cache_misses).fetch_add(1, std::memory_order_relaxed);
}

void note_job_replay_samples(std::uint64_t n) {
  current_job_state().replay_samples.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t process_uptime_ms() {
  static const std::uint64_t anchor = steady_ms();
  return steady_ms() - anchor;
}

Telemetry& Telemetry::instance() {
  static Telemetry* t = new Telemetry();
  return *t;
}

void Telemetry::start(int interval_ms) {
  std::lock_guard<std::mutex> lock(cv_mu_);
  if (running_.load(std::memory_order_relaxed)) return;
  if (interval_ms <= 0) {
    interval_ms = 250;
    if (const char* env = std::getenv("HSYN_TELEMETRY_MS")) {
      const int v = std::atoi(env);
      if (v > 0) interval_ms = v;
    }
  }
  interval_ms_.store(interval_ms, std::memory_order_relaxed);
  stop_requested_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void Telemetry::stop() {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    if (!running_.load(std::memory_order_relaxed)) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void Telemetry::loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_.wait_for(lock,
                   std::chrono::milliseconds(
                       interval_ms_.load(std::memory_order_relaxed)),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    sample_now(/*record=*/true);
  }
}

TelemetrySample Telemetry::collect() {
  TelemetrySample s;
  s.t_ms = steady_ms();
  s.uptime_ms = process_uptime_ms();

  const runtime::Stats rs = runtime::stats_snapshot();
  s.pool_regions = rs.regions;
  s.pool_tasks = rs.tasks;
  for (const auto& [src, counters] : rs.counters) {
    if (src.rfind("eval-", 0) != 0) continue;
    for (const auto& [name, value] : counters) {
      if (name == "hits") s.cache_hits += value;
      else if (name == "misses") s.cache_misses += value;
      else if (name == "bytes") s.cache_bytes += value;
    }
  }

  s.spans_dropped = Tracer::instance().dropped();
  s.ledger_dropped = MoveLedger::instance().dropped();

  Registry& reg = Registry::instance();
  s.rewrites_refuted = reg.counter("synth.rewrites_refuted").value();
  // The replay kernel publishes its resolved ISA as a gauge (ordinal + 1,
  // power/replay.cpp); reading it generically keeps obs free of any
  // power-layer dependency.
  s.replay_isa =
      static_cast<std::uint64_t>(reg.gauge("replay.isa").value());
  // Keep the dropped-record gauges current so a --metrics-out snapshot
  // carries the accounting even when nobody reads the ring.
  reg.gauge("obs.spans_dropped").set(static_cast<double>(s.spans_dropped));
  reg.gauge("obs.ledger_dropped").set(static_cast<double>(s.ledger_dropped));

  for (const std::uint64_t id : job_state_ids()) {
    const JobSearchState& js = job_state(id);
    JobSample j;
    j.job = id;
    j.passes = js.passes.load(std::memory_order_relaxed);
    j.moves_applied = js.moves_applied.load(std::memory_order_relaxed);
    j.moves_accepted = js.moves_accepted.load(std::memory_order_relaxed);
    for (int k = 0; k < kTelemetryClasses; ++k) {
      j.applied_by_class[k] =
          js.applied_by_class[k].load(std::memory_order_relaxed);
      j.accepted_by_class[k] =
          js.accepted_by_class[k].load(std::memory_order_relaxed);
    }
    j.rewrites_refuted = js.rewrites_refuted.load(std::memory_order_relaxed);
    j.strategies_done = js.strategies_done.load(std::memory_order_relaxed);
    j.cache_hits = js.cache_hits.load(std::memory_order_relaxed);
    j.cache_misses = js.cache_misses.load(std::memory_order_relaxed);
    j.replay_samples = js.replay_samples.load(std::memory_order_relaxed);
    j.best_cost = js.best_cost.load(std::memory_order_relaxed);
    j.vdd = js.vdd.load(std::memory_order_relaxed);
    j.clock_ns = js.clock_ns.load(std::memory_order_relaxed);
    j.pass = js.pass.load(std::memory_order_relaxed);
    j.depth = js.depth.load(std::memory_order_relaxed);
    s.jobs.push_back(j);
  }
  return s;
}

TelemetrySample Telemetry::sample_now(bool record) {
  TelemetrySample s = collect();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.seq = next_seq_++;
    if (record) {
      if (ring_.size() >= kRingCapacity) ring_.pop_front();
      ring_.push_back(s);
    }
  }
  if (record) {
    // Invoke under the listener lock: remove_listener() then cannot
    // return while its listener is mid-call (the serve sessions rely on
    // that to tear down watch subscriptions safely).
    std::lock_guard<std::mutex> lock(lmu_);
    for (const auto& [id, fn] : listeners_) fn(s);
  }
  return s;
}

std::vector<TelemetrySample> Telemetry::ring() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TelemetrySample>(ring_.begin(), ring_.end());
}

void Telemetry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
}

bool Telemetry::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  for (const TelemetrySample& s : ring()) out << sample_json(s) << '\n';
  return static_cast<bool>(out);
}

std::string Telemetry::sample_json(const TelemetrySample& s) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("telemetry");
  w.key("seq").value(s.seq);
  w.key("t_ms").value(s.t_ms);
  w.key("uptime_ms").value(s.uptime_ms);
  w.key("regions").value(s.pool_regions);
  w.key("tasks").value(s.pool_tasks);
  w.key("cache_hits").value(s.cache_hits);
  w.key("cache_misses").value(s.cache_misses);
  w.key("cache_bytes").value(s.cache_bytes);
  w.key("spans_dropped").value(s.spans_dropped);
  w.key("ledger_dropped").value(s.ledger_dropped);
  w.key("rewrites_refuted").value(s.rewrites_refuted);
  w.key("replay_isa").value(s.replay_isa);
  w.key("jobs").begin_array();
  for (const JobSample& j : s.jobs) {
    w.begin_object();
    w.key("job").value(j.job);
    w.key("passes").value(j.passes);
    w.key("pass").value(static_cast<int>(j.pass));
    w.key("depth").value(static_cast<int>(j.depth));
    w.key("moves_applied").value(j.moves_applied);
    w.key("moves_accepted").value(j.moves_accepted);
    w.key("applied_replace").value(j.applied_by_class[kTelemetryClassReplace]);
    w.key("applied_share").value(j.applied_by_class[kTelemetryClassShare]);
    w.key("applied_split").value(j.applied_by_class[kTelemetryClassSplit]);
    w.key("accepted_replace").value(j.accepted_by_class[kTelemetryClassReplace]);
    w.key("accepted_share").value(j.accepted_by_class[kTelemetryClassShare]);
    w.key("accepted_split").value(j.accepted_by_class[kTelemetryClassSplit]);
    w.key("rewrites_refuted").value(j.rewrites_refuted);
    w.key("strategies_done").value(j.strategies_done);
    w.key("cache_hits").value(j.cache_hits);
    w.key("cache_misses").value(j.cache_misses);
    w.key("replay_samples").value(j.replay_samples);
    w.key("best_cost").value(j.best_cost);
    w.key("vdd").value(j.vdd);
    w.key("clock_ns").value(j.clock_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::uint64_t Telemetry::add_listener(
    std::function<void(const TelemetrySample&)> fn) {
  std::lock_guard<std::mutex> lock(lmu_);
  const std::uint64_t id = next_listener_++;
  listeners_[id] = std::move(fn);
  return id;
}

void Telemetry::remove_listener(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(lmu_);
  listeners_.erase(id);
}

namespace {

std::string prom_name(const std::string& raw) {
  std::string out = "hsyn_";
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_number(double v) {
  // Integral values (counters, bucket counts) print without a decimal
  // point; everything else round-trips through %.17g.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v >= -9.0e15 && v <= 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string prometheus_text() {
  // Rendered from the registry's JSON snapshot: the registry does not
  // expose iteration, and this path is scrape-rate cold.
  JsonValue doc;
  if (!json_parse(Registry::instance().to_json(), &doc)) return {};

  std::string out;
  if (const JsonValue* counters = doc.get("counters")) {
    for (const auto& [name, v] : counters->members()) {
      const std::string n = prom_name(name);
      out += "# TYPE " + n + " counter\n";
      out += n + " " + prom_number(v.as_number()) + "\n";
    }
  }
  if (const JsonValue* gauges = doc.get("gauges")) {
    for (const auto& [name, v] : gauges->members()) {
      const std::string n = prom_name(name);
      out += "# TYPE " + n + " gauge\n";
      out += n + " " + prom_number(v.as_number()) + "\n";
    }
  }
  if (const JsonValue* hists = doc.get("histograms")) {
    for (const auto& [name, h] : hists->members()) {
      const std::string n = prom_name(name);
      out += "# TYPE " + n + " histogram\n";
      std::uint64_t cum = 0;
      if (const JsonValue* buckets = h.get("buckets")) {
        for (const JsonValue& b : buckets->items()) {
          if (b.items().size() != 2) continue;
          const std::uint64_t lo =
              static_cast<std::uint64_t>(b.items()[0].as_number());
          cum += static_cast<std::uint64_t>(b.items()[1].as_number());
          // Power-of-two buckets: lower bound lo covers [lo, 2*lo), so
          // the cumulative le bound is the bucket's (exclusive) top.
          const std::uint64_t le = lo == 0 ? 0 : lo * 2 - 1;
          out += n + "_bucket{le=\"" + std::to_string(le) + "\"} " +
                 std::to_string(cum) + "\n";
        }
      }
      out += n + "_bucket{le=\"+Inf\"} " +
             prom_number(h.num_or("count", 0)) + "\n";
      out += n + "_sum " + prom_number(h.num_or("sum", 0)) + "\n";
      out += n + "_count " + prom_number(h.num_or("count", 0)) + "\n";
    }
  }
  if (const JsonValue* sources = doc.get("sources")) {
    for (const auto& [src, group] : sources->members()) {
      for (const auto& [name, v] : group.members()) {
        const std::string n = prom_name("src_" + src + "_" + name);
        out += "# TYPE " + n + " counter\n";
        out += n + " " + prom_number(v.as_number()) + "\n";
      }
    }
  }
  return out;
}

}  // namespace hsyn::obs
