#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>

#include "util/json.h"

namespace hsyn::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Spans kept per thread before the ring wraps. 1<<16 spans x 32 bytes
/// = 2 MB per recording thread; a full synthesis run of the built-in
/// benchmarks fits with room to spare.
constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

struct ThreadRing {
  std::uint32_t tid = 0;
  /// Guards ring contents against snapshot/reset; the owning thread's
  /// append takes it too, but it is per-thread and therefore
  /// uncontended on the hot path.
  mutable std::mutex mu;
  std::vector<SpanEvent> ring;
  std::size_t next = 0;      ///< wrap position
  std::uint64_t total = 0;   ///< spans ever recorded
  std::uint32_t depth = 0;   ///< current nesting depth (owner thread only)
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

ThreadRing& local_ring() {
  // The shared_ptr keeps the ring alive in the registry after the
  // thread exits (the pool is rebuilt on set_threads; flushed traces
  // must still include the old workers' spans).
  thread_local std::shared_ptr<ThreadRing> tl = [] {
    auto ring = std::make_shared<ThreadRing>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    ring->tid = r.next_tid++;
    r.rings.push_back(ring);
    return ring;
  }();
  return *tl;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();
  return *t;
}

void Tracer::record(const char* name, std::uint64_t begin_ns,
                    std::uint64_t end_ns, std::uint32_t depth) {
  ThreadRing& r = local_ring();
  std::lock_guard<std::mutex> lock(r.mu);
  const SpanEvent ev{name, begin_ns, end_ns, r.tid, depth};
  if (r.ring.size() < kRingCapacity) {
    r.ring.push_back(ev);
  } else {
    r.ring[r.next] = ev;
    r.next = (r.next + 1) % kRingCapacity;
  }
  ++r.total;
}

void Span::open(const char* name) {
  name_ = name;
  ThreadRing& r = local_ring();
  depth_ = r.depth++;
  begin_ns_ = now_ns();
}

void Span::close() {
  const std::uint64_t end = now_ns();
  ThreadRing& r = local_ring();
  if (r.depth > 0) --r.depth;
  // Record even if tracing was toggled off mid-span: the span was
  // opened under an enabled tracer and its depth accounting ran.
  Tracer::instance().record(name_, begin_ns_, end, depth_);
}

void Tracer::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) {
    std::lock_guard<std::mutex> rl(ring->mu);
    ring->ring.clear();
    ring->next = 0;
    ring->total = 0;
  }
}

std::vector<SpanEvent> Tracer::events() const {
  std::vector<SpanEvent> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) {
    std::lock_guard<std::mutex> rl(ring->mu);
    // Oldest-first: the segment after the wrap position precedes the
    // segment before it.
    for (std::size_t i = ring->next; i < ring->ring.size(); ++i) {
      out.push_back(ring->ring[i]);
    }
    for (std::size_t i = 0; i < ring->next; ++i) out.push_back(ring->ring[i]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.tid != b.tid ? a.tid < b.tid
                                           : a.begin_ns < b.begin_ns;
                   });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t d = 0;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) {
    std::lock_guard<std::mutex> rl(ring->mu);
    if (ring->total > ring->ring.size()) d += ring->total - ring->ring.size();
  }
  return d;
}

std::string Tracer::to_chrome_json() const {
  const std::vector<SpanEvent> evs = events();
  // Microsecond timestamps relative to the earliest span keep the
  // numbers small and the Perfetto timeline anchored at zero.
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const SpanEvent& e : evs) t0 = std::min(t0, e.begin_ns);
  if (evs.empty()) t0 = 0;

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const SpanEvent& e : evs) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("ph").value("X");
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    w.key("ts").value(static_cast<double>(e.begin_ns - t0) * 1e-3);
    w.key("dur").value(static_cast<double>(e.end_ns - e.begin_ns) * 1e-3);
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").begin_object();
  w.key("dropped_spans").value(dropped());
  w.end_object();
  w.end_object();
  return w.str();
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace hsyn::obs
