#include "obs/ledger.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/job.h"
#include "util/json.h"
#include "util/table.h"

namespace hsyn::obs {

const char* move_status_name(MoveStatus s) {
  switch (s) {
    case MoveStatus::Evaluated: return "evaluated";
    case MoveStatus::Infeasible: return "infeasible";
    case MoveStatus::Applied: return "applied";
    case MoveStatus::RolledBack: return "rolled-back";
    case MoveStatus::Accepted: return "accepted";
    case MoveStatus::RejectedByVerifier: return "rejected-equiv";
  }
  return "?";
}

namespace {

/// Soft cap per recording thread; a runaway inner loop cannot exhaust
/// memory (1<<20 records x ~100 B is ~100 MB worst case across a big
/// pool, far beyond any real run).
constexpr std::size_t kMaxRecordsPerThread = std::size_t{1} << 20;

struct ThreadBuf {
  /// Guards contents against merge/reset; the owning thread's append
  /// takes it too, but it is per-thread and uncontended on the hot path.
  mutable std::mutex mu;
  std::vector<MoveRecord> records;
  std::uint64_t dropped = 0;
};

struct Mark {
  std::uint64_t group;
  std::int32_t cand;
  MoveStatus status;
};

struct GroupMeta {
  int pass = 0;
  int depth = 0;
  std::int32_t strategy = -1;
};

struct LedgerState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  std::vector<Mark> marks;  ///< strategy-serial improvement loops only
  /// Per group id: (pass, depth, strategy) captured at begin_group()
  /// time. Pass/depth/strategy scopes are thread-local to the
  /// enumerating thread; a worker evaluating the candidate would read
  /// its own stale values, so merged() stamps records from this table
  /// instead. A map because portfolio group ids are sparse (strategy
  /// tag in the high bits).
  std::map<std::uint64_t, GroupMeta> group_meta;
  /// Per-strategy group sequence counters (portfolio explorers).
  std::map<std::int32_t, std::uint64_t> strategy_seq;
};

LedgerState& state() {
  static LedgerState* s = new LedgerState();
  return *s;
}

ThreadBuf& local_buf() {
  // shared_ptr keeps the buffer reachable from the state after the
  // worker thread dies (the pool is rebuilt on set_threads).
  thread_local std::shared_ptr<ThreadBuf> tl = [] {
    auto buf = std::make_shared<ThreadBuf>();
    LedgerState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.bufs.push_back(buf);
    return buf;
  }();
  return *tl;
}

struct Tag {
  std::uint64_t group = 0;
  std::int32_t cand = -1;
  bool active = false;
  int pass = 0;
  int depth = 0;
  std::int32_t strategy = -1;
};

thread_local Tag t_tag;

void append_csv_field(std::string& out, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    out += s;
    return;
  }
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

MoveLedger& MoveLedger::instance() {
  static MoveLedger* l = new MoveLedger();
  return *l;
}

void MoveLedger::reset() {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buf : s.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->records.clear();
    buf->dropped = 0;
  }
  s.marks.clear();
  s.group_meta.clear();
  s.strategy_seq.clear();
  next_group_.store(0, std::memory_order_relaxed);
}

std::uint64_t MoveLedger::dropped() const {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t n = 0;
  for (const auto& buf : s.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->dropped;
  }
  return n;
}

std::uint64_t MoveLedger::begin_group() {
  // Capture the enumerating thread's improvement context here, where it
  // is authoritative (see group_meta).
  LedgerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::int32_t strat = StrategyScope::current();
  std::uint64_t id;
  if (strat < 0) {
    // Solo path: one process-global serial sequence, exactly as before.
    id = next_group_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Portfolio explorer: the strategy's own sequence, so the id is a
    // pure function of the strategy's deterministic trajectory no
    // matter how explorers interleave.
    id = (static_cast<std::uint64_t>(strat) + 1) << kStrategyShift |
         s.strategy_seq[strat]++;
  }
  s.group_meta[id] = {ImproveScope::current_pass(),
                      ResynthScope::current_depth(), strat};
  return id;
}

void MoveLedger::record(MoveRecord rec) {
  rec.job = current_job();
  ThreadBuf& b = local_buf();
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.records.size() >= kMaxRecordsPerThread) {
    ++b.dropped;
    return;
  }
  b.records.push_back(std::move(rec));
}

void MoveLedger::set_status(std::uint64_t group, std::int32_t cand,
                            MoveStatus status) {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.marks.push_back(Mark{group, cand, status});
}

std::vector<MoveRecord> MoveLedger::merged(std::uint64_t job) const {
  LedgerState& s = state();
  std::vector<MoveRecord> out;
  std::vector<Mark> marks;
  std::map<std::uint64_t, GroupMeta> group_meta;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& buf : s.bufs) {
      std::lock_guard<std::mutex> bl(buf->mu);
      for (const MoveRecord& r : buf->records) {
        if (job == kAllJobs || r.job == job) out.push_back(r);
      }
    }
    marks = s.marks;
    group_meta = s.group_meta;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const MoveRecord& a, const MoveRecord& b) {
                     return a.group != b.group ? a.group < b.group
                                               : a.cand < b.cand;
                   });
  // Pass/depth/strategy come from the serial enumeration context, not
  // from whichever worker happened to evaluate the candidate.
  for (MoveRecord& r : out) {
    const auto it = group_meta.find(r.group);
    if (it != group_meta.end()) {
      r.pass = it->second.pass;
      r.depth = it->second.depth;
      r.strategy = it->second.strategy;
    }
  }
  // Marks are few (one or two per applied move); linear probe per mark
  // via binary search on the sorted records.
  for (const Mark& m : marks) {
    auto it = std::lower_bound(
        out.begin(), out.end(), m, [](const MoveRecord& r, const Mark& mk) {
          return r.group != mk.group ? r.group < mk.group : r.cand < mk.cand;
        });
    for (; it != out.end() && it->group == m.group && it->cand == m.cand;
         ++it) {
      it->status = m.status;
    }
  }
  return out;
}

std::string MoveLedger::to_jsonl(bool include_timing, std::uint64_t job) const {
  std::string out;
  for (const MoveRecord& r : merged(job)) {
    JsonWriter w;
    w.begin_object();
    w.key("group").value(r.group);
    w.key("job").value(r.job);
    w.key("cand").value(static_cast<std::int64_t>(r.cand));
    w.key("strategy").value(static_cast<std::int64_t>(r.strategy));
    w.key("kind").value(r.kind);
    w.key("desc").value(r.desc);
    w.key("pass").value(r.pass);
    w.key("depth").value(r.depth);
    w.key("gain").value(r.gain);
    w.key("cost_before").value(r.cost_before);
    w.key("status").value(move_status_name(r.status));
    if (include_timing) {
      w.key("eval_us").value(r.eval_us);
      w.key("cache_hits").value(r.cache_hits);
      w.key("cache_misses").value(r.cache_misses);
    }
    w.end_object();
    out += w.str();
    out += "\n";
  }
  return out;
}

std::string MoveLedger::to_csv(std::uint64_t job) const {
  std::string out =
      "group,job,cand,strategy,kind,desc,pass,depth,gain,cost_before,status,"
      "eval_us,cache_hits,cache_misses\n";
  for (const MoveRecord& r : merged(job)) {
    std::ostringstream line;
    line << r.group << "," << r.job << "," << r.cand << "," << r.strategy
         << ",";
    std::string tail;
    append_csv_field(tail, r.kind);
    tail += ",";
    append_csv_field(tail, r.desc);
    line << tail << "," << r.pass << "," << r.depth << "," << r.gain << ","
         << r.cost_before << "," << move_status_name(r.status) << ","
         << r.eval_us << "," << r.cache_hits << "," << r.cache_misses;
    out += line.str();
    out += "\n";
  }
  return out;
}

bool MoveLedger::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  out << (csv ? to_csv() : to_jsonl());
  return static_cast<bool>(out);
}

std::map<std::string, MoveClassSummary> MoveLedger::summary(
    std::uint64_t job) const {
  std::map<std::string, MoveClassSummary> out;
  for (const MoveRecord& r : merged(job)) {
    MoveClassSummary& s = out[r.kind];
    ++s.attempted;
    switch (r.status) {
      case MoveStatus::Infeasible: ++s.infeasible; break;
      case MoveStatus::Applied:
      case MoveStatus::RolledBack: ++s.applied; break;
      case MoveStatus::Accepted:
        ++s.applied;
        ++s.accepted;
        s.accepted_gain += r.gain;
        break;
      case MoveStatus::RejectedByVerifier: ++s.rejected_equiv; break;
      case MoveStatus::Evaluated: break;
    }
  }
  return out;
}

std::map<std::int32_t, std::map<std::string, MoveClassSummary>>
MoveLedger::summary_by_strategy(std::uint64_t job) const {
  std::map<std::int32_t, std::map<std::string, MoveClassSummary>> out;
  for (const MoveRecord& r : merged(job)) {
    MoveClassSummary& s = out[r.strategy][r.kind];
    ++s.attempted;
    switch (r.status) {
      case MoveStatus::Infeasible: ++s.infeasible; break;
      case MoveStatus::Applied:
      case MoveStatus::RolledBack: ++s.applied; break;
      case MoveStatus::Accepted:
        ++s.applied;
        ++s.accepted;
        s.accepted_gain += r.gain;
        break;
      case MoveStatus::RejectedByVerifier: ++s.rejected_equiv; break;
      case MoveStatus::Evaluated: break;
    }
  }
  return out;
}

std::string MoveLedger::summary_table(std::uint64_t job) const {
  const auto sum = summary(job);
  TextTable t;
  t.row({"move class", "attempted", "infeasible", "applied", "accepted",
         "rej-equiv", "accept %", "accepted gain"});
  t.rule();
  MoveClassSummary total;
  for (const auto& [kind, s] : sum) {
    std::ostringstream pct, gain;
    pct.precision(1);
    pct << std::fixed
        << (s.attempted != 0
                ? 100.0 * static_cast<double>(s.accepted) /
                      static_cast<double>(s.attempted)
                : 0.0);
    gain.precision(4);
    gain << s.accepted_gain;
    t.row({kind, std::to_string(s.attempted), std::to_string(s.infeasible),
           std::to_string(s.applied), std::to_string(s.accepted),
           std::to_string(s.rejected_equiv), pct.str(), gain.str()});
    total.attempted += s.attempted;
    total.infeasible += s.infeasible;
    total.applied += s.applied;
    total.accepted += s.accepted;
    total.rejected_equiv += s.rejected_equiv;
    total.accepted_gain += s.accepted_gain;
  }
  t.rule();
  std::ostringstream pct, gain;
  pct.precision(1);
  pct << std::fixed
      << (total.attempted != 0
              ? 100.0 * static_cast<double>(total.accepted) /
                    static_cast<double>(total.attempted)
              : 0.0);
  gain.precision(4);
  gain << total.accepted_gain;
  t.row({"total", std::to_string(total.attempted),
         std::to_string(total.infeasible), std::to_string(total.applied),
         std::to_string(total.accepted), std::to_string(total.rejected_equiv),
         pct.str(), gain.str()});
  return t.render();
}

CandidateScope::CandidateScope(std::uint64_t group, std::int32_t cand)
    : prev_group_(t_tag.group),
      prev_cand_(t_tag.cand),
      prev_active_(t_tag.active) {
  t_tag.group = group;
  t_tag.cand = cand;
  t_tag.active = true;
}

CandidateScope::~CandidateScope() {
  t_tag.group = prev_group_;
  t_tag.cand = prev_cand_;
  t_tag.active = prev_active_;
}

bool CandidateScope::active() { return t_tag.active; }
std::uint64_t CandidateScope::current_group() { return t_tag.group; }
std::int32_t CandidateScope::current_cand() { return t_tag.cand; }

ImproveScope::ImproveScope(int pass) : prev_pass_(t_tag.pass) {
  t_tag.pass = pass;
}
ImproveScope::~ImproveScope() { t_tag.pass = prev_pass_; }
int ImproveScope::current_pass() { return t_tag.pass; }

StrategyScope::StrategyScope(std::int32_t strategy) : prev_(t_tag.strategy) {
  t_tag.strategy = strategy;
}
StrategyScope::~StrategyScope() { t_tag.strategy = prev_; }
bool StrategyScope::active() { return t_tag.strategy >= 0; }
std::int32_t StrategyScope::current() { return t_tag.strategy; }

ResynthScope::ResynthScope() : prev_depth_(t_tag.depth) { ++t_tag.depth; }
ResynthScope::~ResynthScope() { t_tag.depth = prev_depth_; }
int ResynthScope::current_depth() { return t_tag.depth; }

}  // namespace hsyn::obs
