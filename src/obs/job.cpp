#include "obs/job.h"

namespace hsyn::obs {
namespace {

thread_local std::uint64_t t_job = 0;

}  // namespace

std::uint64_t current_job() { return t_job; }

JobScope::JobScope(std::uint64_t job) : prev_(t_job) { t_job = job; }

JobScope::~JobScope() { t_job = prev_; }

}  // namespace hsyn::obs
