// Scheduling of bound datapaths (paper Section 4).
//
// Following [10] and the paper: before scheduling we derive an ordering
// for invocations that share a functional unit / RTL module and for
// variables that share a register. The ordering imposes extra dependency
// edges, after which "scheduling of a node reduces to the problem of
// finding the longest path from a primary input to the node". We build
// the full constraint graph (data edges with profile offsets for complex
// modules, resource-serialization edges, register write-after-read
// edges), check it is acyclic, and propagate longest paths.
//
// Hierarchical datapaths are scheduled bottom-up: children first (their
// schedules define their profiles), then the parent, where a child
// invocation behaves as a non-pipelined multicycle unit with profile
// semantics (Example 1).
#pragma once

#include <string>

#include "rtl/datapath.h"

namespace hsyn {

/// Effectively-unbounded deadline for child modules scheduled for minimum
/// latency.
inline constexpr int kNoDeadline = 1 << 28;

struct SchedResult {
  bool ok = false;
  int makespan = 0;
  std::string reason;  ///< set when !ok
};

/// Schedule behavior `b` of `dp` (children must already be scheduled).
/// On success fills inv_start / makespan / scheduled and returns ok.
SchedResult schedule_behavior(Datapath& dp, int b, const Library& lib,
                              const OpPoint& pt, int deadline);

/// Schedule every child (bottom-up, against kNoDeadline) and then every
/// behavior of `dp` against `deadline`. Returns the first failure or the
/// maximum makespan across behaviors.
///
/// Children whose behaviors are all already scheduled are *not*
/// rescheduled: schedules stay valid as long as the operating point and
/// the child's structure are unchanged, and every mutation path resets
/// the affected `scheduled` flags. Call invalidate_schedules() first
/// when the operating point changes (e.g. Vdd scaling).
SchedResult schedule_datapath(Datapath& dp, const Library& lib, const OpPoint& pt,
                              int deadline);

/// Recursively clear every behavior's `scheduled` flag.
void invalidate_schedules(Datapath& dp);

/// Latest feasible start time per invocation of (already scheduled)
/// behavior `b` such that `deadline` is still met, honoring the same
/// resource/register orderings the scheduler derives. Empty on failure
/// (cyclic orderings). Used by constraint derivation (Fig. 5).
std::vector<int> alap_starts(const Datapath& dp, int b, const Library& lib,
                             const OpPoint& pt, int deadline);

}  // namespace hsyn
