#include "sched/slack.h"

#include <algorithm>
#include <limits>

#include "sched/scheduler.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

/// Latest time the value on edge `e` may be produced: min over consumer
/// invocations of (their ALAP start + the offset at which they read `e`),
/// and `deadline` for primary-output consumers.
int edge_deadline(const Datapath& dp, int b, int e, const std::vector<int>& alap,
                  const Library& lib, const OpPoint& pt, int deadline) {
  const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
  const Edge& edge = bi.dfg->edge(e);
  int dl = std::numeric_limits<int>::max();
  for (const PortRef& d : edge.dsts) {
    if (d.node == kPrimaryOut) {
      dl = std::min(dl, deadline);
      continue;
    }
    const int c = bi.inv_of(d.node);
    const Invocation& cinv = bi.invs[static_cast<std::size_t>(c)];
    int read_off = 0;
    if (cinv.unit.kind == UnitRef::Kind::Child) {
      const Datapath& child =
          *dp.children[static_cast<std::size_t>(cinv.unit.idx)].impl;
      const Node& n = bi.dfg->node(cinv.nodes.front());
      const Profile p = child.profile(child.find_behavior(n.behavior), lib, pt);
      // The edge may feed several ports; it must be there for the earliest.
      int off = std::numeric_limits<int>::max();
      for (int port = 0; port < n.num_inputs; ++port) {
        if (bi.dfg->input_edge(cinv.nodes.front(), port) == e) {
          off = std::min(off, p.in[static_cast<std::size_t>(port)]);
        }
      }
      read_off = off == std::numeric_limits<int>::max() ? 0 : off;
    }
    dl = std::min(dl, alap[static_cast<std::size_t>(c)] + read_off);
  }
  if (dl == std::numeric_limits<int>::max()) dl = deadline;
  return dl;
}

}  // namespace

std::optional<ModuleConstraint> derive_child_constraint(const Datapath& dp, int b,
                                                        int child_idx,
                                                        const Library& lib,
                                                        const OpPoint& pt,
                                                        int deadline) {
  const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
  check(bi.scheduled, "derive_child_constraint: behavior not scheduled");
  const std::vector<int> alap = alap_starts(dp, b, lib, pt, deadline);
  if (alap.empty()) return std::nullopt;

  std::optional<ModuleConstraint> result;
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    const Invocation& inv = bi.invs[i];
    if (inv.unit.kind != UnitRef::Kind::Child || inv.unit.idx != child_idx) continue;
    const Node& n = bi.dfg->node(inv.nodes.front());
    const int start = bi.inv_start[i];

    ModuleConstraint mc;
    mc.in_arrival.resize(static_cast<std::size_t>(n.num_inputs));
    for (int port = 0; port < n.num_inputs; ++port) {
      const int e = bi.dfg->input_edge(inv.nodes.front(), port);
      // Local frame: when is this operand available relative to the
      // invocation's (kept) start time? Never negative.
      mc.in_arrival[static_cast<std::size_t>(port)] =
          std::max(0, dp.edge_ready_time(b, e, lib, pt) - start);
    }
    mc.out_deadline.resize(static_cast<std::size_t>(n.num_outputs));
    for (int port = 0; port < n.num_outputs; ++port) {
      const int e = bi.dfg->output_edge(inv.nodes.front(), port);
      const int dl = e >= 0 ? edge_deadline(dp, b, e, alap, lib, pt, deadline)
                            : deadline;
      mc.out_deadline[static_cast<std::size_t>(port)] = dl - start;
    }
    // Busy budget: the next invocation on the same unit (by current
    // schedule order) may start as late as its ALAP.
    int busy = deadline - start;
    for (std::size_t j = 0; j < bi.invs.size(); ++j) {
      if (j == i || !(bi.invs[j].unit == inv.unit)) continue;
      if (bi.inv_start[j] >= start) {
        // A later invocation on this unit (or a tie: conservative).
        if (bi.inv_start[j] > start ||
            (bi.inv_start[j] == start && j > i)) {
          busy = std::min(busy, alap[j] - start);
        }
      }
    }
    mc.max_busy = busy;

    if (!result) {
      result = std::move(mc);
    } else {
      // Intersect across invocations: latest arrivals, earliest deadlines.
      for (std::size_t k = 0; k < result->in_arrival.size(); ++k) {
        result->in_arrival[k] = std::min(result->in_arrival[k], mc.in_arrival[k]);
      }
      for (std::size_t k = 0; k < result->out_deadline.size(); ++k) {
        result->out_deadline[k] =
            std::min(result->out_deadline[k], mc.out_deadline[k]);
      }
      result->max_busy = std::min(result->max_busy, mc.max_busy);
    }
  }
  return result;
}

std::optional<int> derive_fu_latency_budget(const Datapath& dp, int b, int inv,
                                            const Library& lib, const OpPoint& pt,
                                            int deadline) {
  const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
  check(bi.scheduled, "derive_fu_latency_budget: behavior not scheduled");
  const std::vector<int> alap = alap_starts(dp, b, lib, pt, deadline);
  if (alap.empty()) return std::nullopt;

  const int start = bi.inv_start[static_cast<std::size_t>(inv)];
  int budget = deadline - start;
  for (const int e : dp.inv_output_edges(b, inv)) {
    budget = std::min(budget,
                      edge_deadline(dp, b, e, alap, lib, pt, deadline) - start);
  }
  const UnitRef unit = bi.invs[static_cast<std::size_t>(inv)].unit;
  for (std::size_t j = 0; j < bi.invs.size(); ++j) {
    if (static_cast<int>(j) == inv || !(bi.invs[j].unit == unit)) continue;
    if (bi.inv_start[j] > start ||
        (bi.inv_start[j] == start && static_cast<int>(j) > inv)) {
      budget = std::min(budget, alap[j] - start);
    }
  }
  return budget;
}

}  // namespace hsyn
