// Constraint derivation (paper Fig. 5, middle box).
//
// Given a scheduled design and a target module instance, derive the most
// relaxed timing constraint the instance could satisfy while keeping the
// overall implementation schedulable: the earliest its inputs are
// available and the latest its outputs may be produced. These relaxed
// constraints are what resynthesis (moves A and B) optimizes against --
// e.g. Example 2 relaxes RTL2's profile from {0,0,0,0,6,3} to
// {0,0,0,0,9,9}, enabling the mult1 -> mult2 swap inside it.
//
// The derivation is a guide: every move is ultimately validated by
// rescheduling (paper Section 4: "its validity is checked by
// scheduling").
#pragma once

#include <optional>

#include "rtl/datapath.h"

namespace hsyn {

/// Relaxed local-frame timing constraint for a module instance:
/// inputs arrive at `in_arrival` (cycles, relative to instance start),
/// output j may be produced as late as `out_deadline[j]`, and the
/// instance may stay busy for at most `max_busy` cycles per invocation.
struct ModuleConstraint {
  std::vector<int> in_arrival;
  std::vector<int> out_deadline;
  int max_busy = 0;
};

/// Constraint for child unit `child_idx` serving behavior `b` of `dp`,
/// intersected over all its invocations. Requires `b` scheduled.
/// nullopt when the instance is unused in `b` or ALAP derivation fails.
std::optional<ModuleConstraint> derive_child_constraint(const Datapath& dp, int b,
                                                        int child_idx,
                                                        const Library& lib,
                                                        const OpPoint& pt,
                                                        int deadline);

/// Latency budget in cycles for invocation `inv` of behavior `b` on a
/// simple unit: the largest latency the invocation could take with the
/// rest of the design fixed to its ALAP freedoms. nullopt on failure.
std::optional<int> derive_fu_latency_budget(const Datapath& dp, int b, int inv,
                                            const Library& lib, const OpPoint& pt,
                                            int deadline);

}  // namespace hsyn
