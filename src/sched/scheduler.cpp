#include "sched/scheduler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

/// Per-invocation timing metadata extracted once per scheduling run.
struct InvInfo {
  int busy = 1;               ///< occupancy of the unit per run
  std::map<int, int> in_off;  ///< input edge id -> earliest-need offset
  std::map<int, int> in_last; ///< input edge id -> latest read offset
  std::map<int, int> out_off; ///< output edge id -> production offset
};

struct Graph {
  // Constraint edges: start[to] >= start[from] + w.
  struct CEdge {
    int from, to, w;
  };
  std::vector<CEdge> edges;
  std::vector<int> base;  ///< per-invocation lower bound from primary inputs
};

struct BuiltGraphs {
  bool ok = false;
  std::string reason;
  Graph full;
  std::vector<InvInfo> info;
};

/// Collect timing info for every invocation of behavior b.
std::vector<InvInfo> collect_info(const Datapath& dp, int b, const Library& lib,
                                  const OpPoint& pt) {
  const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
  std::vector<InvInfo> info(bi.invs.size());
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    const Invocation& inv = bi.invs[i];
    InvInfo& fi = info[i];
    if (inv.unit.kind == UnitRef::Kind::Fu) {
      const int lat =
          lib.cycles(dp.fus[static_cast<std::size_t>(inv.unit.idx)].type, pt);
      fi.busy = lat;
      for (const int e : dp.inv_input_edges(b, static_cast<int>(i))) {
        // All operands of a simple/chained unit are read at start.
        fi.in_off.emplace(e, 0);
        fi.in_last.emplace(e, 0);
      }
      for (const int e : dp.inv_output_edges(b, static_cast<int>(i))) {
        fi.out_off.emplace(e, lat);
      }
    } else {
      const Datapath& child =
          *dp.children[static_cast<std::size_t>(inv.unit.idx)].impl;
      const Node& n = bi.dfg->node(inv.nodes.front());
      const int cb = child.find_behavior(n.behavior);
      check(cb >= 0, "scheduler: child lacks behavior " + n.behavior);
      const Profile p = child.profile(cb, lib, pt);
      fi.busy = std::max(1, p.makespan());
      for (int port = 0; port < n.num_inputs; ++port) {
        const int e = bi.dfg->input_edge(inv.nodes.front(), port);
        const int off = p.in[static_cast<std::size_t>(port)];
        auto it = fi.in_off.find(e);
        if (it == fi.in_off.end() || off < it->second) fi.in_off[e] = off;
        auto it2 = fi.in_last.find(e);
        if (it2 == fi.in_last.end() || off > it2->second) fi.in_last[e] = off;
      }
      for (int port = 0; port < n.num_outputs; ++port) {
        const int e = bi.dfg->output_edge(inv.nodes.front(), port);
        if (e >= 0) fi.out_off.emplace(e, p.out[static_cast<std::size_t>(port)]);
      }
    }
  }
  return info;
}

/// Longest path from sources over the constraint graph. Returns false on
/// a cycle (the derived ordering is inconsistent with the dataflow).
bool longest_path(const Graph& g, std::vector<int>& start,
                  std::vector<int>* topo_out = nullptr) {
  const std::size_t n = g.base.size();
  std::vector<std::vector<std::pair<int, int>>> adj(n);  // (to, w)
  std::vector<int> indeg(n, 0);
  for (const auto& e : g.edges) {
    adj[static_cast<std::size_t>(e.from)].push_back({e.to, e.w});
    indeg[static_cast<std::size_t>(e.to)]++;
  }
  std::queue<int> q;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) q.push(static_cast<int>(i));
  }
  start = g.base;
  std::vector<int> order;
  order.reserve(n);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    order.push_back(u);
    for (const auto& [v, w] : adj[static_cast<std::size_t>(u)]) {
      (void)w;
      if (--indeg[static_cast<std::size_t>(v)] == 0) q.push(v);
    }
  }
  if (order.size() != n) return false;  // cycle
  for (const int u : order) {
    for (const auto& [v, w] : adj[static_cast<std::size_t>(u)]) {
      start[static_cast<std::size_t>(v)] =
          std::max(start[static_cast<std::size_t>(v)],
                   start[static_cast<std::size_t>(u)] + w);
    }
  }
  if (topo_out) *topo_out = std::move(order);
  return true;
}

/// Build the full constraint graph for behavior b: data edges, then
/// resource-serialization and register write-after-read orderings derived
/// from the resource-free ASAP priorities.
BuiltGraphs build_graphs(const Datapath& dp, int b, const Library& lib,
                         const OpPoint& pt) {
  BuiltGraphs out;
  const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
  const Dfg& dfg = *bi.dfg;
  const std::size_t ninv = bi.invs.size();
  out.info = collect_info(dp, b, lib, pt);
  const std::vector<InvInfo>& info = out.info;

  // ---- Data-only graph and resource-free ASAP. --------------------------
  Graph data;
  data.base.assign(ninv, 0);
  for (std::size_t c = 0; c < ninv; ++c) {
    for (const auto& [e, off] : info[c].in_off) {
      const Edge& edge = dfg.edge(e);
      if (edge.src.node == kPrimaryIn) {
        data.base[c] = std::max(
            data.base[c],
            bi.input_arrival[static_cast<std::size_t>(edge.src.port)] - off);
      } else {
        const int p = bi.inv_of(edge.src.node);
        if (p == static_cast<int>(c)) continue;  // chain-internal
        data.edges.push_back({p, static_cast<int>(c),
                              info[static_cast<std::size_t>(p)].out_off.at(e) - off});
      }
    }
  }
  std::vector<int> asap;
  if (!longest_path(data, asap)) {
    out.reason = "data dependencies cyclic";
    return out;
  }

  Graph full = data;

  // ---- Same-unit invocation ordering. -----------------------------------
  std::map<std::pair<int, int>, std::vector<int>> by_unit;
  for (std::size_t i = 0; i < ninv; ++i) {
    const UnitRef& u = bi.invs[i].unit;
    by_unit[{static_cast<int>(u.kind), u.idx}].push_back(static_cast<int>(i));
  }
  for (auto& [key, list] : by_unit) {
    (void)key;
    std::sort(list.begin(), list.end(), [&](int a, int c) {
      if (asap[static_cast<std::size_t>(a)] != asap[static_cast<std::size_t>(c)]) {
        return asap[static_cast<std::size_t>(a)] < asap[static_cast<std::size_t>(c)];
      }
      return a < c;
    });
    for (std::size_t k = 0; k + 1 < list.size(); ++k) {
      const int a = list[k];
      const Invocation& ia = bi.invs[static_cast<std::size_t>(a)];
      const bool pipelined =
          ia.unit.kind == UnitRef::Kind::Fu &&
          lib.fu(dp.fus[static_cast<std::size_t>(ia.unit.idx)].type).pipelined;
      full.edges.push_back(
          {a, list[k + 1], pipelined ? 1 : info[static_cast<std::size_t>(a)].busy});
    }
  }

  // ---- Same-register variable ordering (WAR / WAW). ---------------------
  std::map<int, std::vector<int>> by_reg;  // reg -> edge ids
  for (const Edge& e : dfg.edges()) {
    const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
    if (r >= 0) by_reg[r].push_back(e.id);
  }
  auto ready_time = [&](int e) {
    const Edge& edge = dfg.edge(e);
    if (edge.src.node == kPrimaryIn) {
      return bi.input_arrival[static_cast<std::size_t>(edge.src.port)];
    }
    const int p = bi.inv_of(edge.src.node);
    return asap[static_cast<std::size_t>(p)] +
           info[static_cast<std::size_t>(p)].out_off.at(e);
  };
  auto feeds_primary_output = [&](int e) {
    for (const PortRef& d : dfg.edge(e).dsts) {
      if (d.node == kPrimaryOut) return true;
    }
    return false;
  };
  for (auto& [r, vars] : by_reg) {
    if (vars.size() < 2) continue;
    int n_po = 0;
    for (const int v : vars) n_po += feeds_primary_output(v) ? 1 : 0;
    if (n_po > 1) {
      out.reason = strf("register %d holds %d primary outputs", r, n_po);
      return out;
    }
    std::sort(vars.begin(), vars.end(), [&](int a, int c) {
      const bool pa = feeds_primary_output(a);
      const bool pc = feeds_primary_output(c);
      if (pa != pc) return pc;  // primary-output variable last
      if (ready_time(a) != ready_time(c)) return ready_time(a) < ready_time(c);
      return a < c;
    });
    for (std::size_t k = 0; k + 1 < vars.size(); ++k) {
      const int v1 = vars[k];
      const int v2 = vars[k + 1];
      const Edge& e2 = dfg.edge(v2);
      if (e2.src.node == kPrimaryIn) {
        // Primary inputs are written at sample start by the environment;
        // they cannot overwrite an internally produced variable.
        out.reason = "primary input variable cannot overwrite register";
        return out;
      }
      const int p2 = bi.inv_of(e2.src.node);
      const int w_off = info[static_cast<std::size_t>(p2)].out_off.at(v2);
      // Every read of v1 -- at its *latest* port offset -- must precede
      // the write of v2.
      const Edge& e1 = dfg.edge(v1);
      for (const PortRef& d : e1.dsts) {
        if (d.node < 0) continue;
        const int c = bi.inv_of(d.node);
        const int r_off = info[static_cast<std::size_t>(c)].in_last.count(v1)
                              ? info[static_cast<std::size_t>(c)].in_last.at(v1)
                              : 0;
        if (c == p2) {
          // The writer itself reads v1: safe only when its write happens
          // strictly after its own latest read of v1 (e.g. accumulators;
          // a complex module producing v2 before consuming a late v1
          // cannot share this register).
          if (w_off > r_off) continue;
          out.reason = strf("register %d: invocation would overwrite its own "
                            "pending operand",
                            r);
          return out;
        }
        full.edges.push_back({c, p2, r_off + 1 - w_off});
      }
      // Write-after-write.
      if (e1.src.node >= 0) {
        const int p1 = bi.inv_of(e1.src.node);
        if (p1 != p2) {
          const int w1 = info[static_cast<std::size_t>(p1)].out_off.at(v1);
          full.edges.push_back({p1, p2, w1 + 1 - w_off});
        }
      }
    }
  }

  out.full = std::move(full);
  out.ok = true;
  return out;
}

}  // namespace

SchedResult schedule_behavior(Datapath& dp, int b, const Library& lib,
                              const OpPoint& pt, int deadline) {
  BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
  const Dfg& dfg = *bi.dfg;
  BuiltGraphs g = build_graphs(dp, b, lib, pt);
  if (!g.ok) return {false, 0, g.reason};

  std::vector<int> start;
  if (!longest_path(g.full, start)) {
    return {false, 0, "resource/register ordering conflicts with dataflow"};
  }

  bi.inv_start = std::move(start);
  bi.scheduled = true;
  dp.invalidate_fingerprint();

  int makespan = 0;
  for (int o = 0; o < dfg.num_outputs(); ++o) {
    makespan = std::max(
        makespan, dp.edge_ready_time(b, dfg.primary_output_edge(o), lib, pt));
  }
  bi.makespan = makespan;
  if (makespan > deadline) {
    return {false, makespan,
            strf("makespan %d exceeds deadline %d", makespan, deadline)};
  }
  return {true, makespan, {}};
}

namespace {

bool fully_scheduled(const Datapath& dp) {
  for (const BehaviorImpl& bi : dp.behaviors) {
    if (!bi.scheduled) return false;
  }
  for (const ChildUnit& c : dp.children) {
    if (!fully_scheduled(*c.impl)) return false;
  }
  return true;
}

}  // namespace

SchedResult schedule_datapath(Datapath& dp, const Library& lib, const OpPoint& pt,
                              int deadline) {
  obs::Span span("schedule");
  for (ChildUnit& c : dp.children) {
    if (fully_scheduled(*c.impl)) continue;
    const SchedResult r = schedule_datapath(*c.impl, lib, pt, kNoDeadline);
    if (!r.ok) return r;
  }
  SchedResult worst{true, 0, {}};
  for (std::size_t b = 0; b < dp.behaviors.size(); ++b) {
    const SchedResult r =
        schedule_behavior(dp, static_cast<int>(b), lib, pt, deadline);
    if (!r.ok) return r;
    worst.makespan = std::max(worst.makespan, r.makespan);
  }
  // Schedule-length distribution; observations never feed back into any
  // decision (metrics are observational only).
  static obs::Histogram& makespan_hist =
      obs::Registry::instance().histogram("sched.makespan");
  makespan_hist.observe(static_cast<std::uint64_t>(worst.makespan));
  return worst;
}

void invalidate_schedules(Datapath& dp) {
  for (BehaviorImpl& bi : dp.behaviors) {
    bi.scheduled = false;
    bi.inv_start.clear();
    bi.makespan = 0;
  }
  dp.invalidate_fingerprint();
  for (ChildUnit& c : dp.children) invalidate_schedules(*c.impl);
}

std::vector<int> alap_starts(const Datapath& dp, int b, const Library& lib,
                             const OpPoint& pt, int deadline) {
  const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
  const Dfg& dfg = *bi.dfg;
  BuiltGraphs g = build_graphs(dp, b, lib, pt);
  if (!g.ok) return {};
  std::vector<int> topo;
  std::vector<int> asap;
  if (!longest_path(g.full, asap, &topo)) return {};

  const std::size_t ninv = bi.invs.size();
  std::vector<int> ub(ninv, deadline);
  // Producers of primary outputs must deliver them by the deadline; every
  // invocation must at least finish its busy window within the deadline.
  for (std::size_t i = 0; i < ninv; ++i) {
    ub[i] = deadline - g.info[i].busy;
  }
  for (int o = 0; o < dfg.num_outputs(); ++o) {
    const Edge& e = dfg.edge(dfg.primary_output_edge(o));
    if (e.src.node < 0) continue;
    const std::size_t p = static_cast<std::size_t>(bi.inv_of(e.src.node));
    ub[p] = std::min(ub[p], deadline - g.info[p].out_off.at(e.id));
  }
  // Backward propagation in reverse topological order.
  std::vector<std::vector<std::pair<int, int>>> radj(ninv);  // from <- (to, w)
  for (const auto& e : g.full.edges) {
    radj[static_cast<std::size_t>(e.from)].push_back({e.to, e.w});
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t u = static_cast<std::size_t>(*it);
    for (const auto& [v, w] : radj[u]) {
      ub[u] = std::min(ub[u], ub[static_cast<std::size_t>(v)] - w);
    }
  }
  return ub;
}

}  // namespace hsyn
