#include "serve/jobs.h"

#include <utility>

#include "dfg/textio.h"
#include "dfg/transform.h"
#include "eval/engine.h"
#include "library/textio.h"
#include "obs/job.h"
#include "obs/ledger.h"
#include "power/rtlsim.h"
#include "power/trace.h"
#include "power/trace_io.h"
#include "runtime/cancel.h"
#include "synth/portfolio.h"
#include "synth/report.h"
#include "util/fmt.h"

namespace hsyn::serve {
namespace {

/// The pipeline body; separated so run_job can settle the cache-budget
/// account on every exit path.
JobOutcome run_job_body(const JobSpec& spec, const JobHooks& hooks) {
  JobOutcome out;
  std::string report;
  try {
    if (spec.benchmark.empty() == spec.design_text.empty()) {
      out.error = "exactly one of 'benchmark' and 'design' must be given";
      return out;
    }

    // One shared immutable default library for every job in the
    // process: its uid keys the shared evaluation caches, so a per-job
    // copy (fresh uid each time) would silently disable all cross-job
    // cache reuse -- the daemon's main payoff.
    static const std::shared_ptr<const Library> default_lib =
        std::make_shared<const Library>(default_library());
    std::shared_ptr<const Library> lib = default_lib;
    std::shared_ptr<Benchmark> bench;
    std::shared_ptr<Design> file_design;
    Design* dsn = nullptr;
    std::string label;
    if (!spec.benchmark.empty()) {
      bench = std::make_shared<Benchmark>(make_benchmark(spec.benchmark, *lib));
      dsn = &bench->design;
      label = bench->name;
    } else {
      file_design = std::make_shared<Design>(design_from_text(spec.design_text));
      dsn = file_design.get();
      label = spec.design_name.empty() ? "<design>" : spec.design_name;
    }

    if (spec.auto_variants) {
      int added = 0;
      const std::vector<std::string> names = dsn->behavior_names();
      for (const std::string& b : names) {
        if (b == dsn->top_name()) continue;
        added += register_variants(*dsn, b);
      }
      report +=
          strf("auto-variants: %d equivalent DFG variant(s) registered\n",
               added);
    }
    if (!spec.library_text.empty()) {
      if (bench) {
        out.error =
            "a library cannot be combined with a built-in benchmark "
            "(benchmarks fix their library)";
        out.report = report;
        return out;
      }
      lib = std::make_shared<const Library>(
          library_from_text(spec.library_text));
      report += strf("library: %d functional-unit types loaded\n",
                     lib->num_fu_types());
    }
    std::shared_ptr<ComplexLibrary> local_clib;
    const ComplexLibrary* clib = nullptr;
    if (spec.templates) {
      if (bench) {
        clib = &bench->clib;
      } else {
        local_clib = std::make_shared<ComplexLibrary>(
            default_complex_library(*dsn, *lib));
        clib = local_clib.get();
      }
    }

    const double min_ts = min_sample_period_ns(*dsn, *lib);
    const double ts = spec.period_ns > 0 ? spec.period_ns
                                         : spec.laxity * min_ts;
    report += strf("design %s: top '%s', %d behaviors, %d flattened ops\n",
                   label.c_str(), dsn->top_name().c_str(),
                   static_cast<int>(dsn->behavior_names().size()),
                   dsn->flattened_size(dsn->top_name()));
    report += strf("minimum sampling period %.1f ns, constraint %.1f ns "
                   "(L.F. %.2f)\n\n",
                   min_ts, ts, ts / min_ts);

    SynthOptions opts;
    opts.seed = spec.seed;
    opts.check_moves = spec.check_moves;
    opts.verify_rewrites = spec.verify_rewrites;
    opts.cancel = hooks.cancel;
    opts.progress = hooks.progress;
    if (!spec.trace_text.empty()) {
      opts.user_trace = trace_from_text(spec.trace_text);
      report += strf("trace: %d samples loaded\n",
                     static_cast<int>(opts.user_trace.size()));
    }

    std::shared_ptr<SynthResult> result;
    if (spec.portfolio > 0 || !spec.strategies.empty()) {
      PortfolioOptions popts;
      popts.num_strategies = spec.portfolio > 0 ? spec.portfolio : 4;
      popts.rounds = spec.portfolio_rounds;
      if (!spec.strategies.empty()) {
        std::string perr;
        int rounds = popts.rounds;
        if (!parse_strategies(spec.strategies, spec.objective,
                              &popts.strategies, &rounds, &perr)) {
          out.error = "bad strategies spec: " + perr;
          out.report = std::move(report);
          return out;
        }
        popts.rounds = rounds;
      }
      PortfolioResult pr = portfolio_synthesize(*dsn, *lib, clib, ts,
                                                spec.objective, spec.mode,
                                                opts, popts);
      if (pr.cancelled) {
        // Best-so-far semantics: the portfolio returns whatever its
        // explorers finished before the trip, exactly once, with the
        // cancellation surfaced alongside.
        out.cancelled = true;
        out.error = pr.cancel_reason.empty() ? "cancelled" : pr.cancel_reason;
      }
      const int n_strats = popts.strategies.empty()
                               ? popts.num_strategies
                               : static_cast<int>(popts.strategies.size());
      report += strf("portfolio: %d strategies, %d round(s)\n", n_strats,
                     popts.rounds) +
                pr.summary_table() + "\n";
      result = std::make_shared<SynthResult>(std::move(pr.best));
    } else {
      result = std::make_shared<SynthResult>(synthesize(
          *dsn, *lib, clib, ts, spec.objective, spec.mode, opts));
    }
    if (!result->ok) {
      out.error = out.cancelled ? out.error
                                : "synthesis failed: " + result->fail_reason;
      out.report = std::move(report);
      return out;
    }
    report += result_summary(*result, *lib) + "\n" +
              architecture_summary(result->dp, *lib);

    if (spec.verify && !out.cancelled) {
      const Trace vt = make_trace(result->dp.behaviors[0].dfg->num_inputs(),
                                  32, spec.seed + 1);
      const RtlSimResult sim = simulate_rtl(result->dp, 0, vt, *lib,
                                            result->pt);
      out.verify_ok = sim.ok;
      report += strf("\nRTL verification: %s\n",
                     sim.ok ? "PASS (outputs match the behavioral model)"
                            : sim.violations.front().c_str());
    }

    out.ok = true;
    out.area = result->area;
    out.power = result->power;
    out.energy = result->energy;
    out.synth_seconds = result->synth_seconds;
    out.report = std::move(report);
    out.result = std::move(result);
    out.bench = std::move(bench);
    out.design = std::move(file_design);
    out.lib = std::move(lib);
    out.clib = std::move(local_clib);
  } catch (const runtime::Cancelled& e) {
    out.cancelled = true;
    out.error = e.what();
    out.report = std::move(report);
  } catch (const std::exception& e) {
    out.error = e.what();
    out.report = std::move(report);
  }
  return out;
}

}  // namespace

JobOutcome run_job(const JobSpec& spec, const JobHooks& hooks) {
  // Every lane the pool lends this job re-applies the tag (see
  // runtime/thread_pool.cpp), so ledger records and cache charges land
  // on this job no matter which thread does the work.
  obs::JobScope job_scope(hooks.job_id);
  eval::EvalEngine& eng = eval::EvalEngine::instance();
  const bool budgeted = hooks.job_id != 0 && spec.cache_budget_mb > 0;
  if (budgeted) {
    eng.set_job_cache_budget(
        hooks.job_id, static_cast<std::size_t>(spec.cache_budget_mb) << 20);
  }
  if (hooks.cancel && spec.time_budget_ms > 0) {
    hooks.cancel->set_deadline_after_ms(spec.time_budget_ms);
  }
  if (spec.want_ledger) obs::MoveLedger::instance().set_enabled(true);

  JobOutcome out = run_job_body(spec, hooks);

  if (spec.want_ledger) {
    obs::MoveLedger& led = obs::MoveLedger::instance();
    out.ledger_attempts = led.merged(hooks.job_id).size();
    out.ledger_table = led.summary_table(hooks.job_id);
    out.ledger_jsonl = led.to_jsonl(/*include_timing=*/true, hooks.job_id);
  }
  if (budgeted) {
    const eval::JobCacheUsage usage = eng.job_cache_usage(hooks.job_id);
    out.cache_budget_charged = usage.charged_bytes;
    out.cache_budget_rejects = usage.rejected;
    eng.clear_job_cache_budget(hooks.job_id);
  }
  return out;
}

bool JobQueue::push(QueuedJob job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    q_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

bool JobQueue::pop(QueuedJob* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;
  *out = std::move(q_.front());
  q_.pop_front();
  return true;
}

bool JobQueue::remove(std::uint64_t id, QueuedJob* out) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (it->id == id) {
      if (out) *out = std::move(*it);
      q_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<QueuedJob> JobQueue::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueuedJob> out(std::make_move_iterator(q_.begin()),
                             std::make_move_iterator(q_.end()));
  q_.clear();
  return out;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

}  // namespace hsyn::serve
