#include "serve/client.h"

#include <unistd.h>

#include "serve/listener.h"

namespace hsyn::serve {

bool Client::connect(const std::string& addr, std::string* err) {
  close();
  fd_ = connect_addr(addr, err);
  if (fd_ < 0) return false;
  reader_ = std::make_unique<FrameReader>(fd_);
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

bool Client::send(const std::string& frame, std::string* err) {
  if (fd_ < 0) {
    if (err) *err = "not connected";
    return false;
  }
  if (!write_frame(fd_, frame)) {
    if (err) *err = "connection lost while sending";
    return false;
  }
  return true;
}

bool Client::recv(Response* out, std::string* err) {
  std::string frame;
  if (!reader_ || !reader_->next(&frame)) {
    if (err) *err = "connection closed by daemon";
    return false;
  }
  return parse_response(frame, out, err);
}

bool Client::run_job(
    const JobSpec& spec,
    const std::function<void(const SynthProgress&)>& on_progress,
    JobOutcome* outcome, std::string* err) {
  if (!send(encode_submit(spec, "job"), err)) return false;
  Response r;
  if (!recv(&r, err)) return false;
  if (r.type == Response::Type::Error) {
    if (err) *err = r.message;
    return false;
  }
  if (r.type != Response::Type::Ack) {
    if (err) *err = "expected an ack from the daemon";
    return false;
  }
  const std::uint64_t job = r.job;
  for (;;) {
    if (!recv(&r, err)) return false;
    switch (r.type) {
      case Response::Type::Progress:
        if (r.job == job && on_progress) on_progress(r.progress);
        break;
      case Response::Type::Result:
        if (r.job != job) break;  // a stale frame from a prior job
        if (outcome) *outcome = std::move(r.outcome);
        return true;
      case Response::Type::Error:
        if (err) *err = r.message;
        return false;
      default:
        break;  // tolerate pongs etc. on a shared connection
    }
  }
}

bool Client::ping(std::string* err) {
  if (!send(encode_ping(), err)) return false;
  Response r;
  if (!recv(&r, err)) return false;
  if (r.type != Response::Type::Pong) {
    if (err) *err = "expected a pong";
    return false;
  }
  return true;
}

bool Client::status(std::vector<JobStatus>* jobs, int* sessions,
                    std::uint64_t* queued, std::string* err) {
  if (!send(encode_status_request(), err)) return false;
  Response r;
  if (!recv(&r, err)) return false;
  if (r.type != Response::Type::Status) {
    if (err) *err = "expected a status response";
    return false;
  }
  if (jobs) *jobs = std::move(r.jobs);
  if (sessions) *sessions = r.sessions;
  if (queued) *queued = r.queued;
  return true;
}

bool Client::stats(ServerStats* st, TelemetryFrame* frame, std::string* raw,
                   std::string* err) {
  if (!send(encode_stats_request(), err)) return false;
  std::string line;
  if (!reader_ || !reader_->next(&line)) {
    if (err) *err = "connection closed by daemon";
    return false;
  }
  Response r;
  if (!parse_response(line, &r, err)) return false;
  if (r.type == Response::Type::Error) {
    if (err) *err = r.message;
    return false;
  }
  if (r.type != Response::Type::Stats) {
    if (err) *err = "expected a stats response";
    return false;
  }
  if (st) *st = r.stats;
  if (frame) *frame = std::move(r.telemetry);
  if (raw) *raw = std::move(line);
  return true;
}

bool Client::watch(std::uint64_t job,
                   const std::function<bool(const TelemetryFrame&)>& on_frame,
                   std::string* err) {
  if (!send(encode_watch(job), err)) return false;
  Response r;
  if (!recv(&r, err)) return false;
  if (r.type == Response::Type::Error) {
    if (err) *err = r.message;
    return false;
  }
  if (r.type != Response::Type::Ack) {
    if (err) *err = "expected an ack from the daemon";
    return false;
  }
  for (;;) {
    if (!recv(&r, err)) return false;
    if (r.type != Response::Type::Telemetry) continue;  // tolerate strays
    if (on_frame && !on_frame(r.telemetry)) break;
  }
  // Unsubscribe; frames already in flight may precede the ack.
  if (!send(encode_unwatch(), err)) return false;
  for (;;) {
    if (!recv(&r, err)) return false;
    if (r.type == Response::Type::Ack) return true;
  }
}

bool Client::shutdown_server(std::string* err) {
  if (!send(encode_shutdown(), err)) return false;
  Response r;
  if (!recv(&r, err)) return false;
  if (r.type == Response::Type::Error) {
    if (err) *err = r.message;
    return false;
  }
  return true;
}

}  // namespace hsyn::serve
