// Thin synchronous client of the hsyn daemon: one connection, one
// outstanding request at a time (the CLI's usage pattern). bench_serve
// opens several Clients to exercise the daemon concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/framing.h"
#include "serve/jobs.h"
#include "serve/proto.h"

namespace hsyn::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a unix socket path (contains '/') or a loopback TCP
  /// port. False (and `err`) when the daemon is not there.
  bool connect(const std::string& addr, std::string* err);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Submit a job and block until its result. Progress frames (when the
  /// spec asked for them) invoke `on_progress` as they arrive. False
  /// (and `err`) on transport failure or a daemon-side error; a job
  /// that *ran* and failed comes back true with outcome.ok == false.
  bool run_job(const JobSpec& spec,
               const std::function<void(const SynthProgress&)>& on_progress,
               JobOutcome* outcome, std::string* err);

  /// Round-trip a ping.
  bool ping(std::string* err);

  /// Fetch the daemon's job table.
  bool status(std::vector<JobStatus>* jobs, int* sessions,
              std::uint64_t* queued, std::string* err);

  /// One-shot server + per-job telemetry snapshot. `raw` (optional)
  /// receives the undecoded frame for jq-style consumers.
  bool stats(ServerStats* st, TelemetryFrame* frame, std::string* raw,
             std::string* err);

  /// Subscribe to periodic telemetry frames for one job (0 = whole
  /// server) and invoke `on_frame` per frame until it returns false;
  /// then unsubscribe and return true. False on transport/daemon error.
  bool watch(std::uint64_t job,
             const std::function<bool(const TelemetryFrame&)>& on_frame,
             std::string* err);

  /// Ask the daemon to shut down gracefully (acked before it stops).
  bool shutdown_server(std::string* err);

 private:
  bool send(const std::string& frame, std::string* err);
  bool recv(Response* out, std::string* err);

  int fd_ = -1;
  std::unique_ptr<FrameReader> reader_;
};

}  // namespace hsyn::serve
