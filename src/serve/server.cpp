#include "serve/server.h"

#include <chrono>
#include <string>

#include <unistd.h>

#include "obs/telemetry.h"
#include "runtime/cancel.h"

namespace hsyn::serve {
namespace {

/// Minimal one-request HTTP exchange for the Prometheus endpoint: read
/// whatever arrived, answer GET /metrics with the exposition text, and
/// close. Scrapers speak HTTP/1.0-with-close just fine.
void serve_metrics_request(int fd) {
  char buf[4096];
  const ssize_t n = ::read(fd, buf, sizeof buf - 1);
  const std::string req =
      n > 0 ? std::string(buf, static_cast<std::size_t>(n)) : std::string();
  std::string body;
  std::string head;
  if (req.rfind("GET /metrics", 0) == 0) {
    body = obs::prometheus_text();
    head = "HTTP/1.0 200 OK\r\n"
           "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
           "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  } else {
    body = "not found\n";
    head = "HTTP/1.0 404 Not Found\r\n"
           "Content-Type: text/plain\r\n"
           "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  }
  const std::string resp = head + body;
  std::size_t off = 0;
  while (off < resp.size()) {
    const ssize_t w = ::write(fd, resp.data() + off, resp.size() - off);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
  ::close(fd);
}

}  // namespace

Server::~Server() {
  request_shutdown();
  if (engine_) engine_->shutdown();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  listener_.close();
  metrics_listener_.close();
}

bool Server::start(std::string* err) {
  if (opts_.unix_path.empty() == (opts_.tcp_port == 0)) {
    if (err) *err = "exactly one of a unix path and a TCP port must be given";
    return false;
  }
  if (opts_.metrics_port > 0 &&
      !metrics_listener_.listen_tcp(opts_.metrics_port, err)) {
    return false;
  }
  if (!opts_.unix_path.empty()) {
    return listener_.listen_unix(opts_.unix_path, err);
  }
  return listener_.listen_tcp(opts_.tcp_port, err);
}

int Server::run() {
  engine_ = std::make_unique<JobEngine>(opts_.sessions);

  // Anchor uptime and start the sampler: the stats/watch verbs and the
  // metrics endpoint all read live samples.
  obs::process_uptime_ms();
  obs::Telemetry::instance().start();
  if (opts_.metrics_port > 0) {
    metrics_thread_ = std::thread([this] {
      while (true) {
        const int fd = metrics_listener_.accept_next();
        if (fd < 0) break;  // shutdown
        serve_metrics_request(fd);
      }
    });
  }

  // SIGINT/SIGTERM land in an atomic (runtime::note_signal); poll it so
  // a ^C turns into the same graceful teardown a `shutdown` request
  // does.
  std::thread watcher([this] {
    while (!stopping_.load(std::memory_order_relaxed)) {
      if (runtime::signal_received() != 0) {
        request_shutdown();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  while (true) {
    const int fd = listener_.accept_next();
    if (fd < 0) break;  // shutdown requested or listener error
    auto conn = std::make_shared<ClientConn>(fd);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] {
      serve_connection(conn, *engine_,
                       [this] { request_shutdown(); });
      conn->close();
    });
  }

  // Graceful teardown. Engine first: in-flight jobs unwind and their
  // cancelled result frames still reach clients whose connections are
  // open. Then drop the connections so their request threads see EOF.
  engine_->shutdown();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : conns_) conn->close();
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  // Every connection thread has removed its watch listener by now; stop
  // the sampler so nothing fires after the engine goes away (the ring
  // stays readable for a --telemetry-out flush).
  obs::Telemetry::instance().stop();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  listener_.close();
  metrics_listener_.close();
  stopping_.store(true, std::memory_order_relaxed);
  if (watcher.joinable()) watcher.join();
  return 0;
}

void Server::request_shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  listener_.shutdown();
  metrics_listener_.shutdown();
}

}  // namespace hsyn::serve
