#include "serve/server.h"

#include <chrono>

#include "runtime/cancel.h"

namespace hsyn::serve {

Server::~Server() {
  request_shutdown();
  if (engine_) engine_->shutdown();
  listener_.close();
}

bool Server::start(std::string* err) {
  if (opts_.unix_path.empty() == (opts_.tcp_port == 0)) {
    if (err) *err = "exactly one of a unix path and a TCP port must be given";
    return false;
  }
  if (!opts_.unix_path.empty()) {
    return listener_.listen_unix(opts_.unix_path, err);
  }
  return listener_.listen_tcp(opts_.tcp_port, err);
}

int Server::run() {
  engine_ = std::make_unique<JobEngine>(opts_.sessions);

  // SIGINT/SIGTERM land in an atomic (runtime::note_signal); poll it so
  // a ^C turns into the same graceful teardown a `shutdown` request
  // does.
  std::thread watcher([this] {
    while (!stopping_.load(std::memory_order_relaxed)) {
      if (runtime::signal_received() != 0) {
        request_shutdown();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  while (true) {
    const int fd = listener_.accept_next();
    if (fd < 0) break;  // shutdown requested or listener error
    auto conn = std::make_shared<ClientConn>(fd);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] {
      serve_connection(conn, *engine_,
                       [this] { request_shutdown(); });
      conn->close();
    });
  }

  // Graceful teardown. Engine first: in-flight jobs unwind and their
  // cancelled result frames still reach clients whose connections are
  // open. Then drop the connections so their request threads see EOF.
  engine_->shutdown();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : conns_) conn->close();
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  listener_.close();
  stopping_.store(true, std::memory_order_relaxed);
  if (watcher.joinable()) watcher.join();
  return 0;
}

void Server::request_shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  listener_.shutdown();
}

}  // namespace hsyn::serve
