// Job model of the hsyn synthesis service: what a client may ask for
// (JobSpec), what it gets back (JobOutcome), the shared run_job()
// pipeline both the daemon and the direct CLI execute, and the FIFO
// queue the scheduler drains.
//
// Bit-identity contract. run_job() is THE synthesis pipeline: the CLI's
// direct mode calls it in-process and prints `outcome.report` verbatim;
// a daemon session calls it on a scheduler thread and ships the same
// string over the wire. The report is a pure function of the spec (all
// randomness derives from spec.seed, the runtime is thread-count
// invariant, and the shared eval caches only ever change speed), so a
// client-rendered result is bit-identical to a solo in-process run at
// any thread count and regardless of what other jobs the daemon served
// first. The move-ledger exports are the one exception: group ids come
// from a process-global counter, so they are stable for a solo process
// but shift when a daemon interleaves jobs (the per-class summary table
// is count-based and stays comparable).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "synth/synthesizer.h"

namespace hsyn::runtime {
class CancelToken;
}

namespace hsyn::serve {

/// Everything a synthesis job needs, self-contained (file contents are
/// shipped as text -- the daemon never touches the client filesystem).
struct JobSpec {
  std::string benchmark;     ///< built-in benchmark name...
  std::string design_text;   ///< ...or a textual design (exactly one)
  std::string design_name;   ///< report label for design_text jobs
  std::string library_text;  ///< optional textual library (design_text only)
  std::string trace_text;    ///< optional user input trace (textual)
  Objective objective = Objective::Power;
  Mode mode = Mode::Hierarchical;
  double laxity = 2.2;
  double period_ns = 0;  ///< >0 overrides laxity
  std::uint64_t seed = 42;
  bool templates = false;
  bool auto_variants = false;
  bool verify = true;
  bool check_moves = false;
  bool verify_rewrites = false;
  /// Budgets (0 = unlimited). Time cancels the job cooperatively via
  /// its CancelToken deadline; cache caps the bytes the job may insert
  /// into the shared eval caches (a pure slowdown, never a result
  /// change).
  std::int64_t time_budget_ms = 0;
  std::int64_t cache_budget_mb = 0;
  bool want_progress = false;  ///< stream SynthProgress events
  bool want_ledger = false;    ///< record + return the move ledger
  /// Portfolio search (synth/portfolio.h): > 0 runs that many
  /// concurrent strategies under the same cache/time budgets and keeps
  /// the deterministic best-of; 0 = the single-seed engine. A cancelled
  /// portfolio job returns its best-so-far solution (ok stays true)
  /// with cancelled set.
  int portfolio = 0;
  int portfolio_rounds = 1;  ///< learning rounds (priors between rounds)
  /// Explicit strategy spec (see synth/strategy.h parse_strategies);
  /// non-empty implies a portfolio job and overrides `portfolio`'s
  /// default strategy set.
  std::string strategies;
};

/// What run_job produced. `report` is the full human-readable result
/// text (header, summaries, verification line); the CLI prints it
/// verbatim and the daemon ships it verbatim.
struct JobOutcome {
  bool ok = false;         ///< synthesis produced a feasible circuit
  bool cancelled = false;  ///< unwound on the job's cancel token
  bool verify_ok = true;   ///< RTL simulation matched (when requested)
  std::string error;       ///< failure or cancellation reason
  std::string report;
  // Headline metrics, duplicated out of `result` for cheap serialization.
  double area = 0;
  double power = 0;
  double energy = 0;
  double synth_seconds = 0;
  // Move ledger (filled when spec.want_ledger).
  std::string ledger_table;
  std::string ledger_jsonl;
  std::uint64_t ledger_attempts = 0;
  // Cache-budget account at job end (zero when unbudgeted).
  std::uint64_t cache_budget_charged = 0;
  std::uint64_t cache_budget_rejects = 0;
  /// The raw result plus everything its Datapath points into, for
  /// CLI-side file outputs (netlist/verilog/fsm/dot). Null for failed
  /// or remote jobs.
  std::shared_ptr<SynthResult> result;
  std::shared_ptr<Benchmark> bench;   ///< keeps benchmark designs alive
  std::shared_ptr<Design> design;     ///< keeps textual designs alive
  std::shared_ptr<const Library> lib;
  std::shared_ptr<ComplexLibrary> clib;  ///< generated templates (if any)
};

/// Per-job callbacks and identity, supplied by the caller (scheduler or
/// CLI), not by the client.
struct JobHooks {
  /// Cooperative cancellation; run_job adds the spec's time budget as a
  /// deadline. Null = not cancellable.
  std::shared_ptr<runtime::CancelToken> cancel;
  /// Progress sink, invoked from the job's serial control thread.
  std::function<void(const SynthProgress&)> progress;
  /// obs job id: tags this job's ledger records and cache-budget
  /// charges across the shared thread pool. 0 = solo CLI (unscoped).
  std::uint64_t job_id = 0;
};

/// Run one synthesis job start to finish on the calling thread.
/// Never throws: parse errors, synthesis failures, and cancellation all
/// come back inside the outcome.
JobOutcome run_job(const JobSpec& spec, const JobHooks& hooks);

/// One queued job as the scheduler sees it.
struct QueuedJob {
  std::uint64_t id = 0;
  JobSpec spec;
  std::shared_ptr<runtime::CancelToken> cancel;
  std::function<void(const SynthProgress&)> progress;
  std::function<void(const JobOutcome&)> done;
};

/// Unbounded FIFO handing submissions to the scheduler's session
/// threads. close() wakes every waiter with "no more work".
class JobQueue {
 public:
  /// False once closed (the job is not enqueued).
  bool push(QueuedJob job);

  /// Block for the next job; false when the queue is closed and empty.
  bool pop(QueuedJob* out);

  /// Remove a not-yet-started job, handing its payload back (so its
  /// completion callback can still fire). True when it was still queued.
  bool remove(std::uint64_t id, QueuedJob* out);

  /// Remove and return every queued job (the shutdown path, so their
  /// completion callbacks can still fire).
  std::vector<QueuedJob> drain();

  void close();
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedJob> q_;
  bool closed_ = false;
};

}  // namespace hsyn::serve
