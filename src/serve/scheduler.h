// The concurrent job engine: N session threads draining one FIFO of
// synthesis jobs over the shared process runtime.
//
// Concurrency model. Each session thread runs run_job() start to
// finish for one job at a time, so up to N jobs are in flight. They
// share the process-global deterministic thread pool -- concurrent
// parallel regions serialize through the pool's submit lock while the
// jobs' serial portions interleave freely -- and the shared eval
// caches, which are keyed by content fingerprints and therefore safe
// (and profitable) to share across jobs. Every job carries its own
// CancelToken, its own obs job id (ledger/cache attribution), and its
// own budgets; results are bit-identical to a solo run of the same
// spec because nothing a neighbor job does can change what a cache
// returns or how the pool chunks a region's index space.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/jobs.h"
#include "serve/proto.h"

namespace hsyn::serve {

class JobEngine {
 public:
  /// Spawns `sessions` job threads (clamped to >= 1).
  explicit JobEngine(int sessions);
  /// Implies shutdown().
  ~JobEngine();
  JobEngine(const JobEngine&) = delete;
  JobEngine& operator=(const JobEngine&) = delete;

  /// Enqueue a job; returns its id (ids start at 1; 0 is never used).
  /// `progress` fires per SynthProgress event (only when the spec asked
  /// for progress), `done` exactly once with the outcome -- both from a
  /// session thread (or from shutdown(), for jobs that never ran).
  /// Returns 0 when the engine is already shut down.
  std::uint64_t submit(
      JobSpec spec,
      std::function<void(std::uint64_t, const SynthProgress&)> progress,
      std::function<void(std::uint64_t, const JobOutcome&)> done);

  /// Cancel a job: a queued job is dropped (its `done` fires with a
  /// cancelled outcome), a running one unwinds at its next cancel
  /// point. False for unknown/finished jobs.
  bool cancel(std::uint64_t job, const std::string& reason);

  /// Snapshot of every job this engine has seen, by ascending id.
  std::vector<JobStatus> status() const;

  int sessions() const { return static_cast<int>(threads_.size()); }
  std::size_t queued() const { return queue_.size(); }

  /// Jobs currently running on a session thread.
  std::size_t active() const;

  /// Stop accepting, drop queued jobs (their `done` fires cancelled),
  /// cancel running jobs, and join the session threads. Idempotent.
  void shutdown();

 private:
  struct Record {
    JobState state = JobState::Queued;
    std::string error;
    std::shared_ptr<runtime::CancelToken> cancel;
  };

  void session_loop();
  void finish(std::uint64_t id, const JobOutcome& outcome);

  JobQueue queue_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Record> records_;
  bool down_ = false;
};

}  // namespace hsyn::serve
