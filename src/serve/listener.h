// Local-socket plumbing for the hsyn service: bind/listen/accept and
// the matching client connect, over unix-domain sockets (--serve-unix)
// or TCP on the loopback interface only (--serve). The daemon is a
// local multiplexer, not a network service -- it never binds a
// routable address.
#pragma once

#include <atomic>
#include <string>

namespace hsyn::serve {

/// Listening socket (owns the fd; closes on destruction). unlink()s the
/// unix socket path it bound.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen on a unix-domain socket at `path` (an existing stale
  /// socket file is replaced). False with `err` on failure.
  bool listen_unix(const std::string& path, std::string* err);

  /// Bind + listen on 127.0.0.1:`port`. False with `err` on failure.
  bool listen_tcp(int port, std::string* err);

  /// Block for the next connection, polling so shutdown() wins within
  /// ~100 ms. Returns the connected fd, or -1 once shut down / on error.
  int accept_next();

  /// Wake accept_next() and close the listening socket. Idempotent;
  /// safe from a different thread than the accept loop.
  void shutdown();

  /// shutdown() plus close the fd and unlink the unix socket path.
  void close();

  bool listening() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string unix_path_;  ///< unlinked on close
  std::atomic<bool> stop_{false};
};

/// Connect to a server address: an address containing '/' is a unix
/// socket path, anything else is a TCP port on 127.0.0.1. Returns the
/// connected fd or -1 with `err`.
int connect_addr(const std::string& addr, std::string* err);

}  // namespace hsyn::serve
