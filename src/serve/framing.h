// Newline-delimited JSON framing over a socket/file descriptor.
//
// One frame = one JSON document followed by '\n'. JSON string escaping
// guarantees the payload itself never contains a raw newline, so the
// delimiter is unambiguous and a frame reader needs no length prefix.
// Frames are capped (64 MB) so a broken or hostile peer cannot balloon
// the reader's buffer.
#pragma once

#include <cstddef>
#include <string>

namespace hsyn::serve {

/// Buffered frame reader over a blocking fd. Not thread-safe; one
/// reader per connection.
class FrameReader {
 public:
  /// Frames larger than `max_frame` bytes poison the reader.
  explicit FrameReader(int fd, std::size_t max_frame = std::size_t{64} << 20)
      : fd_(fd), max_frame_(max_frame) {}

  /// Block for the next complete frame (the '\n' is stripped). False on
  /// EOF, read error, or an oversized frame -- after which the
  /// connection is dead and the reader must not be reused.
  bool next(std::string* frame);

 private:
  int fd_;
  std::size_t max_frame_;
  std::string buf_;
  bool poisoned_ = false;
};

/// Write `frame` + '\n' fully, retrying partial writes and EINTR.
/// False on any unrecoverable write error (peer gone). Callers guard
/// concurrent writers of one fd with their own mutex.
bool write_frame(int fd, const std::string& frame);

}  // namespace hsyn::serve
