#include "serve/session.h"

#include <condition_variable>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

#include "obs/telemetry.h"
#include "serve/framing.h"
#include "serve/proto.h"
#include "serve/scheduler.h"

namespace hsyn::serve {
namespace {

/// Open-once gate: job callbacks wait on it so the submit ack always
/// reaches the client before the first progress/result frame.
class AckGate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

void handle_submit(const std::shared_ptr<ClientConn>& conn, JobEngine& engine,
                   Request& req) {
  auto gate = std::make_shared<AckGate>();
  const std::uint64_t id = engine.submit(
      std::move(req.spec),
      [conn, gate](std::uint64_t job, const SynthProgress& ev) {
        gate->wait();
        conn->send(encode_progress(job, ev));
      },
      [conn, gate](std::uint64_t job, const JobOutcome& out) {
        gate->wait();
        conn->send(encode_result(job, out));
      });
  if (id == 0) {
    conn->send(encode_error(req.tag, "daemon is shutting down"));
  } else {
    conn->send(encode_ack(req.tag, id));
  }
  gate->open();
}

}  // namespace

bool ClientConn::send(const std::string& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_.load(std::memory_order_relaxed)) return false;
  if (write_frame(fd_, frame)) return true;
  alive_.store(false, std::memory_order_release);
  return false;
}

void ClientConn::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_.exchange(false, std::memory_order_acq_rel)) return;
  // Both halves: a reader blocked in next() gets EOF immediately.
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
}

void serve_connection(const std::shared_ptr<ClientConn>& conn,
                      JobEngine& engine,
                      const std::function<void()>& request_shutdown) {
  FrameReader reader(conn->fd());
  std::string frame;
  // At most one watch subscription per connection (a new watch replaces
  // the old one). The listener lambda captures &engine: the Server
  // joins connection threads (which remove the listener on the way out)
  // before the engine is destroyed, and Telemetry invokes listeners
  // under its listener lock, so remove_listener() never returns while
  // the lambda is mid-call.
  std::uint64_t watch_id = 0;
  obs::Telemetry& tel = obs::Telemetry::instance();
  while (conn->alive() && reader.next(&frame)) {
    Request req;
    std::string err;
    if (!parse_request(frame, &req, &err)) {
      conn->send(encode_error(req.tag, err));
      continue;
    }
    switch (req.type) {
      case Request::Type::Submit:
        handle_submit(conn, engine, req);
        break;
      case Request::Type::Cancel:
        if (engine.cancel(req.job, "cancelled by client")) {
          conn->send(encode_ack(req.tag, req.job));
        } else {
          conn->send(encode_error(req.tag, "no such queued or running job"));
        }
        break;
      case Request::Type::Status:
        conn->send(
            encode_status(engine.status(), engine.sessions(), engine.queued()));
        break;
      case Request::Type::Ping:
        conn->send(encode_pong(obs::process_uptime_ms(), engine.active(),
                               engine.queued()));
        break;
      case Request::Type::Stats: {
        ServerStats st;
        st.uptime_ms = obs::process_uptime_ms();
        st.sessions = engine.sessions();
        st.active = engine.active();
        st.queued = engine.queued();
        st.interval_ms = tel.interval_ms();
        st.sampler_running = tel.running();
        conn->send(encode_stats(
            st, make_frame(tel.sample_now(), 0, engine.status())));
        break;
      }
      case Request::Type::Watch: {
        tel.start();  // idempotent; the daemon normally started it already
        if (watch_id != 0) tel.remove_listener(watch_id);
        const std::uint64_t job = req.job;
        JobEngine* eng = &engine;
        watch_id = tel.add_listener(
            [conn, eng, job](const obs::TelemetrySample& s) {
              conn->send(encode_telemetry(make_frame(s, job, eng->status())));
            });
        conn->send(encode_ack(req.tag, job));
        break;
      }
      case Request::Type::Unwatch:
        if (watch_id != 0) {
          tel.remove_listener(watch_id);
          watch_id = 0;
        }
        conn->send(encode_ack(req.tag, 0));
        break;
      case Request::Type::Shutdown:
        conn->send(encode_ack(req.tag, 0));
        request_shutdown();
        break;
    }
  }
  if (watch_id != 0) tel.remove_listener(watch_id);
}

}  // namespace hsyn::serve
