#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "runtime/cancel.h"

namespace hsyn::serve {

JobEngine::JobEngine(int sessions) {
  const int n = std::max(1, sessions);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { session_loop(); });
  }
}

JobEngine::~JobEngine() { shutdown(); }

std::uint64_t JobEngine::submit(
    JobSpec spec,
    std::function<void(std::uint64_t, const SynthProgress&)> progress,
    std::function<void(std::uint64_t, const JobOutcome&)> done) {
  QueuedJob job;
  job.cancel = std::make_shared<runtime::CancelToken>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return 0;
    job.id = next_id_++;
    records_[job.id] = Record{JobState::Queued, "", job.cancel};
  }
  const std::uint64_t id = job.id;
  job.spec = std::move(spec);
  if (progress && job.spec.want_progress) {
    job.progress = [id, progress = std::move(progress)](
                       const SynthProgress& ev) { progress(id, ev); };
  }
  if (done) {
    job.done = [id, done = std::move(done)](const JobOutcome& out) {
      done(id, out);
    };
  }
  if (!queue_.push(std::move(job))) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.erase(id);
    return 0;
  }
  return id;
}

bool JobEngine::cancel(std::uint64_t job, const std::string& reason) {
  std::shared_ptr<runtime::CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = records_.find(job);
    if (it == records_.end() || it->second.state == JobState::Done ||
        it->second.state == JobState::Failed ||
        it->second.state == JobState::Cancelled) {
      return false;
    }
    token = it->second.cancel;
  }
  // Request first: if a session claims the job between here and
  // remove(), the token makes run_job unwind at its first cancel point
  // and finish() records the outcome through the normal path.
  if (token) token->request(reason);
  // Still queued -> never reaches a session thread; synthesize the
  // cancelled outcome here and fire its done callback ourselves.
  QueuedJob dropped;
  if (!queue_.remove(job, &dropped)) return true;
  JobOutcome out;
  out.cancelled = true;
  out.error = reason;
  finish(job, out);
  if (dropped.done) dropped.done(out);
  return true;
}

std::vector<JobStatus> JobEngine::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) {
    out.push_back(JobStatus{id, rec.state, rec.error});
  }
  return out;
}

std::size_t JobEngine::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, rec] : records_) {
    if (rec.state == JobState::Running) ++n;
  }
  return n;
}

void JobEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return;
    down_ = true;
  }
  queue_.close();
  // Drop everything still queued (their done callbacks fire cancelled),
  // then pull the rug from running jobs cooperatively.
  for (QueuedJob& job : queue_.drain()) {
    JobOutcome out;
    out.cancelled = true;
    out.error = "daemon shutting down";
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = records_.find(job.id);
      if (it != records_.end()) {
        it->second.state = JobState::Cancelled;
        it->second.error = out.error;
      }
    }
    if (job.done) job.done(out);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, rec] : records_) {
      if (rec.state == JobState::Running && rec.cancel) {
        rec.cancel->request("daemon shutting down");
      }
    }
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void JobEngine::session_loop() {
  QueuedJob job;
  while (queue_.pop(&job)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = records_.find(job.id);
      // cancel() may have won the race after pop; the token is already
      // set, run_job unwinds at the first cancel point.
      if (it != records_.end() && it->second.state == JobState::Queued) {
        it->second.state = JobState::Running;
      }
    }
    JobHooks hooks;
    hooks.cancel = job.cancel;
    hooks.progress = job.progress;
    hooks.job_id = job.id;
    const JobOutcome out = run_job(job.spec, hooks);
    finish(job.id, out);
    if (job.done) job.done(out);
    job = QueuedJob{};  // release spec/design text before blocking again
  }
}

void JobEngine::finish(std::uint64_t id, const JobOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) return;
  it->second.state = outcome.cancelled ? JobState::Cancelled
                     : outcome.ok      ? JobState::Done
                                       : JobState::Failed;
  it->second.error = outcome.error;
  it->second.cancel.reset();
}

}  // namespace hsyn::serve
