#include "serve/listener.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace hsyn::serve {
namespace {

std::string errno_str(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

bool Listener::listen_unix(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (err) *err = "unix socket path too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  // A stale socket file from a dead daemon would make bind fail; a live
  // daemon still answers connect, so probe (on a throwaway fd -- a
  // failed connect leaves a socket unusable) before replacing the file.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    const bool alive = ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                                 sizeof addr) == 0;
    ::close(probe);
    if (alive) {
      if (err) *err = "another daemon is already listening on " + path;
      return false;
    }
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = errno_str("socket");
    return false;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    if (err) *err = errno_str(("bind/listen " + path).c_str());
    ::close(fd);
    return false;
  }
  fd_ = fd;
  unix_path_ = path;
  return true;
}

bool Listener::listen_tcp(int port, std::string* err) {
  if (port <= 0 || port > 65535) {
    if (err) *err = "port out of range";
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = errno_str("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    if (err) *err = errno_str("bind/listen 127.0.0.1");
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

int Listener::accept_next() {
  while (!stop_.load(std::memory_order_relaxed)) {
    if (fd_ < 0) return -1;
    pollfd p{fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, /*timeout_ms=*/100);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) continue;  // timeout: re-check stop_
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return conn;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return -1;
  }
  return -1;
}

void Listener::shutdown() {
  stop_.store(true, std::memory_order_relaxed);
}

void Listener::close() {
  shutdown();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

int connect_addr(const std::string& addr, std::string* err) {
  if (addr.find('/') != std::string::npos) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (addr.size() >= sizeof sa.sun_path) {
      if (err) *err = "unix socket path too long: " + addr;
      return -1;
    }
    std::memcpy(sa.sun_path, addr.c_str(), addr.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (err) *err = errno_str("socket");
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) < 0) {
      if (err) *err = errno_str(("connect " + addr).c_str());
      ::close(fd);
      return -1;
    }
    return fd;
  }
  char* end = nullptr;
  const long port = std::strtol(addr.c_str(), &end, 10);
  if (end == addr.c_str() || *end != '\0' || port <= 0 || port > 65535) {
    if (err) *err = "address must be a unix socket path or a TCP port";
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = errno_str("socket");
    return -1;
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) < 0) {
    if (err) *err = errno_str(("connect 127.0.0.1:" + addr).c_str());
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace hsyn::serve
