#include "serve/framing.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace hsyn::serve {

bool FrameReader::next(std::string* frame) {
  if (poisoned_) return false;
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos && nl <= max_frame_) {
      frame->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    // No terminator yet, or the completed frame itself is oversized.
    if (nl != std::string::npos || buf_.size() > max_frame_) {
      poisoned_ = true;
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EOF (or error) with a dangling partial frame: drop it -- a frame
    // without its terminator was never completely sent.
    poisoned_ = true;
    return false;
  }
}

bool write_frame(int fd, const std::string& frame) {
  std::string wire = frame;
  wire += '\n';
  const char* p = wire.data();
  std::size_t left = wire.size();
  while (left > 0) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the daemon with SIGPIPE. Plain write() for non-socket fds (tests
    // run the framing layer over pipes).
    ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p, left);
    if (n > 0) {
      p += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace hsyn::serve
