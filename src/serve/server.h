// The hsyn daemon: a Listener accepting local connections, one request
// thread per connection, and a JobEngine multiplexing the jobs those
// connections submit over the shared deterministic runtime.
//
// Lifecycle: start() binds, run() blocks in the accept loop until a
// shutdown arrives -- a client `shutdown` request, a SIGINT/SIGTERM
// (polled via runtime::signal_received), or request_shutdown() from
// another thread. Teardown is graceful: stop accepting, cancel every
// queued and running job (their owners receive cancelled result frames
// first), close the connections, join everything, remove the socket.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/listener.h"
#include "serve/scheduler.h"
#include "serve/session.h"

namespace hsyn::serve {

struct ServerOptions {
  std::string unix_path;  ///< listen on a unix socket...
  int tcp_port = 0;       ///< ...or a loopback TCP port (exactly one)
  int sessions = 2;       ///< concurrent jobs (clamped to >= 1)
  /// Optional Prometheus text endpoint: plain HTTP GET /metrics on this
  /// loopback port (0 = off).
  int metrics_port = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opts) : opts_(std::move(opts)) {}
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind and listen. False (and `err`) when the address is taken or
  /// invalid.
  bool start(std::string* err);

  /// Accept-and-serve until shutdown. Returns the process exit code
  /// (0 for a clean shutdown).
  int run();

  /// Trigger a graceful shutdown from any thread. Idempotent.
  void request_shutdown();

 private:
  ServerOptions opts_;
  Listener listener_;
  Listener metrics_listener_;
  std::thread metrics_thread_;
  std::unique_ptr<JobEngine> engine_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::vector<std::shared_ptr<ClientConn>> conns_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace hsyn::serve
