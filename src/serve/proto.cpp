#include "serve/proto.h"

#include "util/json.h"

namespace hsyn::serve {
namespace {

const char* stage_name(SynthProgress::Stage s) {
  switch (s) {
    case SynthProgress::Stage::Probe: return "probe";
    case SynthProgress::Stage::Pass: return "pass";
    case SynthProgress::Stage::OpPoint: return "op-point";
    case SynthProgress::Stage::Strategy: return "strategy";
  }
  return "?";
}

bool parse_stage(const std::string& s, SynthProgress::Stage* out) {
  if (s == "probe") {
    *out = SynthProgress::Stage::Probe;
    return true;
  }
  if (s == "pass") {
    *out = SynthProgress::Stage::Pass;
    return true;
  }
  if (s == "op-point") {
    *out = SynthProgress::Stage::OpPoint;
    return true;
  }
  if (s == "strategy") {
    *out = SynthProgress::Stage::Strategy;
    return true;
  }
  return false;
}

/// Shared JobSpec -> JSON body (inside an already-open object).
void write_spec(JsonWriter& w, const JobSpec& spec) {
  if (!spec.benchmark.empty()) w.key("benchmark").value(spec.benchmark);
  if (!spec.design_text.empty()) w.key("design").value(spec.design_text);
  if (!spec.design_name.empty()) w.key("design_name").value(spec.design_name);
  if (!spec.library_text.empty()) w.key("library").value(spec.library_text);
  if (!spec.trace_text.empty()) w.key("trace").value(spec.trace_text);
  w.key("objective").value(objective_name(spec.objective));
  w.key("mode").value(mode_name(spec.mode));
  w.key("laxity").value(spec.laxity);
  if (spec.period_ns > 0) w.key("period_ns").value(spec.period_ns);
  w.key("seed").value(spec.seed);
  w.key("templates").value(spec.templates);
  w.key("auto_variants").value(spec.auto_variants);
  w.key("verify").value(spec.verify);
  w.key("check_moves").value(spec.check_moves);
  w.key("verify_rewrites").value(spec.verify_rewrites);
  if (spec.time_budget_ms > 0) {
    w.key("time_budget_ms").value(spec.time_budget_ms);
  }
  if (spec.cache_budget_mb > 0) {
    w.key("cache_budget_mb").value(spec.cache_budget_mb);
  }
  w.key("progress").value(spec.want_progress);
  w.key("ledger").value(spec.want_ledger);
  if (spec.portfolio > 0) w.key("portfolio").value(spec.portfolio);
  if (spec.portfolio_rounds != 1) {
    w.key("portfolio_rounds").value(spec.portfolio_rounds);
  }
  if (!spec.strategies.empty()) w.key("strategies").value(spec.strategies);
}

bool read_spec(const JsonValue& v, JobSpec* spec, std::string* err) {
  spec->benchmark = v.str_or("benchmark", "");
  spec->design_text = v.str_or("design", "");
  spec->design_name = v.str_or("design_name", "");
  spec->library_text = v.str_or("library", "");
  spec->trace_text = v.str_or("trace", "");
  const std::string obj = v.str_or("objective", "power");
  if (obj == "power") {
    spec->objective = Objective::Power;
  } else if (obj == "area") {
    spec->objective = Objective::Area;
  } else {
    if (err) *err = "objective must be 'power' or 'area'";
    return false;
  }
  const std::string mode = v.str_or("mode", "hier");
  if (mode == "hier") {
    spec->mode = Mode::Hierarchical;
  } else if (mode == "flat") {
    spec->mode = Mode::Flattened;
  } else {
    if (err) *err = "mode must be 'hier' or 'flat'";
    return false;
  }
  spec->laxity = v.num_or("laxity", 2.2);
  spec->period_ns = v.num_or("period_ns", 0);
  spec->seed = static_cast<std::uint64_t>(v.int_or("seed", 42));
  spec->templates = v.bool_or("templates", false);
  spec->auto_variants = v.bool_or("auto_variants", false);
  spec->verify = v.bool_or("verify", true);
  spec->check_moves = v.bool_or("check_moves", false);
  spec->verify_rewrites = v.bool_or("verify_rewrites", false);
  spec->time_budget_ms = v.int_or("time_budget_ms", 0);
  spec->cache_budget_mb = v.int_or("cache_budget_mb", 0);
  spec->want_progress = v.bool_or("progress", false);
  spec->want_ledger = v.bool_or("ledger", false);
  spec->portfolio = static_cast<int>(v.int_or("portfolio", 0));
  spec->portfolio_rounds = static_cast<int>(v.int_or("portfolio_rounds", 1));
  spec->strategies = v.str_or("strategies", "");
  if (spec->portfolio < 0) {
    if (err) *err = "portfolio must be >= 0";
    return false;
  }
  if (spec->benchmark.empty() == spec->design_text.empty()) {
    if (err) *err = "exactly one of 'benchmark' and 'design' must be given";
    return false;
  }
  return true;
}

void write_job_status(JsonWriter& w, const JobStatus& j) {
  w.begin_object();
  w.key("job").value(j.id);
  w.key("state").value(job_state_name(j.state));
  if (!j.error.empty()) w.key("error").value(j.error);
  w.end_object();
}

/// TelemetryFrame body shared by `telemetry` and `stats` frames (the
/// enclosing object and its "type" are the caller's).
void write_telemetry_body(JsonWriter& w, const TelemetryFrame& f) {
  w.key("seq").value(f.seq);
  w.key("t_ms").value(f.t_ms);
  w.key("uptime_ms").value(f.uptime_ms);
  w.key("regions").value(f.regions);
  w.key("tasks").value(f.tasks);
  w.key("cache_hits").value(f.cache_hits);
  w.key("cache_misses").value(f.cache_misses);
  w.key("cache_bytes").value(f.cache_bytes);
  w.key("spans_dropped").value(f.spans_dropped);
  w.key("ledger_dropped").value(f.ledger_dropped);
  w.key("rewrites_refuted").value(f.rewrites_refuted);
  w.key("jobs").begin_array();
  for (const JobTelemetry& j : f.jobs) {
    w.begin_object();
    w.key("job").value(j.job);
    if (!j.state.empty()) w.key("state").value(j.state);
    w.key("passes").value(j.passes);
    w.key("pass").value(static_cast<int>(j.pass));
    w.key("depth").value(static_cast<int>(j.depth));
    w.key("moves_applied").value(j.moves_applied);
    w.key("moves_accepted").value(j.moves_accepted);
    w.key("applied_replace").value(j.applied_by_class[0]);
    w.key("applied_share").value(j.applied_by_class[1]);
    w.key("applied_split").value(j.applied_by_class[2]);
    w.key("accepted_replace").value(j.accepted_by_class[0]);
    w.key("accepted_share").value(j.accepted_by_class[1]);
    w.key("accepted_split").value(j.accepted_by_class[2]);
    w.key("rewrites_refuted").value(j.rewrites_refuted);
    w.key("strategies_done").value(j.strategies_done);
    w.key("cache_hits").value(j.cache_hits);
    w.key("cache_misses").value(j.cache_misses);
    w.key("replay_samples").value(j.replay_samples);
    w.key("best_cost").value(j.best_cost);
    w.key("vdd").value(j.vdd);
    w.key("clock_ns").value(j.clock_ns);
    w.end_object();
  }
  w.end_array();
}

void read_telemetry_body(const JsonValue& v, TelemetryFrame* f) {
  f->seq = static_cast<std::uint64_t>(v.int_or("seq", 0));
  f->t_ms = static_cast<std::uint64_t>(v.int_or("t_ms", 0));
  f->uptime_ms = static_cast<std::uint64_t>(v.int_or("uptime_ms", 0));
  f->regions = static_cast<std::uint64_t>(v.int_or("regions", 0));
  f->tasks = static_cast<std::uint64_t>(v.int_or("tasks", 0));
  f->cache_hits = static_cast<std::uint64_t>(v.int_or("cache_hits", 0));
  f->cache_misses = static_cast<std::uint64_t>(v.int_or("cache_misses", 0));
  f->cache_bytes = static_cast<std::uint64_t>(v.int_or("cache_bytes", 0));
  f->spans_dropped = static_cast<std::uint64_t>(v.int_or("spans_dropped", 0));
  f->ledger_dropped =
      static_cast<std::uint64_t>(v.int_or("ledger_dropped", 0));
  f->rewrites_refuted =
      static_cast<std::uint64_t>(v.int_or("rewrites_refuted", 0));
  if (const JsonValue* jobs = v.get("jobs"); jobs && jobs->is_array()) {
    for (const JsonValue& jv : jobs->items()) {
      JobTelemetry j;
      j.job = static_cast<std::uint64_t>(jv.int_or("job", 0));
      j.state = jv.str_or("state", "");
      j.passes = static_cast<std::uint64_t>(jv.int_or("passes", 0));
      j.pass = static_cast<std::int32_t>(jv.int_or("pass", -1));
      j.depth = static_cast<std::int32_t>(jv.int_or("depth", -1));
      j.moves_applied =
          static_cast<std::uint64_t>(jv.int_or("moves_applied", 0));
      j.moves_accepted =
          static_cast<std::uint64_t>(jv.int_or("moves_accepted", 0));
      j.applied_by_class[0] =
          static_cast<std::uint64_t>(jv.int_or("applied_replace", 0));
      j.applied_by_class[1] =
          static_cast<std::uint64_t>(jv.int_or("applied_share", 0));
      j.applied_by_class[2] =
          static_cast<std::uint64_t>(jv.int_or("applied_split", 0));
      j.accepted_by_class[0] =
          static_cast<std::uint64_t>(jv.int_or("accepted_replace", 0));
      j.accepted_by_class[1] =
          static_cast<std::uint64_t>(jv.int_or("accepted_share", 0));
      j.accepted_by_class[2] =
          static_cast<std::uint64_t>(jv.int_or("accepted_split", 0));
      j.rewrites_refuted =
          static_cast<std::uint64_t>(jv.int_or("rewrites_refuted", 0));
      j.strategies_done =
          static_cast<std::uint64_t>(jv.int_or("strategies_done", 0));
      j.cache_hits = static_cast<std::uint64_t>(jv.int_or("cache_hits", 0));
      j.cache_misses =
          static_cast<std::uint64_t>(jv.int_or("cache_misses", 0));
      j.replay_samples =
          static_cast<std::uint64_t>(jv.int_or("replay_samples", 0));
      j.best_cost = jv.num_or("best_cost", 0);
      j.vdd = jv.num_or("vdd", 0);
      j.clock_ns = jv.num_or("clock_ns", 0);
      f->jobs.push_back(std::move(j));
    }
  }
}

}  // namespace

TelemetryFrame make_frame(const obs::TelemetrySample& s,
                          std::uint64_t job_filter,
                          const std::vector<JobStatus>& jobs) {
  TelemetryFrame f;
  f.seq = s.seq;
  f.t_ms = s.t_ms;
  f.uptime_ms = s.uptime_ms;
  f.regions = s.pool_regions;
  f.tasks = s.pool_tasks;
  f.cache_hits = s.cache_hits;
  f.cache_misses = s.cache_misses;
  f.cache_bytes = s.cache_bytes;
  f.spans_dropped = s.spans_dropped;
  f.ledger_dropped = s.ledger_dropped;
  f.rewrites_refuted = s.rewrites_refuted;
  for (const JobStatus& js : jobs) {
    if (job_filter != 0 && js.id != job_filter) continue;
    JobTelemetry j;
    j.job = js.id;
    j.state = job_state_name(js.state);
    for (const obs::JobSample& sample : s.jobs) {
      if (sample.job != js.id) continue;
      j.passes = sample.passes;
      j.pass = sample.pass;
      j.depth = sample.depth;
      j.moves_applied = sample.moves_applied;
      j.moves_accepted = sample.moves_accepted;
      for (int k = 0; k < obs::kTelemetryClasses; ++k) {
        j.applied_by_class[k] = sample.applied_by_class[k];
        j.accepted_by_class[k] = sample.accepted_by_class[k];
      }
      j.rewrites_refuted = sample.rewrites_refuted;
      j.strategies_done = sample.strategies_done;
      j.cache_hits = sample.cache_hits;
      j.cache_misses = sample.cache_misses;
      j.replay_samples = sample.replay_samples;
      j.best_cost = sample.best_cost;
      j.vdd = sample.vdd;
      j.clock_ns = sample.clock_ns;
      break;
    }
    f.jobs.push_back(std::move(j));
  }
  return f;
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

bool parse_request(const std::string& frame, Request* out, std::string* err) {
  JsonValue v;
  if (!json_parse(frame, &v, err)) return false;
  if (!v.is_object()) {
    if (err) *err = "request frame must be a JSON object";
    return false;
  }
  const std::string type = v.str_or("type", "");
  out->tag = v.str_or("tag", "");
  if (type == "submit") {
    out->type = Request::Type::Submit;
    return read_spec(v, &out->spec, err);
  }
  if (type == "cancel") {
    out->type = Request::Type::Cancel;
    out->job = static_cast<std::uint64_t>(v.int_or("job", 0));
    if (out->job == 0) {
      if (err) *err = "cancel requires a 'job' id";
      return false;
    }
    return true;
  }
  if (type == "status") {
    out->type = Request::Type::Status;
    return true;
  }
  if (type == "ping") {
    out->type = Request::Type::Ping;
    return true;
  }
  if (type == "shutdown") {
    out->type = Request::Type::Shutdown;
    return true;
  }
  if (type == "stats") {
    out->type = Request::Type::Stats;
    return true;
  }
  if (type == "watch") {
    out->type = Request::Type::Watch;
    out->job = static_cast<std::uint64_t>(v.int_or("job", 0));
    return true;
  }
  if (type == "unwatch") {
    out->type = Request::Type::Unwatch;
    return true;
  }
  if (err) *err = "unknown request type '" + type + "'";
  return false;
}

std::string encode_ack(const std::string& tag, std::uint64_t job) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("ack");
  if (!tag.empty()) w.key("tag").value(tag);
  w.key("job").value(job);
  w.end_object();
  return w.str();
}

std::string encode_error(const std::string& tag, const std::string& message) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("error");
  if (!tag.empty()) w.key("tag").value(tag);
  w.key("message").value(message);
  w.end_object();
  return w.str();
}

std::string encode_progress(std::uint64_t job, const SynthProgress& ev) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("progress");
  w.key("job").value(job);
  w.key("stage").value(stage_name(ev.stage));
  w.key("vdd").value(ev.vdd);
  w.key("clock_ns").value(ev.clock_ns);
  w.key("pass").value(ev.pass);
  w.key("moves_applied").value(ev.moves_applied);
  w.key("moves_kept").value(ev.moves_kept);
  w.key("cost").value(ev.cost);
  w.key("area").value(ev.area);
  w.key("power").value(ev.power);
  w.key("feasible_clocks").value(ev.feasible_clocks);
  w.end_object();
  return w.str();
}

std::string encode_result(std::uint64_t job, const JobOutcome& outcome) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("result");
  w.key("job").value(job);
  w.key("ok").value(outcome.ok);
  w.key("cancelled").value(outcome.cancelled);
  w.key("verify_ok").value(outcome.verify_ok);
  if (!outcome.error.empty()) w.key("error").value(outcome.error);
  w.key("report").value(outcome.report);
  w.key("area").value(outcome.area);
  w.key("power").value(outcome.power);
  w.key("energy").value(outcome.energy);
  w.key("synth_seconds").value(outcome.synth_seconds);
  if (!outcome.ledger_table.empty()) {
    w.key("ledger_table").value(outcome.ledger_table);
    w.key("ledger_attempts").value(outcome.ledger_attempts);
    w.key("ledger_jsonl").value(outcome.ledger_jsonl);
  }
  if (outcome.cache_budget_charged != 0 || outcome.cache_budget_rejects != 0) {
    w.key("cache_budget_charged").value(outcome.cache_budget_charged);
    w.key("cache_budget_rejects").value(outcome.cache_budget_rejects);
  }
  w.end_object();
  return w.str();
}

std::string encode_status(const std::vector<JobStatus>& jobs, int sessions,
                          std::size_t queued) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("status");
  w.key("sessions").value(sessions);
  w.key("queued").value(static_cast<std::uint64_t>(queued));
  w.key("jobs").begin_array();
  for (const JobStatus& j : jobs) write_job_status(w, j);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string encode_pong(std::uint64_t uptime_ms, std::uint64_t active,
                        std::uint64_t queued) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("pong");
  w.key("uptime_ms").value(uptime_ms);
  w.key("active").value(active);
  w.key("queued").value(queued);
  w.end_object();
  return w.str();
}

std::string encode_telemetry(const TelemetryFrame& f) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("telemetry");
  write_telemetry_body(w, f);
  w.end_object();
  return w.str();
}

std::string encode_stats(const ServerStats& st, const TelemetryFrame& f) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("stats");
  w.key("server_uptime_ms").value(st.uptime_ms);
  w.key("sessions").value(st.sessions);
  w.key("active").value(st.active);
  w.key("queued").value(st.queued);
  w.key("interval_ms").value(st.interval_ms);
  w.key("sampler").value(st.sampler_running);
  write_telemetry_body(w, f);
  w.end_object();
  return w.str();
}

std::string encode_submit(const JobSpec& spec, const std::string& tag) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("submit");
  if (!tag.empty()) w.key("tag").value(tag);
  write_spec(w, spec);
  w.end_object();
  return w.str();
}

std::string encode_cancel(std::uint64_t job) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("cancel");
  w.key("job").value(job);
  w.end_object();
  return w.str();
}

std::string encode_ping() {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("ping");
  w.end_object();
  return w.str();
}

std::string encode_status_request() {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("status");
  w.end_object();
  return w.str();
}

std::string encode_shutdown() {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("shutdown");
  w.end_object();
  return w.str();
}

std::string encode_stats_request() {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("stats");
  w.end_object();
  return w.str();
}

std::string encode_watch(std::uint64_t job) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("watch");
  if (job != 0) w.key("job").value(job);
  w.end_object();
  return w.str();
}

std::string encode_unwatch() {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("unwatch");
  w.end_object();
  return w.str();
}

bool parse_response(const std::string& frame, Response* out, std::string* err) {
  JsonValue v;
  if (!json_parse(frame, &v, err)) return false;
  if (!v.is_object()) {
    if (err) *err = "response frame must be a JSON object";
    return false;
  }
  const std::string type = v.str_or("type", "");
  out->tag = v.str_or("tag", "");
  out->job = static_cast<std::uint64_t>(v.int_or("job", 0));
  if (type == "ack") {
    out->type = Response::Type::Ack;
    return true;
  }
  if (type == "error") {
    out->type = Response::Type::Error;
    out->message = v.str_or("message", "");
    return true;
  }
  if (type == "pong") {
    out->type = Response::Type::Pong;
    out->uptime_ms = static_cast<std::uint64_t>(v.int_or("uptime_ms", 0));
    out->active = static_cast<std::uint64_t>(v.int_or("active", 0));
    out->queued = static_cast<std::uint64_t>(v.int_or("queued", 0));
    return true;
  }
  if (type == "telemetry") {
    out->type = Response::Type::Telemetry;
    read_telemetry_body(v, &out->telemetry);
    return true;
  }
  if (type == "stats") {
    out->type = Response::Type::Stats;
    out->stats.uptime_ms =
        static_cast<std::uint64_t>(v.int_or("server_uptime_ms", 0));
    out->stats.sessions = static_cast<int>(v.int_or("sessions", 0));
    out->stats.active = static_cast<std::uint64_t>(v.int_or("active", 0));
    out->stats.queued = static_cast<std::uint64_t>(v.int_or("queued", 0));
    out->stats.interval_ms = static_cast<int>(v.int_or("interval_ms", 0));
    out->stats.sampler_running = v.bool_or("sampler", false);
    out->sessions = out->stats.sessions;
    out->queued = out->stats.queued;
    read_telemetry_body(v, &out->telemetry);
    return true;
  }
  if (type == "progress") {
    out->type = Response::Type::Progress;
    SynthProgress& p = out->progress;
    if (!parse_stage(v.str_or("stage", ""), &p.stage)) {
      if (err) *err = "progress frame with unknown stage";
      return false;
    }
    p.vdd = v.num_or("vdd", 0);
    p.clock_ns = v.num_or("clock_ns", 0);
    p.pass = static_cast<int>(v.int_or("pass", 0));
    p.moves_applied = static_cast<int>(v.int_or("moves_applied", 0));
    p.moves_kept = static_cast<int>(v.int_or("moves_kept", 0));
    p.cost = v.num_or("cost", 0);
    p.area = v.num_or("area", 0);
    p.power = v.num_or("power", 0);
    p.feasible_clocks = static_cast<int>(v.int_or("feasible_clocks", 0));
    return true;
  }
  if (type == "result") {
    out->type = Response::Type::Result;
    JobOutcome& o = out->outcome;
    o.ok = v.bool_or("ok", false);
    o.cancelled = v.bool_or("cancelled", false);
    o.verify_ok = v.bool_or("verify_ok", true);
    o.error = v.str_or("error", "");
    o.report = v.str_or("report", "");
    o.area = v.num_or("area", 0);
    o.power = v.num_or("power", 0);
    o.energy = v.num_or("energy", 0);
    o.synth_seconds = v.num_or("synth_seconds", 0);
    o.ledger_table = v.str_or("ledger_table", "");
    o.ledger_jsonl = v.str_or("ledger_jsonl", "");
    o.ledger_attempts =
        static_cast<std::uint64_t>(v.int_or("ledger_attempts", 0));
    o.cache_budget_charged =
        static_cast<std::uint64_t>(v.int_or("cache_budget_charged", 0));
    o.cache_budget_rejects =
        static_cast<std::uint64_t>(v.int_or("cache_budget_rejects", 0));
    return true;
  }
  if (type == "status") {
    out->type = Response::Type::Status;
    out->sessions = static_cast<int>(v.int_or("sessions", 0));
    out->queued = static_cast<std::uint64_t>(v.int_or("queued", 0));
    if (const JsonValue* jobs = v.get("jobs"); jobs && jobs->is_array()) {
      for (const JsonValue& j : jobs->items()) {
        JobStatus s;
        s.id = static_cast<std::uint64_t>(j.int_or("job", 0));
        const std::string st = j.str_or("state", "queued");
        if (st == "running") {
          s.state = JobState::Running;
        } else if (st == "done") {
          s.state = JobState::Done;
        } else if (st == "failed") {
          s.state = JobState::Failed;
        } else if (st == "cancelled") {
          s.state = JobState::Cancelled;
        } else {
          s.state = JobState::Queued;
        }
        s.error = j.str_or("error", "");
        out->jobs.push_back(std::move(s));
      }
    }
    return true;
  }
  if (err) *err = "unknown response type '" + type + "'";
  return false;
}

}  // namespace hsyn::serve
