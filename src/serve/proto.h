// Wire protocol of the hsyn synthesis service (docs/PROTOCOL.md).
//
// Messages are newline-delimited JSON objects (one frame per line; see
// serve/framing.h). Requests are parsed with util/json.h's JsonValue,
// responses are emitted with JsonWriter, so escaping is correct in both
// directions and multi-line report text travels inside one frame.
//
// Request types:   submit, cancel, status, ping, shutdown
// Response types:  ack, progress, result, status, pong, error
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/jobs.h"
#include "synth/moves.h"

namespace hsyn::serve {

/// A decoded client request.
struct Request {
  enum class Type { Submit, Cancel, Status, Ping, Shutdown };
  Type type = Type::Ping;
  std::string tag;        ///< client correlation tag, echoed in the ack
  std::uint64_t job = 0;  ///< cancel: which job
  JobSpec spec;           ///< submit: the job
};

/// Parse one request frame. False (and `err`) on malformed JSON, an
/// unknown type, or invalid field values.
bool parse_request(const std::string& frame, Request* out, std::string* err);

/// One job's lifecycle state as reported by `status`.
enum class JobState : int {
  Queued = 0,
  Running = 1,
  Done = 2,
  Failed = 3,
  Cancelled = 4,
};

const char* job_state_name(JobState s);

struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  std::string error;  ///< failure/cancellation reason once finished
};

// ---- Response encoders (each returns one full frame, no newline) --------

std::string encode_ack(const std::string& tag, std::uint64_t job);
std::string encode_error(const std::string& tag, const std::string& message);
std::string encode_progress(std::uint64_t job, const SynthProgress& ev);
std::string encode_result(std::uint64_t job, const JobOutcome& outcome);
std::string encode_status(const std::vector<JobStatus>& jobs, int sessions,
                          std::size_t queued);
std::string encode_pong();

// ---- Client-side encode/decode ------------------------------------------

std::string encode_submit(const JobSpec& spec, const std::string& tag);
std::string encode_cancel(std::uint64_t job);
std::string encode_ping();
std::string encode_status_request();
std::string encode_shutdown();

/// A decoded server response (the union of all response payloads; check
/// `type` before reading type-specific fields).
struct Response {
  enum class Type { Ack, Error, Progress, Result, Status, Pong };
  Type type = Type::Pong;
  std::string tag;
  std::uint64_t job = 0;
  std::string message;  ///< error text
  SynthProgress progress;
  JobOutcome outcome;  ///< result: report/metrics/ledger fields only
  std::vector<JobStatus> jobs;
  int sessions = 0;
  std::uint64_t queued = 0;
};

bool parse_response(const std::string& frame, Response* out, std::string* err);

}  // namespace hsyn::serve
