// Wire protocol of the hsyn synthesis service (docs/PROTOCOL.md).
//
// Messages are newline-delimited JSON objects (one frame per line; see
// serve/framing.h). Requests are parsed with util/json.h's JsonValue,
// responses are emitted with JsonWriter, so escaping is correct in both
// directions and multi-line report text travels inside one frame.
//
// Request types:   submit, cancel, status, ping, shutdown,
//                  stats, watch, unwatch
// Response types:  ack, progress, result, status, pong, error,
//                  stats, telemetry
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "serve/jobs.h"
#include "synth/moves.h"

namespace hsyn::serve {

/// A decoded client request.
struct Request {
  enum class Type { Submit, Cancel, Status, Ping, Shutdown, Stats, Watch,
                    Unwatch };
  Type type = Type::Ping;
  std::string tag;        ///< client correlation tag, echoed in the ack
  std::uint64_t job = 0;  ///< cancel: which job; watch: job filter (0 = all)
  JobSpec spec;           ///< submit: the job
};

/// Parse one request frame. False (and `err`) on malformed JSON, an
/// unknown type, or invalid field values.
bool parse_request(const std::string& frame, Request* out, std::string* err);

/// One job's lifecycle state as reported by `status`.
enum class JobState : int {
  Queued = 0,
  Running = 1,
  Done = 2,
  Failed = 3,
  Cancelled = 4,
};

const char* job_state_name(JobState s);

struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  std::string error;  ///< failure/cancellation reason once finished
};

/// One job's live search counters inside a `stats`/`telemetry` frame
/// (the wire mirror of obs::JobSample, plus the engine's job state).
struct JobTelemetry {
  std::uint64_t job = 0;
  std::string state;  ///< job_state_name(); empty outside the daemon
  std::uint64_t passes = 0;
  std::int32_t pass = -1;   ///< last finished pass (-1 = none yet)
  std::int32_t depth = -1;  ///< moves kept in that pass
  std::uint64_t moves_applied = 0;
  std::uint64_t moves_accepted = 0;
  std::uint64_t applied_by_class[obs::kTelemetryClasses] = {0, 0, 0};
  std::uint64_t accepted_by_class[obs::kTelemetryClasses] = {0, 0, 0};
  std::uint64_t rewrites_refuted = 0;
  std::uint64_t strategies_done = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t replay_samples = 0;
  double best_cost = 0;  ///< 0 = no cost recorded yet
  double vdd = 0;
  double clock_ns = 0;
};

/// One process-wide telemetry sample on the wire (`telemetry` frames
/// streamed to watchers; also the payload half of `stats`).
struct TelemetryFrame {
  std::uint64_t seq = 0;
  std::uint64_t t_ms = 0;
  std::uint64_t uptime_ms = 0;
  std::uint64_t regions = 0;
  std::uint64_t tasks = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t ledger_dropped = 0;
  std::uint64_t rewrites_refuted = 0;
  std::vector<JobTelemetry> jobs;  ///< ascending by job id
};

/// Server-level half of the `stats` reply.
struct ServerStats {
  std::uint64_t uptime_ms = 0;
  int sessions = 0;
  std::uint64_t active = 0;  ///< jobs currently running
  std::uint64_t queued = 0;
  int interval_ms = 0;       ///< sampler interval
  bool sampler_running = false;
};

/// Join one obs sample with the engine's job table: every status row
/// (filtered to `job_filter` when nonzero) becomes a JobTelemetry, with
/// counters merged in from the sample's matching per-job slot.
TelemetryFrame make_frame(const obs::TelemetrySample& s,
                          std::uint64_t job_filter,
                          const std::vector<JobStatus>& jobs);

// ---- Response encoders (each returns one full frame, no newline) --------

std::string encode_ack(const std::string& tag, std::uint64_t job);
std::string encode_error(const std::string& tag, const std::string& message);
std::string encode_progress(std::uint64_t job, const SynthProgress& ev);
std::string encode_result(std::uint64_t job, const JobOutcome& outcome);
std::string encode_status(const std::vector<JobStatus>& jobs, int sessions,
                          std::size_t queued);
std::string encode_pong(std::uint64_t uptime_ms = 0, std::uint64_t active = 0,
                        std::uint64_t queued = 0);
std::string encode_telemetry(const TelemetryFrame& f);
std::string encode_stats(const ServerStats& st, const TelemetryFrame& f);

// ---- Client-side encode/decode ------------------------------------------

std::string encode_submit(const JobSpec& spec, const std::string& tag);
std::string encode_cancel(std::uint64_t job);
std::string encode_ping();
std::string encode_status_request();
std::string encode_shutdown();
std::string encode_stats_request();
std::string encode_watch(std::uint64_t job);  ///< 0 = whole server
std::string encode_unwatch();

/// A decoded server response (the union of all response payloads; check
/// `type` before reading type-specific fields).
struct Response {
  enum class Type { Ack, Error, Progress, Result, Status, Pong, Stats,
                    Telemetry };
  Type type = Type::Pong;
  std::string tag;
  std::uint64_t job = 0;
  std::string message;  ///< error text
  SynthProgress progress;
  JobOutcome outcome;  ///< result: report/metrics/ledger fields only
  std::vector<JobStatus> jobs;
  int sessions = 0;
  std::uint64_t queued = 0;
  std::uint64_t uptime_ms = 0;  ///< pong
  std::uint64_t active = 0;     ///< pong
  ServerStats stats;            ///< stats
  TelemetryFrame telemetry;     ///< stats + telemetry
};

bool parse_response(const std::string& frame, Response* out, std::string* err);

}  // namespace hsyn::serve
