// One client connection of the hsyn daemon.
//
// A connection owns a socket fd and a write lock. The request loop runs
// on a dedicated thread; response frames are written both by that
// thread (acks, status) and by scheduler session threads (progress,
// results), so every write goes through ClientConn::send, which
// serializes frames and turns writes to a dead peer into no-ops. Job
// callbacks keep the ClientConn alive via shared_ptr, so a job that
// outlives its client finishes harmlessly.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace hsyn::serve {

class JobEngine;

class ClientConn {
 public:
  explicit ClientConn(int fd) : fd_(fd) {}
  ~ClientConn() { close(); }
  ClientConn(const ClientConn&) = delete;
  ClientConn& operator=(const ClientConn&) = delete;

  /// Write one frame; serialized against concurrent senders. False once
  /// the connection is dead (peer gone or close() called) -- the first
  /// failed write kills it.
  bool send(const std::string& frame);

  /// Mark dead and close the socket. Safe to call twice; safe while
  /// other threads are in send().
  void close();

  int fd() const { return fd_; }
  bool alive() const { return alive_.load(std::memory_order_acquire); }

 private:
  const int fd_;
  std::mutex mu_;
  std::atomic<bool> alive_{true};
};

/// Run one connection's request loop on the calling thread until the
/// client disconnects. Submissions go to `engine`; a `shutdown` request
/// is acked and forwarded to `request_shutdown` (the server then tears
/// everything down, including this connection).
void serve_connection(const std::shared_ptr<ClientConn>& conn,
                      JobEngine& engine,
                      const std::function<void()>& request_shutdown);

}  // namespace hsyn::serve
