// Lightweight counters for the deterministic parallel runtime.
//
// Every parallel region bumps a handful of relaxed atomics. Phase wall
// times (ScopedPhase) accumulate into per-thread maps that are merged
// at snapshot time: a ScopedPhase destruction touches only its own
// thread's (uncontended) buffer, never a global lock, so phase timing
// inside parallel candidate evaluation no longer serializes workers.
// A ScopedPhase also opens an obs::Span of the same name, so every
// instrumented phase shows up in --trace-out traces for free.
//
// Counter sources registered here are forwarded to the unified metrics
// registry (obs::Registry); stats_snapshot() polls them through it.
// A Stats value is a plain snapshot, safe to copy and print.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "obs/trace.h"

namespace hsyn::runtime {

/// Snapshot of the global runtime counters (see stats_snapshot()).
struct Stats {
  std::uint64_t regions = 0;        ///< parallel regions dispatched to the pool
  std::uint64_t inline_regions = 0; ///< regions run serially (1 thread, tiny n, nested)
  std::uint64_t chunks = 0;         ///< statically formed chunks executed
  std::uint64_t tasks = 0;          ///< individual task indices executed
  std::uint64_t max_region_chunks = 0;  ///< deepest steal-free queue observed
  /// Wall seconds per instrumented phase (ScopedPhase name -> seconds),
  /// summed over all threads that ran the phase.
  std::map<std::string, double> phase_seconds;
  /// Named counter groups polled from registered sources (the evaluation
  /// caches register themselves here): source -> counter -> value.
  std::map<std::string, std::map<std::string, std::uint64_t>> counters;

  std::string to_string() const;
};

/// Copy the counters accumulated since start / the last reset_stats().
Stats stats_snapshot();

/// Register a named source of counters polled by every stats_snapshot()
/// (e.g. a cache reporting hits/misses/evictions). Registering the same
/// name again replaces the source. The source is stored in the unified
/// metrics registry (obs::Registry::register_source), so it also appears
/// in --metrics-out snapshots. Sources own their counters: reset_stats()
/// does NOT zero them -- it resets only the runtime's own counters and
/// phase timers. Callers comparing source counters across runs must
/// diff successive snapshots (or reset the owning cache) themselves.
void register_counter_source(
    const std::string& name,
    std::function<std::map<std::string, std::uint64_t>()> fn);

/// Zero the runtime's counters and phase timers (not registered sources;
/// see register_counter_source).
void reset_stats();

/// RAII wall-clock timer: accumulates its lifetime into
/// stats.phase_seconds[name] and emits an obs::Span when tracing is on.
/// Nesting different names is fine; destruction costs two steady_clock
/// reads plus one uncontended per-thread mutex acquisition.
///
/// `name` must point at storage that outlives the process's use of
/// stats (string literals, or stable registry strings like the check
/// engine's per-pass phase names).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_;
  obs::Span span_;
};

namespace detail {
// Counter hooks: the pool counts regions and chunks, the parallel
// helpers count the task indices they cover.
void count_region(int nchunks, bool inline_run);
void count_tasks(int ntasks);
}  // namespace detail

}  // namespace hsyn::runtime
