// Lightweight counters for the deterministic parallel runtime.
//
// Every parallel region bumps a handful of relaxed atomics; phase wall
// times are accumulated under a small mutex only when a ScopedPhase is
// in scope. A Stats value is a plain snapshot, safe to copy and print.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace hsyn::runtime {

/// Snapshot of the global runtime counters (see stats_snapshot()).
struct Stats {
  std::uint64_t regions = 0;        ///< parallel regions dispatched to the pool
  std::uint64_t inline_regions = 0; ///< regions run serially (1 thread, tiny n, nested)
  std::uint64_t chunks = 0;         ///< statically formed chunks executed
  std::uint64_t tasks = 0;          ///< individual task indices executed
  std::uint64_t max_region_chunks = 0;  ///< deepest steal-free queue observed
  /// Wall seconds per instrumented phase (ScopedPhase name -> seconds).
  std::map<std::string, double> phase_seconds;
  /// Named counter groups polled from registered sources (the evaluation
  /// caches register themselves here): source -> counter -> value.
  std::map<std::string, std::map<std::string, std::uint64_t>> counters;

  std::string to_string() const;
};

/// Copy the counters accumulated since start / the last reset_stats().
Stats stats_snapshot();

/// Register a named source of counters polled by every stats_snapshot()
/// (e.g. a cache reporting hits/misses/evictions). Registering the same
/// name again replaces the source. Sources own their counters:
/// reset_stats() does not zero them.
void register_counter_source(
    const std::string& name,
    std::function<std::map<std::string, std::uint64_t>()> fn);

/// Zero all counters and phase timers.
void reset_stats();

/// RAII wall-clock timer: accumulates its lifetime into
/// stats.phase_seconds[name]. Nesting different names is fine; the cost
/// is two steady_clock reads plus one mutex acquisition at destruction.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_;
};

namespace detail {
// Counter hooks: the pool counts regions and chunks, the parallel
// helpers count the task indices they cover.
void count_region(int nchunks, bool inline_run);
void count_tasks(int ntasks);
}  // namespace detail

}  // namespace hsyn::runtime
