// Deterministic data-parallel helpers over the global ThreadPool.
//
// All helpers use *static chunking*: the index range [0, n) is cut into
// at most threads() contiguous chunks whose boundaries depend only on n
// and the chunk count -- never on timing. Per-chunk results land in
// per-chunk slots and are combined strictly in chunk (hence index)
// order, so every helper returns bit-identical results regardless of
// thread count, including the degenerate serial pool.
//
//   parallel_for(n, body)        body(i) for i in [0, n), disjoint writes
//   parallel_map(n, fn)          vector<R>{fn(0), ..., fn(n-1)}
//   parallel_best(n, init, eval, keep)
//                                left fold: keep(acc, eval(i)) in index
//                                order -- the ordered reduction used for
//                                move selection (first-best-wins ties
//                                behave exactly like the serial loop)
//
// `keep(Acc&, T&&)` must implement an associative selection (keep the
// better of two, merge-with-order-independence, ...); the helpers fold
// each chunk locally from a fresh `init`, then fold the chunk
// accumulators into the final result in chunk order.
#pragma once

#include <utility>
#include <vector>

#include "runtime/stats.h"
#include "runtime/thread_pool.h"

namespace hsyn::runtime {

/// Static chunk boundaries: chunk c of k covers [begin(c), begin(c+1)).
inline int chunk_begin(int n, int k, int c) {
  return static_cast<int>((static_cast<long long>(n) * c) / k);
}

/// Number of chunks used for an n-element region on the current pool.
inline int num_chunks(int n) {
  const int k = pool().threads();
  return n < k ? (n < 1 ? 0 : n) : k;
}

/// Run body(i) for every i in [0, n). body must only write state owned
/// by index i (or thread-local state); iteration order across chunks is
/// unspecified, within a chunk it is ascending.
template <typename Body>
void parallel_for(int n, Body&& body) {
  if (n <= 0) return;
  const int k = num_chunks(n);
  detail::count_tasks(n);
  pool().run(k, [&](int c) {
    const int lo = chunk_begin(n, k, c);
    const int hi = chunk_begin(n, k, c + 1);
    for (int i = lo; i < hi; ++i) body(i);
  });
}

/// Map fn over [0, n) into a vector in index order.
template <typename Fn>
auto parallel_map(int n, Fn&& fn)
    -> std::vector<decltype(fn(0))> {
  using R = decltype(fn(0));
  std::vector<R> out(static_cast<std::size_t>(n > 0 ? n : 0));
  parallel_for(n, [&](int i) { out[static_cast<std::size_t>(i)] = fn(i); });
  return out;
}

/// Ordered reduction: semantically identical to
///
///   Acc acc = init; for (i : [0, n)) keep(acc, eval(i)); return acc;
///
/// for any thread count, provided `keep` is an associative selection
/// with `init` as identity (e.g. "replace acc when strictly better",
/// which preserves serial first-wins tie-breaking).
template <typename Acc, typename Eval, typename Keep>
Acc parallel_best(int n, Acc init, Eval&& eval, Keep&& keep) {
  if (n <= 0) return init;
  detail::count_tasks(n);
  const int k = num_chunks(n);
  if (k <= 1) {
    detail::count_region(1, /*inline_run=*/true);
    Acc acc = std::move(init);
    for (int i = 0; i < n; ++i) keep(acc, eval(i));
    return acc;
  }
  std::vector<Acc> partial(static_cast<std::size_t>(k), init);
  pool().run(k, [&](int c) {
    Acc acc = partial[static_cast<std::size_t>(c)];
    const int lo = chunk_begin(n, k, c);
    const int hi = chunk_begin(n, k, c + 1);
    for (int i = lo; i < hi; ++i) keep(acc, eval(i));
    partial[static_cast<std::size_t>(c)] = std::move(acc);
  });
  Acc out = std::move(init);
  for (Acc& p : partial) keep(out, std::move(p));
  return out;
}

/// A candidate in an explicit (cost, index)-ordered best-of reduction.
/// index < 0 means "empty" (the fold identity).
template <typename T>
struct Scored {
  double cost = 0;
  int index = -1;
  T value{};
};

/// The explicit comparator for portfolio-style best-of reductions:
/// strictly lower cost wins; equal cost breaks toward the lower index.
/// Reduction order can therefore never flip the winner between
/// equal-cost candidates -- unlike a bare "keep when strictly better"
/// fold, whose tie-break is implicit in visit order.
template <typename T>
bool scored_better(const Scored<T>& a, const Scored<T>& b) {
  if (b.index < 0) return false;
  if (a.index < 0) return true;
  if (a.cost != b.cost) return b.cost < a.cost;
  return b.index < a.index;
}

/// keep() combiner over Scored<T>: associative, identity = empty.
template <typename T>
void keep_scored(Scored<T>& acc, Scored<T>&& cand) {
  if (scored_better(acc, cand)) acc = std::move(cand);
}

/// parallel_best with the explicit (cost, index) tie-break baked in:
/// eval(i) returns a Scored<T> (callers set cost and value; index is
/// overwritten with i). Returns the minimum-cost candidate, lowest
/// index on ties, identical at any thread count.
template <typename Eval>
auto parallel_best_indexed(int n, Eval&& eval)
    -> decltype(eval(0)) {
  using S = decltype(eval(0));
  return parallel_best(
      n, S{},
      [&](int i) {
        S s = eval(i);
        s.index = i;
        return s;
      },
      [](S& acc, S&& cand) { keep_scored(acc, std::move(cand)); });
}

}  // namespace hsyn::runtime
