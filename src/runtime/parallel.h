// Deterministic data-parallel helpers over the global ThreadPool.
//
// All helpers use *static chunking*: the index range [0, n) is cut into
// at most threads() contiguous chunks whose boundaries depend only on n
// and the chunk count -- never on timing. Per-chunk results land in
// per-chunk slots and are combined strictly in chunk (hence index)
// order, so every helper returns bit-identical results regardless of
// thread count, including the degenerate serial pool.
//
//   parallel_for(n, body)        body(i) for i in [0, n), disjoint writes
//   parallel_map(n, fn)          vector<R>{fn(0), ..., fn(n-1)}
//   parallel_best(n, init, eval, keep)
//                                left fold: keep(acc, eval(i)) in index
//                                order -- the ordered reduction used for
//                                move selection (first-best-wins ties
//                                behave exactly like the serial loop)
//
// `keep(Acc&, T&&)` must implement an associative selection (keep the
// better of two, merge-with-order-independence, ...); the helpers fold
// each chunk locally from a fresh `init`, then fold the chunk
// accumulators into the final result in chunk order.
#pragma once

#include <utility>
#include <vector>

#include "runtime/stats.h"
#include "runtime/thread_pool.h"

namespace hsyn::runtime {

/// Static chunk boundaries: chunk c of k covers [begin(c), begin(c+1)).
inline int chunk_begin(int n, int k, int c) {
  return static_cast<int>((static_cast<long long>(n) * c) / k);
}

/// Number of chunks used for an n-element region on the current pool.
inline int num_chunks(int n) {
  const int k = pool().threads();
  return n < k ? (n < 1 ? 0 : n) : k;
}

/// Run body(i) for every i in [0, n). body must only write state owned
/// by index i (or thread-local state); iteration order across chunks is
/// unspecified, within a chunk it is ascending.
template <typename Body>
void parallel_for(int n, Body&& body) {
  if (n <= 0) return;
  const int k = num_chunks(n);
  detail::count_tasks(n);
  pool().run(k, [&](int c) {
    const int lo = chunk_begin(n, k, c);
    const int hi = chunk_begin(n, k, c + 1);
    for (int i = lo; i < hi; ++i) body(i);
  });
}

/// Map fn over [0, n) into a vector in index order.
template <typename Fn>
auto parallel_map(int n, Fn&& fn)
    -> std::vector<decltype(fn(0))> {
  using R = decltype(fn(0));
  std::vector<R> out(static_cast<std::size_t>(n > 0 ? n : 0));
  parallel_for(n, [&](int i) { out[static_cast<std::size_t>(i)] = fn(i); });
  return out;
}

/// Ordered reduction: semantically identical to
///
///   Acc acc = init; for (i : [0, n)) keep(acc, eval(i)); return acc;
///
/// for any thread count, provided `keep` is an associative selection
/// with `init` as identity (e.g. "replace acc when strictly better",
/// which preserves serial first-wins tie-breaking).
template <typename Acc, typename Eval, typename Keep>
Acc parallel_best(int n, Acc init, Eval&& eval, Keep&& keep) {
  if (n <= 0) return init;
  detail::count_tasks(n);
  const int k = num_chunks(n);
  if (k <= 1) {
    detail::count_region(1, /*inline_run=*/true);
    Acc acc = std::move(init);
    for (int i = 0; i < n; ++i) keep(acc, eval(i));
    return acc;
  }
  std::vector<Acc> partial(static_cast<std::size_t>(k), init);
  pool().run(k, [&](int c) {
    Acc acc = partial[static_cast<std::size_t>(c)];
    const int lo = chunk_begin(n, k, c);
    const int hi = chunk_begin(n, k, c + 1);
    for (int i = lo; i < hi; ++i) keep(acc, eval(i));
    partial[static_cast<std::size_t>(c)] = std::move(acc);
  });
  Acc out = std::move(init);
  for (Acc& p : partial) keep(out, std::move(p));
  return out;
}

}  // namespace hsyn::runtime
