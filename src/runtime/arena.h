// Per-worker bump-pointer scratch arenas.
//
// The trace-replay kernel (power/replay.cpp) needs short-lived column
// buffers for every hierarchical call it expands -- one set per chunk,
// per nesting level, thousands of times per synthesis pass. A
// general-purpose allocator would serialize the workers on its locks and
// fragment; instead every thread owns one Arena and allocates by bumping
// an offset into geometrically grown blocks.
//
// Usage is strictly stack-shaped: open a Frame, allocate freely, and the
// Frame's destructor returns the arena to its state at construction.
// Blocks are kept across frames, so steady-state replay performs zero
// heap allocations. Frames nest (one per hierarchy level).
//
// Arenas are thread-local and never shared, so no synchronization is
// needed on the allocation path; only the process-wide high-water
// statistic (surfaced as the `replay.arena_bytes` gauge) is atomic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hsyn::runtime {

class Arena {
 public:
  /// The calling thread's arena (created on first use).
  static Arena& local();

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// RAII mark/release: destruction frees everything allocated since
  /// construction (blocks stay reserved for reuse).
  class Frame {
   public:
    explicit Frame(Arena& a) : a_(a), block_(a.cur_block_), off_(a.cur_off_) {}
    ~Frame() {
      a_.cur_block_ = block_;
      a_.cur_off_ = off_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Arena& a_;
    std::size_t block_;
    std::size_t off_;
  };

  /// `n` uninitialized 32-bit values.
  std::int32_t* alloc_i32(std::size_t n) {
    return static_cast<std::int32_t*>(alloc(n * sizeof(std::int32_t)));
  }

  /// `n` uninitialized pointer slots.
  template <typename T>
  T** alloc_ptrs(std::size_t n) {
    return static_cast<T**>(alloc(n * sizeof(T*)));
  }

  /// Uninitialized storage; bumps advance in 64-byte strides so separate
  /// allocations never share a cache line.
  void* alloc(std::size_t bytes);

  /// Bytes currently reserved by this thread's arena blocks.
  [[nodiscard]] std::size_t reserved() const;

  /// Sum of `reserved()` over every arena ever created in the process
  /// (monotone; arenas live for their thread's lifetime).
  static std::uint64_t total_reserved();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;  ///< index of the block being bumped
  std::size_t cur_off_ = 0;    ///< bump offset within blocks_[cur_block_]
};

}  // namespace hsyn::runtime
