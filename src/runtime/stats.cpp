#include "runtime/stats.h"

#include <atomic>
#include <chrono>
#include <mutex>

#include "util/fmt.h"

namespace hsyn::runtime {
namespace {

std::atomic<std::uint64_t> g_regions{0};
std::atomic<std::uint64_t> g_inline_regions{0};
std::atomic<std::uint64_t> g_chunks{0};
std::atomic<std::uint64_t> g_tasks{0};
std::atomic<std::uint64_t> g_max_region_chunks{0};

std::mutex g_phase_mu;
std::map<std::string, double>& phase_map() {
  static std::map<std::string, double> m;
  return m;
}

using CounterSource = std::function<std::map<std::string, std::uint64_t>()>;
std::mutex g_sources_mu;
std::map<std::string, CounterSource>& source_map() {
  static std::map<std::string, CounterSource> m;
  return m;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string Stats::to_string() const {
  std::string out =
      strf("runtime: %llu pooled + %llu inline regions, %llu chunks, "
           "%llu tasks, max queue depth %llu",
           static_cast<unsigned long long>(regions),
           static_cast<unsigned long long>(inline_regions),
           static_cast<unsigned long long>(chunks),
           static_cast<unsigned long long>(tasks),
           static_cast<unsigned long long>(max_region_chunks));
  for (const auto& [name, sec] : phase_seconds) {
    out += strf("\n  phase %-16s %8.3f s", name.c_str(), sec);
  }
  for (const auto& [source, kv] : counters) {
    out += strf("\n  %s:", source.c_str());
    for (const auto& [name, value] : kv) {
      out += strf(" %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  return out;
}

Stats stats_snapshot() {
  Stats s;
  s.regions = g_regions.load(std::memory_order_relaxed);
  s.inline_regions = g_inline_regions.load(std::memory_order_relaxed);
  s.chunks = g_chunks.load(std::memory_order_relaxed);
  s.tasks = g_tasks.load(std::memory_order_relaxed);
  s.max_region_chunks = g_max_region_chunks.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_phase_mu);
    s.phase_seconds = phase_map();
  }
  // Poll sources outside the registry lock: a source may take its own
  // locks (shard mutexes) and must never nest under ours.
  std::map<std::string, CounterSource> sources;
  {
    std::lock_guard<std::mutex> lock(g_sources_mu);
    sources = source_map();
  }
  for (const auto& [name, fn] : sources) s.counters[name] = fn();
  return s;
}

void register_counter_source(const std::string& name,
                             std::function<std::map<std::string, std::uint64_t>()> fn) {
  std::lock_guard<std::mutex> lock(g_sources_mu);
  source_map()[name] = std::move(fn);
}

void reset_stats() {
  g_regions.store(0, std::memory_order_relaxed);
  g_inline_regions.store(0, std::memory_order_relaxed);
  g_chunks.store(0, std::memory_order_relaxed);
  g_tasks.store(0, std::memory_order_relaxed);
  g_max_region_chunks.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_phase_mu);
  phase_map().clear();
}

ScopedPhase::ScopedPhase(const char* name) : name_(name), start_ns_(now_ns()) {}

ScopedPhase::~ScopedPhase() {
  const double sec = static_cast<double>(now_ns() - start_ns_) * 1e-9;
  std::lock_guard<std::mutex> lock(g_phase_mu);
  phase_map()[name_] += sec;
}

namespace detail {

void count_region(int nchunks, bool inline_run) {
  (inline_run ? g_inline_regions : g_regions)
      .fetch_add(1, std::memory_order_relaxed);
  g_chunks.fetch_add(static_cast<std::uint64_t>(nchunks),
                     std::memory_order_relaxed);
  std::uint64_t prev =
      g_max_region_chunks.load(std::memory_order_relaxed);
  while (prev < static_cast<std::uint64_t>(nchunks) &&
         !g_max_region_chunks.compare_exchange_weak(
             prev, static_cast<std::uint64_t>(nchunks),
             std::memory_order_relaxed)) {
  }
}

void count_tasks(int ntasks) {
  g_tasks.fetch_add(static_cast<std::uint64_t>(ntasks),
                    std::memory_order_relaxed);
}

}  // namespace detail
}  // namespace hsyn::runtime
