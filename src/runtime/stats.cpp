#include "runtime/stats.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "util/fmt.h"

namespace hsyn::runtime {
namespace {

std::atomic<std::uint64_t> g_regions{0};
std::atomic<std::uint64_t> g_inline_regions{0};
std::atomic<std::uint64_t> g_chunks{0};
std::atomic<std::uint64_t> g_tasks{0};
std::atomic<std::uint64_t> g_max_region_chunks{0};

/// Per-thread phase accumulator. The owning thread's ScopedPhase
/// destructor takes the buffer's own mutex (uncontended on the hot
/// path); snapshot/reset take every buffer's mutex in turn.
struct PhaseBuf {
  mutable std::mutex mu;
  std::map<std::string, double> seconds;
};

struct PhaseRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<PhaseBuf>> bufs;
};

PhaseRegistry& phase_registry() {
  static PhaseRegistry* r = new PhaseRegistry();
  return *r;
}

PhaseBuf& local_phase_buf() {
  // shared_ptr keeps the buffer alive in the registry after the thread
  // exits (the pool is rebuilt on set_threads; its workers' phase time
  // must survive into later snapshots).
  thread_local std::shared_ptr<PhaseBuf> tl = [] {
    auto buf = std::make_shared<PhaseBuf>();
    PhaseRegistry& r = phase_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.bufs.push_back(buf);
    return buf;
  }();
  return *tl;
}

std::map<std::string, double> merged_phase_seconds() {
  std::map<std::string, double> out;
  PhaseRegistry& r = phase_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    for (const auto& [name, sec] : buf->seconds) out[name] += sec;
  }
  return out;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Expose the runtime's own counters and phase timers as metrics
/// sources, so --metrics-out includes them without a second registry.
void ensure_registered() {
  static const bool once = [] {
    obs::Registry::instance().register_source("runtime", [] {
      std::map<std::string, std::uint64_t> m;
      m["regions"] = g_regions.load(std::memory_order_relaxed);
      m["inline_regions"] = g_inline_regions.load(std::memory_order_relaxed);
      m["chunks"] = g_chunks.load(std::memory_order_relaxed);
      m["tasks"] = g_tasks.load(std::memory_order_relaxed);
      m["max_region_chunks"] =
          g_max_region_chunks.load(std::memory_order_relaxed);
      return m;
    });
    obs::Registry::instance().register_source("runtime-phase-us", [] {
      std::map<std::string, std::uint64_t> m;
      for (const auto& [name, sec] : merged_phase_seconds()) {
        m[name] = static_cast<std::uint64_t>(sec * 1e6);
      }
      return m;
    });
    return true;
  }();
  (void)once;
}

}  // namespace

std::string Stats::to_string() const {
  std::string out =
      strf("runtime: %llu pooled + %llu inline regions, %llu chunks, "
           "%llu tasks, max queue depth %llu",
           static_cast<unsigned long long>(regions),
           static_cast<unsigned long long>(inline_regions),
           static_cast<unsigned long long>(chunks),
           static_cast<unsigned long long>(tasks),
           static_cast<unsigned long long>(max_region_chunks));
  for (const auto& [name, sec] : phase_seconds) {
    out += strf("\n  phase %-16s %8.3f s", name.c_str(), sec);
  }
  for (const auto& [source, kv] : counters) {
    out += strf("\n  %s:", source.c_str());
    for (const auto& [name, value] : kv) {
      out += strf(" %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  return out;
}

Stats stats_snapshot() {
  ensure_registered();
  Stats s;
  s.regions = g_regions.load(std::memory_order_relaxed);
  s.inline_regions = g_inline_regions.load(std::memory_order_relaxed);
  s.chunks = g_chunks.load(std::memory_order_relaxed);
  s.tasks = g_tasks.load(std::memory_order_relaxed);
  s.max_region_chunks = g_max_region_chunks.load(std::memory_order_relaxed);
  s.phase_seconds = merged_phase_seconds();
  // Sources now live in the unified metrics registry; it polls them
  // outside its own lock (a source may take shard mutexes).
  s.counters = obs::Registry::instance().poll_sources();
  // The runtime's own sources are redundant inside a runtime snapshot.
  s.counters.erase("runtime");
  s.counters.erase("runtime-phase-us");
  return s;
}

void register_counter_source(const std::string& name,
                             std::function<std::map<std::string, std::uint64_t>()> fn) {
  ensure_registered();
  obs::Registry::instance().register_source(name, std::move(fn));
}

void reset_stats() {
  g_regions.store(0, std::memory_order_relaxed);
  g_inline_regions.store(0, std::memory_order_relaxed);
  g_chunks.store(0, std::memory_order_relaxed);
  g_tasks.store(0, std::memory_order_relaxed);
  g_max_region_chunks.store(0, std::memory_order_relaxed);
  PhaseRegistry& r = phase_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->seconds.clear();
  }
}

ScopedPhase::ScopedPhase(const char* name)
    : name_(name), start_ns_(now_ns()), span_(name) {}

ScopedPhase::~ScopedPhase() {
  const double sec = static_cast<double>(now_ns() - start_ns_) * 1e-9;
  PhaseBuf& buf = local_phase_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.seconds[name_] += sec;
}

namespace detail {

void count_region(int nchunks, bool inline_run) {
  (inline_run ? g_inline_regions : g_regions)
      .fetch_add(1, std::memory_order_relaxed);
  g_chunks.fetch_add(static_cast<std::uint64_t>(nchunks),
                     std::memory_order_relaxed);
  std::uint64_t prev =
      g_max_region_chunks.load(std::memory_order_relaxed);
  while (prev < static_cast<std::uint64_t>(nchunks) &&
         !g_max_region_chunks.compare_exchange_weak(
             prev, static_cast<std::uint64_t>(nchunks),
             std::memory_order_relaxed)) {
  }
}

void count_tasks(int ntasks) {
  g_tasks.fetch_add(static_cast<std::uint64_t>(ntasks),
                    std::memory_order_relaxed);
}

}  // namespace detail
}  // namespace hsyn::runtime
