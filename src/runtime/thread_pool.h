// Deterministic fixed thread pool for H-SYN's parallel hot paths.
//
// Design goals (in priority order):
//   1. Determinism. There is no work stealing and no dynamic load
//      balancing that could change *what* is computed: a region is a
//      fixed set of chunk indices [0, n); which worker runs a chunk may
//      vary between runs, but every chunk computes the same values into
//      its own slot, and callers combine the slots in index order. The
//      result is bit-identical for 1, 2 or 64 threads.
//   2. Simplicity. One region runs at a time; the caller participates
//      in the work and blocks until the region completes. Nested
//      regions (a worker task reaching another parallel_for) execute
//      inline on the calling thread, so recursion -- e.g. move B's
//      nested improvement loop -- cannot deadlock the pool.
//   3. Exceptions propagate: the lowest-indexed chunk's exception is
//      rethrown in the caller once the region has drained.
//
// The process-global pool is configured once via set_threads() (CLI
// --threads, HSYN_THREADS env, or hardware_concurrency) and shared by
// every parallel helper in runtime/parallel.h.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hsyn::runtime {

class ThreadPool {
 public:
  /// A pool of `threads` total execution lanes: the caller plus
  /// `threads - 1` workers. `threads <= 1` spawns no workers; run()
  /// then degrades to a plain serial loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (caller included); always >= 1.
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Execute fn(c) for every chunk index c in [0, nchunks), distributing
  /// chunks over the pool, and block until all complete. Runs inline
  /// (serially, in index order) when the pool is serial, nchunks <= 1,
  /// or the calling thread is already inside a region. The first
  /// exception by chunk index is rethrown.
  ///
  /// Concurrent submitters are safe: when several job threads reach
  /// run() at once (the serve daemon's sessions share this pool), their
  /// regions are serialized through a submit lock -- one region at a
  /// time, each still deterministic in isolation, later submitters
  /// blocking until the pool frees up. The submitting thread's
  /// obs::current_job() tag is re-applied on every lane that executes a
  /// chunk, so per-job attribution (ledger records, cache-budget
  /// charges) survives the fan-out.
  void run(int nchunks, const std::function<void(int)>& fn);

  /// True when the current thread is executing inside a region (worker
  /// or participating caller). Parallel helpers use this to fall back
  /// to serial execution instead of re-entering the pool.
  static bool in_region();

 private:
  void worker_loop();
  /// Pull chunk indices until the region is exhausted.
  void drain_region();

  std::vector<std::thread> workers_;

  /// Held by a submitter for the whole lifetime of its region: regions
  /// from concurrent top-level callers run one after another instead of
  /// corrupting each other's job state.
  std::mutex submit_mu_;

  std::mutex mu_;
  std::condition_variable cv_work_;   ///< workers wait for a new region
  std::condition_variable cv_done_;   ///< caller waits for region drain
  bool stop_ = false;
  std::uint64_t generation_ = 0;      ///< bumped per region
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t job_owner_ = 0;       ///< obs job id of the submitting thread
  int job_chunks_ = 0;
  int next_chunk_ = 0;                ///< next unclaimed chunk (under mu_)
  int busy_ = 0;                      ///< lanes currently inside the region
  std::vector<std::exception_ptr> errors_;  ///< per-chunk, for ordered rethrow
};

/// Configure the process-global pool. `threads <= 0` selects the
/// automatic default: the HSYN_THREADS environment variable if set,
/// otherwise std::thread::hardware_concurrency(). Must not be called
/// while a parallel region is running.
void set_threads(int threads);

/// Lanes of the global pool (>= 1). Instantiates the pool on first use.
int threads();

/// The global pool itself (instantiated on first use).
ThreadPool& pool();

}  // namespace hsyn::runtime
