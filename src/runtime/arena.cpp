#include "runtime/arena.h"

#include <algorithm>
#include <atomic>

namespace hsyn::runtime {
namespace {

constexpr std::size_t kAlign = 64;
constexpr std::size_t kMinBlock = std::size_t{256} << 10;  // 256 KiB

std::atomic<std::uint64_t> g_total_reserved{0};

std::size_t align_up(std::size_t x) { return (x + (kAlign - 1)) & ~(kAlign - 1); }

}  // namespace

Arena& Arena::local() {
  thread_local Arena arena;
  return arena;
}

void* Arena::alloc(std::size_t bytes) {
  bytes = align_up(std::max<std::size_t>(bytes, 1));
  // Advance past blocks too small for this request (their tail space is
  // reclaimed when the enclosing Frame closes).
  while (cur_block_ < blocks_.size() &&
         cur_off_ + bytes > blocks_[cur_block_].size) {
    ++cur_block_;
    cur_off_ = 0;
  }
  if (cur_block_ == blocks_.size()) grow(bytes);
  std::byte* p = blocks_[cur_block_].data.get() + cur_off_;
  cur_off_ += bytes;
  return p;
}

void Arena::grow(std::size_t min_bytes) {
  std::size_t size = blocks_.empty() ? kMinBlock : blocks_.back().size * 2;
  size = std::max(size, align_up(min_bytes));
  Block b;
  // Every bump is a multiple of kAlign from the block base, so columns
  // never straddle each other's cache lines.
  b.data = std::make_unique<std::byte[]>(size);
  b.size = size;
  blocks_.push_back(std::move(b));
  cur_block_ = blocks_.size() - 1;
  cur_off_ = 0;
  g_total_reserved.fetch_add(size, std::memory_order_relaxed);
}

std::size_t Arena::reserved() const {
  std::size_t b = 0;
  for (const Block& blk : blocks_) b += blk.size;
  return b;
}

std::uint64_t Arena::total_reserved() {
  return g_total_reserved.load(std::memory_order_relaxed);
}

}  // namespace hsyn::runtime
