#include "runtime/cancel.h"

#include <chrono>
#include <csignal>

namespace hsyn::runtime {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<int> g_signal{0};

extern "C" void hsyn_signal_handler(int sig) { note_signal(sig); }

}  // namespace

void CancelToken::request(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reason_.empty()) reason_ = reason;
  }
  flag_.store(true, std::memory_order_release);
}

void CancelToken::set_deadline_after_ms(std::int64_t ms) {
  deadline_ns_.store(ms > 0 ? steady_now_ns() + ms * 1'000'000 : 0,
                     std::memory_order_relaxed);
}

bool CancelToken::cancelled() const {
  if (flag_.load(std::memory_order_acquire)) return true;
  if (signal_linked_.load(std::memory_order_relaxed) && signal_received() != 0) {
    return true;
  }
  const std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
  return dl != 0 && steady_now_ns() >= dl;
}

std::string CancelToken::reason() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!reason_.empty()) return reason_;
  }
  if (flag_.load(std::memory_order_acquire)) return "cancelled";
  if (signal_linked_.load(std::memory_order_relaxed)) {
    const int sig = signal_received();
    if (sig != 0) {
      return sig == SIGTERM ? "interrupted by SIGTERM" : "interrupted by SIGINT";
    }
  }
  const std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
  if (dl != 0 && steady_now_ns() >= dl) return "time budget exceeded";
  return "";
}

void CancelToken::throw_if_cancelled() const {
  if (cancelled()) throw Cancelled(reason());
}

void note_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

int signal_received() { return g_signal.load(std::memory_order_relaxed); }

void install_signal_handlers() {
  // std::signal is enough: the handler only stores to an atomic int.
  std::signal(SIGINT, hsyn_signal_handler);
  std::signal(SIGTERM, hsyn_signal_handler);
}

}  // namespace hsyn::runtime
