// Cooperative cancellation for synthesis jobs.
//
// A CancelToken is a small shared flag a driver (the serve daemon's job
// engine, or the CLI's signal handler) trips to ask a running synthesis
// to stop. The synthesis hot loops never poll it; only the *serial*
// control points do -- the improvement engine between moves and passes,
// the synthesizer between operating points -- so cancellation costs
// nothing until it happens and a cancelled run unwinds via the Cancelled
// exception from a well-defined boundary (no torn datapaths escape:
// everything under the unwound frames is owned by them).
//
// Three ways a token trips:
//   * request(reason): explicit (client cancel request, shutdown),
//   * a deadline set with set_deadline_after_ms (per-job time budgets),
//   * link_to_signals(): the process-wide SIGINT/SIGTERM note (the CLI
//     links its token so ^C cancels the in-flight run, letting main
//     flush observability exports before exiting).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace hsyn::runtime {

/// Thrown by throw_if_cancelled(); carries the cancellation reason.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& reason) : std::runtime_error(reason) {}
};

class CancelToken {
 public:
  /// Trip the token explicitly. The first reason wins.
  void request(const std::string& reason);

  /// Trip automatically once `ms` milliseconds of steady-clock time have
  /// elapsed from now (per-job time budget). ms <= 0 clears the deadline.
  void set_deadline_after_ms(std::int64_t ms);

  /// Also consider the process-wide signal note (note_signal) a trip.
  void link_to_signals() { signal_linked_.store(true, std::memory_order_relaxed); }

  bool cancelled() const;

  /// Why the token tripped ("" when it has not).
  std::string reason() const;

  /// Throw Cancelled when tripped; the cheap serial checkpoint.
  void throw_if_cancelled() const;

 private:
  std::atomic<bool> flag_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady-clock ns; 0 = none
  std::atomic<bool> signal_linked_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

/// Record that `sig` was received (async-signal-safe; called from the
/// SIGINT/SIGTERM handlers installed by install_signal_handlers()).
void note_signal(int sig);

/// The last signal recorded by note_signal (0 = none).
int signal_received();

/// Install SIGINT and SIGTERM handlers that call note_signal. Idempotent.
void install_signal_handlers();

}  // namespace hsyn::runtime
