#include "runtime/thread_pool.h"

#include <cstdlib>
#include <memory>

#include "obs/job.h"
#include "runtime/stats.h"

namespace hsyn::runtime {
namespace {

thread_local bool tl_in_region = false;

struct RegionGuard {
  bool prev;
  RegionGuard() : prev(tl_in_region) { tl_in_region = true; }
  ~RegionGuard() { tl_in_region = prev; }
};

}  // namespace

bool ThreadPool::in_region() { return tl_in_region; }

ThreadPool::ThreadPool(int threads) {
  const int workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain_region() {
  // Called with mu_ held; claims and executes chunks until none remain.
  std::unique_lock<std::mutex> lock(mu_, std::adopt_lock);
  while (next_chunk_ < job_chunks_) {
    const int c = next_chunk_++;
    const std::uint64_t owner = job_owner_;
    ++busy_;
    lock.unlock();
    {
      RegionGuard guard;
      // Attribute this lane's work to the submitting job (per-job ledger
      // records and cache-budget charges; see obs/job.h).
      obs::JobScope job_scope(owner);
      try {
        (*job_)(c);
      } catch (...) {
        errors_[static_cast<std::size_t>(c)] = std::current_exception();
      }
    }
    lock.lock();
    --busy_;
    if (busy_ == 0 && next_chunk_ >= job_chunks_) cv_done_.notify_all();
  }
  lock.release();  // caller keeps holding mu_
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_work_.wait(lock, [&] {
      return stop_ || (generation_ != seen && job_ != nullptr &&
                       next_chunk_ < job_chunks_);
    });
    if (stop_) return;
    seen = generation_;
    drain_region();
  }
}

void ThreadPool::run(int nchunks, const std::function<void(int)>& fn) {
  if (nchunks <= 0) return;
  if (workers_.empty() || nchunks == 1 || tl_in_region) {
    detail::count_region(nchunks, /*inline_run=*/true);
    RegionGuard guard;
    for (int c = 0; c < nchunks; ++c) fn(c);
    return;
  }

  // Serialize whole regions across concurrent submitters: the serve
  // daemon's job sessions all share this pool, and the region state
  // below (job_, next_chunk_, errors_) describes exactly one region.
  std::lock_guard<std::mutex> submit(submit_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_owner_ = obs::current_job();
  job_chunks_ = nchunks;
  next_chunk_ = 0;
  errors_.assign(static_cast<std::size_t>(nchunks), nullptr);
  ++generation_;
  cv_work_.notify_all();

  drain_region();  // the caller is a lane too
  cv_done_.wait(lock, [&] { return next_chunk_ >= job_chunks_ && busy_ == 0; });
  job_ = nullptr;

  std::exception_ptr first;
  for (const std::exception_ptr& e : errors_) {
    if (e) {
      first = e;
      break;
    }
  }
  errors_.clear();
  lock.unlock();
  detail::count_region(nchunks, /*inline_run=*/false);
  if (first) std::rethrow_exception(first);
}

namespace {

std::unique_ptr<ThreadPool>& pool_slot() {
  static std::unique_ptr<ThreadPool> slot;
  return slot;
}

std::mutex& pool_mu() {
  static std::mutex mu;
  return mu;
}

int auto_threads() {
  if (const char* env = std::getenv("HSYN_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

}  // namespace

void set_threads(int threads) {
  const int n = threads > 0 ? threads : auto_threads();
  std::lock_guard<std::mutex> lock(pool_mu());
  if (pool_slot() && pool_slot()->threads() == n) return;
  pool_slot() = std::make_unique<ThreadPool>(n);
}

ThreadPool& pool() {
  std::lock_guard<std::mutex> lock(pool_mu());
  if (!pool_slot()) pool_slot() = std::make_unique<ThreadPool>(auto_threads());
  return *pool_slot();
}

int threads() { return pool().threads(); }

}  // namespace hsyn::runtime
