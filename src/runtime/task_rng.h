// Per-task deterministic RNG streams for parallel regions.
//
// A parallel task must never share an Rng with its siblings: the
// interleaving of draws would depend on scheduling. Instead each task
// derives its own stream from (base seed, task index) through SplitMix64
// (util/rng.h), so the stream consumed by task i is a pure function of
// the seed and i -- identical for any thread count, any chunking and
// any execution order.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace hsyn::runtime {

/// The generator for task `task_index` of a region seeded with
/// `base_seed`. Successive task indices get decorrelated, reproducible
/// streams; the same (seed, index) pair always yields the same stream.
inline Rng task_rng(std::uint64_t base_seed, std::uint64_t task_index) {
  // Two SplitMix64 steps: advance to the task's slot, then scramble so
  // that neighboring indices share no low-bit structure.
  std::uint64_t s = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  s = splitmix64(s);
  s = splitmix64(s);
  return Rng(s ? s : 1);
}

}  // namespace hsyn::runtime
