// The evaluation engine: one process-wide set of sharded LRU caches
// (eval/cache.h) that owns candidate evaluation end to end.
//
// It replaces three scattered thread-local memos (the estimator's energy
// cache, the trace evaluator's per-DFG memo, the gate expander's per-op
// memo) with caches that are
//   * shared across the parallel runtime's workers,
//   * keyed by content fingerprints (rtl/fingerprint.h, Dfg::content_hash,
//     trace_fingerprint, Library::uid) -- never by raw pointers,
//   * byte-bounded with LRU eviction,
//   * instrumented (hit/miss/eviction/cross-thread counters surfaced
//     through runtime/stats counter sources).
//
// Capacity: HSYN_EVAL_CACHE_MB environment variable or set_capacity_mb()
// (the hsyn CLI exposes --eval-cache-mb). The budget is split evenly
// over the six caches.
//
// Verification: HSYN_EVAL_VERIFY=1 makes every hit recompute the value
// and compare -- the cheap way to catch a stale-fingerprint bug in a
// whole synthesis run. Debug builds can afford it; tests use it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "eval/cache.h"
#include "power/estimator.h"
#include "rtl/cost.h"

namespace hsyn {
class EdgeMatrix;      // power/replay.h: edge-major trace values
struct ReplayProgram;  // power/replay.h: compiled DFG replay program
}  // namespace hsyn

namespace hsyn::lint {
struct DataflowFacts;  // check/dataflow.h: abstract-interpretation facts
}  // namespace hsyn::lint

namespace hsyn::eval {

/// Snapshot of one job's cache-budget account (see set_job_cache_budget).
struct JobCacheUsage {
  std::uint64_t limit_bytes = 0;    ///< configured insertion budget
  std::uint64_t charged_bytes = 0;  ///< bytes admitted so far
  std::uint64_t rejected = 0;       ///< inserts skipped over budget
};

class EvalEngine {
 public:
  /// The process-wide engine (thread-safe).
  static EvalEngine& instance();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  // ---- Typed caches ------------------------------------------------------
  ShardedLruCache<EnergyBreakdown>& energy_cache() { return energy_; }
  ShardedLruCache<AreaBreakdown>& area_cache() { return area_; }
  ShardedLruCache<std::shared_ptr<const Connectivity>>& connectivity_cache() {
    return conn_;
  }
  ShardedLruCache<std::shared_ptr<const EdgeMatrix>>& edge_values_cache() {
    return edge_vals_;
  }
  /// Compiled replay programs (power/replay.h), keyed by Dfg content
  /// hash: a DFG is compiled at most once per structural novelty.
  ShardedLruCache<std::shared_ptr<const ReplayProgram>>& program_cache() {
    return programs_;
  }
  /// Dataflow analysis results (check/dataflow.h), keyed by Dfg content
  /// hash (+ trace fingerprint for trace-seeded analyses): a DFG is
  /// abstractly interpreted at most once per structural novelty.
  ShardedLruCache<std::shared_ptr<const lint::DataflowFacts>>& facts_cache() {
    return facts_;
  }

  // ---- High-level cached evaluations ------------------------------------
  /// This level's connectivity, computed at most once per structural
  /// fingerprint.
  std::shared_ptr<const Connectivity> connectivity(const Datapath& dp);

  /// Seed the connectivity cache for a freshly mutated candidate from its
  /// base datapath's connectivity plus the move's dirty-region hint,
  /// avoiding the full recompute downstream area/energy would do. With
  /// binding_changed == false the base connectivity is aliased verbatim.
  /// The hint must be complete (see DirtyRegion); HSYN_EVAL_VERIFY checks
  /// it against the full recompute.
  void prime_connectivity(const Datapath& cand,
                          std::shared_ptr<const Connectivity> base,
                          const DirtyRegion& dirty);

  /// Recursive area (area_of's implementation), memoized per level.
  AreaBreakdown area(const Datapath& dp, const Library& lib, bool top_level);

  // ---- Capacity and lifecycle -------------------------------------------
  void set_capacity_mb(std::size_t mb);
  std::size_t capacity_bytes() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  /// Drop every cached value (explicit invalidation; counters survive).
  void clear();
  /// True when HSYN_EVAL_VERIFY=1: hits recompute and compare.
  bool verify() const { return verify_; }

  // ---- Per-job cache budgets (serve daemon) -------------------------------
  /// Cap the bytes that threads tagged with obs job `job` may insert
  /// into the shared caches (across all six caches together). Over
  /// budget, puts become no-ops -- a pure cache bypass that slows the
  /// job down but cannot change its results. Job 0 (solo CLI) is never
  /// budgeted. `limit_bytes == 0` removes the cap for `job`.
  void set_job_cache_budget(std::uint64_t job, std::size_t limit_bytes);
  /// Drop `job`'s account entirely (job finished or was cancelled).
  void clear_job_cache_budget(std::uint64_t job);
  /// Current account for `job`; all-zero when no budget is set.
  JobCacheUsage job_cache_usage(std::uint64_t job) const;

 private:
  EvalEngine();

  std::atomic<std::size_t> capacity_;
  bool verify_ = false;
  ShardedLruCache<EnergyBreakdown> energy_;
  ShardedLruCache<AreaBreakdown> area_;
  ShardedLruCache<std::shared_ptr<const Connectivity>> conn_;
  ShardedLruCache<std::shared_ptr<const EdgeMatrix>> edge_vals_;
  ShardedLruCache<std::shared_ptr<const ReplayProgram>> programs_;
  ShardedLruCache<std::shared_ptr<const lint::DataflowFacts>> facts_;
};

}  // namespace hsyn::eval
