#include "eval/engine.h"

#include <cstdlib>
#include <string>
#include <unordered_map>

#include "obs/job.h"
#include "obs/trace.h"
#include "power/replay.h"
#include "rtl/fingerprint.h"
#include "runtime/stats.h"
#include "util/fmt.h"

namespace hsyn::eval {
namespace {

// Context tags keep the key spaces of the typed caches disjoint even if
// two caches were ever merged or dumped side by side.
constexpr std::uint64_t kConnContext = 0xC011EC71F1E10001ull;
constexpr std::uint64_t kAreaTag = 0xA4EAA4EAA4EA0002ull;

constexpr std::size_t kDefaultCapacityMb = 64;

std::size_t env_capacity_bytes() {
  if (const char* s = std::getenv("HSYN_EVAL_CACHE_MB")) {
    char* end = nullptr;
    const long mb = std::strtol(s, &end, 10);
    if (end != s && mb > 0) return static_cast<std::size_t>(mb) << 20;
  }
  return kDefaultCapacityMb << 20;
}

bool env_verify() {
  const char* s = std::getenv("HSYN_EVAL_VERIFY");
  return s != nullptr && s[0] == '1';
}

/// Rough heap footprint of a Connectivity (for the byte budget).
std::size_t connectivity_bytes(const Connectivity& c) {
  // A node of std::set<int> costs ~64 bytes with allocator overhead; a
  // port vector entry ~sizeof(std::set). Close enough for budgeting.
  constexpr std::size_t kSetNode = 64;
  std::size_t b = sizeof(Connectivity);
  auto ports_bytes = [&](const std::vector<std::vector<std::set<int>>>& pv) {
    for (const auto& ports : pv) {
      b += sizeof(ports) + ports.size() * sizeof(std::set<int>);
      for (const auto& srcs : ports) b += srcs.size() * kSetNode;
    }
  };
  ports_bytes(c.fu_port_srcs);
  ports_bytes(c.child_port_srcs);
  b += c.reg_srcs.size() * sizeof(std::set<SourceKey>);
  for (const auto& srcs : c.reg_srcs) b += srcs.size() * kSetNode;
  return b;
}

std::uint64_t area_context(const Library& lib, bool top_level) {
  std::uint64_t h = hash_mix(kAreaTag, lib.uid());
  h = hash_mix(h, top_level ? 1 : 2);
  return hash_final(h);
}

/// One job's insertion account. Shared-ptr'd so a thread-local cache of
/// the lookup stays valid after clear_job_cache_budget on another thread.
struct JobBudget {
  std::atomic<std::size_t> limit{0};
  std::atomic<std::size_t> charged{0};
  std::atomic<std::uint64_t> rejected{0};
};

struct BudgetRegistry {
  mutable std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<JobBudget>> budgets;
  /// Bumped on every set/clear; invalidates the thread-local lookup
  /// caches so the mutex stays off the put() hot path.
  std::atomic<std::uint64_t> generation{0};
};

BudgetRegistry& budget_registry() {
  static BudgetRegistry* r = new BudgetRegistry();
  return *r;
}

std::shared_ptr<JobBudget> budget_for(std::uint64_t job) {
  struct Cached {
    std::uint64_t job = 0;
    std::uint64_t gen = ~std::uint64_t{0};
    std::shared_ptr<JobBudget> budget;
  };
  thread_local Cached c;
  BudgetRegistry& r = budget_registry();
  const std::uint64_t gen = r.generation.load(std::memory_order_acquire);
  if (c.job == job && c.gen == gen) return c.budget;
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.budgets.find(job);
  c.job = job;
  c.gen = gen;
  c.budget = it == r.budgets.end() ? nullptr : it->second;
  return c.budget;
}

}  // namespace

namespace detail {

std::uint64_t thread_token() {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t token =
      next.fetch_add(1, std::memory_order_relaxed);
  return token;
}

bool admit_current_job(std::size_t bytes) {
  const std::uint64_t job = obs::current_job();
  if (job == 0) return true;
  const std::shared_ptr<JobBudget> b = budget_for(job);
  if (b == nullptr) return true;
  // Charge optimistically, refund on reject: `charged` stays an accurate
  // gauge of admitted bytes without a lock.
  const std::size_t before =
      b->charged.fetch_add(bytes, std::memory_order_relaxed);
  if (before + bytes <= b->limit.load(std::memory_order_relaxed)) return true;
  b->charged.fetch_sub(bytes, std::memory_order_relaxed);
  b->rejected.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace detail

EvalEngine& EvalEngine::instance() {
  static EvalEngine engine;
  return engine;
}

EvalEngine::EvalEngine()
    : capacity_(env_capacity_bytes()),
      verify_(env_verify()),
      energy_(capacity_.load() / 6),
      area_(capacity_.load() / 6),
      conn_(capacity_.load() / 6),
      edge_vals_(capacity_.load() / 6),
      programs_(capacity_.load() / 6),
      facts_(capacity_.load() / 6) {
  runtime::register_counter_source(
      "eval-energy-cache", [this] { return energy_.counter_map(); });
  runtime::register_counter_source(
      "eval-area-cache", [this] { return area_.counter_map(); });
  runtime::register_counter_source(
      "eval-conn-cache", [this] { return conn_.counter_map(); });
  runtime::register_counter_source(
      "eval-edge-vals-cache", [this] { return edge_vals_.counter_map(); });
  runtime::register_counter_source(
      "eval-program-cache", [this] { return programs_.counter_map(); });
  runtime::register_counter_source(
      "eval-facts-cache", [this] { return facts_.counter_map(); });
}

std::shared_ptr<const Connectivity> EvalEngine::connectivity(const Datapath& dp) {
  const Key key{structure_fingerprint(dp), 0, kConnContext};
  if (auto hit = conn_.get(key)) {
    if (!verify_) return *hit;
    check(dp.fingerprint() == dp.fingerprint_scratch(),
          "eval verify: stale incremental fingerprint");
    check(**hit == connectivity_of(dp),
          "eval verify: cached connectivity diverges from recompute");
    return *hit;
  }
  // Cache miss: the full recompute is the expensive path worth a span.
  obs::Span span("conn-fill");
  auto conn = std::make_shared<const Connectivity>(connectivity_of(dp));
  conn_.put(key, conn, connectivity_bytes(*conn));
  return conn;
}

void EvalEngine::prime_connectivity(const Datapath& cand,
                                    std::shared_ptr<const Connectivity> base,
                                    const DirtyRegion& dirty) {
  if (base == nullptr) return;
  std::shared_ptr<const Connectivity> conn;
  if (!dirty.binding_changed && base->fu_port_srcs.size() == cand.fus.size() &&
      base->child_port_srcs.size() == cand.children.size() &&
      base->reg_srcs.size() == cand.regs.size()) {
    conn = std::move(base);  // nothing rewired: alias, zero extra memory
  } else {
    conn = std::make_shared<const Connectivity>(
        refresh_connectivity(cand, *base, dirty));
  }
  if (verify_) {
    check(cand.fingerprint() == cand.fingerprint_scratch(),
          "eval verify: stale incremental fingerprint (prime)");
    check(*conn == connectivity_of(cand),
          "eval verify: dirty-region hint produced wrong connectivity");
  }
  const Key key{structure_fingerprint(cand), 0, kConnContext};
  conn_.put(key, conn, connectivity_bytes(*conn));
}

AreaBreakdown EvalEngine::area(const Datapath& dp, const Library& lib,
                               bool top_level) {
  const Key key{structure_fingerprint(dp), 0, area_context(lib, top_level)};
  const auto cached = area_.get(key);
  if (cached && !verify_) return *cached;
  obs::Span span("area-fill");
  const auto conn = connectivity(dp);
  AreaBreakdown a = area_of_level(dp, lib, top_level, *conn);
  for (const ChildUnit& ch : dp.children) {
    a.children += area(*ch.impl, lib, /*top_level=*/false).total();
  }
  if (cached) {
    check(cached->fu == a.fu && cached->reg == a.reg && cached->mux == a.mux &&
              cached->wire == a.wire && cached->ctrl == a.ctrl &&
              cached->children == a.children,
          "eval verify: cached area diverges from recompute");
    return *cached;
  }
  area_.put(key, a, sizeof(AreaBreakdown));
  return a;
}

void EvalEngine::set_capacity_mb(std::size_t mb) {
  const std::size_t bytes = mb << 20;
  capacity_.store(bytes, std::memory_order_relaxed);
  energy_.set_capacity(bytes / 6);
  area_.set_capacity(bytes / 6);
  conn_.set_capacity(bytes / 6);
  edge_vals_.set_capacity(bytes / 6);
  programs_.set_capacity(bytes / 6);
  facts_.set_capacity(bytes / 6);
}

void EvalEngine::clear() {
  energy_.clear();
  area_.clear();
  conn_.clear();
  edge_vals_.clear();
  programs_.clear();
  facts_.clear();
}

void EvalEngine::set_job_cache_budget(std::uint64_t job,
                                      std::size_t limit_bytes) {
  if (job == 0) return;  // job 0 means "no job": never budgeted
  BudgetRegistry& r = budget_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (limit_bytes == 0) {
    r.budgets.erase(job);
  } else {
    auto& slot = r.budgets[job];
    if (slot == nullptr) slot = std::make_shared<JobBudget>();
    slot->limit.store(limit_bytes, std::memory_order_relaxed);
  }
  r.generation.fetch_add(1, std::memory_order_release);
}

void EvalEngine::clear_job_cache_budget(std::uint64_t job) {
  BudgetRegistry& r = budget_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.budgets.erase(job);
  r.generation.fetch_add(1, std::memory_order_release);
}

JobCacheUsage EvalEngine::job_cache_usage(std::uint64_t job) const {
  BudgetRegistry& r = budget_registry();
  std::shared_ptr<JobBudget> b;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.budgets.find(job);
    if (it != r.budgets.end()) b = it->second;
  }
  JobCacheUsage u;
  if (b != nullptr) {
    u.limit_bytes = b->limit.load(std::memory_order_relaxed);
    u.charged_bytes = b->charged.load(std::memory_order_relaxed);
    u.rejected = b->rejected.load(std::memory_order_relaxed);
  }
  return u;
}

}  // namespace hsyn::eval
