// Sharded, mutex-striped, bounded-LRU evaluation cache.
//
// One cache instance stores the results of one pure evaluation function
// (energy, area, connectivity, edge values), keyed by content
// fingerprints. The cache is shared across the runtime's worker threads:
// a candidate evaluated by one worker is a hit for every other worker.
//
// Determinism: every cached value is a pure function of its key, and a
// hit returns the stored value verbatim, so caching changes only *when*
// work happens, never *what* is returned -- results stay bit-identical
// at any thread count and under any eviction schedule.
//
// Keys are exact. The three fields are compared verbatim (never
// pre-mixed into one word), so a collision requires all three 64-bit
// fingerprints to collide simultaneously.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/telemetry.h"
#include "util/hash.h"

namespace hsyn::eval {

/// Cache identity of one evaluation: what was evaluated (structure),
/// under which stimulus (trace), in which setting (context: operating
/// point, library uid, behavior index, objective flags...). Unused
/// dimensions stay 0.
struct Key {
  std::uint64_t structure = 0;
  std::uint64_t trace = 0;
  std::uint64_t context = 0;

  friend bool operator==(const Key&, const Key&) = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(
        hash_final(hash_mix(hash_mix(k.structure, k.trace), k.context)));
  }
};

/// Snapshot of one cache's counters.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Hits served to a thread other than the inserting one -- nonzero
  /// proves the cache is shared across workers.
  std::uint64_t cross_thread_hits = 0;
  /// Inserts skipped because the calling job's cache budget was
  /// exhausted (serve daemon; see EvalEngine::set_job_cache_budget).
  std::uint64_t budget_rejects = 0;
  std::uint64_t entries = 0;  ///< current entry count (gauge)
  std::uint64_t bytes = 0;    ///< current charged bytes (gauge)
};

namespace detail {
/// Small dense id for the calling thread (not the opaque std::thread::id),
/// stored per entry to detect cross-thread reuse.
std::uint64_t thread_token();

/// Per-job insertion gate, defined in engine.cpp next to the budget
/// registry. Charges `bytes` against the calling thread's obs job
/// (obs::current_job()) and returns whether the insert may proceed.
/// Always true for job 0 (solo CLI runs) and for jobs without a budget.
/// A rejected insert is a pure cache bypass: the value was already
/// computed and is returned to the caller either way, so budgets change
/// only speed, never results.
bool admit_current_job(std::size_t bytes);

/// Per-thread lookup totals summed over every ShardedLruCache instance.
/// The move ledger reads deltas around one candidate evaluation to
/// attribute cache traffic to that candidate (observational only: which
/// thread pays a miss depends on arrival order).
inline thread_local std::uint64_t t_thread_hits = 0;
inline thread_local std::uint64_t t_thread_misses = 0;
}  // namespace detail

/// This thread's cumulative hit/miss counts across all eval caches.
inline std::uint64_t thread_cache_hits() { return detail::t_thread_hits; }
inline std::uint64_t thread_cache_misses() { return detail::t_thread_misses; }

template <typename V>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Copy of the stored value, or nullopt. A hit refreshes recency.
  std::optional<V> get(const Key& k) {
    Shard& s = shard(k);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(k);
    if (it == s.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      ++detail::t_thread_misses;
      obs::note_job_cache(/*hit=*/false);
      return std::nullopt;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    ++detail::t_thread_hits;
    obs::note_job_cache(/*hit=*/true);
    if (it->second->owner != detail::thread_token()) {
      cross_thread_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second->value;
  }

  /// Insert or refresh `k`. `value_bytes` is the caller's estimate of the
  /// value's heap footprint; a fixed per-entry overhead is added. May
  /// evict least-recently-used entries of the same shard, but never the
  /// entry just inserted (an oversized value is admitted alone rather
  /// than thrashing).
  void put(const Key& k, V v, std::size_t value_bytes) {
    const std::size_t bytes = value_bytes + kEntryOverhead;
    if (!detail::admit_current_job(bytes)) {
      budget_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Shard& s = shard(k);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(k);
    if (it != s.index.end()) {
      s.bytes -= it->second->bytes;
      it->second->value = std::move(v);
      it->second->bytes = bytes;
      it->second->owner = detail::thread_token();
      s.bytes += bytes;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
    } else {
      s.lru.push_front(Entry{k, std::move(v), bytes, detail::thread_token()});
      s.index.emplace(k, s.lru.begin());
      s.bytes += bytes;
      insertions_.fetch_add(1, std::memory_order_relaxed);
    }
    const std::size_t shard_cap =
        capacity_.load(std::memory_order_relaxed) / kShards;
    while (s.bytes > shard_cap && s.lru.size() > 1) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      s.index.erase(victim.key);
      s.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Drop every entry (explicit invalidation). Counters are kept.
  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.index.clear();
      s.lru.clear();
      s.bytes = 0;
    }
  }

  /// Change the byte budget; evicts immediately if now over.
  void set_capacity(std::size_t capacity_bytes) {
    capacity_.store(capacity_bytes, std::memory_order_relaxed);
    const std::size_t shard_cap = capacity_bytes / kShards;
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      while (s.bytes > shard_cap && s.lru.size() > 1) {
        const Entry& victim = s.lru.back();
        s.bytes -= victim.bytes;
        s.index.erase(victim.key);
        s.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  CacheCounters counters() const {
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.insertions = insertions_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.cross_thread_hits = cross_thread_hits_.load(std::memory_order_relaxed);
    c.budget_rejects = budget_rejects_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      c.entries += s.lru.size();
      c.bytes += s.bytes;
    }
    return c;
  }

  /// Counters as a name->value map (runtime::register_counter_source).
  std::map<std::string, std::uint64_t> counter_map() const {
    const CacheCounters c = counters();
    return {{"hits", c.hits},
            {"misses", c.misses},
            {"insertions", c.insertions},
            {"evictions", c.evictions},
            {"cross_thread_hits", c.cross_thread_hits},
            {"budget_rejects", c.budget_rejects},
            {"entries", c.entries},
            {"bytes", c.bytes}};
  }

 private:
  static constexpr std::size_t kShards = 16;
  /// Charged per entry on top of the caller's value estimate: list node,
  /// hash bucket, key, bookkeeping.
  static constexpr std::size_t kEntryOverhead = 96;

  struct Entry {
    Key key;
    V value;
    std::size_t bytes = 0;
    std::uint64_t owner = 0;  ///< thread token of the last writer
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash> index;
    std::size_t bytes = 0;
  };

  Shard& shard(const Key& k) { return shards_[KeyHash{}(k) % kShards]; }

  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> capacity_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> cross_thread_hits_{0};
  std::atomic<std::uint64_t> budget_rejects_{0};
};

}  // namespace hsyn::eval
