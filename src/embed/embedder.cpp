#include "embed/embedder.h"

#include <algorithm>
#include <limits>
#include <set>

#include "embed/hungarian.h"
#include "rtl/cost.h"
#include "util/fmt.h"

namespace hsyn {

FuMergeUsage fu_merge_usage(const Datapath& dp, int fu_idx, const Library& lib,
                            const OpPoint& pt) {
  FuMergeUsage u;
  const FuType& t = lib.fu(dp.fus[static_cast<std::size_t>(fu_idx)].type);
  u.cycles = lib.cycles(dp.fus[static_cast<std::size_t>(fu_idx)].type, pt);
  u.pipelined = t.pipelined;
  for (const BehaviorImpl& bi : dp.behaviors) {
    for (const Invocation& inv : bi.invs) {
      if (inv.unit.kind != UnitRef::Kind::Fu || inv.unit.idx != fu_idx) continue;
      u.max_chain = std::max(u.max_chain, static_cast<int>(inv.nodes.size()));
      for (const int nid : inv.nodes) u.ops.insert(bi.dfg->node(nid).op);
    }
  }
  return u;
}

int merged_fu_type(const FuMergeUsage& a, const FuMergeUsage& b,
                   const Library& lib, const OpPoint& pt) {
  if (a.cycles != b.cycles || a.pipelined != b.pipelined) return -1;
  int best = -1;
  double best_area = std::numeric_limits<double>::max();
  for (int t = 0; t < lib.num_fu_types(); ++t) {
    const FuType& ft = lib.fu(t);
    if (ft.chain_depth < std::max(a.max_chain, b.max_chain)) continue;
    if (ft.pipelined != a.pipelined) continue;
    if (lib.cycles(t, pt) != a.cycles) continue;
    bool ok = true;
    for (const Op op : a.ops) ok = ok && ft.supports(op);
    for (const Op op : b.ops) ok = ok && ft.supports(op);
    if (!ok) continue;
    if (ft.area < best_area) {
      best_area = ft.area;
      best = t;
    }
  }
  return best;
}

namespace {

std::string comp_name(const std::string& given, const char* prefix, std::size_t i) {
  return given.empty() ? strf("%s%zu", prefix, i) : given;
}

/// Register sources (producing units) per register, with fu indices
/// remapped through `fu_map` so A- and B-side sources land in the merged
/// index space. Children are offset by `child_off`.
std::vector<std::set<SourceKey>> reg_sources(const Datapath& dp,
                                             const std::vector<int>& fu_map,
                                             int child_off) {
  std::vector<std::set<SourceKey>> srcs(dp.regs.size());
  for (const BehaviorImpl& bi : dp.behaviors) {
    for (const Edge& e : bi.dfg->edges()) {
      const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
      if (r < 0) continue;
      SourceKey key;
      if (e.src.node == kPrimaryIn) {
        key = {3, e.src.port, 0};
      } else {
        const Invocation& inv =
            bi.invs[static_cast<std::size_t>(bi.inv_of(e.src.node))];
        if (inv.unit.kind == UnitRef::Kind::Fu) {
          key = {1, fu_map[static_cast<std::size_t>(inv.unit.idx)], 0};
        } else {
          key = {2, inv.unit.idx + child_off, e.src.port};
        }
      }
      srcs[static_cast<std::size_t>(r)].insert(key);
    }
  }
  return srcs;
}

}  // namespace

std::optional<Datapath> embed_modules(const Datapath& a, const Datapath& b,
                                      const Library& lib, const OpPoint& pt,
                                      EmbedCorrespondence* corr) {
  // Overlapping behavior sets call for plain instance sharing, not
  // embedding.
  for (const BehaviorImpl& bi : a.behaviors) {
    if (b.find_behavior(bi.behavior) >= 0) return std::nullopt;
  }

  const StructureCosts& sc = lib.costs();
  std::vector<FuMergeUsage> ua, ub;
  for (std::size_t i = 0; i < a.fus.size(); ++i) {
    ua.push_back(fu_merge_usage(a, static_cast<int>(i), lib, pt));
  }
  for (std::size_t j = 0; j < b.fus.size(); ++j) {
    ub.push_back(fu_merge_usage(b, static_cast<int>(j), lib, pt));
  }
  const std::size_t na = a.fus.size();
  const std::size_t nb = b.fus.size();
  const std::size_t n = na + nb;

  // ---- Functional-unit matching. ----------------------------------------
  // Rows: A units then B-dummies; cols: B units then A-dummies.
  std::vector<std::vector<int>> pair_type(na, std::vector<int>(nb, -1));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i < na && j < nb) {
        const int t = merged_fu_type(ua[i], ub[j], lib, pt);
        pair_type[i][j] = t;
        if (t < 0) {
          cost[i][j] = kInfeasible;
        } else {
          // Shared unit: its area once, plus a mux-growth estimate (each
          // input port now steered from both modules' registers).
          const int ports = std::max(ua[i].max_chain, ub[j].max_chain) + 1;
          cost[i][j] = lib.fu(t).area + sc.mux_area_per_input * ports;
        }
      } else if (i < na) {
        cost[i][j] = lib.fu(a.fus[i].type).area;  // A unit unmatched
      } else if (j < nb) {
        cost[i][j] = lib.fu(b.fus[j].type).area;  // B unit unmatched
      } else {
        cost[i][j] = 0;  // dummy-dummy
      }
    }
  }
  AssignmentResult fu_asg;
  if (n > 0) fu_asg = solve_assignment(cost);

  Datapath merged(a.name + "+" + b.name);
  std::vector<int> a_fu_map(na, -1);
  std::vector<int> b_fu_map(nb, -1);
  struct FuOrigin {
    int from_a = -1;
    int from_b = -1;
  };
  std::vector<FuOrigin> fu_origin;
  for (std::size_t i = 0; i < na; ++i) {
    const int j = fu_asg.row_to_col[i];
    const bool matched =
        j >= 0 && j < static_cast<int>(nb) &&
        pair_type[i][static_cast<std::size_t>(j)] >= 0;
    const int idx = static_cast<int>(merged.fus.size());
    if (matched) {
      merged.fus.push_back({pair_type[i][static_cast<std::size_t>(j)],
                            comp_name(a.fus[i].name, "u", i)});
      a_fu_map[i] = idx;
      b_fu_map[static_cast<std::size_t>(j)] = idx;
      fu_origin.push_back({static_cast<int>(i), j});
    } else {
      merged.fus.push_back({a.fus[i].type, comp_name(a.fus[i].name, "u", i)});
      a_fu_map[i] = idx;
      fu_origin.push_back({static_cast<int>(i), -1});
    }
  }
  for (std::size_t j = 0; j < nb; ++j) {
    if (b_fu_map[j] >= 0) continue;
    b_fu_map[j] = static_cast<int>(merged.fus.size());
    merged.fus.push_back(
        {b.fus[j].type, comp_name(b.fus[j].name, "u", na + j)});
    fu_origin.push_back({-1, static_cast<int>(j)});
  }

  // ---- Children carried over unmatched. ----------------------------------
  const int a_child_off = 0;
  for (const ChildUnit& c : a.children) merged.children.push_back(c);
  const int b_child_off = static_cast<int>(a.children.size());
  for (const ChildUnit& c : b.children) merged.children.push_back(c);

  // ---- Register matching (interconnect-aware). ---------------------------
  const auto a_srcs = reg_sources(a, a_fu_map, a_child_off);
  const auto b_srcs = reg_sources(b, b_fu_map, b_child_off);
  const std::size_t ra = a.regs.size();
  const std::size_t rb = b.regs.size();
  const std::size_t rn = ra + rb;
  std::vector<std::vector<double>> rcost(rn, std::vector<double>(rn, 0));
  for (std::size_t i = 0; i < rn; ++i) {
    for (std::size_t j = 0; j < rn; ++j) {
      if (i < ra && j < rb) {
        std::set<SourceKey> un = a_srcs[i];
        un.insert(b_srcs[j].begin(), b_srcs[j].end());
        rcost[i][j] = lib.reg().area +
                      sc.mux_area_per_input *
                          std::max(0, static_cast<int>(un.size()) - 1);
      } else if (i < ra) {
        rcost[i][j] = lib.reg().area +
                      sc.mux_area_per_input *
                          std::max(0, static_cast<int>(a_srcs[i].size()) - 1);
      } else if (j < rb) {
        rcost[i][j] = lib.reg().area +
                      sc.mux_area_per_input *
                          std::max(0, static_cast<int>(b_srcs[j].size()) - 1);
      } else {
        rcost[i][j] = 0;
      }
    }
  }
  AssignmentResult reg_asg;
  if (rn > 0) reg_asg = solve_assignment(rcost);

  std::vector<int> a_reg_map(ra, -1);
  std::vector<int> b_reg_map(rb, -1);
  struct RegOrigin {
    int from_a = -1;
    int from_b = -1;
  };
  std::vector<RegOrigin> reg_origin;
  for (std::size_t i = 0; i < ra; ++i) {
    const int j = reg_asg.row_to_col[i];
    const int idx = static_cast<int>(merged.regs.size());
    merged.regs.push_back({strf("q%zu", merged.regs.size() + 1)});
    a_reg_map[i] = idx;
    if (j >= 0 && j < static_cast<int>(rb)) {
      b_reg_map[static_cast<std::size_t>(j)] = idx;
      reg_origin.push_back({static_cast<int>(i), j});
    } else {
      reg_origin.push_back({static_cast<int>(i), -1});
    }
  }
  for (std::size_t j = 0; j < rb; ++j) {
    if (b_reg_map[j] >= 0) continue;
    b_reg_map[j] = static_cast<int>(merged.regs.size());
    merged.regs.push_back({strf("q%zu", merged.regs.size() + 1)});
    reg_origin.push_back({-1, static_cast<int>(j)});
  }

  // ---- Rebind behaviors onto the merged component set. -------------------
  auto rebind = [&](const Datapath& src, const std::vector<int>& fu_map,
                    const std::vector<int>& reg_map, int child_off) {
    for (BehaviorImpl bi : src.behaviors) {
      for (Invocation& inv : bi.invs) {
        if (inv.unit.kind == UnitRef::Kind::Fu) {
          inv.unit.idx = fu_map[static_cast<std::size_t>(inv.unit.idx)];
        } else {
          inv.unit.idx += child_off;
        }
      }
      for (int& r : bi.edge_reg) {
        if (r >= 0) r = reg_map[static_cast<std::size_t>(r)];
      }
      bi.scheduled = false;
      bi.inv_start.clear();
      bi.makespan = 0;
      merged.behaviors.push_back(std::move(bi));
    }
  };
  rebind(a, a_fu_map, a_reg_map, a_child_off);
  rebind(b, b_fu_map, b_reg_map, b_child_off);

  if (corr) {
    corr->entries.clear();
    for (std::size_t k = 0; k < merged.regs.size(); ++k) {
      const RegOrigin& o = reg_origin[k];
      corr->entries.push_back(
          {merged.regs[k].name,
           o.from_a >= 0 ? comp_name(a.regs[static_cast<std::size_t>(o.from_a)].name,
                                     "r", static_cast<std::size_t>(o.from_a))
                         : "-",
           o.from_b >= 0 ? comp_name(b.regs[static_cast<std::size_t>(o.from_b)].name,
                                     "s", static_cast<std::size_t>(o.from_b))
                         : "-",
           lib.reg().name, lib.reg().area});
    }
    for (std::size_t k = 0; k < merged.fus.size(); ++k) {
      const FuOrigin& o = fu_origin[k];
      const FuType& t = lib.fu(merged.fus[k].type);
      corr->entries.push_back(
          {merged.fus[k].name,
           o.from_a >= 0 ? comp_name(a.fus[static_cast<std::size_t>(o.from_a)].name,
                                     "fu", static_cast<std::size_t>(o.from_a))
                         : "-",
           o.from_b >= 0 ? comp_name(b.fus[static_cast<std::size_t>(o.from_b)].name,
                                     "fu", static_cast<std::size_t>(o.from_b))
                         : "-",
           t.name, t.area});
    }
  }
  return merged;
}

}  // namespace hsyn
