// Rectangular min-cost assignment (Hungarian algorithm, O(n^3)).
//
// Used by the RTL embedder to pick the minimum-area component matching
// between two RTL modules, the optimization at the heart of the paper's
// "fast and efficient algorithm for mapping multiple behaviors onto the
// same RTL module".
#pragma once

#include <vector>

namespace hsyn {

/// A large cost marking an infeasible pairing.
inline constexpr double kInfeasible = 1e18;

struct AssignmentResult {
  std::vector<int> row_to_col;  ///< per row, assigned column
  double cost = 0;
};

/// Solve min-cost perfect assignment on a square cost matrix.
/// Infeasible cells should carry kInfeasible; the solver still returns a
/// complete matching (callers treat cells >= kInfeasible/2 as unmatched).
AssignmentResult solve_assignment(const std::vector<std::vector<double>>& cost);

}  // namespace hsyn
