#include "embed/hungarian.h"

#include <algorithm>
#include <limits>

#include "util/fmt.h"

namespace hsyn {

// Classic potentials-based implementation (Jonker-style), O(n^3).
AssignmentResult solve_assignment(const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  for (const auto& row : cost) {
    check(row.size() == n, "solve_assignment: matrix must be square");
  }
  if (n == 0) return {{}, 0};

  const double inf = std::numeric_limits<double>::infinity();
  // 1-indexed internals.
  std::vector<double> u(n + 1, 0), v(n + 1, 0);
  std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, inf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = inf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult res;
  res.row_to_col.assign(n, -1);
  for (std::size_t j = 1; j <= n; ++j) {
    if (p[j] != 0) res.row_to_col[p[j] - 1] = static_cast<int>(j) - 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    res.cost += cost[i][static_cast<std::size_t>(res.row_to_col[i])];
  }
  return res;
}

}  // namespace hsyn
