// RTL embedding (paper Section 3, Example 3, Table 2).
//
// Merges two RTL modules into a single module able to execute every
// behavior of both, *preserving the original schedules and assignments
// verbatim*: the merged module simply provides a component set into which
// both source modules embed. Functional units are matched pairwise when a
// library type exists that covers both sides' operations at identical
// cycle counts (so neither schedule shifts); registers are matched
// freely (behaviors never execute concurrently). The minimum-area
// matching, including a multiplexer/interconnect measure, is found with
// the Hungarian algorithm. Nested complex modules are carried over
// unmatched.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rtl/datapath.h"

namespace hsyn {

/// Correspondence between merged components and their sources, the
/// paper's Table 2 ("Labeling the new RTL module to implement DFG1 and
/// DFG2").
struct EmbedCorrespondence {
  struct Entry {
    std::string merged;    ///< component name in the merged module
    std::string from_a;    ///< source component in module A ("-" if none)
    std::string from_b;    ///< source component in module B ("-" if none)
    std::string lib_type;  ///< library element implementing the component
    double area = 0;
  };
  std::vector<Entry> entries;
};

/// Embed modules `a` and `b` into a new module. Returns nullopt when the
/// two modules implement overlapping behavior sets (plain instance
/// sharing applies instead). The result is unscheduled; callers must
/// reschedule (every move is validated by scheduling).
std::optional<Datapath> embed_modules(const Datapath& a, const Datapath& b,
                                      const Library& lib, const OpPoint& pt,
                                      EmbedCorrespondence* corr = nullptr);

/// How a module uses one of its functional units, aggregated over all
/// behaviors: the ops executed, the longest chain, and the cycle count
/// its current type provides. Shared-unit compatibility (both for
/// embedding and for plain functional-unit merging in move C) is decided
/// on this summary.
struct FuMergeUsage {
  std::set<Op> ops;
  int max_chain = 1;
  int cycles = 1;
  bool pipelined = false;
};

/// Usage summary of functional unit `fu_idx` of `dp`.
FuMergeUsage fu_merge_usage(const Datapath& dp, int fu_idx, const Library& lib,
                            const OpPoint& pt);

/// Cheapest library type able to host both usages at unchanged cycle
/// counts (so neither source schedule shifts); -1 when none exists.
int merged_fu_type(const FuMergeUsage& a, const FuMergeUsage& b,
                   const Library& lib, const OpPoint& pt);

}  // namespace hsyn
