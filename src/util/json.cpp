#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace hsyn {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ",";
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += "{";
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elem_.pop_back();
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += "[";
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elem_.pop_back();
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += json_quote(k);
  out_ += ":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  // Shortest representation that round-trips: try increasing precision.
  for (const int prec : {6, 9, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<std::int64_t>(v)); }

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

namespace {

/// Recursive-descent JSON checker over [p, end). Each parse_* advances p
/// past the construct or returns false.
struct Checker {
  const char* p;
  const char* end;
  int depth = 0;

  void ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool lit(const char* s) {
    const char* q = s;
    const char* r = p;
    while (*q && r < end && *r == *q) ++q, ++r;
    if (*q) return false;
    p = r;
    return true;
  }

  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        const char e = *p;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p))) return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
        ++p;
      } else if (c < 0x20) {
        return false;
      } else {
        ++p;
      }
    }
    return false;
  }

  bool number() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return p > start;
  }

  bool value() {
    if (++depth > 256) return false;
    ws();
    bool ok = false;
    if (p >= end) {
      ok = false;
    } else if (*p == '{') {
      ++p;
      ws();
      if (p < end && *p == '}') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          ws();
          if (!string()) return false;
          ws();
          if (p >= end || *p != ':') return false;
          ++p;
          if (!value()) return false;
          ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '[') {
      ++p;
      ws();
      if (p < end && *p == ']') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          if (!value()) return false;
          ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '"') {
      ok = string();
    } else if (*p == 't') {
      ok = lit("true");
    } else if (*p == 'f') {
      ok = lit("false");
    } else if (*p == 'n') {
      ok = lit("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_valid(const std::string& text) {
  Checker c{text.data(), text.data() + text.size()};
  if (!c.value()) return false;
  c.ws();
  return c.p == c.end;
}

}  // namespace hsyn
