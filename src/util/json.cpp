#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hsyn {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ",";
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += "{";
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elem_.pop_back();
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += "[";
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elem_.pop_back();
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += json_quote(k);
  out_ += ":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  // Shortest representation that round-trips: try increasing precision.
  for (const int prec : {6, 9, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<std::int64_t>(v)); }

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

namespace {

/// Recursive-descent JSON checker over [p, end). Each parse_* advances p
/// past the construct or returns false.
struct Checker {
  const char* p;
  const char* end;
  int depth = 0;

  void ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool lit(const char* s) {
    const char* q = s;
    const char* r = p;
    while (*q && r < end && *r == *q) ++q, ++r;
    if (*q) return false;
    p = r;
    return true;
  }

  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        const char e = *p;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p))) return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
        ++p;
      } else if (c < 0x20) {
        return false;
      } else {
        ++p;
      }
    }
    return false;
  }

  bool number() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return p > start;
  }

  bool value() {
    if (++depth > 256) return false;
    ws();
    bool ok = false;
    if (p >= end) {
      ok = false;
    } else if (*p == '{') {
      ++p;
      ws();
      if (p < end && *p == '}') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          ws();
          if (!string()) return false;
          ws();
          if (p >= end || *p != ':') return false;
          ++p;
          if (!value()) return false;
          ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '[') {
      ++p;
      ws();
      if (p < end && *p == ']') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          if (!value()) return false;
          ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '"') {
      ok = string();
    } else if (*p == 't') {
      ok = lit("true");
    } else if (*p == 'f') {
      ok = lit("false");
    } else if (*p == 'n') {
      ok = lit("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_valid(const std::string& text) {
  Checker c{text.data(), text.data() + text.size()};
  if (!c.value()) return false;
  c.ws();
  return c.p == c.end;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) found = &v;  // last duplicate wins
  }
  return found;
}

std::string JsonValue::str_or(const std::string& key,
                              const std::string& fallback) const {
  const JsonValue* v = get(key);
  return v && v->is_string() ? v->as_string() : fallback;
}

double JsonValue::num_or(const std::string& key, double fallback) const {
  const JsonValue* v = get(key);
  return v && v->is_number() ? v->as_number() : fallback;
}

std::int64_t JsonValue::int_or(const std::string& key,
                               std::int64_t fallback) const {
  const JsonValue* v = get(key);
  return v && v->is_number() ? v->as_int() : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = get(key);
  return v && v->is_bool() ? v->as_bool() : fallback;
}

/// Recursive-descent parser building JsonValue trees. Same grammar and
/// nesting cap as the Checker above, plus \uXXXX decoding to UTF-8.
class JsonParser {
 public:
  JsonParser(const char* begin, const char* end) : begin_(begin), p_(begin), end_(end) {}

  bool parse(JsonValue* out, std::string* err) {
    if (!value(out)) {
      if (err) *err = error_.empty() ? fail("invalid JSON value") : error_;
      return false;
    }
    ws();
    if (p_ != end_) {
      if (err) *err = fail("trailing characters after JSON document");
      return false;
    }
    return true;
  }

 private:
  std::string fail(const std::string& what) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " at offset %lld",
                  static_cast<long long>(p_ - begin_));
    return what + buf;
  }

  bool set_error(const std::string& what) {
    if (error_.empty()) error_ = fail(what);
    return false;
  }

  void ws() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool lit(const char* s) {
    const char* q = s;
    const char* r = p_;
    while (*q && r < end_ && *r == *q) ++q, ++r;
    if (*q) return set_error(std::string("invalid literal (expected ") + s + ")");
    p_ = r;
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(unsigned* out) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (p_ >= end_ || !std::isxdigit(static_cast<unsigned char>(*p_))) {
        return set_error("invalid \\u escape (expected 4 hex digits)");
      }
      const char c = *p_++;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else v |= static_cast<unsigned>(c - 'A' + 10);
    }
    *out = v;
    return true;
  }

  bool string(std::string* out) {
    if (p_ >= end_ || *p_ != '"') return set_error("expected string");
    ++p_;
    out->clear();
    while (p_ < end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c == '\\') {
        ++p_;
        if (p_ >= end_) return set_error("unterminated escape");
        const char e = *p_++;
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            if (!hex4(&cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must pair with \uDC00..\uDFFF.
              if (p_ + 1 >= end_ || p_[0] != '\\' || p_[1] != 'u') {
                return set_error("unpaired high surrogate");
              }
              p_ += 2;
              unsigned lo = 0;
              if (!hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return set_error("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return set_error("unpaired low surrogate");
            }
            append_utf8(*out, cp);
            break;
          }
          default: return set_error("invalid escape character");
        }
      } else if (c < 0x20) {
        return set_error("raw control character in string");
      } else {
        *out += static_cast<char>(c);
        ++p_;
      }
    }
    return set_error("unterminated string");
  }

  bool number(double* out) {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      p_ = start;
      return set_error("invalid number");
    }
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ < end_ && *p_ == '.') {
      ++p_;
      if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return set_error("digit expected after decimal point");
      }
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ < end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return set_error("digit expected in exponent");
      }
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    const std::string tok(start, p_);
    *out = std::strtod(tok.c_str(), nullptr);
    return true;
  }

  bool value(JsonValue* out) {
    if (++depth_ > 256) return set_error("nesting too deep");
    ws();
    bool ok = false;
    if (p_ >= end_) {
      ok = set_error("unexpected end of input");
    } else if (*p_ == '{') {
      ++p_;
      out->kind_ = JsonValue::Kind::Object;
      ws();
      if (p_ < end_ && *p_ == '}') {
        ++p_;
        ok = true;
      } else {
        for (;;) {
          ws();
          std::string key;
          if (!string(&key)) break;
          ws();
          if (p_ >= end_ || *p_ != ':') {
            set_error("expected ':' after object key");
            break;
          }
          ++p_;
          JsonValue member;
          if (!value(&member)) break;
          out->obj_.emplace_back(std::move(key), std::move(member));
          ws();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          if (p_ < end_ && *p_ == '}') {
            ++p_;
            ok = true;
          } else {
            set_error("expected ',' or '}' in object");
          }
          break;
        }
      }
    } else if (*p_ == '[') {
      ++p_;
      out->kind_ = JsonValue::Kind::Array;
      ws();
      if (p_ < end_ && *p_ == ']') {
        ++p_;
        ok = true;
      } else {
        for (;;) {
          JsonValue elem;
          if (!value(&elem)) break;
          out->arr_.push_back(std::move(elem));
          ws();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          if (p_ < end_ && *p_ == ']') {
            ++p_;
            ok = true;
          } else {
            set_error("expected ',' or ']' in array");
          }
          break;
        }
      }
    } else if (*p_ == '"') {
      out->kind_ = JsonValue::Kind::String;
      ok = string(&out->str_);
    } else if (*p_ == 't') {
      out->kind_ = JsonValue::Kind::Bool;
      out->bool_ = true;
      ok = lit("true");
    } else if (*p_ == 'f') {
      out->kind_ = JsonValue::Kind::Bool;
      out->bool_ = false;
      ok = lit("false");
    } else if (*p_ == 'n') {
      out->kind_ = JsonValue::Kind::Null;
      ok = lit("null");
    } else {
      out->kind_ = JsonValue::Kind::Number;
      ok = number(&out->num_);
    }
    --depth_;
    return ok;
  }

  const char* begin_;
  const char* p_;
  const char* end_;
  int depth_ = 0;
  std::string error_;
};

bool json_parse(const std::string& text, JsonValue* out, std::string* err) {
  *out = JsonValue();
  JsonParser parser(text.data(), text.data() + text.size());
  return parser.parse(out, err);
}

}  // namespace hsyn
