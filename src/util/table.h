// ASCII table rendering for experiment reports.
//
// All paper-table reproductions (Tables 1-4) print through this class so
// the bench output has a uniform, diffable layout.
#pragma once

#include <string>
#include <vector>

namespace hsyn {

/// Column-aligned ASCII table. Rows may be added cell-by-cell; a separator
/// row draws a horizontal rule. Cells are right-aligned when they parse as
/// numbers and left-aligned otherwise.
class TextTable {
 public:
  /// Start a new row and fill it with `cells`.
  void row(std::vector<std::string> cells);

  /// Insert a horizontal separator rule at this position.
  void rule();

  /// Render the table to a string (trailing newline included).
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    bool is_rule = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace hsyn
