#include "util/log.h"

#include <cstdio>
#include <stdexcept>

namespace hsyn {
namespace {

LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel lv) {
  switch (lv) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel lv) { g_level = lv; }

LogLevel log_level() { return g_level; }

void log_msg(LogLevel lv, const std::string& msg) {
  if (static_cast<int>(lv) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[hsyn %s] %s\n", level_name(lv), msg.c_str());
}

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  // The exception message reaches the user; the log line additionally
  // pins down the failing condition and source location for bug reports.
  log_error("check failed: (" + std::string(cond) + ") at " + file + ":" +
            std::to_string(line) + ": " + msg);
  throw std::logic_error("hsyn check failed: " + msg);
}

}  // namespace hsyn
