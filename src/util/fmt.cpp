#include "util/fmt.h"

#include <cstdio>
#include <stdexcept>
#include <vector>

namespace hsyn {

std::string strf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string fixed(double v, int prec) { return strf("%.*f", prec, v); }

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::logic_error("hsyn check failed: " + msg);
}

}  // namespace hsyn
