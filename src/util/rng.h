// Deterministic pseudo-random number generation for H-SYN.
//
// Every stochastic element of the system (trace generation, tie-breaking,
// candidate sampling) draws from an explicitly seeded Xorshift64* generator
// so that all experiments are bit-reproducible across runs and hosts.
#pragma once

#include <cstdint>

namespace hsyn {

/// One SplitMix64 output step (Steele, Lea & Flood). Used to derive
/// decorrelated child seeds from a base seed -- in particular the
/// per-task RNG streams of the parallel runtime (runtime/task_rng.h).
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xorshift64* generator. Small, fast, and good enough for workload
/// generation and heuristic tie-breaking (not for cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed ? seed : 1) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Approximately normal(0, 1) via sum of uniforms (Irwin-Hall, 12 terms).
  double gaussian() {
    double s = 0;
    for (int i = 0; i < 12; ++i) s += uniform();
    return s - 6.0;
  }

 private:
  std::uint64_t state_;
};

}  // namespace hsyn
