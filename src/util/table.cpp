#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace hsyn {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end && *end == '\0';
}

}  // namespace

void TextTable::row(std::vector<std::string> cells) {
  Row r;
  r.cells = std::move(cells);
  rows_.push_back(std::move(r));
}

void TextTable::rule() {
  Row r;
  r.is_rule = true;
  rows_.push_back(std::move(r));
}

std::string TextTable::render() const {
  std::size_t ncols = 0;
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }
  std::size_t total = 1;
  for (std::size_t w : width) total += w + 3;

  std::string out;
  for (const auto& r : rows_) {
    if (r.is_rule) {
      out.append(total, '-');
      out.push_back('\n');
      continue;
    }
    out.push_back('|');
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < r.cells.size() ? r.cells[c] : "";
      const std::size_t pad = width[c] - cell.size();
      out.push_back(' ');
      if (looks_numeric(cell)) {
        out.append(pad, ' ');
        out += cell;
      } else {
        out += cell;
        out.append(pad, ' ');
      }
      out += " |";
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace hsyn
