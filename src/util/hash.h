// Small non-cryptographic hashing helpers shared by the structural
// fingerprint and evaluation-cache layers. All functions are pure and
// deterministic across platforms/runs (no pointer or ASLR inputs), which
// is what lets fingerprints serve as cache identities.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace hsyn {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Order-sensitive combine (boost::hash_combine flavor, 64-bit).
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

/// Fold a string into the running hash (FNV-1a over bytes, then length).
inline std::uint64_t hash_str(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return hash_mix(h, s.size());
}

/// Fold a double by bit pattern -- exact, no quantization. Distinct
/// operating points (vdd, clk_ns) must never alias in a cache key.
inline std::uint64_t hash_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(d));
  return hash_mix(h, bits);
}

/// SplitMix64 finalizer: strong avalanche, used before multiset-summing
/// per-element hashes so that sums do not cancel structurally.
inline std::uint64_t hash_final(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace hsyn
