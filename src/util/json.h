// Minimal shared JSON emission (and a syntax validator for tests/tools).
//
// Every exporter in the tree -- the observability trace/ledger/metrics
// writers (src/obs/), hsyn-lint's --json report, the bench JSON files --
// goes through this one escaped-string writer instead of hand-rolled
// printf JSON, so escaping is correct everywhere and output stays
// mechanically parseable.
//
// JsonWriter is a streaming writer with automatic comma placement:
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("name").value("a \"quoted\" string");
//   w.key("n").value(std::uint64_t{3});
//   w.key("rows").begin_array();
//   w.value(1.5).value(2.5);
//   w.end_array();
//   w.end_object();
//   std::string out = w.str();
//
// Doubles are rendered with enough digits to round-trip (%.17g trimmed),
// and non-finite doubles -- not representable in JSON -- render as null.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsyn {

/// Backslash-escape `s` for inclusion inside a JSON string literal
/// (quotes not included). Control characters become \u00XX.
std::string json_escape(const std::string& s);

/// `s` escaped and wrapped in double quotes.
std::string json_quote(const std::string& s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The document built so far.
  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  /// One entry per open container: true = some element already written.
  std::vector<bool> has_elem_;
  bool after_key_ = false;
};

/// Strict-enough JSON syntax check (objects, arrays, strings with
/// escapes, numbers, literals). Used by tests to assert exported traces
/// and metrics snapshots are well-formed without an external parser.
bool json_valid(const std::string& text);

/// A parsed JSON document node (the request side of the server protocol;
/// JsonWriter covers the response side). Object member order is
/// preserved; duplicate keys keep the last value on lookup. Accessors
/// are total: asking an object for a number yields the fallback instead
/// of throwing, so protocol handlers read optional fields in one line:
///
///   JsonValue v;
///   std::string err;
///   if (!json_parse(text, &v, &err)) ...;
///   const std::string type = v.str_or("type", "");
///   const double laxity = v.num_or("laxity", 2.2);
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0) const {
    return is_number() ? num_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : fallback;
  }
  const std::string& as_string() const { return str_; }

  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& items() const { return arr_; }
  /// Object members in document order (empty unless is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return obj_;
  }

  /// Member lookup (last duplicate wins); null when absent or not an
  /// object.
  const JsonValue* get(const std::string& key) const;

  // One-line optional-field reads for protocol handlers.
  std::string str_or(const std::string& key, const std::string& fallback) const;
  double num_or(const std::string& key, double fallback) const;
  std::int64_t int_or(const std::string& key, std::int64_t fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parse one JSON document (trailing whitespace allowed, anything else
/// is an error). On failure returns false and, when `err` is non-null,
/// fills it with a message naming the byte offset. Nesting is capped at
/// 256 levels, matching json_valid; \uXXXX escapes decode to UTF-8
/// (surrogate pairs included).
bool json_parse(const std::string& text, JsonValue* out,
                std::string* err = nullptr);

}  // namespace hsyn
