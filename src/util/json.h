// Minimal shared JSON emission (and a syntax validator for tests/tools).
//
// Every exporter in the tree -- the observability trace/ledger/metrics
// writers (src/obs/), hsyn-lint's --json report, the bench JSON files --
// goes through this one escaped-string writer instead of hand-rolled
// printf JSON, so escaping is correct everywhere and output stays
// mechanically parseable.
//
// JsonWriter is a streaming writer with automatic comma placement:
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("name").value("a \"quoted\" string");
//   w.key("n").value(std::uint64_t{3});
//   w.key("rows").begin_array();
//   w.value(1.5).value(2.5);
//   w.end_array();
//   w.end_object();
//   std::string out = w.str();
//
// Doubles are rendered with enough digits to round-trip (%.17g trimmed),
// and non-finite doubles -- not representable in JSON -- render as null.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsyn {

/// Backslash-escape `s` for inclusion inside a JSON string literal
/// (quotes not included). Control characters become \u00XX.
std::string json_escape(const std::string& s);

/// `s` escaped and wrapped in double quotes.
std::string json_quote(const std::string& s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The document built so far.
  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  /// One entry per open container: true = some element already written.
  std::vector<bool> has_elem_;
  bool after_key_ = false;
};

/// Strict-enough JSON syntax check (objects, arrays, strings with
/// escapes, numbers, literals). Used by tests to assert exported traces
/// and metrics snapshots are well-formed without an external parser.
bool json_valid(const std::string& text);

}  // namespace hsyn
