// Leveled logging for the synthesis engine.
//
// The move engine logs candidate evaluations at Debug level and accepted
// passes at Info level; benches run at Warn so table output stays clean.
#pragma once

#include <string>

namespace hsyn {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global log threshold; messages below it are dropped.
void set_log_level(LogLevel lv);

/// Current global log threshold.
LogLevel log_level();

/// Emit a message at the given level to stderr (if enabled).
void log_msg(LogLevel lv, const std::string& msg);

inline void log_debug(const std::string& m) { log_msg(LogLevel::Debug, m); }
inline void log_info(const std::string& m) { log_msg(LogLevel::Info, m); }
inline void log_warn(const std::string& m) { log_msg(LogLevel::Warn, m); }
inline void log_error(const std::string& m) { log_msg(LogLevel::Error, m); }

/// [[noreturn]] failure path of HSYN_CHECK: logs the failing condition
/// with its source location at Error level, then throws std::logic_error
/// (same contract as util/fmt.h check(), so callers' error handling and
/// tests keep working). Out of line to keep the macro expansion small.
[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);

}  // namespace hsyn

/// Invariant assertion with context: on failure, logs the condition text,
/// source location and message before throwing std::logic_error. Active
/// in every build type -- use for conditions whose cost is trivial next
/// to the surrounding work.
#define HSYN_CHECK(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) ::hsyn::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Debug-only variant for checks on hot paths; compiled out under NDEBUG.
#ifdef NDEBUG
#define HSYN_DCHECK(cond, msg) \
  do {                         \
  } while (0)
#else
#define HSYN_DCHECK(cond, msg) HSYN_CHECK(cond, msg)
#endif
