// Leveled logging for the synthesis engine.
//
// The move engine logs candidate evaluations at Debug level and accepted
// passes at Info level; benches run at Warn so table output stays clean.
#pragma once

#include <string>

namespace hsyn {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global log threshold; messages below it are dropped.
void set_log_level(LogLevel lv);

/// Current global log threshold.
LogLevel log_level();

/// Emit a message at the given level to stderr (if enabled).
void log_msg(LogLevel lv, const std::string& msg);

inline void log_debug(const std::string& m) { log_msg(LogLevel::Debug, m); }
inline void log_info(const std::string& m) { log_msg(LogLevel::Info, m); }
inline void log_warn(const std::string& m) { log_msg(LogLevel::Warn, m); }
inline void log_error(const std::string& m) { log_msg(LogLevel::Error, m); }

}  // namespace hsyn
