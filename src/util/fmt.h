// Minimal printf-style string formatting.
//
// libstdc++ shipped with GCC 12 does not provide <format>, so we wrap
// std::snprintf in a safe std::string-returning helper.
#pragma once

#include <cstdarg>
#include <string>

namespace hsyn {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strf(const char* fmt, ...);

/// Render a double with `prec` digits after the decimal point.
std::string fixed(double v, int prec);

/// Throw std::logic_error with the given message if `cond` is false.
/// Used for internal invariant checks (a function, per Core Guidelines,
/// rather than an assert macro, so it is active in all build types).
void check(bool cond, const std::string& msg);

}  // namespace hsyn
