// Floorplanning and wirelength estimation: the repo's substitute for the
// paper's OCTTOOLS placement (Puppy) and routing (Mosaico) step.
//
// Components of a datapath level (functional units, registers, child
// module blocks) become rectangular blocks whose areas come from the RTL
// area model. Blocks are placed on a row-based floorplan by a greedy
// connectivity-driven ordering (most-connected next, closest free slot),
// and wirelength is measured as half-perimeter (HPWL) over the nets the
// binding implies. The resulting wirelength feeds back nothing -- like
// the paper, layout is a *measurement* of architecture quality -- but it
// lets experiments confirm that the RTL wire model orders architectures
// the same way a physical estimate does.
#pragma once

#include <string>
#include <vector>

#include "rtl/datapath.h"

namespace hsyn::place {

struct Block {
  std::string name;
  double w = 0, h = 0;  ///< dimensions (area from the RTL model, aspect ~1)
  double x = 0, y = 0;  ///< placed lower-left corner
};

struct Net {
  std::vector<int> blocks;  ///< indices into Floorplan::blocks
};

struct Floorplan {
  std::vector<Block> blocks;
  std::vector<Net> nets;
  double width = 0, height = 0;

  /// Half-perimeter wirelength over all nets.
  [[nodiscard]] double hpwl() const;

  /// Bounding-box area of the placement.
  [[nodiscard]] double bbox_area() const { return width * height; }

  /// Sum of block areas (lower bound on bbox_area; the ratio is the
  /// packing efficiency).
  [[nodiscard]] double cell_area() const;
};

/// Place one level of `dp` (children as opaque blocks).
Floorplan floorplan(const Datapath& dp, const Library& lib);

/// Render a small ASCII picture plus the statistics.
std::string floorplan_report(const Floorplan& fp);

}  // namespace hsyn::place
