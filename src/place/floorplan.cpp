#include "place/floorplan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "rtl/cost.h"
#include "util/fmt.h"

namespace hsyn::place {
namespace {

/// Block index space: functional units, then registers, then children.
int fu_block(int i) { return i; }
int reg_block(const Datapath& dp, int r) {
  return static_cast<int>(dp.fus.size()) + r;
}
int child_block(const Datapath& dp, int c) {
  return static_cast<int>(dp.fus.size() + dp.regs.size()) + c;
}

}  // namespace

double Floorplan::hpwl() const {
  double total = 0;
  for (const Net& n : nets) {
    if (n.blocks.size() < 2) continue;
    double x0 = std::numeric_limits<double>::max(), x1 = 0;
    double y0 = std::numeric_limits<double>::max(), y1 = 0;
    for (const int b : n.blocks) {
      const Block& blk = blocks[static_cast<std::size_t>(b)];
      const double cx = blk.x + blk.w / 2;
      const double cy = blk.y + blk.h / 2;
      x0 = std::min(x0, cx);
      x1 = std::max(x1, cx);
      y0 = std::min(y0, cy);
      y1 = std::max(y1, cy);
    }
    total += (x1 - x0) + (y1 - y0);
  }
  return total;
}

double Floorplan::cell_area() const {
  double a = 0;
  for (const Block& b : blocks) a += b.w * b.h;
  return a;
}

Floorplan floorplan(const Datapath& dp, const Library& lib) {
  Floorplan fp;

  // ---- Blocks. -----------------------------------------------------------
  for (std::size_t i = 0; i < dp.fus.size(); ++i) {
    const FuType& t = lib.fu(dp.fus[i].type);
    const double side = std::sqrt(t.area);
    fp.blocks.push_back({dp.fus[i].name.empty() ? strf("fu%zu", i)
                                                : dp.fus[i].name,
                         side, side, 0, 0});
  }
  for (std::size_t r = 0; r < dp.regs.size(); ++r) {
    const double side = std::sqrt(lib.reg().area);
    fp.blocks.push_back({strf("r%zu", r), side, side, 0, 0});
  }
  for (std::size_t c = 0; c < dp.children.size(); ++c) {
    const double area = area_of(*dp.children[c].impl, lib, false).total();
    const double side = std::sqrt(area);
    fp.blocks.push_back({dp.children[c].name.empty() ? strf("child%zu", c)
                                                     : dp.children[c].name,
                         side, side, 0, 0});
  }

  // ---- Nets from the binding: one net per register, connecting it to
  // every unit that reads or writes it. ------------------------------------
  std::vector<std::set<int>> reg_net(dp.regs.size());
  for (std::size_t b = 0; b < dp.behaviors.size(); ++b) {
    const BehaviorImpl& bi = dp.behaviors[b];
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      const Invocation& inv = bi.invs[i];
      const int ublock = inv.unit.kind == UnitRef::Kind::Fu
                             ? fu_block(inv.unit.idx)
                             : child_block(dp, inv.unit.idx);
      for (const int e : dp.inv_input_edges(static_cast<int>(b),
                                            static_cast<int>(i))) {
        const int r = bi.edge_reg[static_cast<std::size_t>(e)];
        if (r >= 0) reg_net[static_cast<std::size_t>(r)].insert(ublock);
      }
      for (const int e : dp.inv_output_edges(static_cast<int>(b),
                                             static_cast<int>(i))) {
        const int r = bi.edge_reg[static_cast<std::size_t>(e)];
        if (r >= 0) reg_net[static_cast<std::size_t>(r)].insert(ublock);
      }
    }
  }
  for (std::size_t r = 0; r < dp.regs.size(); ++r) {
    Net n;
    n.blocks.push_back(reg_block(dp, static_cast<int>(r)));
    n.blocks.insert(n.blocks.end(), reg_net[r].begin(), reg_net[r].end());
    fp.nets.push_back(std::move(n));
  }

  // ---- Greedy connectivity-driven row placement. --------------------------
  // Connectivity degree per block.
  std::vector<int> degree(fp.blocks.size(), 0);
  for (const Net& n : fp.nets) {
    for (const int b : n.blocks) degree[static_cast<std::size_t>(b)]++;
  }
  std::vector<int> order(fp.blocks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (degree[static_cast<std::size_t>(a)] != degree[static_cast<std::size_t>(b)]) {
      return degree[static_cast<std::size_t>(a)] > degree[static_cast<std::size_t>(b)];
    }
    return a < b;
  });

  // Row width targets a roughly square floorplan.
  const double total = fp.cell_area();
  const double target_w = std::max(1.0, std::sqrt(total) * 1.15);
  double x = 0, y = 0, row_h = 0;
  for (const int bi : order) {
    Block& blk = fp.blocks[static_cast<std::size_t>(bi)];
    if (x > 0 && x + blk.w > target_w) {
      x = 0;
      y += row_h;
      row_h = 0;
    }
    blk.x = x;
    blk.y = y;
    x += blk.w;
    row_h = std::max(row_h, blk.h);
    fp.width = std::max(fp.width, blk.x + blk.w);
    fp.height = std::max(fp.height, blk.y + blk.h);
  }
  return fp;
}

std::string floorplan_report(const Floorplan& fp) {
  std::ostringstream out;
  out << strf("floorplan: %zu blocks, %zu nets, %.1f x %.1f (cell area %.1f, "
              "packing %.0f%%), HPWL %.1f\n",
              fp.blocks.size(), fp.nets.size(), fp.width, fp.height,
              fp.cell_area(),
              fp.bbox_area() > 0 ? 100.0 * fp.cell_area() / fp.bbox_area() : 0,
              fp.hpwl());
  // Coarse ASCII map (24 columns).
  constexpr int kCols = 48, kRows = 16;
  std::vector<std::string> canvas(kRows, std::string(kCols, '.'));
  for (std::size_t i = 0; i < fp.blocks.size(); ++i) {
    const Block& b = fp.blocks[i];
    if (fp.width <= 0 || fp.height <= 0) break;
    const int c0 = static_cast<int>(b.x / fp.width * (kCols - 1));
    const int c1 = static_cast<int>((b.x + b.w) / fp.width * (kCols - 1));
    const int r0 = static_cast<int>(b.y / fp.height * (kRows - 1));
    const int r1 = static_cast<int>((b.y + b.h) / fp.height * (kRows - 1));
    const char mark = static_cast<char>('A' + static_cast<int>(i % 26));
    for (int r = r0; r <= r1 && r < kRows; ++r) {
      for (int c = c0; c <= c1 && c < kCols; ++c) {
        canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = mark;
      }
    }
  }
  for (auto it = canvas.rbegin(); it != canvas.rend(); ++it) {
    out << "  " << *it << "\n";
  }
  return out.str();
}

}  // namespace hsyn::place
