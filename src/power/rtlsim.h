// Cycle-accurate RTL simulation of a synthesized datapath.
//
// This is the repo's substitute for the paper's switch-level (IRSIM)
// simulation of the extracted layout (see DESIGN.md). The simulator
// executes the bound datapath cycle by cycle under its schedule:
// registers hold real values across cycles (and samples), functional
// units evaluate on their scheduled start cycles, and every operand read
// is checked against the value the behavior requires -- so it both
// *verifies* the architecture (binding/schedule hazards, functional
// equivalence with the DFG) and *measures* switched capacitance at
// transfer granularity.
#pragma once

#include <string>
#include <vector>

#include "power/estimator.h"
#include "power/trace.h"
#include "rtl/datapath.h"

namespace hsyn {

struct RtlSimResult {
  bool ok = false;                      ///< no violations, outputs match
  std::vector<std::string> violations;  ///< hazard / mismatch descriptions
  std::vector<Sample> outputs;          ///< per sample, primary outputs
  EnergyBreakdown energy;               ///< per-sample average
};

/// Simulate behavior `b` of `dp` over `trace`. Children are verified
/// recursively on the input streams their invocations observed.
RtlSimResult simulate_rtl(const Datapath& dp, int b, const Trace& trace,
                          const Library& lib, const OpPoint& pt,
                          bool top_level = true);

}  // namespace hsyn
