// Typical input traces and functional DFG evaluation.
//
// Power estimation in the paper is driven by "typical input traces". We
// generate correlated 16-bit streams (random-walk per input, the standard
// DSP-signal model used by the switched-capacitance literature [8,10]):
// consecutive samples differ by a bounded step, so resource *sharing*
// interleaves weakly correlated streams and visibly raises switching
// activity -- the effect Example 2 discusses.
//
// All arithmetic is 16-bit two's complement (wrap-around), the datapath
// width of the synthesized circuits.
//
// Evaluation is served by one of two backends selected by HSYN_REPLAY
// (power/replay.h): the compiled batched replay kernel (default) or the
// per-time-step reference interpreter. Both are bit-identical at any
// thread count.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dfg/dfg.h"
#include "util/fmt.h"

namespace hsyn {

class EdgeMatrix;  // power/replay.h

using Sample = std::vector<std::int32_t>;  ///< one value per primary input
using Trace = std::vector<Sample>;

/// Sign-extend the low 16 bits (datapath width) of x.
inline std::int32_t mask16(std::int64_t x) {
  const std::uint32_t u = static_cast<std::uint32_t>(x) & 0xFFFFu;
  return (u & 0x8000u) ? static_cast<std::int32_t>(u) - 0x10000 :
                         static_cast<std::int32_t>(u);
}

/// Hamming distance between the low 16 bits of a and b.
inline int hamming16(std::int32_t a, std::int32_t b) {
  const std::uint32_t d = (static_cast<std::uint32_t>(a) ^
                           static_cast<std::uint32_t>(b)) & 0xFFFFu;
  return std::popcount(d);
}

/// Evaluate one operation on 16-bit operands.
inline std::int32_t eval_op(Op op, std::int32_t a, std::int32_t b) {
  switch (op) {
    case Op::Add: return mask16(static_cast<std::int64_t>(a) + b);
    case Op::Sub: return mask16(static_cast<std::int64_t>(a) - b);
    case Op::Mult: return mask16(static_cast<std::int64_t>(a) * b);
    case Op::ShiftL: return mask16(static_cast<std::int64_t>(a) << (b & 15));
    case Op::ShiftR: return mask16(a >> (b & 15));
    case Op::Cmp: return a < b ? 1 : 0;
    case Op::And: return mask16(a & b);
    case Op::Or: return mask16(a | b);
    case Op::Xor: return mask16(a ^ b);
    case Op::Neg: return mask16(-static_cast<std::int64_t>(a));
    case Op::Hier: break;
  }
  check(false, "eval_op on hierarchical node");
  return 0;
}

// ---- Vectorized toggle counting ------------------------------------------
// XOR + popcount over whole streams, dispatched through the replay
// kernel table (power/replay_kernels.h): AVX2/NEON count 8/4 events per
// iteration, the scalar reference packs four 16-bit XOR lanes per
// uint64_t popcount. Integer sums in any grouping are equal, so every
// path returns the same count bit-for-bit.

/// Total toggles between consecutive elements of `v`:
/// sum over i in [1, n) of hamming16(v[i-1], v[i]). Zero when n < 2
/// (the first event of a stream primes it, it never toggles).
int toggle_count(const std::int32_t* v, std::size_t n);

/// Sum over i in [0, n) of hamming16(a[i], b[i]) -- the elementwise
/// Hamming distance between two equal-length columns.
int hamming_pair(const std::int32_t* a, const std::int32_t* b, std::size_t n);

/// Total toggles of the *interleaved* stream
///   cols[0][0], cols[1][0], ..., cols[n_cols-1][0], cols[0][1], ...
/// without materializing it: equals toggle_count of the sample-major
/// interleave buffer the estimator used to fill per stream. Decomposes
/// into one vectorized hamming_pair per adjacent column pair plus the
/// wraparound pair (cols[n_cols-1][t] vs cols[0][t+1]).
int toggle_count_gather(const std::int32_t* const* cols, std::size_t n_cols,
                        std::size_t T);

/// Hamming distance between two operand tuples in bits, padding the
/// shorter tuple with zeros (the estimator's tuple activity measure).
int hamming_tuple(const std::int32_t* a, std::size_t na,
                  const std::int32_t* b, std::size_t nb);

/// Correlated random-walk trace: `num_samples` samples of `num_inputs`
/// channels; each channel steps by roughly `step_fraction` of full scale.
Trace make_trace(int num_inputs, int num_samples, std::uint64_t seed,
                 double step_fraction = 0.05);

/// Deterministic content fingerprint of a trace -- the stimulus half of
/// every evaluation-cache key (eval/cache.h).
std::uint64_t trace_fingerprint(const Trace& t);

/// Resolves a hierarchical behavior name to a DFG implementing it
/// (any functionally equivalent variant produces the same values).
using BehaviorResolver = std::function<const Dfg*(const std::string&)>;

/// Per-sample value of every edge of `dfg` under `inputs`, sample-major:
/// result[sample][edge_id]. Copies out of the shared edge matrix; hot
/// paths should use eval_dfg_edges_shared and read columns directly.
std::vector<std::vector<std::int32_t>> eval_dfg_edges(const Dfg& dfg,
                                                      const BehaviorResolver& res,
                                                      const Trace& inputs);

/// Edge-major values of every edge (EdgeMatrix, power/replay.h), shared:
/// the result is memoized in the process-wide evaluation cache under
/// (Dfg::content_hash, trace_fingerprint) -- a content key, so a recycled
/// allocation can never alias a stale entry -- and handed out by
/// shared_ptr so repeated evaluation of one (dfg, trace) pair costs no
/// copies. Functionally equivalent resolver variants share entries by the
/// BehaviorResolver contract above. Backed by the HSYN_REPLAY-selected
/// evaluator; both backends produce bit-identical matrices.
std::shared_ptr<const EdgeMatrix>
eval_dfg_edges_shared(const Dfg& dfg, const BehaviorResolver& res,
                      const Trace& inputs);

/// Primary-output values per sample.
std::vector<Sample> eval_dfg(const Dfg& dfg, const BehaviorResolver& res,
                             const Trace& inputs);

}  // namespace hsyn
