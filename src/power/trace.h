// Typical input traces and functional DFG evaluation.
//
// Power estimation in the paper is driven by "typical input traces". We
// generate correlated 16-bit streams (random-walk per input, the standard
// DSP-signal model used by the switched-capacitance literature [8,10]):
// consecutive samples differ by a bounded step, so resource *sharing*
// interleaves weakly correlated streams and visibly raises switching
// activity -- the effect Example 2 discusses.
//
// All arithmetic is 16-bit two's complement (wrap-around), the datapath
// width of the synthesized circuits.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dfg/dfg.h"

namespace hsyn {

using Sample = std::vector<std::int32_t>;  ///< one value per primary input
using Trace = std::vector<Sample>;

/// Sign-extend the low 16 bits (datapath width) of x.
std::int32_t mask16(std::int64_t x);

/// Hamming distance between the low 16 bits of a and b.
int hamming16(std::int32_t a, std::int32_t b);

/// Evaluate one operation on 16-bit operands.
std::int32_t eval_op(Op op, std::int32_t a, std::int32_t b);

/// Correlated random-walk trace: `num_samples` samples of `num_inputs`
/// channels; each channel steps by roughly `step_fraction` of full scale.
Trace make_trace(int num_inputs, int num_samples, std::uint64_t seed,
                 double step_fraction = 0.05);

/// Deterministic content fingerprint of a trace -- the stimulus half of
/// every evaluation-cache key (eval/cache.h).
std::uint64_t trace_fingerprint(const Trace& t);

/// Resolves a hierarchical behavior name to a DFG implementing it
/// (any functionally equivalent variant produces the same values).
using BehaviorResolver = std::function<const Dfg*(const std::string&)>;

/// Per-sample value of every edge of `dfg` under `inputs`.
/// result[sample][edge_id].
std::vector<std::vector<std::int32_t>> eval_dfg_edges(const Dfg& dfg,
                                                      const BehaviorResolver& res,
                                                      const Trace& inputs);

/// Same values, shared: the result is memoized in the process-wide
/// evaluation cache under (Dfg::content_hash, trace_fingerprint) -- a
/// content key, so a recycled allocation can never alias a stale entry
/// -- and handed out by shared_ptr so repeated evaluation of one
/// (dfg, trace) pair costs no copies. Functionally equivalent resolver
/// variants share entries by the BehaviorResolver contract above.
std::shared_ptr<const std::vector<std::vector<std::int32_t>>>
eval_dfg_edges_shared(const Dfg& dfg, const BehaviorResolver& res,
                      const Trace& inputs);

/// Primary-output values per sample.
std::vector<Sample> eval_dfg(const Dfg& dfg, const BehaviorResolver& res,
                             const Trace& inputs);

}  // namespace hsyn
