// Compiled batched trace-replay kernel.
//
// The interpreter in power/trace.cpp walks a DFG's topological order once
// per time step, re-deciding per node what to do and allocating per-step
// vectors. This module replaces that inner loop for the move engine's hot
// path:
//
//   1. Each Dfg is *compiled once* into a ReplayProgram -- a flat,
//      topologically ordered list of (opcode, operand slot, operand slot,
//      output slot) steps over dense edge slots plus a constant pool and
//      a table of hierarchical calls. Programs contain no Dfg pointers and
//      are memoized process-wide under Dfg::content_hash in the eval
//      engine (eval/engine.h), so recompilation is as rare as structural
//      novelty.
//
//   2. Programs execute over a structure-of-arrays EdgeMatrix: one dense
//      int32 column per edge spanning the whole trace. The executor runs
//      a tight per-opcode loop down each column -- no per-step control
//      flow, no per-step allocation. Hierarchical calls expand the child
//      program over the same batch with child columns carved out of the
//      calling worker's scratch Arena (runtime/arena.h).
//
//   3. The trace batch is chunked over the deterministic runtime exactly
//      like the interpreter (runtime/parallel.h static chunking). Every
//      value is an exact 16-bit integer function of one sample's inputs,
//      so the kernel is bit-identical to the interpreter at any thread
//      count; HSYN_REPLAY=interp keeps the interpreter alive as the
//      reference implementation for equivalence tests and CI diffs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfg/dfg.h"
#include "power/trace.h"

namespace hsyn {

/// Edge-major values of every DFG edge over a trace: column e holds edge
/// e's value at each sample. This is the shape both the executor (one
/// opcode loop per column) and the power estimator (one toggle count per
/// stream) want; the interpreter's sample-major rows are available via
/// rows() for tests and APIs that iterate per sample.
class EdgeMatrix {
 public:
  EdgeMatrix() = default;
  EdgeMatrix(int num_edges, std::size_t samples)
      : num_edges_(num_edges),
        samples_(samples),
        data_(static_cast<std::size_t>(num_edges) * samples, 0) {}

  [[nodiscard]] int num_edges() const { return num_edges_; }
  [[nodiscard]] std::size_t samples() const { return samples_; }

  [[nodiscard]] const std::int32_t* col(int e) const {
    return data_.data() + static_cast<std::size_t>(e) * samples_;
  }
  [[nodiscard]] std::int32_t* col_mut(int e) {
    return data_.data() + static_cast<std::size_t>(e) * samples_;
  }
  [[nodiscard]] std::int32_t at(int e, std::size_t t) const { return col(e)[t]; }

  /// Sample-major copy: rows()[t][e] == at(e, t).
  [[nodiscard]] std::vector<std::vector<std::int32_t>> rows() const;

  [[nodiscard]] std::size_t bytes() const {
    return sizeof(EdgeMatrix) + data_.size() * sizeof(std::int32_t);
  }

  friend bool operator==(const EdgeMatrix&, const EdgeMatrix&) = default;

 private:
  int num_edges_ = 0;
  std::size_t samples_ = 0;
  std::vector<std::int32_t> data_;  ///< column-contiguous: [e * samples + t]
};

/// One compiled step: out <- op(slots[a], slots[b]). Slots [0, num_edges)
/// are edge columns; slots >= num_edges index the constant pool (unary
/// ops take the constant 0 as their second operand, matching the
/// interpreter). A Hier step instead holds the hier_calls index in `a`.
struct ReplayStep {
  Op op = Op::Add;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t out = 0;

  friend bool operator==(const ReplayStep&, const ReplayStep&) = default;
};

/// A hierarchical call site: resolve `behavior` at execution time (the
/// BehaviorResolver contract guarantees any equivalent variant computes
/// the same values), run its program over the batch, and wire parent
/// slots to the child's primary inputs/outputs.
struct ReplayHierCall {
  std::string behavior;
  std::vector<std::int32_t> in_slots;   ///< parent slot per child input
  std::vector<std::int32_t> out_slots;  ///< parent edge per child output, -1 = unused

  friend bool operator==(const ReplayHierCall&, const ReplayHierCall&) = default;
};

/// A Dfg compiled for batched replay. Pure data -- no pointers into the
/// Dfg -- so it is safely shared process-wide under the source DFG's
/// content hash.
struct ReplayProgram {
  std::uint64_t dfg_hash = 0;  ///< Dfg::content_hash it was compiled from
  int num_inputs = 0;
  int num_outputs = 0;
  int num_edges = 0;
  std::vector<std::int32_t> input_slots;   ///< primary input -> edge slot (-1 unused)
  std::vector<std::int32_t> output_slots;  ///< primary output -> edge slot
  std::vector<std::int32_t> consts;        ///< constant pool (slot num_edges + i)
  std::vector<ReplayStep> steps;           ///< topological order
  std::vector<ReplayHierCall> hier_calls;

  [[nodiscard]] std::size_t bytes() const;

  friend bool operator==(const ReplayProgram&, const ReplayProgram&) = default;
};

/// Compile `dfg` (validated) into a replay program.
ReplayProgram compile_replay(const Dfg& dfg);

/// The memoized program for `dfg`, compiled at most once per content hash
/// across the process (eval engine program cache).
std::shared_ptr<const ReplayProgram> replay_program_of(const Dfg& dfg);

/// Evaluate every edge of `dfg` over `inputs` with the compiled kernel.
/// Bit-identical to the interpreter for any thread count. This is the
/// uncached backend; eval_dfg_edges_shared (power/trace.h) adds the
/// process-wide memoization and the HSYN_REPLAY mode dispatch.
EdgeMatrix replay_eval_matrix(const Dfg& dfg, const BehaviorResolver& res,
                              const Trace& inputs);

/// Which evaluator backs eval_dfg_edges and friends.
enum class ReplayMode {
  Compiled,  ///< batched replay kernel (default)
  Interp,    ///< per-time-step reference interpreter
};

/// Process-wide mode, initialized from HSYN_REPLAY (interp|compiled).
ReplayMode replay_mode();
void set_replay_mode(ReplayMode mode);

/// Parse "interp" / "compiled"; returns false on anything else.
bool parse_replay_mode(const std::string& s, ReplayMode* out);

}  // namespace hsyn
