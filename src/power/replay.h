// Compiled batched trace-replay kernel.
//
// The interpreter in power/trace.cpp walks a DFG's topological order once
// per time step, re-deciding per node what to do and allocating per-step
// vectors. This module replaces that inner loop for the move engine's hot
// path:
//
//   1. Each Dfg is *compiled once* into a ReplayProgram -- a flat,
//      topologically ordered list of (opcode, operand slot, operand slot,
//      output slot) steps over dense edge slots plus a constant pool and
//      a table of hierarchical calls. Programs contain no Dfg pointers and
//      are memoized process-wide under Dfg::content_hash in the eval
//      engine (eval/engine.h), so recompilation is as rare as structural
//      novelty.
//
//   2. Programs execute over a structure-of-arrays EdgeMatrix: one dense
//      int32 column per edge spanning the whole trace. The executor runs
//      one kernel-table call per step down each column -- no per-step
//      control flow, no per-step allocation. The kernel table
//      (power/replay_kernels.h) is selected once per process from
//      HSYN_REPLAY_ISA: explicit SIMD loops (AVX2 8xint32, NEON 4xint32)
//      with scalar tails, or the portable scalar reference -- all
//      bitwise-equal by construction. Hierarchical calls expand the
//      child program over the same batch with child columns carved out
//      of the calling worker's scratch Arena (runtime/arena.h).
//
//   3. The trace batch is chunked over the deterministic runtime exactly
//      like the interpreter (runtime/parallel.h static chunking). Every
//      value is an exact 16-bit integer function of one sample's inputs,
//      so the kernel is bit-identical to the interpreter at any thread
//      count; HSYN_REPLAY=interp keeps the interpreter alive as the
//      reference implementation for equivalence tests and CI diffs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfg/dfg.h"
#include "power/trace.h"

namespace hsyn {

/// Edge-major values of every DFG edge over a trace: column e holds edge
/// e's value at each sample. This is the shape both the executor (one
/// opcode loop per column) and the power estimator (one toggle count per
/// stream) want; the interpreter's sample-major rows are available via
/// rows() for tests and APIs that iterate per sample.
class EdgeMatrix {
 public:
  EdgeMatrix() = default;
  EdgeMatrix(int num_edges, std::size_t samples)
      : num_edges_(num_edges),
        samples_(samples),
        data_(static_cast<std::size_t>(num_edges) * samples, 0) {}

  [[nodiscard]] int num_edges() const { return num_edges_; }
  [[nodiscard]] std::size_t samples() const { return samples_; }

  [[nodiscard]] const std::int32_t* col(int e) const {
    return data_.data() + static_cast<std::size_t>(e) * samples_;
  }
  [[nodiscard]] std::int32_t* col_mut(int e) {
    return data_.data() + static_cast<std::size_t>(e) * samples_;
  }
  [[nodiscard]] std::int32_t at(int e, std::size_t t) const { return col(e)[t]; }

  /// Sample-major copy: rows()[t][e] == at(e, t).
  [[nodiscard]] std::vector<std::vector<std::int32_t>> rows() const;

  [[nodiscard]] std::size_t bytes() const {
    return sizeof(EdgeMatrix) + data_.size() * sizeof(std::int32_t);
  }

  friend bool operator==(const EdgeMatrix&, const EdgeMatrix&) = default;

 private:
  int num_edges_ = 0;
  std::size_t samples_ = 0;
  std::vector<std::int32_t> data_;  ///< column-contiguous: [e * samples + t]
};

/// One compiled step: out <- op(slots[a], slots[b]). Slots [0, num_edges)
/// are edge columns; slots >= num_edges index the constant pool (unary
/// ops take the constant 0 as their second operand, matching the
/// interpreter). A Hier step instead holds the hier_calls index in `a`.
struct ReplayStep {
  Op op = Op::Add;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t out = 0;

  friend bool operator==(const ReplayStep&, const ReplayStep&) = default;
};

/// A hierarchical call site: resolve `behavior` at execution time (the
/// BehaviorResolver contract guarantees any equivalent variant computes
/// the same values), run its program over the batch, and wire parent
/// slots to the child's primary inputs/outputs.
struct ReplayHierCall {
  std::string behavior;
  std::vector<std::int32_t> in_slots;   ///< parent slot per child input
  std::vector<std::int32_t> out_slots;  ///< parent edge per child output, -1 = unused

  friend bool operator==(const ReplayHierCall&, const ReplayHierCall&) = default;
};

/// A Dfg compiled for batched replay. Pure data -- no pointers into the
/// Dfg -- so it is safely shared process-wide under the source DFG's
/// content hash.
struct ReplayProgram {
  std::uint64_t dfg_hash = 0;  ///< Dfg::content_hash it was compiled from
  int num_inputs = 0;
  int num_outputs = 0;
  int num_edges = 0;
  std::vector<std::int32_t> input_slots;   ///< primary input -> edge slot (-1 unused)
  std::vector<std::int32_t> output_slots;  ///< primary output -> edge slot
  std::vector<std::int32_t> consts;        ///< constant pool (slot num_edges + i)
  std::vector<ReplayStep> steps;           ///< topological order
  std::vector<ReplayHierCall> hier_calls;

  /// Lazily computed replay weight (resolved steps per sample,
  /// program_weight in replay.cpp), stored as weight + 1 so 0 means
  /// "unset". Lives inside the program -- shared process-wide via the
  /// eval-engine program cache -- so the hot-path serial-cutoff lookup
  /// is one relaxed atomic load, not a global mutexed map. Not part of
  /// the program's value: equality and bytes() ignore it.
  mutable std::atomic<std::size_t> weight_memo{0};

  ReplayProgram() = default;
  ReplayProgram(const ReplayProgram& o)
      : dfg_hash(o.dfg_hash),
        num_inputs(o.num_inputs),
        num_outputs(o.num_outputs),
        num_edges(o.num_edges),
        input_slots(o.input_slots),
        output_slots(o.output_slots),
        consts(o.consts),
        steps(o.steps),
        hier_calls(o.hier_calls),
        weight_memo(o.weight_memo.load(std::memory_order_relaxed)) {}
  ReplayProgram(ReplayProgram&& o) noexcept
      : dfg_hash(o.dfg_hash),
        num_inputs(o.num_inputs),
        num_outputs(o.num_outputs),
        num_edges(o.num_edges),
        input_slots(std::move(o.input_slots)),
        output_slots(std::move(o.output_slots)),
        consts(std::move(o.consts)),
        steps(std::move(o.steps)),
        hier_calls(std::move(o.hier_calls)),
        weight_memo(o.weight_memo.load(std::memory_order_relaxed)) {}

  [[nodiscard]] std::size_t bytes() const;

  friend bool operator==(const ReplayProgram& a, const ReplayProgram& b) {
    return a.dfg_hash == b.dfg_hash && a.num_inputs == b.num_inputs &&
           a.num_outputs == b.num_outputs && a.num_edges == b.num_edges &&
           a.input_slots == b.input_slots && a.output_slots == b.output_slots &&
           a.consts == b.consts && a.steps == b.steps &&
           a.hier_calls == b.hier_calls;
  }
};

/// Compile `dfg` (validated) into a replay program.
ReplayProgram compile_replay(const Dfg& dfg);

/// The memoized program for `dfg`, compiled at most once per content hash
/// across the process (eval engine program cache).
std::shared_ptr<const ReplayProgram> replay_program_of(const Dfg& dfg);

/// Evaluate every edge of `dfg` over `inputs` with the compiled kernel.
/// Bit-identical to the interpreter for any thread count. This is the
/// uncached backend; eval_dfg_edges_shared (power/trace.h) adds the
/// process-wide memoization and the HSYN_REPLAY mode dispatch.
EdgeMatrix replay_eval_matrix(const Dfg& dfg, const BehaviorResolver& res,
                              const Trace& inputs);

/// Which evaluator backs eval_dfg_edges and friends.
enum class ReplayMode {
  Compiled,  ///< batched replay kernel (default)
  Interp,    ///< per-time-step reference interpreter
};

/// Process-wide mode, initialized from HSYN_REPLAY (interp|compiled).
ReplayMode replay_mode();
void set_replay_mode(ReplayMode mode);

/// Parse "interp" / "compiled"; returns false on anything else.
bool parse_replay_mode(const std::string& s, ReplayMode* out);

/// Instruction set backing the compiled kernel's per-opcode column loops
/// and the fused toggle kernels (power/trace.h). All kernels are
/// bitwise-equal to the scalar reference by construction (16-bit-masked
/// lane-wise maps), so the selection changes only speed, never results.
enum class ReplayIsa {
  Scalar,  ///< portable reference loops (always available)
  Avx2,    ///< x86-64 AVX2, 8 int32 lanes
  Neon,    ///< aarch64 NEON, 4 int32 lanes
  Native,  ///< resolve to the best ISA available at runtime
};

/// The resolved selection (never Native), initialized from
/// HSYN_REPLAY_ISA (scalar|avx2|neon|native; default native) on first
/// use. Also published as the `replay.isa` gauge (ordinal + 1) and the
/// `replay-isa` counter source in the obs metrics registry.
ReplayIsa replay_isa();

/// Select the kernel table. Native resolves to the best available ISA;
/// explicitly requesting an ISA that is not compiled in or not supported
/// by this CPU is a hard error (scalar and native always succeed).
void set_replay_isa(ReplayIsa isa);

/// Parse "scalar" / "avx2" / "neon" / "native"; false on anything else.
bool parse_replay_isa(const std::string& s, ReplayIsa* out);

/// Whether `isa` can be selected on this build + CPU.
bool replay_isa_available(ReplayIsa isa);

/// Lower-case name ("scalar", "avx2", "neon", "native").
const char* replay_isa_name(ReplayIsa isa);

}  // namespace hsyn
