#include "power/trace_io.h"

#include <sstream>

#include "util/fmt.h"

namespace hsyn {

std::string trace_to_text(const Trace& trace) {
  std::ostringstream out;
  out << "# hsyn input trace: one sample per line\n";
  for (const Sample& s : trace) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      out << (i ? " " : "") << s[i];
    }
    out << "\n";
  }
  return out.str();
}

Trace trace_from_text(const std::string& text, int num_inputs) {
  Trace trace;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    Sample s;
    for (std::string tok; ls >> tok;) {
      char* end = nullptr;
      const long v = std::strtol(tok.c_str(), &end, 10);
      check(end && *end == '\0',
            strf("line %d: '%s' is not an integer", lineno, tok.c_str()));
      s.push_back(mask16(v));
    }
    if (s.empty()) continue;
    if (num_inputs == 0) num_inputs = static_cast<int>(s.size());
    check(static_cast<int>(s.size()) == num_inputs,
          strf("line %d: expected %d values, got %zu", lineno, num_inputs,
               s.size()));
    trace.push_back(std::move(s));
  }
  check(!trace.empty(), "trace has no samples");
  return trace;
}

}  // namespace hsyn
