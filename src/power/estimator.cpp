#include "power/estimator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>

#include "eval/engine.h"
#include "obs/trace.h"
#include "power/replay.h"
#include "rtl/cost.h"
#include "rtl/fingerprint.h"
#include "runtime/parallel.h"
#include "util/fmt.h"
#include "util/hash.h"

namespace hsyn {
namespace {

constexpr std::uint64_t kEnergyTag = 0xE4E26FE4E26F0004ull;

}  // namespace

BehaviorResolver resolver_of(const Datapath& dp) {
  // The flat sorted table is cached inside the datapath per structural
  // fingerprint (rtl/datapath.h), so repeated resolver_of calls -- one
  // per energy_of/simulate_rtl -- cost an atomic load, not a recursive
  // std::map rebuild.
  std::shared_ptr<const BehaviorTable> table = dp.behavior_table();
  return [table = std::move(table)](const std::string& name) -> const Dfg* {
    return table->find(name);
  };
}

EnergyBreakdown energy_of(const Datapath& dp, int b, const Trace& trace,
                          const Library& lib, const OpPoint& pt, bool top_level) {
  EnergyBreakdown eb;
  if (trace.empty()) return eb;
  const BehaviorImpl& bi = dp.behaviors.at(static_cast<std::size_t>(b));
  check(bi.scheduled, "energy_of: behavior not scheduled");

  // Move evaluation calls energy_of thousands of times per pass, usually
  // on candidates whose children are untouched; memoizing on the
  // structural fingerprint makes hierarchical power synthesis as cheap
  // per candidate as flattened synthesis. The cache is shared across the
  // runtime's workers, so a candidate evaluated by one thread is a hit
  // for every other thread.
  eval::EvalEngine& eng = eval::EvalEngine::instance();
  std::uint64_t ctx = hash_mix(kEnergyTag, static_cast<std::uint64_t>(b));
  ctx = hash_double(ctx, pt.vdd);       // exact bits: operating points
  ctx = hash_double(ctx, pt.clk_ns);    // must never alias in the key
  ctx = hash_mix(ctx, top_level ? 1 : 2);
  ctx = hash_mix(ctx, lib.uid());
  const eval::Key key{structure_fingerprint(dp), trace_fingerprint(trace),
                      hash_final(ctx)};
  const auto cached = eng.energy_cache().get(key);
  if (cached && !eng.verify()) return *cached;
  // Only the miss path (the actual estimation) gets a span; hits return
  // above in sub-microsecond time.
  obs::Span span("energy-of");

  const Dfg& dfg = *bi.dfg;
  const StructureCosts& sc = lib.costs();
  const double escale = energy_scale(pt.vdd);
  const double wire_scale = wire_scale_of(dp, lib, top_level);
  const double wire_cap =
      (top_level ? sc.wire_cap_global : sc.wire_cap_local) * wire_scale;
  const double mux_cap = sc.mux_cap_per_input * wire_scale;
  const std::size_t T = trace.size();

  const auto mat_ptr = eval_dfg_edges_shared(dfg, resolver_of(dp), trace);
  const EdgeMatrix& mat = *mat_ptr;
  const auto conn_ptr = eng.connectivity(dp);
  const Connectivity& conn = *conn_ptr;

  // Invocation order within a sample: by start cycle then index.
  std::vector<int> order(bi.invs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int c) {
    const int sa = bi.inv_start[static_cast<std::size_t>(a)];
    const int sb = bi.inv_start[static_cast<std::size_t>(c)];
    return sa != sb ? sa < sb : a < c;
  });

  // Cached input-edge lists and chained-op signatures per invocation.
  std::vector<std::vector<int>> inv_ins(bi.invs.size());
  std::vector<int> inv_opbits(bi.invs.size(), 0);
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    inv_ins[i] = dp.inv_input_edges(b, static_cast<int>(i));
    if (bi.invs[i].unit.kind == UnitRef::Kind::Fu) {
      int opbits = 0;
      for (const int nid : bi.invs[i].nodes) {
        opbits = opbits * 16 + static_cast<int>(dfg.node(nid).op);
      }
      inv_opbits[i] = opbits;
    }
  }

  // Invocations grouped per physical unit, in schedule order: every
  // activity stream below (functional-unit tuples, port deliveries,
  // child traces) is a per-unit sequence over (sample, schedule slot).
  std::vector<std::vector<int>> fu_invs(dp.fus.size());
  std::vector<std::vector<int>> child_invs(dp.children.size());
  for (const int i : order) {
    const Invocation& inv = bi.invs[static_cast<std::size_t>(i)];
    auto& bucket = inv.unit.kind == UnitRef::Kind::Fu
                       ? fu_invs[static_cast<std::size_t>(inv.unit.idx)]
                       : child_invs[static_cast<std::size_t>(inv.unit.idx)];
    bucket.push_back(i);
  }

  // ---- Functional-unit activity streams. ---------------------------------
  // One pass down the unit's invocation stream: consecutive operand
  // tuples on the same unit toggle its inputs; an op change (chained
  // signature) adds a fixed control flip. The whole stream reads edge
  // columns of the matrix -- no per-event vector allocation.
  for (std::size_t u = 0; u < dp.fus.size(); ++u) {
    const std::vector<int>& invs = fu_invs[u];
    if (invs.empty()) continue;
    const FuType& ft = lib.fu(dp.fus[u].type);
    std::size_t max_arity = 1;
    std::vector<std::vector<const std::int32_t*>> cols(invs.size());
    for (std::size_t j = 0; j < invs.size(); ++j) {
      const std::vector<int>& ins = inv_ins[static_cast<std::size_t>(invs[j])];
      max_arity = std::max(max_arity, ins.size());
      cols[j].reserve(ins.size());
      for (const int e : ins) cols[j].push_back(mat.col(e));
    }
    std::vector<std::int32_t> prev(max_arity), cur(max_arity);
    std::size_t prev_n = 0;
    int prev_opbits = 0;
    bool has_prev = false;
    double act = 0;
    for (std::size_t t = 0; t < T; ++t) {
      for (std::size_t j = 0; j < invs.size(); ++j) {
        const std::size_t n = cols[j].size();
        for (std::size_t p = 0; p < n; ++p) cur[p] = cols[j][p][t];
        if (has_prev) {
          const int ham = hamming_tuple(prev.data(), prev_n, cur.data(), n);
          const int bits = static_cast<int>(std::max(prev_n, n)) * 16;
          const double opflip =
              prev_opbits == inv_opbits[static_cast<std::size_t>(invs[j])] ? 0.0
                                                                           : 4.0;
          act += (ham + opflip) / (bits + 4);
        } else {
          // First evaluation of this unit: half-activity startup.
          act += 0.5;
        }
        std::swap(prev, cur);
        prev_n = n;
        prev_opbits = inv_opbits[static_cast<std::size_t>(invs[j])];
        has_prev = true;
      }
    }
    eb.fu += ft.cap_sw * act * escale;
  }

  // ---- Mux and wire delivery streams. ------------------------------------
  // Per (unit, input port): the delivered-value stream is the port's
  // operand across the unit's invocations, sample-major. The fused
  // gather counts the interleaved stream's toggles directly from the
  // edge columns -- no arena buffer fill per stream -- and the first
  // delivery primes the port and never toggles (toggle_count's
  // convention, which the gather preserves).
  const auto port_streams =
      [&](const std::vector<std::vector<int>>& unit_invs,
          const std::vector<std::vector<std::set<int>>>& port_srcs) {
        for (std::size_t u = 0; u < unit_invs.size(); ++u) {
          const std::vector<int>& invs = unit_invs[u];
          if (invs.empty()) continue;
          const auto& ports = port_srcs[u];
          std::size_t max_ports = 0;
          for (const int i : invs) {
            max_ports =
                std::max(max_ports, inv_ins[static_cast<std::size_t>(i)].size());
          }
          for (std::size_t p = 0; p < max_ports; ++p) {
            std::vector<const std::int32_t*> src;
            src.reserve(invs.size());
            for (const int i : invs) {
              const std::vector<int>& ins = inv_ins[static_cast<std::size_t>(i)];
              if (p < ins.size()) src.push_back(mat.col(ins[p]));
            }
            const int toggles = toggle_count_gather(src.data(), src.size(), T);
            const double act = toggles / 16.0;
            const bool muxed = p < ports.size() && ports[p].size() > 1;
            eb.wire += wire_cap * act * escale;
            if (muxed) eb.mux += mux_cap * act * escale;
          }
        }
      };
  port_streams(fu_invs, conn.fu_port_srcs);
  port_streams(child_invs, conn.child_port_srcs);

  // ---- Child traces: per (child idx, behavior name). ---------------------
  std::map<std::pair<int, std::string>, Trace> child_traces;
  for (std::size_t c = 0; c < dp.children.size(); ++c) {
    const std::vector<int>& invs = child_invs[c];
    if (invs.empty()) continue;
    for (std::size_t t = 0; t < T; ++t) {
      for (const int i : invs) {
        const std::vector<int>& ins = inv_ins[static_cast<std::size_t>(i)];
        const Node& n =
            dfg.node(bi.invs[static_cast<std::size_t>(i)].nodes.front());
        Sample s(ins.size());
        for (std::size_t p = 0; p < ins.size(); ++p) s[p] = mat.at(ins[p], t);
        child_traces[{static_cast<int>(c), n.behavior}].push_back(std::move(s));
      }
    }
  }

  // ---- Register write streams. ------------------------------------------
  // Writes per register ordered by ready time within a sample.
  std::map<int, std::vector<int>> reg_edges;  // reg -> edge ids
  for (const Edge& e : dfg.edges()) {
    const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
    if (r >= 0) reg_edges[r].push_back(e.id);
  }
  for (auto& [r, eids] : reg_edges) {
    std::sort(eids.begin(), eids.end(), [&](int a, int c) {
      const int ta = dp.edge_ready_time(b, a, lib, pt);
      const int tc = dp.edge_ready_time(b, c, lib, pt);
      return ta != tc ? ta < tc : a < c;
    });
    std::vector<const std::int32_t*> cols;
    cols.reserve(eids.size());
    for (const int e : eids) cols.push_back(mat.col(e));
    const int toggles = toggle_count_gather(cols.data(), cols.size(), T);
    // First write is a half-activity startup; every later write toggles.
    eb.reg += lib.reg().cap_sw * (0.5 + toggles / 16.0) * escale;
  }

  // ---- Controller and register clock tree. -------------------------------
  // This level's registers are clocked for the behavior's active window
  // (modules are clock-gated, so a child's registers burn clock power
  // only during its invocations -- accounted in the recursive call).
  eb.ctrl += sc.ctrl_cap_per_cycle * (bi.makespan + 1) * escale *
             static_cast<double>(T);
  eb.reg += sc.clock_cap_per_reg * static_cast<double>(dp.regs.size()) *
            (bi.makespan + 1) * escale * static_cast<double>(T);

  // ---- Children (recursive). ---------------------------------------------
  // Each child's estimation is independent; fan the recursion out over
  // the runtime and accumulate the per-child totals in map-key order so
  // the floating-point sum is identical for any thread count.
  {
    std::vector<const std::pair<const std::pair<int, std::string>, Trace>*>
        entries;
    entries.reserve(child_traces.size());
    for (const auto& entry : child_traces) entries.push_back(&entry);
    const std::vector<double> child_totals = runtime::parallel_map(
        static_cast<int>(entries.size()), [&](int i) {
          const auto& [ckey, ctrace] = *entries[static_cast<std::size_t>(i)];
          const Datapath& child =
              *dp.children[static_cast<std::size_t>(ckey.first)].impl;
          const int cb = child.find_behavior(ckey.second);
          check(cb >= 0, "energy_of: child lacks behavior " + ckey.second);
          const EnergyBreakdown ce =
              energy_of(child, cb, ctrace, lib, pt, /*top_level=*/false);
          // ce.total() is average per child invocation; ctrace has
          // T x (invocations per sample) entries.
          return ce.total() * (static_cast<double>(ctrace.size()) / T);
        });
    for (const double c : child_totals) eb.children += c;
  }

  // Normalize to energy per sample (except children, already normalized).
  const double inv_T = 1.0 / static_cast<double>(T);
  eb.fu *= inv_T;
  eb.reg *= inv_T;
  eb.mux *= inv_T;
  eb.wire *= inv_T;
  eb.ctrl *= inv_T;
  if (cached) {
    check(cached->fu == eb.fu && cached->reg == eb.reg &&
              cached->mux == eb.mux && cached->wire == eb.wire &&
              cached->ctrl == eb.ctrl && cached->children == eb.children,
          "eval verify: cached energy diverges from recompute");
    return *cached;
  }
  eng.energy_cache().put(key, eb, sizeof(EnergyBreakdown));
  return eb;
}

double power_of(const Datapath& dp, int b, const Trace& trace, const Library& lib,
                const OpPoint& pt, double sample_period_ns) {
  check(sample_period_ns > 0, "power_of: sample period must be positive");
  return energy_of(dp, b, trace, lib, pt).total() / sample_period_ns;
}

}  // namespace hsyn
