#include "power/estimator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>

#include "eval/engine.h"
#include "obs/trace.h"
#include "rtl/cost.h"
#include "rtl/fingerprint.h"
#include "runtime/parallel.h"
#include "util/fmt.h"
#include "util/hash.h"

namespace hsyn {
namespace {

void collect_behaviors(const Datapath& dp,
                       std::map<std::string, const Dfg*>& out) {
  for (const ChildUnit& c : dp.children) {
    for (const BehaviorImpl& bi : c.impl->behaviors) {
      out.emplace(bi.behavior, bi.dfg);
    }
    collect_behaviors(*c.impl, out);
  }
}

/// Hamming distance between two operand tuples, in bits, plus the number
/// of bits compared (for normalization). Mismatched arity is padded.
std::pair<int, int> tuple_toggles(const std::vector<std::int32_t>& a,
                                  const std::vector<std::int32_t>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  int ham = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t va = i < a.size() ? a[i] : 0;
    const std::int32_t vb = i < b.size() ? b[i] : 0;
    ham += hamming16(va, vb);
  }
  return {ham, static_cast<int>(n) * 16};
}

constexpr std::uint64_t kEnergyTag = 0xE4E26FE4E26F0004ull;

}  // namespace

BehaviorResolver resolver_of(const Datapath& dp) {
  auto map = std::make_shared<std::map<std::string, const Dfg*>>();
  collect_behaviors(dp, *map);
  return [map](const std::string& name) -> const Dfg* {
    auto it = map->find(name);
    return it == map->end() ? nullptr : it->second;
  };
}

EnergyBreakdown energy_of(const Datapath& dp, int b, const Trace& trace,
                          const Library& lib, const OpPoint& pt, bool top_level) {
  EnergyBreakdown eb;
  if (trace.empty()) return eb;
  const BehaviorImpl& bi = dp.behaviors.at(static_cast<std::size_t>(b));
  check(bi.scheduled, "energy_of: behavior not scheduled");

  // Move evaluation calls energy_of thousands of times per pass, usually
  // on candidates whose children are untouched; memoizing on the
  // structural fingerprint makes hierarchical power synthesis as cheap
  // per candidate as flattened synthesis. The cache is shared across the
  // runtime's workers, so a candidate evaluated by one thread is a hit
  // for every other thread.
  eval::EvalEngine& eng = eval::EvalEngine::instance();
  std::uint64_t ctx = hash_mix(kEnergyTag, static_cast<std::uint64_t>(b));
  ctx = hash_double(ctx, pt.vdd);       // exact bits: operating points
  ctx = hash_double(ctx, pt.clk_ns);    // must never alias in the key
  ctx = hash_mix(ctx, top_level ? 1 : 2);
  ctx = hash_mix(ctx, lib.uid());
  const eval::Key key{structure_fingerprint(dp), trace_fingerprint(trace),
                      hash_final(ctx)};
  const auto cached = eng.energy_cache().get(key);
  if (cached && !eng.verify()) return *cached;
  // Only the miss path (the actual estimation) gets a span; hits return
  // above in sub-microsecond time.
  obs::Span span("energy-of");

  const Dfg& dfg = *bi.dfg;
  const StructureCosts& sc = lib.costs();
  const double escale = energy_scale(pt.vdd);
  // Average wire length -- and hence wire/mux capacitance -- grows with
  // the layout's linear dimension (~sqrt(area)). This couples power to
  // area the way placed-and-routed designs experience it, and is what
  // stops the power objective from inflating the datapath without bound.
  const double layout = area_of(dp, lib, top_level).total();
  const double wire_scale = std::clamp(std::sqrt(layout / 1500.0), 0.7, 2.5);
  const double wire_cap =
      (top_level ? sc.wire_cap_global : sc.wire_cap_local) * wire_scale;
  const double mux_cap = sc.mux_cap_per_input * wire_scale;
  const std::size_t T = trace.size();

  const auto edge_vals_ptr = eval_dfg_edges_shared(dfg, resolver_of(dp), trace);
  const auto& edge_vals = *edge_vals_ptr;
  const auto conn_ptr = eng.connectivity(dp);
  const Connectivity& conn = *conn_ptr;

  // Invocation order within a sample: by start cycle then index.
  std::vector<int> order(bi.invs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int c) {
    const int sa = bi.inv_start[static_cast<std::size_t>(a)];
    const int sb = bi.inv_start[static_cast<std::size_t>(c)];
    return sa != sb ? sa < sb : a < c;
  });

  // ---- Functional-unit streams, mux and wire deliveries. ----------------
  struct FuState {
    bool has_prev = false;
    std::vector<std::int32_t> prev;
    int prev_opbits = 0;
  };
  std::vector<FuState> fu_state(dp.fus.size());
  // Per (unit kind, unit idx, port): previously delivered value.
  std::map<std::tuple<int, int, int>, std::int32_t> port_prev;

  // Cached input-edge lists per invocation.
  std::vector<std::vector<int>> inv_ins(bi.invs.size());
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    inv_ins[i] = dp.inv_input_edges(b, static_cast<int>(i));
  }

  // Child traces: per (child idx, behavior name) in first-seen order.
  std::map<std::pair<int, std::string>, Trace> child_traces;

  for (std::size_t t = 0; t < T; ++t) {
    const auto& ev = edge_vals[t];
    for (const int i : order) {
      const Invocation& inv = bi.invs[static_cast<std::size_t>(i)];
      const std::vector<int>& ins = inv_ins[static_cast<std::size_t>(i)];
      std::vector<std::int32_t> operands;
      operands.reserve(ins.size());
      for (const int e : ins) operands.push_back(ev[static_cast<std::size_t>(e)]);

      // Mux + wire energy per operand delivery.
      const int ukind = static_cast<int>(inv.unit.kind);
      const auto& ports = inv.unit.kind == UnitRef::Kind::Fu
                              ? conn.fu_port_srcs[static_cast<std::size_t>(inv.unit.idx)]
                              : conn.child_port_srcs[static_cast<std::size_t>(inv.unit.idx)];
      for (std::size_t p = 0; p < operands.size(); ++p) {
        auto key = std::make_tuple(ukind, inv.unit.idx, static_cast<int>(p));
        auto it = port_prev.find(key);
        if (it != port_prev.end()) {
          const double act = hamming16(it->second, operands[p]) / 16.0;
          const bool muxed = p < ports.size() && ports[p].size() > 1;
          eb.wire += wire_cap * act * escale;
          if (muxed) eb.mux += mux_cap * act * escale;
          it->second = operands[p];
        } else {
          port_prev.emplace(key, operands[p]);
        }
      }

      if (inv.unit.kind == UnitRef::Kind::Fu) {
        FuState& st = fu_state[static_cast<std::size_t>(inv.unit.idx)];
        int opbits = 0;
        for (const int nid : inv.nodes) opbits = opbits * 16 + static_cast<int>(dfg.node(nid).op);
        if (st.has_prev) {
          const auto [ham, bits] = tuple_toggles(st.prev, operands);
          const double opflip = st.prev_opbits == opbits ? 0.0 : 4.0;
          const double act = (ham + opflip) / (bits + 4);
          const FuType& ft = lib.fu(dp.fus[static_cast<std::size_t>(inv.unit.idx)].type);
          eb.fu += ft.cap_sw * act * escale;
        } else {
          // First evaluation of this unit: charge half-activity startup.
          const FuType& ft = lib.fu(dp.fus[static_cast<std::size_t>(inv.unit.idx)].type);
          eb.fu += ft.cap_sw * 0.5 * escale;
        }
        st.prev = std::move(operands);
        st.prev_opbits = opbits;
        st.has_prev = true;
      } else {
        const Node& n = dfg.node(inv.nodes.front());
        child_traces[{inv.unit.idx, n.behavior}].push_back(std::move(operands));
      }
    }
  }

  // ---- Register write streams. ------------------------------------------
  // Writes per register ordered by ready time within a sample.
  std::map<int, std::vector<int>> reg_edges;  // reg -> edge ids
  for (const Edge& e : dfg.edges()) {
    const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
    if (r >= 0) reg_edges[r].push_back(e.id);
  }
  for (auto& [r, eids] : reg_edges) {
    std::sort(eids.begin(), eids.end(), [&](int a, int c) {
      const int ta = dp.edge_ready_time(b, a, lib, pt);
      const int tc = dp.edge_ready_time(b, c, lib, pt);
      return ta != tc ? ta < tc : a < c;
    });
    bool has_prev = false;
    std::int32_t prev = 0;
    for (std::size_t t = 0; t < T; ++t) {
      for (const int e : eids) {
        const std::int32_t v = edge_vals[t][static_cast<std::size_t>(e)];
        if (has_prev) {
          eb.reg += lib.reg().cap_sw * (hamming16(prev, v) / 16.0) * escale;
        } else {
          eb.reg += lib.reg().cap_sw * 0.5 * escale;
        }
        prev = v;
        has_prev = true;
      }
    }
  }

  // ---- Controller and register clock tree. -------------------------------
  // This level's registers are clocked for the behavior's active window
  // (modules are clock-gated, so a child's registers burn clock power
  // only during its invocations -- accounted in the recursive call).
  eb.ctrl += sc.ctrl_cap_per_cycle * (bi.makespan + 1) * escale *
             static_cast<double>(T);
  eb.reg += sc.clock_cap_per_reg * static_cast<double>(dp.regs.size()) *
            (bi.makespan + 1) * escale * static_cast<double>(T);

  // ---- Children (recursive). ---------------------------------------------
  // Each child's estimation is independent; fan the recursion out over
  // the runtime and accumulate the per-child totals in map-key order so
  // the floating-point sum is identical for any thread count.
  {
    std::vector<const std::pair<const std::pair<int, std::string>, Trace>*>
        entries;
    entries.reserve(child_traces.size());
    for (const auto& entry : child_traces) entries.push_back(&entry);
    const std::vector<double> child_totals = runtime::parallel_map(
        static_cast<int>(entries.size()), [&](int i) {
          const auto& [key, ctrace] = *entries[static_cast<std::size_t>(i)];
          const Datapath& child =
              *dp.children[static_cast<std::size_t>(key.first)].impl;
          const int cb = child.find_behavior(key.second);
          check(cb >= 0, "energy_of: child lacks behavior " + key.second);
          const EnergyBreakdown ce =
              energy_of(child, cb, ctrace, lib, pt, /*top_level=*/false);
          // ce.total() is average per child invocation; ctrace has
          // T x (invocations per sample) entries.
          return ce.total() * (static_cast<double>(ctrace.size()) / T);
        });
    for (const double c : child_totals) eb.children += c;
  }

  // Normalize to energy per sample (except children, already normalized).
  const double inv_T = 1.0 / static_cast<double>(T);
  eb.fu *= inv_T;
  eb.reg *= inv_T;
  eb.mux *= inv_T;
  eb.wire *= inv_T;
  eb.ctrl *= inv_T;
  if (cached) {
    check(cached->fu == eb.fu && cached->reg == eb.reg &&
              cached->mux == eb.mux && cached->wire == eb.wire &&
              cached->ctrl == eb.ctrl && cached->children == eb.children,
          "eval verify: cached energy diverges from recompute");
    return *cached;
  }
  eng.energy_cache().put(key, eb, sizeof(EnergyBreakdown));
  return eb;
}

double power_of(const Datapath& dp, int b, const Trace& trace, const Library& lib,
                const OpPoint& pt, double sample_period_ns) {
  check(sample_period_ns > 0, "power_of: sample period must be positive");
  return energy_of(dp, b, trace, lib, pt).total() / sample_period_ns;
}

}  // namespace hsyn
