#include "power/trace.h"

#include <bit>
#include <map>

#include "runtime/parallel.h"
#include "util/fmt.h"
#include "util/rng.h"

namespace hsyn {

std::int32_t mask16(std::int64_t x) {
  const std::uint32_t u = static_cast<std::uint32_t>(x) & 0xFFFFu;
  return (u & 0x8000u) ? static_cast<std::int32_t>(u) - 0x10000 :
                         static_cast<std::int32_t>(u);
}

int hamming16(std::int32_t a, std::int32_t b) {
  const std::uint32_t d = (static_cast<std::uint32_t>(a) ^
                           static_cast<std::uint32_t>(b)) & 0xFFFFu;
  return std::popcount(d);
}

std::int32_t eval_op(Op op, std::int32_t a, std::int32_t b) {
  switch (op) {
    case Op::Add: return mask16(static_cast<std::int64_t>(a) + b);
    case Op::Sub: return mask16(static_cast<std::int64_t>(a) - b);
    case Op::Mult: return mask16(static_cast<std::int64_t>(a) * b);
    case Op::ShiftL: return mask16(static_cast<std::int64_t>(a) << (b & 15));
    case Op::ShiftR: return mask16(a >> (b & 15));
    case Op::Cmp: return a < b ? 1 : 0;
    case Op::And: return mask16(a & b);
    case Op::Or: return mask16(a | b);
    case Op::Xor: return mask16(a ^ b);
    case Op::Neg: return mask16(-static_cast<std::int64_t>(a));
    case Op::Hier: break;
  }
  check(false, "eval_op on hierarchical node");
  return 0;
}

Trace make_trace(int num_inputs, int num_samples, std::uint64_t seed,
                 double step_fraction) {
  Rng rng(seed);
  Trace trace(static_cast<std::size_t>(num_samples));
  Sample cur(static_cast<std::size_t>(num_inputs));
  for (auto& v : cur) v = mask16(rng.range(-32768, 32767));
  const int max_step = std::max(1, static_cast<int>(65536 * step_fraction / 2));
  for (int t = 0; t < num_samples; ++t) {
    for (auto& v : cur) {
      v = mask16(v + static_cast<std::int32_t>(rng.range(-max_step, max_step)));
    }
    trace[static_cast<std::size_t>(t)] = cur;
  }
  return trace;
}

namespace {

/// FNV-1a over the trace contents, mixed with the channel count.
std::uint64_t trace_fingerprint(const Trace& t) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(t.size());
  for (const Sample& s : t) {
    mix(s.size());
    for (const std::int32_t v : s) mix(static_cast<std::uint32_t>(v));
  }
  return h;
}

struct EvalCacheEntry {
  std::uint64_t fingerprint = 0;
  std::vector<std::vector<std::int32_t>> values;
};

// Value evaluation is binding-independent, so the move engine asks for
// the same (dfg, trace) combination thousands of times per pass; a
// single-slot-per-DFG memo removes almost all of that work.
thread_local std::map<const Dfg*, EvalCacheEntry> g_eval_cache;

}  // namespace

std::vector<std::vector<std::int32_t>> eval_dfg_edges(const Dfg& dfg,
                                                      const BehaviorResolver& res,
                                                      const Trace& inputs) {
  check(dfg.validated(), "eval_dfg_edges: dfg must be validated");
  std::uint64_t fp = trace_fingerprint(inputs);
  // Mix in the full DFG structure so a recycled allocation at the same
  // address (e.g. a different transformed variant of the same graph)
  // cannot alias a stale entry.
  auto mixin = [&fp](std::uint64_t v) {
    fp ^= v + 0x9e3779b97f4a7c15ULL + (fp << 6) + (fp >> 2);
  };
  mixin(dfg.nodes().size());
  mixin(dfg.edges().size());
  for (const char c : dfg.name()) mixin(static_cast<unsigned char>(c));
  for (const Node& n : dfg.nodes()) {
    mixin(static_cast<std::uint64_t>(n.op));
    for (const char c : n.behavior) mixin(static_cast<unsigned char>(c));
  }
  for (const Edge& e : dfg.edges()) {
    mixin(static_cast<std::uint64_t>(e.src.node + 3) * 64 +
          static_cast<std::uint64_t>(e.src.port));
    for (const PortRef& d : e.dsts) {
      mixin(static_cast<std::uint64_t>(d.node + 3) * 64 +
            static_cast<std::uint64_t>(d.port));
    }
  }
  if (auto it = g_eval_cache.find(&dfg);
      it != g_eval_cache.end() && it->second.fingerprint == fp) {
    return it->second.values;
  }
  std::vector<std::vector<std::int32_t>> vals(
      inputs.size(), std::vector<std::int32_t>(dfg.edges().size(), 0));
  // Samples are independent (the DFG is a pure function of one sample's
  // inputs), so the trace batch fans out over the runtime: each task
  // writes only its own vals[t] row, all values are integers, and the
  // result is bit-identical for any thread count.
  runtime::parallel_for(static_cast<int>(inputs.size()), [&](int ti) {
    const std::size_t t = static_cast<std::size_t>(ti);
    const Sample& in = inputs[t];
    check(static_cast<int>(in.size()) == dfg.num_inputs(),
          "eval_dfg_edges: input arity mismatch");
    auto& ev = vals[t];
    for (int i = 0; i < dfg.num_inputs(); ++i) {
      const int eid = dfg.primary_input_edge(i);
      if (eid >= 0) ev[static_cast<std::size_t>(eid)] = in[static_cast<std::size_t>(i)];
    }
    for (const int nid : dfg.topo_order()) {
      const Node& n = dfg.node(nid);
      if (n.is_hier()) {
        const Dfg* child = res(n.behavior);
        check(child != nullptr, "unresolved behavior " + n.behavior);
        Trace cin(1);
        cin[0].resize(static_cast<std::size_t>(n.num_inputs));
        for (int p = 0; p < n.num_inputs; ++p) {
          cin[0][static_cast<std::size_t>(p)] =
              ev[static_cast<std::size_t>(dfg.input_edge(nid, p))];
        }
        const std::vector<Sample> outs = eval_dfg(*child, res, cin);
        for (int p = 0; p < n.num_outputs; ++p) {
          const int eid = dfg.output_edge(nid, p);
          if (eid >= 0) {
            ev[static_cast<std::size_t>(eid)] = outs[0][static_cast<std::size_t>(p)];
          }
        }
      } else {
        const std::int32_t a =
            ev[static_cast<std::size_t>(dfg.input_edge(nid, 0))];
        const std::int32_t b =
            n.num_inputs > 1 ? ev[static_cast<std::size_t>(dfg.input_edge(nid, 1))]
                             : 0;
        const int eid = dfg.output_edge(nid, 0);
        if (eid >= 0) ev[static_cast<std::size_t>(eid)] = eval_op(n.op, a, b);
      }
    }
  });
  if (g_eval_cache.size() > 256) g_eval_cache.clear();
  g_eval_cache[&dfg] = {fp, vals};
  return vals;
}

std::vector<Sample> eval_dfg(const Dfg& dfg, const BehaviorResolver& res,
                             const Trace& inputs) {
  const auto edge_vals = eval_dfg_edges(dfg, res, inputs);
  std::vector<Sample> out(inputs.size(),
                          Sample(static_cast<std::size_t>(dfg.num_outputs())));
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    for (int o = 0; o < dfg.num_outputs(); ++o) {
      out[t][static_cast<std::size_t>(o)] =
          edge_vals[t][static_cast<std::size_t>(dfg.primary_output_edge(o))];
    }
  }
  return out;
}

}  // namespace hsyn
