#include "power/trace.h"

#include <algorithm>
#include <bit>

#include "eval/engine.h"
#include "obs/trace.h"
#include "power/replay.h"
#include "power/replay_kernels.h"
#include "runtime/parallel.h"
#include "util/fmt.h"
#include "util/hash.h"
#include "util/rng.h"

namespace hsyn {

int toggle_count(const std::int32_t* v, std::size_t n) {
  return detail::active_kernel_table().toggle_count(v, n);
}

int hamming_pair(const std::int32_t* a, const std::int32_t* b, std::size_t n) {
  return detail::active_kernel_table().hamming_pair(a, b, n);
}

int toggle_count_gather(const std::int32_t* const* cols, std::size_t n_cols,
                        std::size_t T) {
  if (n_cols == 0 || T == 0) return 0;
  if (n_cols == 1) return toggle_count(cols[0], T);
  // The interleaved stream's consecutive pairs split into n_cols groups:
  // within one sample, (cols[c-1][t], cols[c][t]) for each adjacent
  // column pair; across the sample boundary, (cols[n_cols-1][t],
  // cols[0][t+1]). Each group is one dense vectorized hamming_pair sweep;
  // integer addition in any grouping matches the buffered toggle_count
  // bit-for-bit.
  const detail::ReplayKernelTable& kt = detail::active_kernel_table();
  int total = 0;
  for (std::size_t c = 1; c < n_cols; ++c) {
    total += kt.hamming_pair(cols[c - 1], cols[c], T);
  }
  total += kt.hamming_pair(cols[n_cols - 1], cols[0] + 1, T - 1);
  return total;
}

int hamming_tuple(const std::int32_t* a, std::size_t na,
                  const std::int32_t* b, std::size_t nb) {
  const std::size_t n = std::max(na, nb);
  int total = 0;
  std::uint64_t packed = 0;
  int lanes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t va = i < na ? static_cast<std::uint32_t>(a[i]) : 0;
    const std::uint32_t vb = i < nb ? static_cast<std::uint32_t>(b[i]) : 0;
    packed |= static_cast<std::uint64_t>((va ^ vb) & 0xFFFFu) << (16 * lanes);
    if (++lanes == 4) {
      total += std::popcount(packed);
      packed = 0;
      lanes = 0;
    }
  }
  return total + std::popcount(packed);
}

Trace make_trace(int num_inputs, int num_samples, std::uint64_t seed,
                 double step_fraction) {
  Rng rng(seed);
  Trace trace(static_cast<std::size_t>(num_samples));
  Sample cur(static_cast<std::size_t>(num_inputs));
  for (auto& v : cur) v = mask16(rng.range(-32768, 32767));
  const int max_step = std::max(1, static_cast<int>(65536 * step_fraction / 2));
  for (int t = 0; t < num_samples; ++t) {
    for (auto& v : cur) {
      v = mask16(v + static_cast<std::int32_t>(rng.range(-max_step, max_step)));
    }
    trace[static_cast<std::size_t>(t)] = cur;
  }
  return trace;
}

std::uint64_t trace_fingerprint(const Trace& t) {
  std::uint64_t h = kFnvOffset;
  h = hash_mix(h, t.size());
  for (const Sample& s : t) {
    h = hash_mix(h, s.size());
    for (const std::int32_t v : s) {
      h = hash_mix(h, static_cast<std::uint32_t>(v));
    }
  }
  return hash_final(h);
}

namespace {

constexpr std::uint64_t kEdgeValsContext = 0xEDEA15EDEA150003ull;

/// The reference interpreter (HSYN_REPLAY=interp): per-time-step walk of
/// the topological order, hierarchical nodes recursing one sample at a
/// time. Kept verbatim as the semantic ground truth the compiled kernel
/// (power/replay.cpp) is tested against.
EdgeMatrix interp_eval_matrix(const Dfg& dfg, const BehaviorResolver& res,
                              const Trace& inputs) {
  obs::Span span("trace-replay");
  std::vector<std::vector<std::int32_t>> vals(
      inputs.size(), std::vector<std::int32_t>(dfg.edges().size(), 0));
  // Samples are independent (the DFG is a pure function of one sample's
  // inputs), so the trace batch fans out over the runtime: each task
  // writes only its own vals[t] row, all values are integers, and the
  // result is bit-identical for any thread count.
  runtime::parallel_for(static_cast<int>(inputs.size()), [&](int ti) {
    const std::size_t t = static_cast<std::size_t>(ti);
    const Sample& in = inputs[t];
    check(static_cast<int>(in.size()) == dfg.num_inputs(),
          "eval_dfg_edges: input arity mismatch");
    auto& ev = vals[t];
    for (int i = 0; i < dfg.num_inputs(); ++i) {
      const int eid = dfg.primary_input_edge(i);
      if (eid >= 0) ev[static_cast<std::size_t>(eid)] = in[static_cast<std::size_t>(i)];
    }
    for (const int nid : dfg.topo_order()) {
      const Node& n = dfg.node(nid);
      if (n.is_hier()) {
        const Dfg* child = res(n.behavior);
        check(child != nullptr, "unresolved behavior " + n.behavior);
        Trace cin(1);
        cin[0].resize(static_cast<std::size_t>(n.num_inputs));
        for (int p = 0; p < n.num_inputs; ++p) {
          cin[0][static_cast<std::size_t>(p)] =
              ev[static_cast<std::size_t>(dfg.input_edge(nid, p))];
        }
        const std::vector<Sample> outs = eval_dfg(*child, res, cin);
        for (int p = 0; p < n.num_outputs; ++p) {
          const int eid = dfg.output_edge(nid, p);
          if (eid >= 0) {
            ev[static_cast<std::size_t>(eid)] = outs[0][static_cast<std::size_t>(p)];
          }
        }
      } else {
        const std::int32_t a =
            ev[static_cast<std::size_t>(dfg.input_edge(nid, 0))];
        const std::int32_t b =
            n.num_inputs > 1 ? ev[static_cast<std::size_t>(dfg.input_edge(nid, 1))]
                             : 0;
        const int eid = dfg.output_edge(nid, 0);
        if (eid >= 0) ev[static_cast<std::size_t>(eid)] = eval_op(n.op, a, b);
      }
    }
  });
  // Transpose the rows into the edge-major shape the estimator consumes.
  EdgeMatrix mat(static_cast<int>(dfg.edges().size()), inputs.size());
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    const auto& ev = vals[t];
    for (int e = 0; e < mat.num_edges(); ++e) {
      mat.col_mut(e)[t] = ev[static_cast<std::size_t>(e)];
    }
  }
  return mat;
}

/// Dispatch to the HSYN_REPLAY-selected backend.
EdgeMatrix eval_matrix_uncached(const Dfg& dfg, const BehaviorResolver& res,
                                const Trace& inputs) {
  return replay_mode() == ReplayMode::Interp
             ? interp_eval_matrix(dfg, res, inputs)
             : replay_eval_matrix(dfg, res, inputs);
}

}  // namespace

std::shared_ptr<const EdgeMatrix>
eval_dfg_edges_shared(const Dfg& dfg, const BehaviorResolver& res,
                      const Trace& inputs) {
  check(dfg.validated(), "eval_dfg_edges: dfg must be validated");
  eval::EvalEngine& eng = eval::EvalEngine::instance();
  const eval::Key key{dfg.content_hash(), trace_fingerprint(inputs),
                      kEdgeValsContext};
  // The interpreter's hierarchical-node recursion evaluates child DFGs
  // one sample at a time; those tiny results would churn the cache, so
  // only multi-sample evaluations -- the move engine's hot path -- are
  // memoized.
  const bool cacheable = inputs.size() > 1;
  std::shared_ptr<const EdgeMatrix> cached;
  if (cacheable) {
    if (auto hit = eng.edge_values_cache().get(key)) {
      if (!eng.verify()) return *hit;
      cached = *hit;
    }
  }
  auto vals =
      std::make_shared<const EdgeMatrix>(eval_matrix_uncached(dfg, res, inputs));
  if (cached != nullptr) {
    check(*cached == *vals,
          "eval verify: cached edge values diverge from recompute");
    return cached;
  }
  if (cacheable) eng.edge_values_cache().put(key, vals, vals->bytes());
  return vals;
}

std::vector<std::vector<std::int32_t>> eval_dfg_edges(const Dfg& dfg,
                                                      const BehaviorResolver& res,
                                                      const Trace& inputs) {
  return eval_dfg_edges_shared(dfg, res, inputs)->rows();
}

std::vector<Sample> eval_dfg(const Dfg& dfg, const BehaviorResolver& res,
                             const Trace& inputs) {
  const auto mat_ptr = eval_dfg_edges_shared(dfg, res, inputs);
  const EdgeMatrix& mat = *mat_ptr;
  std::vector<Sample> out(inputs.size(),
                          Sample(static_cast<std::size_t>(dfg.num_outputs())));
  for (int o = 0; o < dfg.num_outputs(); ++o) {
    const std::int32_t* col = mat.col(dfg.primary_output_edge(o));
    for (std::size_t t = 0; t < inputs.size(); ++t) {
      out[t][static_cast<std::size_t>(o)] = col[t];
    }
  }
  return out;
}

}  // namespace hsyn
