// AVX2 kernel table: 8 int32 lanes per iteration.
//
// Compiled with -mavx2 for this translation unit only (src/CMakeLists.txt
// sets the per-file flag when the toolchain accepts it); the rest of the
// library stays at the baseline ISA. The table is handed out only when
// the *running* CPU reports AVX2, so linking this TU into a portable
// binary is safe -- no AVX2 instruction executes unless selected.
//
// Bitwise equivalence to the scalar reference (replay.cpp) is by
// construction: every op is a 16-bit-masked lane-wise map, 32-bit
// wrapping vector arithmetic agrees with the interpreter's int64
// arithmetic in the low 16 bits, and mask16 is the
// shift-left-16 / arithmetic-shift-right-16 pair in any ISA. Chunk
// lengths that are not a multiple of 8 finish with the scalar
// expressions on the tail elements.
#include "power/replay_kernels.h"

#if defined(HSYN_HAVE_AVX2)

#include <immintrin.h>

#include <cstdint>

#include "power/trace.h"

namespace hsyn::detail {
namespace {

/// Sign-extend the low 16 bits of each lane (vector mask16).
inline __m256i mask16_v(__m256i x) {
  return _mm256_srai_epi32(_mm256_slli_epi32(x, 16), 16);
}

/// o[t] = scal(a[t], b[t]) with the vectorized body `vec` over full
/// 8-lane groups and the scalar expression on the tail.
template <class VecFn, class ScalFn>
inline void map_columns(const std::int32_t* a, const std::int32_t* b,
                        std::int32_t* o, std::size_t len, VecFn vec,
                        ScalFn scal) {
  std::size_t t = 0;
  for (; t + 8 <= len; t += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + t));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + t), vec(va, vb));
  }
  for (; t < len; ++t) o[t] = scal(a[t], b[t]);
}

void avx2_add(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](__m256i x, __m256i y) {
                return mask16_v(_mm256_add_epi32(x, y));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(static_cast<std::int64_t>(x) + y);
              });
}
void avx2_sub(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](__m256i x, __m256i y) {
                return mask16_v(_mm256_sub_epi32(x, y));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(static_cast<std::int64_t>(x) - y);
              });
}
void avx2_mult(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
               std::size_t len) {
  // mullo keeps the low 32 product bits; mask16 only reads the low 16,
  // which agree with the interpreter's int64 product.
  map_columns(a, b, o, len,
              [](__m256i x, __m256i y) {
                return mask16_v(_mm256_mullo_epi32(x, y));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(static_cast<std::int64_t>(x) * y);
              });
}
void avx2_shiftl(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                 std::size_t len) {
  map_columns(a, b, o, len,
              [](__m256i x, __m256i y) {
                const __m256i s =
                    _mm256_and_si256(y, _mm256_set1_epi32(15));
                return mask16_v(_mm256_sllv_epi32(x, s));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(static_cast<std::int64_t>(x) << (y & 15));
              });
}
void avx2_shiftr(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                 std::size_t len) {
  map_columns(a, b, o, len,
              [](__m256i x, __m256i y) {
                const __m256i s =
                    _mm256_and_si256(y, _mm256_set1_epi32(15));
                return mask16_v(_mm256_srav_epi32(x, s));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(x >> (y & 15));
              });
}
void avx2_cmp(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](__m256i x, __m256i y) {
                // a < b  <=>  b > a; the all-ones lane mask AND 1 yields
                // the interpreter's 0/1 (no mask16 -- Cmp is already
                // canonical).
                return _mm256_and_si256(_mm256_cmpgt_epi32(y, x),
                                        _mm256_set1_epi32(1));
              },
              [](std::int32_t x, std::int32_t y) {
                return std::int32_t{x < y ? 1 : 0};
              });
}
void avx2_and(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](__m256i x, __m256i y) {
                return mask16_v(_mm256_and_si256(x, y));
              },
              [](std::int32_t x, std::int32_t y) { return mask16(x & y); });
}
void avx2_or(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
             std::size_t len) {
  map_columns(a, b, o, len,
              [](__m256i x, __m256i y) {
                return mask16_v(_mm256_or_si256(x, y));
              },
              [](std::int32_t x, std::int32_t y) { return mask16(x | y); });
}
void avx2_xor(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](__m256i x, __m256i y) {
                return mask16_v(_mm256_xor_si256(x, y));
              },
              [](std::int32_t x, std::int32_t y) { return mask16(x ^ y); });
}
void avx2_neg(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](__m256i x, __m256i) {
                return mask16_v(_mm256_sub_epi32(_mm256_setzero_si256(), x));
              },
              [](std::int32_t x, std::int32_t) {
                return mask16(-static_cast<std::int64_t>(x));
              });
}

// ---- Toggle counting: XOR + per-byte nibble-LUT popcount ----------------

/// Per-byte popcount of `d` summed into four u64 partials via sad_epu8.
/// The srli_epi16 by 4 smears bits across nibbles *within* a 16-bit
/// lane, but the AND with 0x0F first discards exactly the smeared bits,
/// so each byte indexes the LUT with its own high nibble.
inline __m256i byte_popcount_sad(__m256i d) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low4 = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(d, low4);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(d, 4), low4);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::uint64_t hsum_epi64(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

/// Sum of hamming16(a[i], b[i]) over 8-lane groups, scalar tail.
int avx2_hamming_pair(const std::int32_t* a, const std::int32_t* b,
                      std::size_t n) {
  const __m256i m16 = _mm256_set1_epi32(0xFFFF);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i d = _mm256_and_si256(_mm256_xor_si256(va, vb), m16);
    acc = _mm256_add_epi64(acc, byte_popcount_sad(d));
  }
  int total = static_cast<int>(hsum_epi64(acc));
  for (; i < n; ++i) total += hamming16(a[i], b[i]);
  return total;
}

/// Toggles between consecutive elements: the pair stream is the column
/// against itself shifted by one, so the vector body reads two unaligned
/// windows of the same column.
int avx2_toggle_count(const std::int32_t* v, std::size_t n) {
  if (n < 2) return 0;
  return avx2_hamming_pair(v, v + 1, n - 1);
}

}  // namespace

const ReplayKernelTable* avx2_kernel_table() {
  static const ReplayKernelTable* resolved = []() -> const ReplayKernelTable* {
    if (!__builtin_cpu_supports("avx2")) return nullptr;
    static const ReplayKernelTable table = {
        ReplayIsa::Avx2,
        "avx2",
        {avx2_add, avx2_sub, avx2_mult, avx2_shiftl, avx2_shiftr, avx2_cmp,
         avx2_and, avx2_or, avx2_xor, avx2_neg},
        avx2_toggle_count,
        avx2_hamming_pair,
    };
    return &table;
  }();
  return resolved;
}

}  // namespace hsyn::detail

#else  // !HSYN_HAVE_AVX2

namespace hsyn::detail {

const ReplayKernelTable* avx2_kernel_table() { return nullptr; }

}  // namespace hsyn::detail

#endif
