// Trace file I/O: "typical input traces to aid power estimation" are an
// input of the paper's H-SYN; this reader/writer stores one sample per
// line (whitespace-separated 16-bit values, one column per primary
// input; `#` comments allowed).
#pragma once

#include <string>

#include "power/trace.h"

namespace hsyn {

/// Serialize a trace (round-trips through trace_from_text).
std::string trace_to_text(const Trace& trace);

/// Parse a trace; every sample must have `num_inputs` values (pass 0 to
/// accept the first line's width). Values are wrapped to 16 bits.
/// Throws std::logic_error with a line-numbered message on bad input.
Trace trace_from_text(const std::string& text, int num_inputs = 0);

}  // namespace hsyn
