// Trace-driven switched-capacitance power estimation (paper [8,10] style).
//
// Energy of one behavior execution is accumulated per structure:
//   * functional units: cap_sw x (input-tuple Hamming activity),
//   * registers: write toggles,
//   * muxes and wires: per-delivery toggles (global wires at the top
//     level, cheaper local wires inside complex modules),
//   * controller: per-cycle switching,
// all scaled by Vdd^2. Streams follow the schedule, so *sharing* a unit
// between weakly correlated computations raises its activity -- the
// mechanism behind the paper's observation that power optimization often
// prefers NOT to share (Example 2 / reference [9]).
//
// This estimator is the fast inner-loop cost; the cycle-accurate RTL
// simulator (power/rtlsim.h) is the reporting-grade reference.
#pragma once

#include "power/trace.h"
#include "rtl/datapath.h"

namespace hsyn {

struct EnergyBreakdown {
  double fu = 0;
  double reg = 0;
  double mux = 0;
  double wire = 0;
  double ctrl = 0;
  double children = 0;

  [[nodiscard]] double total() const { return fu + reg + mux + wire + ctrl + children; }
};

/// Behavior resolver backed by the datapath tree: resolves any behavior
/// implemented by any descendant module (used for value evaluation).
BehaviorResolver resolver_of(const Datapath& dp);

/// Average energy per execution of behavior `b` of `dp`, driven by
/// `trace` at its primary inputs (cap x V^2 units). Children included
/// recursively. Requires the datapath to be fully scheduled.
EnergyBreakdown energy_of(const Datapath& dp, int b, const Trace& trace,
                          const Library& lib, const OpPoint& pt,
                          bool top_level = true);

/// Average power: energy per sample / sampling period (ns).
double power_of(const Datapath& dp, int b, const Trace& trace, const Library& lib,
                const OpPoint& pt, double sample_period_ns);

}  // namespace hsyn
