// Event-driven per-sample simulation: inherently serial within a sample
// (register states thread through the event list), so nothing here is
// batchable across the trace the way the replay kernel's columns are.
// It still consumes the shared HSYN_REPLAY_ISA-evaluated edge matrix and
// per-event hamming16/hamming_tuple sums, so simulate_rtl's results are
// identical across every replay ISA selection by construction.
#include "power/rtlsim.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <optional>

#include "eval/engine.h"
#include "power/replay.h"
#include "rtl/cost.h"
#include "runtime/parallel.h"
#include "runtime/stats.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

struct RegState {
  std::int32_t value = 0;
  int tag = -1;  ///< edge id whose value is currently stored, -1 = undefined
  bool has_value = false;
};

struct PendingWrite {
  int time = 0;
  int reg = -1;
  std::int32_t value = 0;
  int tag = -1;
};

/// One operand read: a child with a staggered profile reads each port at
/// start + profile.in[port]; simple units read everything at start.
struct ReadEvent {
  int time = 0;
  int inv = -1;
  int port = -1;  ///< index into inv_input_edges order
  int edge = -1;
};

}  // namespace

RtlSimResult simulate_rtl(const Datapath& dp, int b, const Trace& trace,
                          const Library& lib, const OpPoint& pt, bool top_level) {
  // Account top-level verification wall time (children run nested).
  std::optional<runtime::ScopedPhase> phase;
  if (top_level && !runtime::ThreadPool::in_region()) {
    phase.emplace("rtl-verify");
  }
  RtlSimResult res;
  const BehaviorImpl& bi = dp.behaviors.at(static_cast<std::size_t>(b));
  check(bi.scheduled, "simulate_rtl: behavior not scheduled");
  const Dfg& dfg = *bi.dfg;
  const StructureCosts& sc = lib.costs();
  const double escale = energy_scale(pt.vdd);
  // Wire/mux pricing shares the estimator's layout-derived scale, served
  // from the eval engine's area cache (rtl/cost.h).
  const double wire_scale = wire_scale_of(dp, lib, top_level);
  const double wire_cap =
      (top_level ? sc.wire_cap_global : sc.wire_cap_local) * wire_scale;
  const double mux_cap = sc.mux_cap_per_input * wire_scale;
  const std::size_t T = trace.size();
  if (T == 0) {
    res.ok = true;
    return res;
  }

  // Reference values for checking reads and outputs (shared edge matrix,
  // one evaluation also serving eval_dfg below).
  const BehaviorResolver resolver = resolver_of(dp);
  const auto ref_vals_ptr = eval_dfg_edges_shared(dfg, resolver, trace);
  const EdgeMatrix& ref_vals = *ref_vals_ptr;
  const auto ref_outs = eval_dfg(dfg, resolver, trace);
  const auto conn_ptr = eval::EvalEngine::instance().connectivity(dp);
  const Connectivity& conn = *conn_ptr;

  // Static per-invocation info: input edges, per-port read offsets,
  // output schedule.
  const std::size_t ninv = bi.invs.size();
  std::vector<std::vector<int>> inv_ins(ninv);
  std::vector<std::vector<int>> inv_read_off(ninv);
  std::vector<const Datapath*> inv_child(ninv, nullptr);
  std::vector<int> inv_child_beh(ninv, -1);
  std::vector<BehaviorResolver> inv_child_res(ninv);
  for (std::size_t i = 0; i < ninv; ++i) {
    const Invocation& inv = bi.invs[i];
    inv_ins[i] = dp.inv_input_edges(b, static_cast<int>(i));
    inv_read_off[i].assign(inv_ins[i].size(), 0);
    if (inv.unit.kind == UnitRef::Kind::Child) {
      const Node& n = dfg.node(inv.nodes.front());
      const Datapath& child =
          *dp.children[static_cast<std::size_t>(inv.unit.idx)].impl;
      const int cb = child.find_behavior(n.behavior);
      check(cb >= 0, "simulate_rtl: child lacks behavior " + n.behavior);
      inv_child[i] = &child;
      inv_child_beh[i] = cb;
      // Resolver hoisted out of the per-sample completion path.
      inv_child_res[i] = resolver_of(child);
      const Profile p = child.profile(cb, lib, pt);
      // inv_input_edges order for a single hier node is its port order.
      for (std::size_t k = 0; k < inv_ins[i].size(); ++k) {
        inv_read_off[i][k] = p.in[k];
      }
    }
  }

  std::vector<RegState> regs(dp.regs.size());
  struct FuState {
    bool has_prev = false;
    std::vector<std::int32_t> prev;
  };
  std::vector<FuState> fu_state(dp.fus.size());
  std::map<std::tuple<int, int, int>, std::int32_t> port_prev;
  std::map<std::pair<int, std::string>, Trace> child_traces;

  auto violation = [&res](std::string msg) {
    if (res.violations.size() < 32) res.violations.push_back(std::move(msg));
  };

  res.outputs.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    std::vector<PendingWrite> writes;
    // Primary inputs are written into their registers at their arrival
    // cycles by the environment.
    for (int i = 0; i < dfg.num_inputs(); ++i) {
      const int eid = dfg.primary_input_edge(i);
      if (eid < 0) continue;
      const int r = bi.edge_reg[static_cast<std::size_t>(eid)];
      check(r >= 0, "primary input edge without register");
      writes.push_back({bi.input_arrival[static_cast<std::size_t>(i)], r,
                        trace[t][static_cast<std::size_t>(i)], eid});
    }
    std::sort(writes.begin(), writes.end(),
              [](const PendingWrite& a, const PendingWrite& b) {
                return a.time < b.time;
              });
    std::size_t wi = 0;
    std::vector<PendingWrite> dynamic_writes;
    auto flush_writes = [&](int now) {
      // Writes with time <= now are visible to reads at `now` (the
      // scheduler guarantees write >= read + 1 for WAR pairs, so
      // equality only occurs producer -> consumer).
      auto apply = [&](const PendingWrite& w) {
        RegState& r = regs[static_cast<std::size_t>(w.reg)];
        const double ham =
            r.has_value ? hamming16(r.value, w.value) / 16.0 : 0.5;
        res.energy.reg += lib.reg().cap_sw * ham * escale;
        r.value = w.value;
        r.tag = w.tag;
        r.has_value = true;
      };
      while (wi < writes.size() && writes[wi].time <= now) {
        apply(writes[wi]);
        ++wi;
      }
      std::vector<PendingWrite> rest;
      for (const PendingWrite& w : dynamic_writes) {
        if (w.time <= now) {
          apply(w);
        } else {
          rest.push_back(w);
        }
      }
      dynamic_writes = std::move(rest);
    };

    // Per-operand read events (stable order: time, inv, port).
    std::vector<ReadEvent> reads;
    for (std::size_t i = 0; i < ninv; ++i) {
      const int start = bi.inv_start[i];
      for (std::size_t p = 0; p < inv_ins[i].size(); ++p) {
        reads.push_back({start + inv_read_off[i][p], static_cast<int>(i),
                         static_cast<int>(p), inv_ins[i][p]});
      }
    }
    std::stable_sort(reads.begin(), reads.end(),
                     [](const ReadEvent& a, const ReadEvent& b) {
                       if (a.time != b.time) return a.time < b.time;
                       if (a.inv != b.inv) return a.inv < b.inv;
                       return a.port < b.port;
                     });

    std::vector<std::vector<std::int32_t>> operands(ninv);
    std::vector<std::size_t> reads_left(ninv);
    for (std::size_t i = 0; i < ninv; ++i) {
      operands[i].assign(inv_ins[i].size(), 0);
      reads_left[i] = inv_ins[i].size();
    }

    auto complete_invocation = [&](std::size_t i) {
      const Invocation& inv = bi.invs[i];
      const int start = bi.inv_start[i];
      if (inv.unit.kind == UnitRef::Kind::Fu) {
        FuState& st = fu_state[static_cast<std::size_t>(inv.unit.idx)];
        const FuType& ft =
            lib.fu(dp.fus[static_cast<std::size_t>(inv.unit.idx)].type);
        if (st.has_prev) {
          const std::size_t n = std::max(st.prev.size(), operands[i].size());
          const int ham = hamming_tuple(st.prev.data(), st.prev.size(),
                                        operands[i].data(), operands[i].size());
          res.energy.fu +=
              ft.cap_sw * (static_cast<double>(ham) / (16.0 * n)) * escale;
        } else {
          res.energy.fu += ft.cap_sw * 0.5 * escale;
        }
        st.prev = operands[i];
        st.has_prev = true;
        // Evaluate the (possibly chained) operation combinationally.
        std::map<int, std::int32_t> local;  // edge -> value within chain
        std::size_t op_idx = 0;
        std::int32_t out_val = 0;
        for (const int nid : inv.nodes) {
          const Node& n = dfg.node(nid);
          std::int32_t a = 0, bv = 0;
          for (int p = 0; p < n.num_inputs; ++p) {
            const int e = dfg.input_edge(nid, p);
            auto lit = local.find(e);
            if (lit != local.end()) {
              (p == 0 ? a : bv) = lit->second;
            } else {
              (p == 0 ? a : bv) = operands[i][op_idx++];
            }
          }
          out_val = eval_op(n.op, a, bv);
          const int oe = dfg.output_edge(nid, 0);
          if (oe >= 0) local[oe] = out_val;
        }
        const int ready =
            start +
            lib.cycles(dp.fus[static_cast<std::size_t>(inv.unit.idx)].type, pt);
        for (const int e : dp.inv_output_edges(b, static_cast<int>(i))) {
          const int r = bi.edge_reg[static_cast<std::size_t>(e)];
          if (r >= 0) dynamic_writes.push_back({ready, r, out_val, e});
        }
      } else {
        const Node& n = dfg.node(inv.nodes.front());
        const Datapath& child = *inv_child[i];
        Trace one(1);
        one[0] = operands[i];
        const std::vector<Sample> outs = eval_dfg(
            *child.behaviors[static_cast<std::size_t>(inv_child_beh[i])].dfg,
            inv_child_res[i], one);
        const Profile prof = child.profile(inv_child_beh[i], lib, pt);
        for (int port = 0; port < n.num_outputs; ++port) {
          const int e = dfg.output_edge(inv.nodes.front(), port);
          if (e < 0) continue;
          const int r = bi.edge_reg[static_cast<std::size_t>(e)];
          if (r >= 0) {
            dynamic_writes.push_back(
                {start + prof.out[static_cast<std::size_t>(port)], r,
                 outs[0][static_cast<std::size_t>(port)], e});
          }
        }
        child_traces[{inv.unit.idx, n.behavior}].push_back(operands[i]);
      }
    };

    for (const ReadEvent& rd : reads) {
      flush_writes(rd.time);
      const std::size_t i = static_cast<std::size_t>(rd.inv);
      const Invocation& inv = bi.invs[i];
      const int e = rd.edge;
      const int r = bi.edge_reg[static_cast<std::size_t>(e)];
      std::int32_t v = 0;
      if (r < 0) {
        violation(strf("inv %d reads unregistered edge %d", rd.inv, e));
      } else {
        const RegState& st = regs[static_cast<std::size_t>(r)];
        if (!st.has_value) {
          violation(strf("inv %d reads uninitialized register %d at cycle %d",
                         rd.inv, r, rd.time));
        } else if (st.tag != e) {
          violation(strf("inv %d expected edge %d in register %d but found "
                         "edge %d at cycle %d (hazard)",
                         rd.inv, e, r, st.tag, rd.time));
        }
        v = st.value;
        if (st.has_value && st.tag == e && v != ref_vals.at(e, t)) {
          violation(strf("inv %d edge %d: register value %d != reference %d",
                         rd.inv, e, v, ref_vals.at(e, t)));
        }
      }
      operands[i][static_cast<std::size_t>(rd.port)] = v;

      // Mux + wire energy per operand delivery.
      const int ukind = static_cast<int>(inv.unit.kind);
      const auto& ports =
          inv.unit.kind == UnitRef::Kind::Fu
              ? conn.fu_port_srcs[static_cast<std::size_t>(inv.unit.idx)]
              : conn.child_port_srcs[static_cast<std::size_t>(inv.unit.idx)];
      auto key = std::make_tuple(ukind, inv.unit.idx, rd.port);
      auto it = port_prev.find(key);
      if (it != port_prev.end()) {
        const double act = hamming16(it->second, v) / 16.0;
        const bool muxed = static_cast<std::size_t>(rd.port) < ports.size() &&
                           ports[static_cast<std::size_t>(rd.port)].size() > 1;
        res.energy.wire += wire_cap * act * escale;
        if (muxed) res.energy.mux += mux_cap * act * escale;
        it->second = v;
      } else {
        port_prev.emplace(key, v);
      }

      if (--reads_left[i] == 0) complete_invocation(i);
    }
    flush_writes(1 << 29);  // end of sample: apply all remaining writes

    // Sample the primary outputs.
    res.outputs[t].resize(static_cast<std::size_t>(dfg.num_outputs()));
    for (int o = 0; o < dfg.num_outputs(); ++o) {
      const int e = dfg.primary_output_edge(o);
      const int r = bi.edge_reg[static_cast<std::size_t>(e)];
      std::int32_t v = 0;
      if (r >= 0) {
        const RegState& st = regs[static_cast<std::size_t>(r)];
        if (!st.has_value || st.tag != e) {
          violation(strf("primary output %d not present in register %d at "
                         "sample end",
                         o, r));
        }
        v = st.value;
      }
      res.outputs[t][static_cast<std::size_t>(o)] = v;
      if (v != ref_outs[t][static_cast<std::size_t>(o)]) {
        violation(strf("sample %zu output %d: rtl %d != behavior %d", t, o, v,
                       ref_outs[t][static_cast<std::size_t>(o)]));
      }
    }
    res.energy.ctrl += sc.ctrl_cap_per_cycle * (bi.makespan + 1) * escale;
    res.energy.reg += sc.clock_cap_per_reg *
                      static_cast<double>(dp.regs.size()) *
                      (bi.makespan + 1) * escale;
  }

  // Recursively verify children on their observed input streams. The
  // per-child simulations are independent, so they fan out over the
  // runtime; violations and energies are folded back in map-key order
  // so the report and the floating-point sum are thread-count
  // independent.
  {
    std::vector<const std::pair<const std::pair<int, std::string>, Trace>*>
        entries;
    entries.reserve(child_traces.size());
    for (const auto& entry : child_traces) entries.push_back(&entry);
    const std::vector<RtlSimResult> child_results = runtime::parallel_map(
        static_cast<int>(entries.size()), [&](int i) {
          const auto& [key, ctrace] = *entries[static_cast<std::size_t>(i)];
          const Datapath& child =
              *dp.children[static_cast<std::size_t>(key.first)].impl;
          const int cb = child.find_behavior(key.second);
          return simulate_rtl(child, cb, ctrace, lib, pt,
                              /*top_level=*/false);
        });
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& [key, ctrace] = *entries[i];
      const RtlSimResult& cr = child_results[i];
      for (const std::string& v : cr.violations) {
        violation("child " +
                  dp.children[static_cast<std::size_t>(key.first)].name +
                  ": " + v);
      }
      res.energy.children +=
          cr.energy.total() * (static_cast<double>(ctrace.size()) / T);
    }
  }

  const double inv_T = 1.0 / static_cast<double>(T);
  res.energy.fu *= inv_T;
  res.energy.reg *= inv_T;
  res.energy.mux *= inv_T;
  res.energy.wire *= inv_T;
  res.energy.ctrl *= inv_T;
  res.ok = res.violations.empty();
  return res;
}

}  // namespace hsyn
