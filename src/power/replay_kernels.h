// Runtime-dispatched kernel tables for the compiled replay executor and
// the toggle-count accumulators.
//
// Every DFG operation is a 16-bit-masked lane-wise map over int32
// columns (power/trace.h eval_op), so a vector kernel applying the same
// modular arithmetic per lane is bitwise-equal to the scalar loop *by
// construction*: 32-bit wraparound agrees with the interpreter's int64
// arithmetic in the low 16 bits, and mask16 is a shift-left-16 /
// arithmetic-shift-right-16 pair in any ISA. Chunk lengths that are not
// a multiple of the vector width fall back to the scalar reference for
// the tail elements.
//
// Three tables exist:
//   * scalar  -- the portable reference loops (always compiled in),
//   * avx2    -- x86-64, 8 int32 lanes (compiled when the toolchain
//                accepts -mavx2; used when the CPU reports AVX2),
//   * neon    -- aarch64, 4 int32 lanes (NEON is baseline there).
// HSYN_REPLAY_ISA / set_replay_isa (power/replay.h) select the active
// table once per process; "native" resolves to the best available.
//
// Internal header: consumed by the replay executor (power/replay.cpp),
// the toggle-count dispatch (power/trace.cpp), the ISA-forced
// equivalence tests, and bench_power's per-opcode microbenchmarks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "power/replay.h"

namespace hsyn::detail {

/// Number of per-opcode column kernels: Op::Add .. Op::Neg. Op::Hier is
/// not a column map (the executor expands it structurally).
inline constexpr int kNumOpKernels = 10;

/// One opcode down a column: o[t] = op(a[t], b[t]) for t in [0, len).
using OpColumnFn = void (*)(const std::int32_t* a, const std::int32_t* b,
                            std::int32_t* o, std::size_t len);

/// Toggles between consecutive elements (toggle_count's contract).
using ToggleCountFn = int (*)(const std::int32_t* v, std::size_t n);

/// Sum over i in [0, n) of hamming16(a[i], b[i]).
using HammingPairFn = int (*)(const std::int32_t* a, const std::int32_t* b,
                              std::size_t n);

struct ReplayKernelTable {
  ReplayIsa isa = ReplayIsa::Scalar;
  const char* name = "scalar";      ///< replay_isa_name(isa)
  OpColumnFn op[kNumOpKernels] = {};  ///< indexed by static_cast<int>(Op)
  ToggleCountFn toggle_count = nullptr;
  HammingPairFn hamming_pair = nullptr;
};

/// The portable reference table (always available).
const ReplayKernelTable& scalar_kernel_table();

/// AVX2 table, or nullptr when not compiled in or the CPU lacks AVX2.
const ReplayKernelTable* avx2_kernel_table();

/// NEON table, or nullptr when not compiled for aarch64.
const ReplayKernelTable* neon_kernel_table();

/// The HSYN_REPLAY_ISA-selected table, resolved once on first use
/// (power/replay.cpp owns the dispatch state; set_replay_isa respins it).
const ReplayKernelTable& active_kernel_table();

}  // namespace hsyn::detail
