#include "power/replay.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <map>

#include "eval/engine.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "power/replay_kernels.h"
#include "power/trace.h"
#include "runtime/arena.h"
#include "runtime/parallel.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

constexpr std::uint64_t kProgramContext = 0x9E91A79E91A70005ull;

// -1 = not yet initialized from HSYN_REPLAY.
std::atomic<int> g_mode{-1};

}  // namespace

std::vector<std::vector<std::int32_t>> EdgeMatrix::rows() const {
  std::vector<std::vector<std::int32_t>> out(
      samples_, std::vector<std::int32_t>(static_cast<std::size_t>(num_edges_)));
  // Blocked transpose: 64x64 tiles keep one stripe of destination rows
  // cache-resident while a stripe of source columns streams through --
  // the element-by-element sweep re-touched every row once per column,
  // which is quadratic cache traffic on the interp-compare path
  // (HSYN_EVAL_VERIFY calls rows() on every matrix).
  constexpr std::size_t kTile = 64;
  const std::size_t E = static_cast<std::size_t>(num_edges_);
  for (std::size_t t0 = 0; t0 < samples_; t0 += kTile) {
    const std::size_t t1 = std::min(t0 + kTile, samples_);
    for (std::size_t e0 = 0; e0 < E; e0 += kTile) {
      const std::size_t e1 = std::min(e0 + kTile, E);
      for (std::size_t e = e0; e < e1; ++e) {
        const std::int32_t* c = col(static_cast<int>(e));
        for (std::size_t t = t0; t < t1; ++t) out[t][e] = c[t];
      }
    }
  }
  return out;
}

std::size_t ReplayProgram::bytes() const {
  std::size_t b = sizeof(ReplayProgram);
  b += (input_slots.size() + output_slots.size() + consts.size()) *
       sizeof(std::int32_t);
  b += steps.size() * sizeof(ReplayStep);
  for (const ReplayHierCall& h : hier_calls) {
    b += sizeof(ReplayHierCall) + h.behavior.size() +
         (h.in_slots.size() + h.out_slots.size()) * sizeof(std::int32_t);
  }
  return b;
}

ReplayMode replay_mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    ReplayMode parsed = ReplayMode::Compiled;
    if (const char* s = std::getenv("HSYN_REPLAY")) {
      check(parse_replay_mode(s, &parsed),
            std::string("HSYN_REPLAY must be 'interp' or 'compiled', got '") +
                s + "'");
    }
    m = static_cast<int>(parsed);
    g_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<ReplayMode>(m);
}

void set_replay_mode(ReplayMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

bool parse_replay_mode(const std::string& s, ReplayMode* out) {
  if (s == "interp") {
    *out = ReplayMode::Interp;
    return true;
  }
  if (s == "compiled") {
    *out = ReplayMode::Compiled;
    return true;
  }
  return false;
}

// ---- Scalar kernel table and ISA dispatch --------------------------------
//
// The portable reference loops. Each is one tight per-opcode sweep down
// a column; the SIMD tables (replay_simd_avx2.cpp / replay_simd_neon.cpp)
// reproduce exactly these values 8 or 4 lanes at a time and run these
// loops for sub-width tails.

namespace {

// The kernel tables index ops by their enum ordinal; a reorder of Op
// would silently misdispatch without this pin.
static_assert(static_cast<int>(Op::Add) == 0 && static_cast<int>(Op::Sub) == 1 &&
                  static_cast<int>(Op::Mult) == 2 &&
                  static_cast<int>(Op::ShiftL) == 3 &&
                  static_cast<int>(Op::ShiftR) == 4 &&
                  static_cast<int>(Op::Cmp) == 5 &&
                  static_cast<int>(Op::And) == 6 &&
                  static_cast<int>(Op::Or) == 7 &&
                  static_cast<int>(Op::Xor) == 8 &&
                  static_cast<int>(Op::Neg) == 9 &&
                  static_cast<int>(Op::Hier) == detail::kNumOpKernels,
              "kernel tables are indexed by Op ordinal");

void scalar_add(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) {
    o[t] = mask16(static_cast<std::int64_t>(a[t]) + b[t]);
  }
}
void scalar_sub(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) {
    o[t] = mask16(static_cast<std::int64_t>(a[t]) - b[t]);
  }
}
void scalar_mult(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                 std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) {
    o[t] = mask16(static_cast<std::int64_t>(a[t]) * b[t]);
  }
}
void scalar_shiftl(const std::int32_t* a, const std::int32_t* b,
                   std::int32_t* o, std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) {
    o[t] = mask16(static_cast<std::int64_t>(a[t]) << (b[t] & 15));
  }
}
void scalar_shiftr(const std::int32_t* a, const std::int32_t* b,
                   std::int32_t* o, std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) o[t] = mask16(a[t] >> (b[t] & 15));
}
void scalar_cmp(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) o[t] = a[t] < b[t] ? 1 : 0;
}
void scalar_and(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) o[t] = mask16(a[t] & b[t]);
}
void scalar_or(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
               std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) o[t] = mask16(a[t] | b[t]);
}
void scalar_xor(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) o[t] = mask16(a[t] ^ b[t]);
}
void scalar_neg(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                std::size_t len) {
  (void)b;  // unary: the compiled step wires the pooled constant 0 here
  for (std::size_t t = 0; t < len; ++t) {
    o[t] = mask16(-static_cast<std::int64_t>(a[t]));
  }
}

int scalar_toggle_count(const std::int32_t* v, std::size_t n) {
  if (n < 2) return 0;
  int total = 0;
  std::uint64_t packed = 0;
  int lanes = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t d = (static_cast<std::uint32_t>(v[i - 1]) ^
                             static_cast<std::uint32_t>(v[i])) & 0xFFFFu;
    packed |= d << (16 * lanes);
    if (++lanes == 4) {
      total += std::popcount(packed);
      packed = 0;
      lanes = 0;
    }
  }
  return total + std::popcount(packed);
}

int scalar_hamming_pair(const std::int32_t* a, const std::int32_t* b,
                        std::size_t n) {
  int total = 0;
  std::uint64_t packed = 0;
  int lanes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t d = (static_cast<std::uint32_t>(a[i]) ^
                             static_cast<std::uint32_t>(b[i])) & 0xFFFFu;
    packed |= d << (16 * lanes);
    if (++lanes == 4) {
      total += std::popcount(packed);
      packed = 0;
      lanes = 0;
    }
  }
  return total + std::popcount(packed);
}

/// Active table; nullptr until the first resolution (from HSYN_REPLAY_ISA
/// or set_replay_isa).
std::atomic<const detail::ReplayKernelTable*> g_isa_table{nullptr};

const detail::ReplayKernelTable* table_for(ReplayIsa isa) {
  switch (isa) {
    case ReplayIsa::Scalar:
      return &detail::scalar_kernel_table();
    case ReplayIsa::Avx2:
      return detail::avx2_kernel_table();
    case ReplayIsa::Neon:
      return detail::neon_kernel_table();
    case ReplayIsa::Native:
      if (const auto* t = detail::avx2_kernel_table()) return t;
      if (const auto* t = detail::neon_kernel_table()) return t;
      return &detail::scalar_kernel_table();
  }
  return &detail::scalar_kernel_table();
}

/// Publish the selection to obs: the `replay.isa` gauge holds the
/// selected ordinal + 1 (0 = replay has not resolved yet), and the
/// `replay-isa` source names the selected and available tables.
void publish_isa(const detail::ReplayKernelTable& t) {
  obs::Registry& reg = obs::Registry::instance();
  reg.gauge("replay.isa").set(static_cast<double>(static_cast<int>(t.isa) + 1));
  static const bool registered = [&reg] {
    reg.register_source("replay-isa", [] {
      std::map<std::string, std::uint64_t> m;
      m["available_scalar"] = 1;
      m["available_avx2"] = detail::avx2_kernel_table() != nullptr ? 1 : 0;
      m["available_neon"] = detail::neon_kernel_table() != nullptr ? 1 : 0;
      m[std::string("selected_") + detail::active_kernel_table().name] = 1;
      return m;
    });
    return true;
  }();
  (void)registered;
}

}  // namespace

namespace detail {

const ReplayKernelTable& scalar_kernel_table() {
  static const ReplayKernelTable t = {
      ReplayIsa::Scalar,
      "scalar",
      {scalar_add, scalar_sub, scalar_mult, scalar_shiftl, scalar_shiftr,
       scalar_cmp, scalar_and, scalar_or, scalar_xor, scalar_neg},
      scalar_toggle_count,
      scalar_hamming_pair,
  };
  return t;
}

const ReplayKernelTable& active_kernel_table() {
  const ReplayKernelTable* t = g_isa_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    ReplayIsa isa = ReplayIsa::Native;
    if (const char* s = std::getenv("HSYN_REPLAY_ISA")) {
      check(parse_replay_isa(s, &isa),
            std::string("HSYN_REPLAY_ISA must be 'scalar', 'avx2', 'neon' or "
                        "'native', got '") + s + "'");
    }
    set_replay_isa(isa);  // races resolve to the same table: benign
    t = g_isa_table.load(std::memory_order_acquire);
  }
  return *t;
}

}  // namespace detail

ReplayIsa replay_isa() { return detail::active_kernel_table().isa; }

void set_replay_isa(ReplayIsa isa) {
  const detail::ReplayKernelTable* t = table_for(isa);
  check(t != nullptr,
        std::string("replay ISA '") + replay_isa_name(isa) +
            "' is not available on this build/CPU; use 'scalar' or 'native'");
  g_isa_table.store(t, std::memory_order_release);
  publish_isa(*t);
}

bool parse_replay_isa(const std::string& s, ReplayIsa* out) {
  if (s == "scalar") {
    *out = ReplayIsa::Scalar;
    return true;
  }
  if (s == "avx2") {
    *out = ReplayIsa::Avx2;
    return true;
  }
  if (s == "neon") {
    *out = ReplayIsa::Neon;
    return true;
  }
  if (s == "native") {
    *out = ReplayIsa::Native;
    return true;
  }
  return false;
}

bool replay_isa_available(ReplayIsa isa) { return table_for(isa) != nullptr; }

const char* replay_isa_name(ReplayIsa isa) {
  switch (isa) {
    case ReplayIsa::Scalar: return "scalar";
    case ReplayIsa::Avx2: return "avx2";
    case ReplayIsa::Neon: return "neon";
    case ReplayIsa::Native: return "native";
  }
  return "scalar";
}

ReplayProgram compile_replay(const Dfg& dfg) {
  check(dfg.validated(), "compile_replay: dfg must be validated");
  ReplayProgram p;
  p.dfg_hash = dfg.content_hash();
  p.num_inputs = dfg.num_inputs();
  p.num_outputs = dfg.num_outputs();
  p.num_edges = static_cast<int>(dfg.edges().size());
  p.input_slots.reserve(static_cast<std::size_t>(p.num_inputs));
  for (int i = 0; i < p.num_inputs; ++i) {
    p.input_slots.push_back(dfg.primary_input_edge(i));
  }
  p.output_slots.reserve(static_cast<std::size_t>(p.num_outputs));
  for (int o = 0; o < p.num_outputs; ++o) {
    p.output_slots.push_back(dfg.primary_output_edge(o));
  }
  const auto const_slot = [&p](std::int32_t v) -> std::int32_t {
    for (std::size_t j = 0; j < p.consts.size(); ++j) {
      if (p.consts[j] == v) return p.num_edges + static_cast<std::int32_t>(j);
    }
    p.consts.push_back(v);
    return p.num_edges + static_cast<std::int32_t>(p.consts.size()) - 1;
  };
  for (const int nid : dfg.topo_order()) {
    const Node& n = dfg.node(nid);
    if (n.is_hier()) {
      ReplayHierCall h;
      h.behavior = n.behavior;
      h.in_slots.reserve(static_cast<std::size_t>(n.num_inputs));
      for (int q = 0; q < n.num_inputs; ++q) {
        h.in_slots.push_back(dfg.input_edge(nid, q));
      }
      h.out_slots.reserve(static_cast<std::size_t>(n.num_outputs));
      for (int q = 0; q < n.num_outputs; ++q) {
        h.out_slots.push_back(dfg.output_edge(nid, q));
      }
      p.steps.push_back({Op::Hier,
                         static_cast<std::int32_t>(p.hier_calls.size()), 0, 0});
      p.hier_calls.push_back(std::move(h));
      continue;
    }
    const int out = dfg.output_edge(nid, 0);
    // A dead operation (unconsumed result) has no effect on any column;
    // the interpreter skips the write too.
    if (out < 0) continue;
    const std::int32_t a = dfg.input_edge(nid, 0);
    // Unary ops read the constant 0 as their second operand, matching
    // eval_op's calling convention in the interpreter.
    const std::int32_t b =
        n.num_inputs > 1 ? dfg.input_edge(nid, 1) : const_slot(0);
    p.steps.push_back({n.op, a, b, out});
  }
  return p;
}

std::shared_ptr<const ReplayProgram> replay_program_of(const Dfg& dfg) {
  check(dfg.validated(), "replay_program_of: dfg must be validated");
  eval::EvalEngine& eng = eval::EvalEngine::instance();
  const eval::Key key{dfg.content_hash(), 0, kProgramContext};
  if (auto hit = eng.program_cache().get(key)) {
    if (!eng.verify()) return *hit;
    check(**hit == compile_replay(dfg),
          "eval verify: cached replay program diverges from recompile");
    return *hit;
  }
  auto prog = std::make_shared<const ReplayProgram>(compile_replay(dfg));
  static obs::Counter& compiled =
      obs::Registry::instance().counter("replay.programs_compiled");
  compiled.add();
  eng.program_cache().put(key, prog, prog->bytes());
  return prog;
}

namespace {

/// Run `p` over `len` consecutive samples. `cols[s]` is the column for
/// slot s (edges first, then the constant pool); input-edge columns are
/// pre-filled by the caller, every other edge column starts zeroed.
/// Hierarchical calls carve the child's columns out of `arena` and
/// recurse over the same batch.
void exec_program(const ReplayProgram& p, const BehaviorResolver& res,
                  std::int32_t** cols, std::size_t len,
                  runtime::Arena& arena) {
  // Resolve the kernel table once per batch, not once per step: the
  // atomic load is cheap but not free down a hot program.
  const detail::ReplayKernelTable& kt = detail::active_kernel_table();
  for (const ReplayStep& s : p.steps) {
    if (s.op == Op::Hier) {
      const ReplayHierCall& h =
          p.hier_calls[static_cast<std::size_t>(s.a)];
      const Dfg* child = res(h.behavior);
      check(child != nullptr, "unresolved behavior " + h.behavior);
      const auto cp = replay_program_of(*child);
      check(static_cast<int>(h.in_slots.size()) == cp->num_inputs,
            "eval_dfg_edges: input arity mismatch");
      runtime::Arena::Frame frame(arena);
      const std::size_t nedges = static_cast<std::size_t>(cp->num_edges);
      std::int32_t* block = arena.alloc_i32(nedges * len);
      std::memset(block, 0, nedges * len * sizeof(std::int32_t));
      std::int32_t** ccols =
          arena.alloc_ptrs<std::int32_t>(nedges + cp->consts.size());
      for (std::size_t e = 0; e < nedges; ++e) ccols[e] = block + e * len;
      for (std::size_t j = 0; j < cp->consts.size(); ++j) {
        std::int32_t* c = arena.alloc_i32(len);
        for (std::size_t t = 0; t < len; ++t) c[t] = cp->consts[j];
        ccols[nedges + j] = c;
      }
      for (int i = 0; i < cp->num_inputs; ++i) {
        const std::int32_t slot = cp->input_slots[static_cast<std::size_t>(i)];
        if (slot >= 0) {
          std::memcpy(ccols[slot], cols[h.in_slots[static_cast<std::size_t>(i)]],
                      len * sizeof(std::int32_t));
        }
      }
      exec_program(*cp, res, ccols, len, arena);
      for (std::size_t o = 0; o < h.out_slots.size(); ++o) {
        if (h.out_slots[o] < 0) continue;
        const std::int32_t ce = cp->output_slots[o];
        check(ce >= 0, "replay: hier output without child output edge");
        std::memcpy(cols[h.out_slots[o]], ccols[ce],
                    len * sizeof(std::int32_t));
      }
      continue;
    }
    // One kernel-table call per step: all per-step decisions were made
    // at compile time, the selected ISA's loop is branch-free down the
    // column (SIMD body + scalar tail, or the pure scalar reference).
    kt.op[static_cast<int>(s.op)](cols[s.a], cols[s.b], cols[s.out], len);
  }
}

/// Minimum element-operations (program steps x samples, hierarchy
/// resolved) before a replay batch is worth fanning out over the pool.
/// Below it the pool's wake/sleep handshake dominates the column sweeps
/// themselves -- the cause of 8-thread replay measuring *slower* than
/// 2-thread on small designs. Tunable via HSYN_REPLAY_SERIAL_CUTOFF
/// (element-ops; 0 disables the serial fallback).
std::size_t serial_cutoff() {
  static const std::size_t cutoff = [] {
    if (const char* s = std::getenv("HSYN_REPLAY_SERIAL_CUTOFF")) {
      char* end = nullptr;
      const long long v = std::strtoll(s, &end, 10);
      if (end != s && v >= 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{1} << 18;
  }();
  return cutoff;
}

/// Steps per sample of `p` with hierarchical calls resolved recursively
/// (plus the per-call port copies). Memoized inside the program itself
/// (ReplayProgram::weight_memo): programs are shared process-wide via the
/// eval-engine cache, so the memo rides along with them and the hot-path
/// lookup is one relaxed atomic load -- no global mutexed map. Concurrent
/// first calls race benignly: both compute the same pure function of the
/// program tree and store the same value.
std::size_t program_weight(const ReplayProgram& p, const BehaviorResolver& res) {
  if (const std::size_t memo = p.weight_memo.load(std::memory_order_relaxed)) {
    return memo - 1;
  }
  std::size_t w = p.steps.size();
  for (const ReplayHierCall& h : p.hier_calls) {
    const Dfg* child = res(h.behavior);
    if (child == nullptr) continue;
    w += h.in_slots.size() + h.out_slots.size();
    w += program_weight(*replay_program_of(*child), res);
  }
  p.weight_memo.store(w + 1, std::memory_order_relaxed);
  return w;
}

}  // namespace

EdgeMatrix replay_eval_matrix(const Dfg& dfg, const BehaviorResolver& res,
                              const Trace& inputs) {
  obs::Span span("trace-replay");
  const auto prog = replay_program_of(dfg);
  const std::size_t T = inputs.size();
  EdgeMatrix mat(prog->num_edges, T);
  if (T == 0) return mat;
  const int n = static_cast<int>(T);
  const std::size_t cutoff = serial_cutoff();
  // Sub-threshold batches run serially (k = 1): chunking is free to vary
  // because every cell is an exact integer function of one sample, so
  // the chunk count changes only speed, never values.
  const int k = cutoff != 0 && program_weight(*prog, res) * T < cutoff
                    ? 1
                    : runtime::num_chunks(n);
  // Chunks own disjoint [lo, hi) slices of every column, so the batch
  // fans out over the runtime with bit-identical results at any thread
  // count (every cell is an exact integer function of one sample).
  runtime::pool().run(k, [&](int c) {
    const int lo = runtime::chunk_begin(n, k, c);
    const int hi = runtime::chunk_begin(n, k, c + 1);
    if (lo >= hi) return;
    const std::size_t len = static_cast<std::size_t>(hi - lo);
    runtime::Arena& arena = runtime::Arena::local();
    runtime::Arena::Frame frame(arena);
    std::int32_t** cols = arena.alloc_ptrs<std::int32_t>(
        static_cast<std::size_t>(prog->num_edges) + prog->consts.size());
    for (int e = 0; e < prog->num_edges; ++e) {
      cols[e] = mat.col_mut(e) + lo;
    }
    for (std::size_t j = 0; j < prog->consts.size(); ++j) {
      std::int32_t* col = arena.alloc_i32(len);
      for (std::size_t t = 0; t < len; ++t) col[t] = prog->consts[j];
      cols[static_cast<std::size_t>(prog->num_edges) + j] = col;
    }
    // Transpose this chunk's samples into the primary-input columns.
    for (int t = lo; t < hi; ++t) {
      const Sample& in = inputs[static_cast<std::size_t>(t)];
      check(static_cast<int>(in.size()) == prog->num_inputs,
            "eval_dfg_edges: input arity mismatch");
      for (int i = 0; i < prog->num_inputs; ++i) {
        const std::int32_t slot = prog->input_slots[static_cast<std::size_t>(i)];
        if (slot >= 0) cols[slot][t - lo] = in[static_cast<std::size_t>(i)];
      }
    }
    exec_program(*prog, res, cols, len, arena);
  });
  {
    obs::Registry& reg = obs::Registry::instance();
    static obs::Counter& matrices = reg.counter("replay.matrices");
    static obs::Counter& columns = reg.counter("replay.columns_evaluated");
    static obs::Counter& samples = reg.counter("replay.samples");
    static obs::Gauge& arena_bytes = reg.gauge("replay.arena_bytes");
    matrices.add();
    columns.add(static_cast<std::uint64_t>(prog->num_edges));
    samples.add(T);
    obs::note_job_replay_samples(T);
    arena_bytes.set(static_cast<double>(runtime::Arena::total_reserved()));
  }
  return mat;
}

}  // namespace hsyn
