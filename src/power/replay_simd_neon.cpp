// NEON kernel table: 4 int32 lanes per iteration.
//
// NEON is baseline on aarch64, so this TU needs no special compile flags
// there -- src/CMakeLists.txt defines HSYN_HAVE_NEON when targeting
// aarch64 and the table is unconditionally available at runtime. On
// every other architecture this file compiles to the nullptr stub.
//
// The bitwise-equivalence argument is the same as the AVX2 table's
// (replay_simd_avx2.cpp): 16-bit-masked lane-wise maps over 32-bit
// wrapping arithmetic, scalar tails for sub-width lengths.
#include "power/replay_kernels.h"

#if defined(HSYN_HAVE_NEON)

#include <arm_neon.h>

#include <cstdint>

#include "power/trace.h"

namespace hsyn::detail {
namespace {

/// Sign-extend the low 16 bits of each lane (vector mask16).
inline int32x4_t mask16_v(int32x4_t x) {
  return vshrq_n_s32(vshlq_n_s32(x, 16), 16);
}

template <class VecFn, class ScalFn>
inline void map_columns(const std::int32_t* a, const std::int32_t* b,
                        std::int32_t* o, std::size_t len, VecFn vec,
                        ScalFn scal) {
  std::size_t t = 0;
  for (; t + 4 <= len; t += 4) {
    vst1q_s32(o + t, vec(vld1q_s32(a + t), vld1q_s32(b + t)));
  }
  for (; t < len; ++t) o[t] = scal(a[t], b[t]);
}

void neon_add(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t y) {
                return mask16_v(vaddq_s32(x, y));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(static_cast<std::int64_t>(x) + y);
              });
}
void neon_sub(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t y) {
                return mask16_v(vsubq_s32(x, y));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(static_cast<std::int64_t>(x) - y);
              });
}
void neon_mult(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
               std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t y) {
                return mask16_v(vmulq_s32(x, y));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(static_cast<std::int64_t>(x) * y);
              });
}
void neon_shiftl(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                 std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t y) {
                const int32x4_t s = vandq_s32(y, vdupq_n_s32(15));
                return mask16_v(vshlq_s32(x, s));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(static_cast<std::int64_t>(x) << (y & 15));
              });
}
void neon_shiftr(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
                 std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t y) {
                // NEON has no variable right shift; shift left by the
                // negated count (vshlq with negative counts shifts
                // right, arithmetically for signed lanes).
                const int32x4_t s = vandq_s32(y, vdupq_n_s32(15));
                return mask16_v(vshlq_s32(x, vnegq_s32(s)));
              },
              [](std::int32_t x, std::int32_t y) {
                return mask16(x >> (y & 15));
              });
}
void neon_cmp(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t y) {
                return vandq_s32(vreinterpretq_s32_u32(vcltq_s32(x, y)),
                                 vdupq_n_s32(1));
              },
              [](std::int32_t x, std::int32_t y) {
                return std::int32_t{x < y ? 1 : 0};
              });
}
void neon_and(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t y) {
                return mask16_v(vandq_s32(x, y));
              },
              [](std::int32_t x, std::int32_t y) { return mask16(x & y); });
}
void neon_or(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
             std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t y) {
                return mask16_v(vorrq_s32(x, y));
              },
              [](std::int32_t x, std::int32_t y) { return mask16(x | y); });
}
void neon_xor(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t y) {
                return mask16_v(veorq_s32(x, y));
              },
              [](std::int32_t x, std::int32_t y) { return mask16(x ^ y); });
}
void neon_neg(const std::int32_t* a, const std::int32_t* b, std::int32_t* o,
              std::size_t len) {
  map_columns(a, b, o, len,
              [](int32x4_t x, int32x4_t) { return mask16_v(vnegq_s32(x)); },
              [](std::int32_t x, std::int32_t) {
                return mask16(-static_cast<std::int64_t>(x));
              });
}

/// Sum of hamming16(a[i], b[i]) over 4-lane groups, scalar tail. The
/// masked XOR has at most 16 set bits per lane (64 per vector), so the
/// per-vector vaddvq_u8 byte-sum fits its uint8->unsigned return with
/// room to spare.
int neon_hamming_pair(const std::int32_t* a, const std::int32_t* b,
                      std::size_t n) {
  const int32x4_t m16 = vdupq_n_s32(0xFFFF);
  int total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int32x4_t d =
        vandq_s32(veorq_s32(vld1q_s32(a + i), vld1q_s32(b + i)), m16);
    total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_s32(d)));
  }
  for (; i < n; ++i) total += hamming16(a[i], b[i]);
  return total;
}

int neon_toggle_count(const std::int32_t* v, std::size_t n) {
  if (n < 2) return 0;
  return neon_hamming_pair(v, v + 1, n - 1);
}

}  // namespace

const ReplayKernelTable* neon_kernel_table() {
  static const ReplayKernelTable table = {
      ReplayIsa::Neon,
      "neon",
      {neon_add, neon_sub, neon_mult, neon_shiftl, neon_shiftr, neon_cmp,
       neon_and, neon_or, neon_xor, neon_neg},
      neon_toggle_count,
      neon_hamming_pair,
  };
  return &table;
}

}  // namespace hsyn::detail

#else  // !HSYN_HAVE_NEON

namespace hsyn::detail {

const ReplayKernelTable* neon_kernel_table() { return nullptr; }

}  // namespace hsyn::detail

#endif
