#include "verilog/verilog.h"

#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "rtl/cost.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

constexpr int kWidth = 16;

// Timing conventions of the emitted RTL (all registers use nonblocking
// assignment; `state` counts cycles from the start pulse):
//  * A guard `state == k` executes at the clock edge *entering* cycle
//    k+1, and therefore samples values as they stood during cycle k.
//  * Single-cycle results load under `state == start`, multicycle
//    results capture operands into shadow registers under
//    `state == start` and load the result under `state == ready-1`.
//  * An operand read at cycle t resolves to: the input port when it is a
//    primary input arriving exactly at t; the child output wire when it
//    is produced by a child completing exactly at t; the holding
//    register otherwise. This reproduces the scheduler's same-cycle
//    producer->consumer handoff without read-after-write races.
//  * Module outputs are continuous assigns of their holding registers.

std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out = "m_" + out;
  }
  return out;
}

const char* verilog_op(Op op) {
  switch (op) {
    case Op::Add: return "+";
    case Op::Sub: return "-";
    case Op::Mult: return "*";
    case Op::And: return "&";
    case Op::Or: return "|";
    case Op::Xor: return "^";
    default: return "?";
  }
}

int state_bits(const Datapath& dp) {
  int maxspan = 1;
  for (const BehaviorImpl& bi : dp.behaviors) {
    maxspan = std::max(maxspan, bi.makespan + 1);
  }
  int bits = 1;
  while ((1 << bits) <= maxspan + 1) ++bits;
  return bits;
}

class Emitter {
 public:
  Emitter(const Library& lib, const OpPoint& pt) : lib_(lib), pt_(pt) {}

  std::string emit(const Datapath& dp, const std::string& name_hint) {
    const std::string name = unique_name(sanitize(
        name_hint.empty() ? (dp.name.empty() ? "datapath" : dp.name)
                          : name_hint));
    std::vector<std::string> child_names;
    for (std::size_t c = 0; c < dp.children.size(); ++c) {
      child_names.push_back(
          emit(*dp.children[c].impl, name + "_c" + std::to_string(c)));
    }
    emit_module(dp, name, child_names);
    return name;
  }

  std::string str() const { return out_.str(); }

 private:
  std::string unique_name(std::string base) {
    if (used_.insert(base).second) return base;
    for (int k = 2;; ++k) {
      const std::string cand = base + "_" + std::to_string(k);
      if (used_.insert(cand).second) return cand;
    }
  }

  /// Source expression for the value on edge `e` of behavior `b`, as
  /// observed during cycle `t` (see timing conventions above).
  std::string edge_source(const Datapath& dp, int b, int e, int t) {
    const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
    const Edge& edge = bi.dfg->edge(e);
    if (edge.src.node == kPrimaryIn &&
        bi.input_arrival[static_cast<std::size_t>(edge.src.port)] == t) {
      return strf("in_%d", edge.src.port);
    }
    if (edge.src.node >= 0) {
      const int pi = bi.inv_of(edge.src.node);
      const Invocation& pinv = bi.invs[static_cast<std::size_t>(pi)];
      if (pinv.unit.kind == UnitRef::Kind::Child &&
          dp.edge_ready_time(b, e, lib_, pt_) == t) {
        return strf("c%d_out%d", pinv.unit.idx, edge.src.port);
      }
    }
    return strf("r%d", bi.edge_reg[static_cast<std::size_t>(e)]);
  }

  /// Expression computing invocation `i`'s result from the given operand
  /// terms (chains inlined; `term` maps external edge -> Verilog term).
  std::string inv_expr(const Datapath& dp, int b, int i,
                       const std::map<int, std::string>& term) {
    const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
    const Dfg& dfg = *bi.dfg;
    const Invocation& inv = bi.invs[static_cast<std::size_t>(i)];
    std::map<int, std::string> local;
    std::string expr;
    for (const int nid : inv.nodes) {
      const Node& n = dfg.node(nid);
      auto operand = [&](int port) -> std::string {
        const int e = dfg.input_edge(nid, port);
        auto it = local.find(e);
        if (it != local.end()) return it->second;
        return term.at(e);
      };
      if (n.op == Op::Cmp) {
        expr = strf("(($signed(%s) < $signed(%s)) ? %d'd1 : %d'd0)",
                    operand(0).c_str(), operand(1).c_str(), kWidth, kWidth);
      } else if (n.op == Op::Neg) {
        expr = strf("(-%s)", operand(0).c_str());
      } else if (n.op == Op::ShiftR) {
        expr = strf("($signed(%s) >>> %s[3:0])", operand(0).c_str(),
                    operand(1).c_str());
      } else if (n.op == Op::ShiftL) {
        expr = strf("(%s << %s[3:0])", operand(0).c_str(), operand(1).c_str());
      } else {
        expr = strf("(%s %s %s)", operand(0).c_str(), verilog_op(n.op),
                    operand(1).c_str());
      }
      const int oe = dfg.output_edge(nid, 0);
      if (oe >= 0) local[oe] = expr;
    }
    return expr;
  }

  void emit_module(const Datapath& dp, const std::string& name,
                   const std::vector<std::string>& child_names) {
    const std::size_t nbeh = dp.behaviors.size();
    int max_in = 0, max_out = 0;
    for (const BehaviorImpl& bi : dp.behaviors) {
      max_in = std::max(max_in, bi.dfg->num_inputs());
      max_out = std::max(max_out, bi.dfg->num_outputs());
    }
    const int sbits = state_bits(dp);

    out_ << "// " << name << ": " << dp.fus.size() << " functional unit(s), "
         << dp.regs.size() << " register(s), " << dp.children.size()
         << " submodule(s), " << nbeh << " behavior(s)\n";
    out_ << "module " << name << "(\n  input wire clk,\n  input wire start";
    if (nbeh > 1) out_ << ",\n  input wire [3:0] sel";
    for (int i = 0; i < max_in; ++i) {
      out_ << strf(",\n  input wire [%d:0] in_%d", kWidth - 1, i);
    }
    for (int o = 0; o < max_out; ++o) {
      out_ << strf(",\n  output wire [%d:0] out_%d", kWidth - 1, o);
    }
    out_ << ",\n  output reg done\n);\n";

    for (std::size_t r = 0; r < dp.regs.size(); ++r) {
      out_ << strf("  reg [%d:0] r%zu;\n", kWidth - 1, r);
    }
    out_ << strf("  reg [%d:0] state;\n  reg running;\n", sbits - 1);

    // Child instances.
    struct Use {
      int beh;
      int start;
      int node;
      int child_beh;
    };
    std::vector<std::vector<Use>> child_uses(dp.children.size());
    for (std::size_t b = 0; b < nbeh; ++b) {
      const BehaviorImpl& bi = dp.behaviors[b];
      for (std::size_t i = 0; i < bi.invs.size(); ++i) {
        const Invocation& inv = bi.invs[i];
        if (inv.unit.kind != UnitRef::Kind::Child) continue;
        const Datapath& child =
            *dp.children[static_cast<std::size_t>(inv.unit.idx)].impl;
        const Node& n = bi.dfg->node(inv.nodes.front());
        child_uses[static_cast<std::size_t>(inv.unit.idx)].push_back(
            {static_cast<int>(b), bi.inv_start[i], inv.nodes.front(),
             child.find_behavior(n.behavior)});
      }
    }
    for (std::size_t c = 0; c < dp.children.size(); ++c) {
      const Datapath& child = *dp.children[c].impl;
      const std::vector<Use>& uses = child_uses[c];
      int cin = 0, cout = 0;
      for (const BehaviorImpl& cbi : child.behaviors) {
        cin = std::max(cin, cbi.dfg->num_inputs());
        cout = std::max(cout, cbi.dfg->num_outputs());
      }
      auto guard = [&](const Use& u) {
        return nbeh > 1 ? strf("(sel == 4'd%d && state == %d)", u.beh, u.start)
                        : strf("(state == %d)", u.start);
      };
      out_ << strf("  wire c%zu_start = running && (", c);
      for (std::size_t k = 0; k < uses.size(); ++k) {
        out_ << (k ? " || " : "") << guard(uses[k]);
      }
      if (uses.empty()) out_ << "1'b0";
      out_ << ");\n";
      for (int p = 0; p < cin; ++p) {
        out_ << strf("  wire [%d:0] c%zu_in%d = ", kWidth - 1, c, p);
        std::string fallback = strf("%d'd0", kWidth);
        bool first = true;
        for (const Use& u : uses) {
          const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(u.beh)];
          const Node& n = bi.dfg->node(u.node);
          if (p >= n.num_inputs) continue;
          const int e = bi.dfg->input_edge(u.node, p);
          const std::string src =
              strf("r%d", bi.edge_reg[static_cast<std::size_t>(e)]);
          if (first) {
            fallback = src;
            first = false;
          } else if (nbeh > 1) {
            out_ << strf("(sel == 4'd%d) ? %s : ", u.beh, src.c_str());
            continue;
          } else {
            out_ << strf("(state >= %d) ? %s : ", u.start, src.c_str());
            continue;
          }
        }
        out_ << fallback << ";\n";
      }
      for (int o = 0; o < cout; ++o) {
        out_ << strf("  wire [%d:0] c%zu_out%d;\n", kWidth - 1, c, o);
      }
      out_ << strf("  %s c%zu(.clk(clk), .start(c%zu_start)",
                   child_names[c].c_str(), c, c);
      if (child.behaviors.size() > 1) {
        out_ << ", .sel(";
        if (uses.empty()) {
          out_ << "4'd0";
        } else if (uses.size() == 1 || nbeh == 1) {
          out_ << strf("4'd%d", uses[0].child_beh);
        } else {
          for (std::size_t k = 0; k + 1 < uses.size(); ++k) {
            out_ << strf("(sel == 4'd%d) ? 4'd%d : ", uses[k].beh,
                         uses[k].child_beh);
          }
          out_ << strf("4'd%d", uses.back().child_beh);
        }
        out_ << ")";
      }
      for (int p = 0; p < cin; ++p) {
        out_ << strf(", .in_%d(c%zu_in%d)", p, c, p);
      }
      for (int o = 0; o < cout; ++o) {
        out_ << strf(", .out_%d(c%zu_out%d)", o, c, o);
      }
      out_ << ", .done());\n";
    }

    // Operand shadow registers of multicycle invocations.
    for (std::size_t b = 0; b < nbeh; ++b) {
      const BehaviorImpl& bi = dp.behaviors[b];
      for (std::size_t i = 0; i < bi.invs.size(); ++i) {
        const Invocation& inv = bi.invs[i];
        if (inv.unit.kind != UnitRef::Kind::Fu) continue;
        const int lat =
            lib_.cycles(dp.fus[static_cast<std::size_t>(inv.unit.idx)].type, pt_);
        if (lat < 2) continue;
        const auto ins = dp.inv_input_edges(static_cast<int>(b),
                                            static_cast<int>(i));
        for (std::size_t p = 0; p < ins.size(); ++p) {
          out_ << strf("  reg [%d:0] t_b%zu_i%zu_%zu;\n", kWidth - 1, b, i, p);
        }
      }
    }

    // Module outputs: continuous assigns of the holding registers. For
    // merged modules, select by behavior.
    for (int o = 0; o < max_out; ++o) {
      out_ << strf("  assign out_%d = ", o);
      std::string fallback = strf("%d'd0", kWidth);
      std::vector<std::pair<std::size_t, int>> srcs;  // (behavior, reg)
      for (std::size_t b = 0; b < nbeh; ++b) {
        const BehaviorImpl& bi = dp.behaviors[b];
        if (o >= bi.dfg->num_outputs()) continue;
        const int e = bi.dfg->primary_output_edge(o);
        srcs.push_back({b, bi.edge_reg[static_cast<std::size_t>(e)]});
      }
      if (srcs.empty()) {
        out_ << fallback << ";\n";
      } else if (srcs.size() == 1 || nbeh == 1) {
        out_ << strf("r%d;\n", srcs[0].second);
      } else {
        for (std::size_t k = 0; k + 1 < srcs.size(); ++k) {
          out_ << strf("(sel == 4'd%zu) ? r%d : ", srcs[k].first,
                       srcs[k].second);
        }
        out_ << strf("r%d;\n", srcs.back().second);
      }
    }

    // The FSM and register transfers.
    out_ << "\n  always @(posedge clk) begin\n    done <= 1'b0;\n";
    out_ << "    if (start) begin\n      state <= 0;\n      running <= 1'b1;\n";
    for (std::size_t b = 0; b < nbeh; ++b) {
      const BehaviorImpl& bi = dp.behaviors[b];
      const std::string g = nbeh > 1 ? strf("if (sel == 4'd%zu) ", b) : "";
      for (int i = 0; i < bi.dfg->num_inputs(); ++i) {
        const int e = bi.dfg->primary_input_edge(i);
        if (e < 0) continue;
        const int r = bi.edge_reg[static_cast<std::size_t>(e)];
        if (r >= 0 && bi.input_arrival[static_cast<std::size_t>(i)] == 0) {
          out_ << strf("      %sr%d <= in_%d;\n", g.c_str(), r, i);
        }
      }
    }
    out_ << "    end else if (running) begin\n";
    out_ << "      state <= state + 1'b1;\n";

    for (std::size_t b = 0; b < nbeh; ++b) {
      const BehaviorImpl& bi = dp.behaviors[b];
      const std::string g =
          nbeh > 1 ? strf(" && sel == 4'd%zu", b) : std::string();
      // Late-arriving primary inputs latch from their ports at arrival.
      for (int i = 0; i < bi.dfg->num_inputs(); ++i) {
        const int arr = bi.input_arrival[static_cast<std::size_t>(i)];
        if (arr == 0) continue;
        const int e = bi.dfg->primary_input_edge(i);
        if (e < 0) continue;
        const int r = bi.edge_reg[static_cast<std::size_t>(e)];
        if (r >= 0) {
          out_ << strf("      if (state == %d%s) r%d <= in_%d;\n", arr,
                       g.c_str(), r, i);
        }
      }
      for (std::size_t i = 0; i < bi.invs.size(); ++i) {
        const Invocation& inv = bi.invs[i];
        const int start = bi.inv_start[i];
        if (inv.unit.kind == UnitRef::Kind::Fu) {
          const int lat = lib_.cycles(
              dp.fus[static_cast<std::size_t>(inv.unit.idx)].type, pt_);
          const auto ins =
              dp.inv_input_edges(static_cast<int>(b), static_cast<int>(i));
          std::map<int, std::string> term;
          if (lat < 2) {
            for (const int e : ins) {
              term[e] = edge_source(dp, static_cast<int>(b), e, start);
            }
          } else {
            // Capture operands at the start cycle, compute from shadows.
            for (std::size_t p = 0; p < ins.size(); ++p) {
              out_ << strf("      if (state == %d%s) t_b%zu_i%zu_%zu <= %s;\n",
                           start, g.c_str(), b, i, p,
                           edge_source(dp, static_cast<int>(b), ins[p], start)
                               .c_str());
              term[ins[p]] = strf("t_b%zu_i%zu_%zu", b, i, p);
            }
          }
          const int ready = start + lat;
          for (const int e : dp.inv_output_edges(static_cast<int>(b),
                                                 static_cast<int>(i))) {
            const int r = bi.edge_reg[static_cast<std::size_t>(e)];
            if (r < 0) continue;
            out_ << strf(
                "      if (state == %d%s) r%d <= %s;\n", ready - 1, g.c_str(),
                r,
                inv_expr(dp, static_cast<int>(b), static_cast<int>(i), term)
                    .c_str());
          }
        } else {
          const Datapath& child =
              *dp.children[static_cast<std::size_t>(inv.unit.idx)].impl;
          const Node& n = bi.dfg->node(inv.nodes.front());
          const Profile p =
              child.profile(child.find_behavior(n.behavior), lib_, pt_);
          for (int port = 0; port < n.num_outputs; ++port) {
            const int e = bi.dfg->output_edge(inv.nodes.front(), port);
            if (e < 0) continue;
            const int r = bi.edge_reg[static_cast<std::size_t>(e)];
            if (r < 0) continue;
            // The child's out_ wire is valid during local cycle
            // p.out[port]; latch it at the edge leaving that cycle.
            out_ << strf("      if (state == %d%s) r%d <= c%d_out%d;\n",
                         start + p.out[static_cast<std::size_t>(port)],
                         g.c_str(), r, inv.unit.idx, port);
          }
        }
      }
      out_ << strf("      if (state == %d%s) begin\n", bi.makespan, g.c_str());
      out_ << "        done <= 1'b1;\n        running <= 1'b0;\n      end\n";
    }
    out_ << "    end\n  end\nendmodule\n\n";
  }

  const Library& lib_;
  const OpPoint& pt_;
  std::ostringstream out_;
  std::set<std::string> used_;
};

}  // namespace

std::string to_verilog(const Datapath& dp, const Library& lib, const OpPoint& pt) {
  check(!dp.behaviors.empty(), "to_verilog: empty datapath");
  for (const BehaviorImpl& bi : dp.behaviors) {
    check(bi.scheduled, "to_verilog: datapath must be scheduled");
  }
  std::ostringstream head;
  head << "// Generated by H-SYN (hierarchical high-level synthesis).\n";
  head << strf("// Operating point: Vdd %.1f V, clock %.1f ns. Datapath "
               "width %d bits.\n",
               pt.vdd, pt.clk_ns, kWidth);
  head << "// Multicycle functional units are emitted as operand-captured\n";
  head << "// combinational expressions sampled at their scheduled\n";
  head << "// completion states; apply multicycle path constraints.\n\n";
  Emitter em(lib, pt);
  em.emit(dp, "");
  return head.str() + em.str();
}

}  // namespace hsyn
