// Synthesizable-Verilog backend.
//
// H-SYN's output in the paper flows into SIS/OCTTOOLS as a merged
// controller + datapath netlist; this backend provides the equivalent
// modern artifact: one Verilog module per datapath (children become
// submodule instances), with registers, mux networks and the FSM
// controller as a case statement. Multi-behavior (merged) modules get a
// behavior-select input. The generated code is plain structural/RTL
// Verilog-2001 with no tool-specific constructs.
#pragma once

#include <string>

#include "rtl/datapath.h"

namespace hsyn {

/// Emit a full Verilog translation unit: the module for `dp` plus one
/// module definition per distinct child (recursively) and the primitive
/// functional-unit modules used.
std::string to_verilog(const Datapath& dp, const Library& lib, const OpPoint& pt);

}  // namespace hsyn
