// Rewrite validator: proves (or refutes) that two DFGs implement the
// same behavior -- the translation-validation story behind Move A's
// "functionally equivalent but anisomorphic" DFG swaps and the future
// e-graph rewrite engine (ROADMAP item 1).
//
// Three stages, cheapest first; the first decisive one wins:
//   1. canonical-hash: identical canonical DAG hashes (dfg/dfg.h) mean
//      the graphs are the same circuit up to renumbering -- equivalent.
//   2. dataflow-facts: both graphs are abstractly interpreted with
//      input facts seeded from the trace (check/dataflow.h). A provable
//      disagreement on any primary output -- different constants,
//      disjoint value ranges, or conflicting known bits -- refutes
//      equivalence without running a single sample (the fact sets
//      over-approximate each output's feasible values, so disjoint sets
//      mean the outputs differ at *every* sample).
//   3. differential-replay: both graphs are evaluated bitwise over the
//      trace through the compiled replay kernel (power/replay.h, cached
//      and thread-deterministic); any mismatch yields a concrete
//      counterexample, full agreement accepts the rewrite.
//
// Stage 3 is trace-exhaustive, not input-exhaustive: a rewrite is
// accepted when it is bit-identical on the synthesis stimulus, the same
// standard the power estimates themselves are computed under. The
// verified-rewrite gate (--verify-rewrites / HSYN_VERIFY_REWRITES=1,
// synth/search_core.cpp) runs this validator over every accepted
// Move A/B whose child DFG changed and stamps rejections into the move
// ledger as MoveStatus::RejectedByVerifier.
#pragma once

#include <string>

#include "power/trace.h"

namespace hsyn::lint {

/// Outcome of one equivalence query.
struct EquivResult {
  bool equivalent = false;
  /// Stage that decided: "io-signature", "canonical-hash",
  /// "dataflow-facts", or "differential-replay".
  std::string method;
  /// Human-readable evidence: the refuting output/sample or the
  /// agreement summary.
  std::string detail;
};

/// Decide whether `a` and `b` produce identical primary outputs over
/// `trace` (empty trace: a deterministic built-in stimulus is
/// generated). Both DFGs must be validated. `res_a` / `res_b` resolve
/// hierarchical behaviors of the respective graph; by the
/// BehaviorResolver contract, resolved variants must themselves be
/// functionally equivalent.
EquivResult verify_equivalent(const Dfg& a, const Dfg& b, const Trace& trace,
                              const BehaviorResolver& res_a = nullptr,
                              const BehaviorResolver& res_b = nullptr);

}  // namespace hsyn::lint
