// Controller-consistency and operating-point sanity passes.
//
// Codes: CTRL001-CTRL007 (ctrl-consistency), VDD001-VDD005
// (oppoint-sanity). The controller pass re-derives the full expected
// control-assert table for every level of the datapath tree directly
// from the schedule and binding tables, then diffs the actual FSM (the
// injected one from the context for the top level, or the generated one
// otherwise) against it: every control point must be driven, nothing
// spurious may be asserted, no signal may be driven two ways in one
// state, and the state table itself must be dense and duplicate-free.
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "check/check.h"
#include "util/fmt.h"

namespace hsyn::lint {
namespace {

/// (kind, target) -> asserted details, per state. Multisets so duplicate
/// asserts are visible.
using AssertTable =
    std::map<std::pair<int, std::string>, std::multiset<std::string>>;

const char* kind_name(ControlAssert::Kind k) {
  switch (k) {
    case ControlAssert::Kind::MuxSelect: return "mux select";
    case ControlAssert::Kind::RegLoad: return "register load";
    case ControlAssert::Kind::UnitStart: return "unit start";
  }
  return "?";
}

std::string detail_set(const std::multiset<std::string>& s) {
  std::string out;
  for (const std::string& d : s) {
    if (!out.empty()) out += ", ";
    out += d;
  }
  return out.empty() ? "(nothing)" : out;
}

/// Expected controller contents, derived independently of
/// build_controller: states per behavior cycle plus the assert table per
/// state, and the distinct signal count.
struct Expected {
  struct State {
    std::string behavior;
    int cycle = 0;
    AssertTable asserts;
  };
  std::vector<State> states;
  int num_signals = 0;
  bool ok = false;  ///< false: schedule/binding unusable, skip the level
};

bool behavior_usable(const BehaviorImpl& bi) {
  return bi.scheduled && bi.dfg != nullptr && bi.dfg->validated() &&
         bi.node_inv.size() == bi.dfg->nodes().size() &&
         bi.edge_reg.size() == bi.dfg->edges().size() &&
         bi.inv_start.size() == bi.invs.size();
}

Expected derive_expected(const Datapath& dp, const Library& lib,
                         const OpPoint& pt) {
  Expected ex;
  std::set<std::string> signals;
  // The Datapath accessors used below assume in-range unit indices;
  // bail out first when the binding is broken (rtl-binding reports it).
  for (const BehaviorImpl& bi : dp.behaviors) {
    if (!behavior_usable(bi)) return ex;
    for (const Invocation& inv : bi.invs) {
      const std::size_t limit = inv.unit.kind == UnitRef::Kind::Fu
                                    ? dp.fus.size()
                                    : dp.children.size();
      if (inv.unit.idx < 0 ||
          inv.unit.idx >= static_cast<int>(limit)) {
        return ex;
      }
    }
  }
  for (std::size_t b = 0; b < dp.behaviors.size(); ++b) {
    const BehaviorImpl& bi = dp.behaviors[b];
    const int base = static_cast<int>(ex.states.size());
    for (int cyc = 0; cyc <= bi.makespan; ++cyc) {
      ex.states.push_back({bi.behavior, cyc, {}});
    }
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      const Invocation& inv = bi.invs[i];
      const int start = bi.inv_start[i];
      if (start < 0 || start > bi.makespan) return ex;  // SCHED002/006 fire
      const std::string uname =
          inv.unit.kind == UnitRef::Kind::Fu ? strf("fu%d", inv.unit.idx)
                                             : strf("child%d", inv.unit.idx);
      AssertTable& at =
          ex.states[static_cast<std::size_t>(base + start)].asserts;
      at[{static_cast<int>(ControlAssert::Kind::UnitStart), "fu:" + uname}]
          .insert(strf("inv%zu", i));
      signals.insert("start:" + uname);
      const std::vector<int> ins =
          dp.inv_input_edges(static_cast<int>(b), static_cast<int>(i));
      for (std::size_t p = 0; p < ins.size(); ++p) {
        const int r = bi.edge_reg[static_cast<std::size_t>(ins[p])];
        if (r < 0) continue;
        const std::string mux = strf("mux:%s.p%zu", uname.c_str(), p);
        at[{static_cast<int>(ControlAssert::Kind::MuxSelect), mux}].insert(
            strf("r%d", r));
        signals.insert(mux);
      }
      for (const int e :
           dp.inv_output_edges(static_cast<int>(b), static_cast<int>(i))) {
        const int r = bi.edge_reg[static_cast<std::size_t>(e)];
        if (r < 0) continue;
        const int ready = dp.edge_ready_time(static_cast<int>(b), e, lib, pt);
        if (ready >= 0 && ready <= bi.makespan) {
          ex.states[static_cast<std::size_t>(base + ready)]
              .asserts[{static_cast<int>(ControlAssert::Kind::RegLoad),
                        strf("reg:r%d", r)}]
              .insert(strf("edge%d", e));
          signals.insert(strf("load:r%d", r));
        }
      }
    }
  }
  ex.num_signals = static_cast<int>(signals.size());
  ex.ok = true;
  return ex;
}

class CtrlConsistencyPass final : public Pass {
 public:
  const char* name() const override { return "ctrl-consistency"; }
  bool cheap() const override { return false; }
  bool applicable(const CheckContext& cx) const override {
    return cx.dp != nullptr && cx.lib != nullptr;
  }
  void run(const CheckContext& cx, Report& rep) const override {
    check_level(*cx.dp, *cx.lib, cx.pt, cx.fsm, "dp '" + cx.dp->name + "'",
                rep);
    walk_children(*cx.dp, *cx.lib, cx.pt, "dp '" + cx.dp->name + "'", rep);
  }

 private:
  static void walk_children(const Datapath& dp, const Library& lib,
                            const OpPoint& pt, const std::string& path,
                            Report& rep) {
    for (std::size_t c = 0; c < dp.children.size(); ++c) {
      if (!dp.children[c].impl) continue;  // rtl-binding reports this
      const Datapath& child = *dp.children[c].impl;
      const std::string cpath =
          path + strf(" / child %zu '%s'", c, dp.children[c].name.c_str());
      check_level(child, lib, pt, nullptr, cpath, rep);
      walk_children(child, lib, pt, cpath, rep);
    }
  }

  static void check_level(const Datapath& dp, const Library& lib,
                          const OpPoint& pt, const Controller* given,
                          const std::string& at, Report& rep) {
    const Expected ex = derive_expected(dp, lib, pt);
    if (!ex.ok) return;  // schedule/binding broken; other passes report
    Controller built;
    const Controller* fsm = given;
    if (fsm == nullptr) {
      try {
        built = build_controller(dp, lib, pt);
      } catch (const std::logic_error& e) {
        rep.add("CTRL001", Severity::Error, at,
                strf("controller generation failed: %s", e.what()));
        return;
      }
      fsm = &built;
    }

    if (fsm->states.size() != ex.states.size()) {
      rep.add("CTRL001", Severity::Error, at,
              strf("controller has %zu states but the schedule requires %zu",
                   fsm->states.size(), ex.states.size()));
    }

    // State-table shape: dense ids, behavior/cycle agreement, no
    // duplicate or dead (cycle out of range) states.
    std::set<std::pair<std::string, int>> seen;
    const std::size_t n = std::min(fsm->states.size(), ex.states.size());
    for (std::size_t s = 0; s < fsm->states.size(); ++s) {
      const FsmState& st = fsm->states[s];
      if (st.id != static_cast<int>(s)) {
        rep.add("CTRL005", Severity::Error, at,
                strf("state at index %zu has id %d (ids must be dense)", s,
                     st.id));
      }
      if (!seen.insert({st.behavior, st.cycle}).second) {
        rep.add("CTRL005", Severity::Error, at,
                strf("duplicate state for behavior '%s' cycle %d",
                     st.behavior.c_str(), st.cycle));
      }
      if (s < n && (st.behavior != ex.states[s].behavior ||
                    st.cycle != ex.states[s].cycle)) {
        rep.add("CTRL005", Severity::Error, at,
                strf("state %zu is (behavior '%s', cycle %d); schedule "
                     "requires (behavior '%s', cycle %d)",
                     s, st.behavior.c_str(), st.cycle,
                     ex.states[s].behavior.c_str(), ex.states[s].cycle));
      }
    }

    // Assert diff per comparable state.
    for (std::size_t s = 0; s < n; ++s) {
      AssertTable actual;
      for (const ControlAssert& a : fsm->states[s].asserts) {
        actual[{static_cast<int>(a.kind), a.target}].insert(a.detail);
      }
      const AssertTable& expect = ex.states[s].asserts;
      for (const auto& [key, details] : actual) {
        std::set<std::string> distinct(details.begin(), details.end());
        if (distinct.size() > 1) {
          rep.add("CTRL004", Severity::Error, at,
                  strf("state %zu: %s '%s' driven %zu different ways (%s)", s,
                       kind_name(static_cast<ControlAssert::Kind>(key.first)),
                       key.second.c_str(), distinct.size(),
                       detail_set(details).c_str()));
        }
      }
      for (const auto& [key, details] : expect) {
        const auto it = actual.find(key);
        if (it == actual.end()) {
          rep.add("CTRL002", Severity::Error, at,
                  strf("state %zu: %s '%s' is not driven (schedule requires "
                       "%s)",
                       s, kind_name(static_cast<ControlAssert::Kind>(key.first)),
                       key.second.c_str(), detail_set(details).c_str()));
        } else if (it->second != details) {
          rep.add("CTRL006", Severity::Error, at,
                  strf("state %zu: %s '%s' asserts %s but the binding "
                       "requires %s",
                       s, kind_name(static_cast<ControlAssert::Kind>(key.first)),
                       key.second.c_str(), detail_set(it->second).c_str(),
                       detail_set(details).c_str()));
        }
      }
      for (const auto& [key, details] : actual) {
        if (expect.find(key) == expect.end()) {
          rep.add("CTRL003", Severity::Error, at,
                  strf("state %zu: spurious %s '%s' (%s) not implied by the "
                       "schedule",
                       s, kind_name(static_cast<ControlAssert::Kind>(key.first)),
                       key.second.c_str(), detail_set(details).c_str()));
        }
      }
    }

    if (fsm->num_signals != ex.num_signals) {
      rep.add("CTRL007", Severity::Error, at,
              strf("controller reports %d control signals; the binding "
                   "drives %d",
                   fsm->num_signals, ex.num_signals));
    }
  }
};

// ---- oppoint-sanity ------------------------------------------------------

class OpPointSanityPass final : public Pass {
 public:
  const char* name() const override { return "oppoint-sanity"; }
  bool applicable(const CheckContext& cx) const override {
    // Only meaningful when an operating point is actually in play.
    return cx.dp != nullptr || cx.deadline > 0 || cx.sample_period_ns > 0;
  }
  void run(const CheckContext& cx, Report& rep) const override {
    const OpPoint& pt = cx.pt;
    const std::string at = strf("oppoint %.2f V / %.2f ns", pt.vdd, pt.clk_ns);
    bool vdd_ok = true;
    bool clk_ok = true;
    if (pt.vdd <= kVt) {
      rep.add("VDD001", Severity::Error, at,
              strf("supply voltage %.2f V is at or below the device "
                   "threshold %.2f V; the delay model is undefined there",
                   pt.vdd, kVt));
      vdd_ok = false;
    } else if (pt.vdd > kVref) {
      rep.add("VDD002", Severity::Warning, at,
              strf("supply voltage %.2f V exceeds the %.2f V reference the "
                   "library is characterized at",
                   pt.vdd, kVref));
    }
    if (pt.clk_ns <= 0) {
      rep.add("VDD003", Severity::Error, at, "clock period must be positive");
      clk_ok = false;
    }
    if (vdd_ok && clk_ok && cx.lib != nullptr) {
      for (int t = 0; t < cx.lib->num_fu_types(); ++t) {
        const int cyc = cx.lib->cycles(t, pt);
        if (cyc > 64) {
          rep.add("VDD004", Severity::Warning, at,
                  strf("unit type %s needs %d cycles at this operating "
                       "point; the clock is likely far too fast",
                       cx.lib->fu(t).name.c_str(), cyc));
        }
      }
    }
    if (clk_ok && cx.sample_period_ns > 0) {
      if (cx.sample_period_ns < pt.clk_ns) {
        rep.add("VDD005", Severity::Error, at,
                strf("sampling period %.2f ns is shorter than one clock "
                     "cycle",
                     cx.sample_period_ns));
      } else if (cx.deadline > 0 &&
                 cx.deadline * pt.clk_ns >
                     cx.sample_period_ns * (1.0 + 1e-9)) {
        rep.add("VDD005", Severity::Error, at,
                strf("deadline of %d cycles runs %.2f ns, past the %.2f ns "
                     "sampling period",
                     cx.deadline, cx.deadline * pt.clk_ns,
                     cx.sample_period_ns));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_ctrl_consistency_pass() {
  return std::make_unique<CtrlConsistencyPass>();
}
std::unique_ptr<Pass> make_oppoint_sanity_pass() {
  return std::make_unique<OpPointSanityPass>();
}

}  // namespace hsyn::lint
