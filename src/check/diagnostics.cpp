#include "check/diagnostics.h"

#include <sstream>

#include "util/json.h"

namespace hsyn::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

void Report::add(std::string code, Severity sev, std::string loc,
                 std::string msg) {
  if (sev == Severity::Error) ++errors_;
  if (sev == Severity::Warning) ++warnings_;
  diags_.push_back({std::move(code), sev, active_pass_, std::move(loc),
                    std::move(msg)});
}

int Report::count(const std::string& code) const {
  int n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.code == code) ++n;
  }
  return n;
}

void Report::merge(const Report& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
  errors_ += other.errors_;
  warnings_ += other.warnings_;
}

Report Report::filtered(Severity min) const {
  Report out;
  for (const Diagnostic& d : diags_) {
    if (d.severity < min) continue;
    out.diags_.push_back(d);
    if (d.severity == Severity::Error) ++out.errors_;
    if (d.severity == Severity::Warning) ++out.warnings_;
  }
  return out;
}

std::string Report::to_text() const {
  std::ostringstream out;
  for (const Diagnostic& d : diags_) {
    out << severity_name(d.severity) << '[' << d.code << "] " << d.loc << ": "
        << d.message << '\n';
  }
  out << errors_ << " error(s), " << warnings_ << " warning(s)\n";
  return out.str();
}

std::string Report::to_json() const {
  std::ostringstream out;
  out << "{\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    out << (i ? ",\n    " : "\n    ") << "{\"code\": \"" << json_escape(d.code)
        << "\", \"severity\": \"" << severity_name(d.severity)
        << "\", \"pass\": \"" << json_escape(d.pass) << "\", \"loc\": \""
        << json_escape(d.loc) << "\", \"message\": \""
        << json_escape(d.message) << "\"}";
  }
  out << (diags_.empty() ? "]" : "\n  ]") << ",\n  \"errors\": " << errors_
      << ",\n  \"warnings\": " << warnings_ << "\n}\n";
  return out.str();
}

}  // namespace hsyn::lint
