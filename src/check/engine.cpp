#include "check/check.h"

#include <cstdlib>
#include <stdexcept>

#include "runtime/stats.h"
#include "util/fmt.h"

namespace hsyn::lint {

CheckEngine::CheckEngine() {
  register_pass(make_dfg_wellformed_pass());
  register_pass(make_dfg_hierarchy_pass());
  register_pass(make_dfg_deadcode_pass());
  register_pass(make_dfg_const_fold_pass());
  register_pass(make_dfg_range_overflow_pass());
  register_pass(make_dfg_width_waste_pass());
  register_pass(make_rtl_binding_pass());
  register_pass(make_sched_legality_pass());
  register_pass(make_ctrl_consistency_pass());
  register_pass(make_oppoint_sanity_pass());
}

void CheckEngine::register_pass(std::unique_ptr<Pass> pass) {
  Entry& e = entries_.emplace_back();
  e.phase = std::string("check:") + pass->name();
  e.pass = std::move(pass);
}

std::vector<const Pass*> CheckEngine::passes() const {
  std::vector<const Pass*> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.pass.get());
  return out;
}

Report CheckEngine::run(const CheckContext& cx, bool cheap_only) const {
  Report rep;
  for (const Entry& e : entries_) {
    if (cheap_only && !e.pass->cheap()) continue;
    if (!e.pass->applicable(cx)) continue;
    runtime::ScopedPhase phase(e.phase.c_str());
    rep.set_active_pass(e.pass->name());
    e.pass->run(cx, rep);
    e.runs.fetch_add(1, std::memory_order_relaxed);
  }
  rep.set_active_pass({});
  runs_.fetch_add(1, std::memory_order_relaxed);
  diags_.fetch_add(rep.diags().size(), std::memory_order_relaxed);
  errors_.fetch_add(static_cast<std::uint64_t>(rep.errors()),
                    std::memory_order_relaxed);
  return rep;
}

void register_check_counters(CheckEngine& e) {
  runtime::register_counter_source("check-engine", [&e] {
    std::map<std::string, std::uint64_t> m;
    m["runs"] = e.runs_.load(std::memory_order_relaxed);
    m["diagnostics"] = e.diags_.load(std::memory_order_relaxed);
    m["errors"] = e.errors_.load(std::memory_order_relaxed);
    for (const CheckEngine::Entry& en : e.entries_) {
      m[en.pass->name() + std::string(".runs")] =
          en.runs.load(std::memory_order_relaxed);
    }
    return m;
  });
}

CheckEngine& CheckEngine::instance() {
  static CheckEngine* engine = [] {
    auto* e = new CheckEngine();
    register_check_counters(*e);
    return e;
  }();
  return *engine;
}

Report lint_design(const Design& design, const Trace* trace) {
  CheckContext cx;
  cx.design = &design;
  cx.trace = trace;
  return CheckEngine::instance().run(cx);
}

Report lint_datapath(const Datapath& dp, const Library& lib, const OpPoint& pt,
                     int deadline, const Design* design) {
  CheckContext cx;
  cx.design = design;
  cx.dp = &dp;
  cx.lib = &lib;
  cx.pt = pt;
  cx.deadline = deadline;
  return CheckEngine::instance().run(cx);
}

bool env_check_moves() {
  static const bool enabled = [] {
    const char* s = std::getenv("HSYN_CHECK_MOVES");
    return s != nullptr && s[0] == '1' && s[1] == '\0';
  }();
  return enabled;
}

bool env_verify_rewrites() {
  static const bool enabled = [] {
    const char* s = std::getenv("HSYN_VERIFY_REWRITES");
    return s != nullptr && s[0] == '1' && s[1] == '\0';
  }();
  return enabled;
}

void verify_move(const Datapath& dp, const Library& lib, const OpPoint& pt,
                 int deadline, const std::string& what) {
  runtime::ScopedPhase phase("check-moves");
  const Report rep = lint_datapath(dp, lib, pt, deadline);
  if (!rep.ok()) {
    throw std::logic_error(strf(
        "move invariant check failed after %s (%d error(s)):\n%s",
        what.c_str(), rep.errors(), rep.to_text().c_str()));
  }
}

}  // namespace hsyn::lint
