#include "check/dataflow.h"

#include <algorithm>
#include <unordered_set>

#include "eval/engine.h"
#include "util/hash.h"

namespace hsyn::lint {
namespace {

constexpr std::int32_t kMin16 = -32768;
constexpr std::int32_t kMax16 = 32767;

/// Context tag keeping the facts cache's key space disjoint from the
/// other typed caches (eval/engine.cpp uses the same convention).
constexpr std::uint64_t kFactsTag = 0xDA7AF1029EF1A007ull;

// ---- Known-bits arithmetic ------------------------------------------------

/// Three-valued bit: 0, 1, or -1 (unknown).
int bit_of(const KnownBits& k, int i) {
  if ((k.ones >> i) & 1) return 1;
  if ((k.zeros >> i) & 1) return 0;
  return -1;
}

void set_bit(KnownBits& k, int i, int v) {
  if (v == 1) {
    k.ones = static_cast<std::uint16_t>(k.ones | (1u << i));
  } else if (v == 0) {
    k.zeros = static_cast<std::uint16_t>(k.zeros | (1u << i));
  }
}

KnownBits kb_not(const KnownBits& a) { return {a.ones, a.zeros}; }

/// Three-valued ripple-carry adder: out = a + b + carry_in. The sum bit
/// is known only when all three addend bits are; the carry-out is known
/// whenever two addend bits agree (majority function).
KnownBits kb_add(const KnownBits& a, const KnownBits& b, int carry) {
  KnownBits out;
  for (int i = 0; i < 16; ++i) {
    const int ab = bit_of(a, i);
    const int bb = bit_of(b, i);
    int sum = -1;
    int cout = -1;
    if (ab >= 0 && bb >= 0 && carry >= 0) {
      const int t = ab + bb + carry;
      sum = t & 1;
      cout = t >> 1;
    } else {
      const int ones = (ab == 1) + (bb == 1) + (carry == 1);
      const int zeros = (ab == 0) + (bb == 0) + (carry == 0);
      if (ones >= 2) cout = 1;
      if (zeros >= 2) cout = 0;
    }
    set_bit(out, i, sum);
    carry = cout;
  }
  return out;
}

KnownBits kb_and(const KnownBits& a, const KnownBits& b) {
  return {static_cast<std::uint16_t>(a.zeros | b.zeros),
          static_cast<std::uint16_t>(a.ones & b.ones)};
}

KnownBits kb_or(const KnownBits& a, const KnownBits& b) {
  return {static_cast<std::uint16_t>(a.zeros & b.zeros),
          static_cast<std::uint16_t>(a.ones | b.ones)};
}

KnownBits kb_xor(const KnownBits& a, const KnownBits& b) {
  const auto known = static_cast<std::uint16_t>(a.known() & b.known());
  const auto val = static_cast<std::uint16_t>((a.ones ^ b.ones) & known);
  return {static_cast<std::uint16_t>(known & ~val), val};
}

/// Consecutive low bits proved zero (caps the precision of kb_mult).
int trailing_zeros(const KnownBits& a) {
  int n = 0;
  while (n < 16 && ((a.zeros >> n) & 1)) ++n;
  return n;
}

KnownBits kb_mult(const KnownBits& a, const KnownBits& b) {
  // A product's trailing zeros are at least the sum of its factors'.
  const int tz = std::min(16, trailing_zeros(a) + trailing_zeros(b));
  KnownBits out;
  out.zeros = static_cast<std::uint16_t>((1u << tz) - 1);
  return out;
}

/// Shift amount when the low four bits of `b` are decided (-1 otherwise);
/// eval_op masks the amount with 15, so the upper bits never matter.
int known_shift_amount(const KnownBits& b) {
  return (b.known() & 0xF) == 0xF ? (b.ones & 0xF) : -1;
}

KnownBits kb_shl(const KnownBits& a, const KnownBits& b) {
  const int k = known_shift_amount(b);
  if (k >= 0) {
    return {static_cast<std::uint16_t>(((a.zeros << k) | ((1u << k) - 1)) &
                                       0xFFFFu),
            static_cast<std::uint16_t>((a.ones << k) & 0xFFFFu)};
  }
  // Unknown amount: shifting left never clears trailing zeros.
  KnownBits out;
  out.zeros = static_cast<std::uint16_t>((1u << trailing_zeros(a)) - 1);
  return out;
}

KnownBits kb_shr(const KnownBits& a, const KnownBits& b) {
  const int k = known_shift_amount(b);
  KnownBits out;
  if (k >= 0) {
    // Arithmetic: result bit i mirrors source bit min(i+k, 15).
    for (int i = 0; i < 16; ++i) {
      set_bit(out, i, bit_of(a, std::min(i + k, 15)));
    }
    return out;
  }
  // Unknown amount: the leading run of same-valued known bits survives
  // any arithmetic shift (each result bit i >= j mirrors a source bit
  // >= j, still inside the run).
  const int sign = bit_of(a, 15);
  if (sign < 0) return out;
  int j = 15;
  while (j >= 0 && bit_of(a, j) == sign) --j;
  for (int i = j + 1; i < 16; ++i) set_bit(out, i, sign);
  return out;
}

// ---- Range arithmetic -----------------------------------------------------

/// Clamp an exact 64-bit interval to the representable space; any
/// possibility of wraparound widens to the full range (sound, coarse).
ValueRange fit(std::int64_t lo, std::int64_t hi) {
  if (lo < kMin16 || hi > kMax16) return {};
  return {static_cast<std::int32_t>(lo), static_cast<std::int32_t>(hi)};
}

ValueRange range_mult(const ValueRange& a, const ValueRange& b) {
  const std::int64_t p[4] = {
      static_cast<std::int64_t>(a.lo) * b.lo,
      static_cast<std::int64_t>(a.lo) * b.hi,
      static_cast<std::int64_t>(a.hi) * b.lo,
      static_cast<std::int64_t>(a.hi) * b.hi};
  return fit(*std::min_element(p, p + 4), *std::max_element(p, p + 4));
}

ValueRange range_shl(const ValueRange& a, const KnownBits& b) {
  const int k = known_shift_amount(b);
  if (k < 0) {
    return a.lo == 0 && a.hi == 0 ? ValueRange{0, 0} : ValueRange{};
  }
  return fit(static_cast<std::int64_t>(a.lo) << k,
             static_cast<std::int64_t>(a.hi) << k);
}

ValueRange range_shr(const ValueRange& a, const KnownBits& b) {
  const int k = known_shift_amount(b);
  if (k >= 0) return {a.lo >> k, a.hi >> k};
  // Any amount in [0, 15]: `v >> k` moves monotonically toward 0 / -1
  // as k grows, so the extremes are at k = 0 and k = 15.
  return {std::min(a.lo, a.lo >> 15), std::max(a.hi, a.hi >> 15)};
}

// ---- Fact reconciliation --------------------------------------------------

/// Signed bounds implied by the known bits alone (unknown bits free).
ValueRange range_of_bits(const KnownBits& k) {
  const auto unknown = static_cast<std::uint16_t>(~k.known());
  const auto min_u = static_cast<std::uint16_t>(k.ones | (unknown & 0x8000u));
  const auto max_u = static_cast<std::uint16_t>(k.ones | (unknown & 0x7FFFu));
  return {mask16(min_u), mask16(max_u)};
}

/// Cross-pollinate the two domains: each one may tighten the other.
/// Applied after every transfer function, so e.g. a Cmp-derived [0, 1]
/// range also pins bits 1..15 to zero.
void reconcile(EdgeFact& f) {
  const ValueRange br = range_of_bits(f.bits);
  f.range.lo = std::max(f.range.lo, br.lo);
  f.range.hi = std::min(f.range.hi, br.hi);
  if (f.range.lo > f.range.hi) {
    // Domains disagree -- only possible on facts merged from two
    // different graphs (equiv.cpp); keep the bits-implied range.
    f.range = br;
  }
  if (f.range.is_constant()) {
    f.bits = KnownBits::constant(f.range.lo);
    return;
  }
  if (f.range.lo >= 0) {
    // Non-negative: every bit above the highest bit of `hi` is zero.
    for (int b = 15; b >= 0 && f.range.hi < (1 << b); --b) set_bit(f.bits, b, 0);
  } else if (f.range.hi < 0) {
    // Negative: bits b..15 are all ones once lo >= -(2^b).
    for (int b = 15; b >= 0 && f.range.lo >= -(1 << b); --b) {
      set_bit(f.bits, b, 1);
    }
  }
}

EdgeFact constant_fact(std::int32_t v) {
  EdgeFact f;
  f.bits = KnownBits::constant(v);
  f.range = {v, v};
  return f;
}

// ---- The forward / backward sweeps ---------------------------------------

/// Resolver identity folded into the cache key: hierarchical summaries
/// depend on which child DFG each behavior name resolves to, so two
/// resolvers mapping a name to structurally different (if equivalent)
/// variants must not share entries -- diagnostics stay deterministic.
std::uint64_t resolver_context(const Dfg& dfg, const BehaviorResolver& res) {
  std::uint64_t h = kFactsTag;
  for (const Node& n : dfg.nodes()) {
    if (!n.is_hier()) continue;
    h = hash_mix(h, std::hash<std::string>{}(n.behavior));
    const Dfg* child = res ? res(n.behavior) : nullptr;
    h = hash_mix(h, child != nullptr && child->validated()
                        ? child->content_hash()
                        : 0);
  }
  return hash_final(h);
}

/// Per-input seed facts from a trace: range over the samples, bits every
/// sample agrees on (a constant channel becomes a constant fact).
std::vector<EdgeFact> trace_input_facts(const Dfg& dfg, const Trace& trace) {
  std::vector<EdgeFact> facts(static_cast<std::size_t>(
      std::max(0, dfg.num_inputs())));
  if (trace.empty()) return facts;
  for (std::size_t i = 0; i < facts.size(); ++i) {
    std::int32_t lo = kMax16;
    std::int32_t hi = kMin16;
    std::uint16_t always1 = 0xFFFFu;
    std::uint16_t always0 = 0xFFFFu;
    bool seen = false;
    for (const Sample& s : trace) {
      if (i >= s.size()) continue;
      const std::int32_t v = mask16(s[i]);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      const auto u = static_cast<std::uint16_t>(v & 0xFFFF);
      always1 &= u;
      always0 &= static_cast<std::uint16_t>(~u);
      seen = true;
    }
    if (!seen) continue;
    facts[i].bits = {always0, always1};
    facts[i].range = {lo, hi};
    reconcile(facts[i]);
  }
  return facts;
}

/// Hashes of DFGs currently being analyzed on this thread: a recursive
/// hierarchy (invalid, diagnosed by HIER checks) degrades to an
/// unconstrained child summary instead of infinite recursion.
thread_local std::unordered_set<std::uint64_t>* t_in_progress = nullptr;

std::shared_ptr<const DataflowFacts> analyze_cached(const Dfg& dfg,
                                                    const BehaviorResolver& res,
                                                    const Trace* trace);

/// Transfer function for one operation node; `in` holds the operand
/// facts, `same` flags operands wired to the *same edge* (x - x == 0
/// and friends, decided structurally, no constants needed).
EdgeFact transfer(Op op, const EdgeFact& a, const EdgeFact& b, bool same) {
  // Fully decided operands: run the concrete semantics.
  if (a.is_constant() && (op == Op::Neg || b.is_constant())) {
    return constant_fact(
        eval_op(op, a.constant(), op == Op::Neg ? 0 : b.constant()));
  }
  EdgeFact out;
  switch (op) {
    case Op::Add:
      out.bits = kb_add(a.bits, b.bits, 0);
      out.range = fit(static_cast<std::int64_t>(a.range.lo) + b.range.lo,
                      static_cast<std::int64_t>(a.range.hi) + b.range.hi);
      break;
    case Op::Sub:
      if (same) return constant_fact(0);
      out.bits = kb_add(a.bits, kb_not(b.bits), 1);
      out.range = fit(static_cast<std::int64_t>(a.range.lo) - b.range.hi,
                      static_cast<std::int64_t>(a.range.hi) - b.range.lo);
      break;
    case Op::Mult:
      out.bits = kb_mult(a.bits, b.bits);
      out.range = range_mult(a.range, b.range);
      break;
    case Op::ShiftL:
      out.bits = kb_shl(a.bits, b.bits);
      out.range = range_shl(a.range, b.bits);
      break;
    case Op::ShiftR:
      out.bits = kb_shr(a.bits, b.bits);
      out.range = range_shr(a.range, b.bits);
      break;
    case Op::Cmp:
      if (same || a.range.lo >= b.range.hi) return constant_fact(0);
      if (a.range.hi < b.range.lo) return constant_fact(1);
      out.range = {0, 1};
      break;
    case Op::And:
      if (same) return a;
      out.bits = kb_and(a.bits, b.bits);
      break;
    case Op::Or:
      if (same) return a;
      out.bits = kb_or(a.bits, b.bits);
      break;
    case Op::Xor:
      if (same) return constant_fact(0);
      out.bits = kb_xor(a.bits, b.bits);
      break;
    case Op::Neg:
      // -a == ~a + 1.
      out.bits = kb_add(kb_not(a.bits), KnownBits::constant(0), 1);
      if (a.range.lo > kMin16) out.range = {-a.range.hi, -a.range.lo};
      break;
    case Op::Hier:
      break;  // handled by the caller
  }
  reconcile(out);
  return out;
}

DataflowFacts analyze_impl(const Dfg& dfg, const BehaviorResolver& res,
                           const Trace* trace) {
  DataflowFacts facts;
  facts.dfg_hash = dfg.content_hash();
  facts.edges.resize(dfg.edges().size());
  facts.node_live.assign(dfg.nodes().size(), 0);
  facts.input_live.assign(static_cast<std::size_t>(
                              std::max(0, dfg.num_inputs())), 0);

  // Primary-input seeds.
  const std::vector<EdgeFact> seeds =
      trace != nullptr ? trace_input_facts(dfg, *trace)
                       : std::vector<EdgeFact>(
                             static_cast<std::size_t>(
                                 std::max(0, dfg.num_inputs())));
  for (const Edge& e : dfg.edges()) {
    if (e.src.node != kPrimaryIn) continue;
    const auto idx = static_cast<std::size_t>(e.src.port);
    facts.edges[static_cast<std::size_t>(e.id)] =
        idx < seeds.size() ? seeds[idx] : EdgeFact{};
  }

  // Forward sweep in topological order. Child summaries are kept for
  // the backward sweep's per-input liveness.
  std::vector<std::shared_ptr<const DataflowFacts>> child_facts(
      dfg.nodes().size());
  for (const int nid : dfg.topo_order()) {
    const Node& n = dfg.node(nid);
    if (n.is_hier()) {
      const Dfg* child = res ? res(n.behavior) : nullptr;
      std::shared_ptr<const DataflowFacts> cf;
      if (child != nullptr && child->validated() &&
          child->num_inputs() == n.num_inputs &&
          child->num_outputs() == n.num_outputs) {
        // Context-free summary: the child analyzed with unconstrained
        // inputs, shared between every call site through the cache.
        cf = analyze_cached(*child, res, nullptr);
      }
      if (cf == nullptr) facts.incomplete = true;
      child_facts[static_cast<std::size_t>(nid)] = cf;
      for (int p = 0; p < n.num_outputs; ++p) {
        const int eid = dfg.output_edge(nid, p);
        if (eid < 0) continue;
        EdgeFact f;
        if (cf != nullptr) {
          const int ceid = child->primary_output_edge(p);
          if (ceid >= 0) {
            f = cf->edges[static_cast<std::size_t>(ceid)];
            f.live = false;
          }
        }
        facts.edges[static_cast<std::size_t>(eid)] = f;
      }
      continue;
    }
    const int ea = dfg.input_edge(nid, 0);
    const int eb = n.num_inputs > 1 ? dfg.input_edge(nid, 1) : -1;
    const EdgeFact& fa = facts.edges[static_cast<std::size_t>(ea)];
    const EdgeFact& fb = eb >= 0 ? facts.edges[static_cast<std::size_t>(eb)]
                                 : EdgeFact{};
    const int eo = dfg.output_edge(nid, 0);
    if (eo < 0) continue;
    facts.edges[static_cast<std::size_t>(eo)] =
        transfer(n.op, fa, fb, eb >= 0 && ea == eb);
  }

  // Backward liveness sweep. A consumer keeps an edge alive when it is
  // a primary output, a live operation node (every operand of a live op
  // matters), or a live hierarchical node whose corresponding child
  // input can reach a child output.
  auto consumer_live = [&](const PortRef& dst) {
    if (dst.node == kPrimaryOut) return true;
    if (dst.node < 0) return false;
    if (!facts.node_live[static_cast<std::size_t>(dst.node)]) return false;
    const auto& cf = child_facts[static_cast<std::size_t>(dst.node)];
    if (dfg.node(dst.node).is_hier() && cf != nullptr) {
      const auto p = static_cast<std::size_t>(dst.port);
      return p < cf->input_live.size() && cf->input_live[p] != 0;
    }
    return true;
  };
  const std::vector<int>& topo = dfg.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Node& n = dfg.node(*it);
    bool live = false;
    for (int p = 0; p < n.num_outputs; ++p) {
      const int eid = dfg.output_edge(*it, p);
      if (eid < 0) continue;
      EdgeFact& f = facts.edges[static_cast<std::size_t>(eid)];
      for (const PortRef& dst : dfg.edge(eid).dsts) {
        if (consumer_live(dst)) {
          f.live = true;
          break;
        }
      }
      live = live || f.live;
    }
    facts.node_live[static_cast<std::size_t>(*it)] = live ? 1 : 0;
  }
  for (const Edge& e : dfg.edges()) {
    if (e.src.node != kPrimaryIn) continue;
    EdgeFact& f = facts.edges[static_cast<std::size_t>(e.id)];
    for (const PortRef& dst : e.dsts) {
      if (consumer_live(dst)) {
        f.live = true;
        break;
      }
    }
    const auto idx = static_cast<std::size_t>(e.src.port);
    if (f.live && idx < facts.input_live.size()) facts.input_live[idx] = 1;
  }
  return facts;
}

std::shared_ptr<const DataflowFacts> analyze_cached(const Dfg& dfg,
                                                    const BehaviorResolver& res,
                                                    const Trace* trace) {
  if (!dfg.validated()) return nullptr;
  auto& cache = eval::EvalEngine::instance().facts_cache();
  const eval::Key key{
      dfg.content_hash(),
      trace != nullptr ? trace_fingerprint(*trace) : 0,
      resolver_context(dfg, res)};
  if (auto hit = cache.get(key)) return *hit;

  // Recursion guard: re-entering a DFG already on this thread's
  // analysis stack means the hierarchy is cyclic; degrade to an
  // unconstrained summary rather than recurse forever.
  std::unordered_set<std::uint64_t>* stack = t_in_progress;
  std::unordered_set<std::uint64_t> local;
  if (stack == nullptr) {
    stack = &local;
    t_in_progress = stack;
  }
  if (!stack->insert(dfg.content_hash()).second) {
    if (stack == &local) t_in_progress = nullptr;
    return nullptr;
  }
  auto facts =
      std::make_shared<const DataflowFacts>(analyze_impl(dfg, res, trace));
  stack->erase(dfg.content_hash());
  if (stack == &local) t_in_progress = nullptr;

  cache.put(key, facts, facts->bytes());
  return facts;
}

}  // namespace

std::shared_ptr<const DataflowFacts> analyze_dfg(const Dfg& dfg,
                                                 const BehaviorResolver& res) {
  auto facts = analyze_cached(dfg, res, nullptr);
  check(facts != nullptr, "analyze_dfg requires a validated, acyclic DFG");
  return facts;
}

std::shared_ptr<const DataflowFacts> analyze_dfg(const Dfg& dfg,
                                                 const BehaviorResolver& res,
                                                 const Trace& trace) {
  auto facts = analyze_cached(dfg, res, &trace);
  check(facts != nullptr, "analyze_dfg requires a validated, acyclic DFG");
  return facts;
}

DataflowFacts analyze_dfg_scratch(const Dfg& dfg, const BehaviorResolver& res,
                                  const Trace* trace) {
  check(dfg.validated(), "analyze_dfg_scratch requires a validated DFG");
  return analyze_impl(dfg, res, trace);
}

}  // namespace hsyn::lint
