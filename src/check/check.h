// Pass-based static-analysis framework over the H-SYN IRs.
//
// Every deep structural invariant the synthesis engine relies on --
// DFG well-formedness and hierarchy consistency, schedule legality under
// the sampling-period constraint, conflict-free FU/register sharing,
// datapath<->controller consistency, operating-point sanity -- is
// re-verifiable here by an *independent* implementation: the passes
// rebuild every derived fact (port maps, ready times, lifetimes,
// expected control asserts) from the raw IR tables rather than trusting
// the tables the scheduler/binder filled in. A buggy move generator that
// silently produces an illegal circuit is therefore caught at the move
// boundary instead of being cost-optimized.
//
// Three entry points:
//   * `hsyn-lint` (src/tools/hsyn_lint_main.cpp): lints the textio
//     formats standalone, exits non-zero on errors;
//   * verify_move(): the move-engine invariant gate, enabled with
//     --check-moves / HSYN_CHECK_MOVES=1 (synth/improve.cpp) -- re-runs
//     every pass after each accepted move and throws on violation;
//   * debug builds run the cheap passes on every synthesis result
//     (synth/synthesizer.cpp).
//
// Per-pass wall time is accumulated into runtime/stats phases
// ("check:<pass>") and aggregate run/diagnostic counters are exposed as
// the "check-engine" counter source, mirroring the evaluation caches.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "check/diagnostics.h"
#include "dfg/design.h"
#include "library/library.h"
#include "power/trace.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"

namespace hsyn::lint {

/// Everything a pass may look at. Null members simply make the passes
/// that need them inapplicable, so one context type serves design-level
/// linting, post-synthesis verification and the move gate alike.
struct CheckContext {
  const Design* design = nullptr;  ///< hierarchy-level checks
  const Dfg* dfg = nullptr;        ///< single-DFG lint (overrides design scan)
  const Datapath* dp = nullptr;    ///< RTL-level checks
  const Library* lib = nullptr;    ///< required by RTL-level checks
  /// FSM to verify against `dp`'s top level; null = derive it internally.
  const Controller* fsm = nullptr;
  OpPoint pt{};           ///< operating point of `dp`'s schedule
  int deadline = 0;       ///< >0: throughput constraint in cycles at `pt`
  double sample_period_ns = 0;  ///< >0: sampling period for cross-checks
  /// Optional stimulus: the dataflow passes (passes_dataflow.cpp) seed
  /// the design's *top* behavior's input facts from it, which is the
  /// only way value ranges tighten in an IR whose constants arrive as
  /// primary inputs. Null analyzes with unconstrained inputs.
  const Trace* trace = nullptr;
};

/// One analysis pass. Passes are stateless; all inputs come from the
/// context and all outputs go to the report. See DESIGN.md ("Static
/// checking") for the registered passes, their check codes, and how to
/// add one.
class Pass {
 public:
  virtual ~Pass() = default;
  /// Stable pass name ("dfg-wellformed", ...); also the stats phase key.
  virtual const char* name() const = 0;
  /// Cheap passes are the debug-build post-synthesis default set.
  virtual bool cheap() const { return true; }
  /// True when the context carries the IR this pass verifies.
  virtual bool applicable(const CheckContext& cx) const = 0;
  virtual void run(const CheckContext& cx, Report& rep) const = 0;
};

/// The pass registry + runner. Construction registers the default pass
/// set in a fixed order (diagnostic output is deterministic).
class CheckEngine {
 public:
  CheckEngine();

  /// Append a pass (custom passes run after the built-in set).
  void register_pass(std::unique_ptr<Pass> pass);

  /// Registered passes, in execution order.
  std::vector<const Pass*> passes() const;

  /// Run every applicable pass (optionally the cheap subset) and return
  /// the merged report. Thread-safe; per-pass timing goes to
  /// runtime/stats under "check:<pass>".
  Report run(const CheckContext& cx, bool cheap_only = false) const;

  /// The process-wide engine, with its counters registered as the
  /// "check-engine" runtime/stats source.
  static CheckEngine& instance();

 private:
  struct Entry {
    std::unique_ptr<Pass> pass;
    std::string phase;  ///< "check:<name>", stable storage for ScopedPhase
    mutable std::atomic<std::uint64_t> runs{0};
  };
  /// Deque: Entry is pinned (atomic member) yet pointers stay stable.
  std::deque<Entry> entries_;
  mutable std::atomic<std::uint64_t> runs_{0};
  mutable std::atomic<std::uint64_t> diags_{0};
  mutable std::atomic<std::uint64_t> errors_{0};

  friend void register_check_counters(CheckEngine& e);
};

// ---- Convenience front ends ---------------------------------------------

/// Lint a whole design (DFG + hierarchy passes over every behavior).
/// A non-null `trace` seeds the dataflow passes' input facts of the top
/// behavior (hsyn-lint --trace), sharpening constant/range findings.
Report lint_design(const Design& design, const Trace* trace = nullptr);

/// Verify a synthesized/mutated datapath end to end (all passes).
Report lint_datapath(const Datapath& dp, const Library& lib, const OpPoint& pt,
                     int deadline = 0, const Design* design = nullptr);

/// True when the HSYN_CHECK_MOVES environment variable enables the move
/// gate (value "1"; cached after first read).
bool env_check_moves();

/// True when HSYN_VERIFY_REWRITES=1 enables the rewrite-equivalence
/// gate (check/equiv.h) in the search core; cached after first read.
bool env_verify_rewrites();

/// DFGs referenced by a context, deduplicated in deterministic order:
/// the single-DFG override, else every design behavior followed by the
/// datapath tree's behavior implementations. Shared by the DFG-level
/// passes (passes_dfg.cpp, passes_dataflow.cpp).
std::vector<const Dfg*> context_dfgs(const CheckContext& cx);

/// The move-engine invariant gate: re-verify `dp` with every pass and
/// throw std::logic_error carrying the full diagnostic text when any
/// error-severity finding fires. `what` names the offending move in the
/// exception message. Timing is accumulated under the "check-moves"
/// runtime/stats phase.
void verify_move(const Datapath& dp, const Library& lib, const OpPoint& pt,
                 int deadline, const std::string& what);

// ---- Built-in pass factories (grouped by implementation file) ------------

std::unique_ptr<Pass> make_dfg_wellformed_pass();   // passes_dfg.cpp
std::unique_ptr<Pass> make_dfg_hierarchy_pass();    // passes_dfg.cpp
std::unique_ptr<Pass> make_dfg_deadcode_pass();     // passes_dataflow.cpp
std::unique_ptr<Pass> make_dfg_const_fold_pass();   // passes_dataflow.cpp
std::unique_ptr<Pass> make_dfg_range_overflow_pass();  // passes_dataflow.cpp
std::unique_ptr<Pass> make_dfg_width_waste_pass();  // passes_dataflow.cpp
std::unique_ptr<Pass> make_rtl_binding_pass();      // passes_rtl.cpp
std::unique_ptr<Pass> make_sched_legality_pass();   // passes_rtl.cpp
std::unique_ptr<Pass> make_ctrl_consistency_pass(); // passes_ctrl.cpp
std::unique_ptr<Pass> make_oppoint_sanity_pass();   // passes_ctrl.cpp

}  // namespace hsyn::lint
