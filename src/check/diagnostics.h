// Diagnostics engine of the static-analysis framework (src/check/).
//
// A Diagnostic is one finding of an analysis pass: a stable check code
// (e.g. "SCHED003" -- codes never change meaning once shipped, so CI
// logs and suppressions stay valid across releases), a severity, an IR
// location rendered as text ("dp 'top' behavior 'biquad' inv 4"), and a
// human-readable message. A Report collects diagnostics across passes
// and renders them as plain text (one finding per line, grep-friendly)
// or JSON (one object per finding, machine-readable for CI tooling).
//
// The full check-code table lives in DESIGN.md ("Static checking").
#pragma once

#include <string>
#include <vector>

namespace hsyn::lint {

enum class Severity { Note = 0, Warning = 1, Error = 2 };

const char* severity_name(Severity s);

struct Diagnostic {
  std::string code;  ///< stable check code, e.g. "DFG001"
  Severity severity = Severity::Error;
  std::string pass;  ///< name of the pass that emitted it
  std::string loc;   ///< IR location, e.g. "dfg 'biquad' node 3"
  std::string message;
};

/// Ordered collection of diagnostics (emission order = pass order, so
/// output is deterministic for a given IR).
class Report {
 public:
  void add(std::string code, Severity sev, std::string loc, std::string msg);

  const std::vector<Diagnostic>& diags() const { return diags_; }
  int errors() const { return errors_; }
  int warnings() const { return warnings_; }
  bool ok() const { return errors_ == 0; }

  /// Number of diagnostics carrying `code`.
  int count(const std::string& code) const;
  bool has(const std::string& code) const { return count(code) > 0; }

  /// Append another report's diagnostics (used when linting several IRs).
  void merge(const Report& other);

  /// Copy holding only the diagnostics at `min` severity or above
  /// (hsyn-lint --min-severity); counts are recomputed from the kept
  /// set.
  Report filtered(Severity min) const;

  /// One line per diagnostic: "error[SCHED003] <loc>: <message>".
  std::string to_text() const;

  /// JSON array of {code, severity, pass, loc, message} objects plus a
  /// {errors, warnings} summary object.
  std::string to_json() const;

  /// Name of the pass subsequently added diagnostics are attributed to.
  void set_active_pass(std::string name) { active_pass_ = std::move(name); }

 private:
  std::vector<Diagnostic> diags_;
  std::string active_pass_;
  int errors_ = 0;
  int warnings_ = 0;
};

}  // namespace hsyn::lint
