// Dataflow-driven lint passes on top of the abstract-interpretation
// framework (check/dataflow.h).
//
// Codes: DC001-DC002 (dfg-deadcode), CF001-CF002 (dfg-const-fold),
// RO001-RO002 (dfg-range-overflow), WW001-WW002 (dfg-width-waste).
// All findings are warnings or notes: they flag circuits that waste
// area/power or depend on wraparound, not illegal IR -- the structural
// passes (passes_dfg.cpp) own the error severities. `hsyn-lint --werror`
// promotes the warnings to a failing exit code for CI.
//
// Unlike the structural passes these require validated DFGs (the
// analysis walks topo_order); unvalidated graphs are skipped here and
// diagnosed by dfg-wellformed instead.
#include <memory>

#include "check/check.h"
#include "check/dataflow.h"
#include "util/fmt.h"

namespace hsyn::lint {
namespace {

std::string dfg_loc(const Dfg& dfg) { return "dfg '" + dfg.name() + "'"; }

/// Resolver over the context's design (null resolver otherwise: hier
/// children then analyze as unconstrained, which only costs precision).
BehaviorResolver context_resolver(const CheckContext& cx) {
  if (cx.design == nullptr) return nullptr;
  const Design* design = cx.design;
  return [design](const std::string& name) -> const Dfg* {
    return design->has_behavior(name) ? &design->behavior(name) : nullptr;
  };
}

/// Facts for one context DFG: trace-seeded for the design's top
/// behavior when the context carries a stimulus, unconstrained
/// otherwise. Both forms are cached in the eval engine.
std::shared_ptr<const DataflowFacts> context_facts(const CheckContext& cx,
                                                   const Dfg& dfg) {
  const BehaviorResolver res = context_resolver(cx);
  const bool is_top = cx.trace != nullptr && cx.design != nullptr &&
                      cx.design->has_behavior(cx.design->top_name()) &&
                      &cx.design->top() == &dfg;
  return is_top ? analyze_dfg(dfg, res, *cx.trace) : analyze_dfg(dfg, res);
}

/// Shared applicability + per-DFG iteration of the dataflow passes.
class DataflowPass : public Pass {
 public:
  bool applicable(const CheckContext& cx) const override {
    return cx.dfg != nullptr || cx.design != nullptr || cx.dp != nullptr;
  }
  void run(const CheckContext& cx, Report& rep) const override {
    for (const Dfg* dfg : context_dfgs(cx)) {
      if (!dfg->validated()) continue;  // dfg-wellformed's territory
      check_dfg(cx, *dfg, *context_facts(cx, *dfg), rep);
    }
  }

 private:
  virtual void check_dfg(const CheckContext& cx, const Dfg& dfg,
                         const DataflowFacts& facts, Report& rep) const = 0;
};

// ---- dfg-deadcode --------------------------------------------------------

class DfgDeadcodePass final : public DataflowPass {
 public:
  const char* name() const override { return "dfg-deadcode"; }

 private:
  void check_dfg(const CheckContext&, const Dfg& dfg,
                 const DataflowFacts& facts, Report& rep) const override {
    const std::string at = dfg_loc(dfg);
    for (const Node& n : dfg.nodes()) {
      if (facts.node_live[static_cast<std::size_t>(n.id)]) continue;
      rep.add("DC001", Severity::Warning,
              strf("%s node %d", at.c_str(), n.id),
              strf("%s result cannot reach any primary output; the "
                   "operation is dead hardware",
                   op_name(n.op)));
    }
    for (int i = 0; i < dfg.num_inputs(); ++i) {
      const int eid = dfg.primary_input_edge(i);
      // An unconsumed input is DFG007 (dfg-wellformed); this pass flags
      // the subtler case of an input consumed only by dead code.
      if (eid < 0 || dfg.edge(eid).dsts.empty()) continue;
      if (facts.input_live[static_cast<std::size_t>(i)]) continue;
      rep.add("DC002", Severity::Warning,
              strf("%s input %d", at.c_str(), i),
              "primary input feeds only dead operations and can never "
              "influence an output");
    }
  }
};

// ---- dfg-const-fold ------------------------------------------------------

class DfgConstFoldPass final : public DataflowPass {
 public:
  const char* name() const override { return "dfg-const-fold"; }

 private:
  void check_dfg(const CheckContext&, const Dfg& dfg,
                 const DataflowFacts& facts, Report& rep) const override {
    const std::string at = dfg_loc(dfg);
    for (const Node& n : dfg.nodes()) {
      if (n.is_hier()) continue;
      if (!facts.node_live[static_cast<std::size_t>(n.id)]) continue;
      const int eo = dfg.output_edge(n.id, 0);
      if (eo < 0) continue;
      const EdgeFact& f = facts.edges[static_cast<std::size_t>(eo)];
      const std::vector<int> ins = dfg.node_input_edges(n.id);
      const bool same_operand = ins.size() == 2 && ins[0] == ins[1];
      if (f.is_constant()) {
        rep.add("CF001", Severity::Warning,
                strf("%s node %d", at.c_str(), n.id),
                strf("%s always produces %d; fold the constant instead of "
                     "synthesizing the operation",
                     op_name(n.op), f.constant()));
      } else if (same_operand && (n.op == Op::And || n.op == Op::Or)) {
        rep.add("CF002", Severity::Warning,
                strf("%s node %d", at.c_str(), n.id),
                strf("%s of a value with itself is the identity; forward "
                     "edge %d directly",
                     op_name(n.op), ins[0]));
      }
    }
  }
};

// ---- dfg-range-overflow --------------------------------------------------

class DfgRangeOverflowPass final : public DataflowPass {
 public:
  const char* name() const override { return "dfg-range-overflow"; }

 private:
  void check_dfg(const CheckContext&, const Dfg& dfg,
                 const DataflowFacts& facts, Report& rep) const override {
    const std::string at = dfg_loc(dfg);
    for (const Node& n : dfg.nodes()) {
      if (n.is_hier() || !facts.node_live[static_cast<std::size_t>(n.id)]) {
        continue;
      }
      const int ea = dfg.input_edge(n.id, 0);
      const int eb = n.num_inputs > 1 ? dfg.input_edge(n.id, 1) : -1;
      if (ea < 0) continue;
      const ValueRange a = facts.edges[static_cast<std::size_t>(ea)].range;
      const ValueRange b = eb >= 0
                               ? facts.edges[static_cast<std::size_t>(eb)].range
                               : ValueRange{0, 0};
      // RO001: the exact (unwrapped) result lies outside the 16-bit
      // word for *every* input the operands can take -- the node's
      // output is pure wraparound artifact.
      std::int64_t lo = 0;
      std::int64_t hi = 0;
      bool applies = true;
      switch (n.op) {
        case Op::Add:
          lo = static_cast<std::int64_t>(a.lo) + b.lo;
          hi = static_cast<std::int64_t>(a.hi) + b.hi;
          break;
        case Op::Sub:
          lo = static_cast<std::int64_t>(a.lo) - b.hi;
          hi = static_cast<std::int64_t>(a.hi) - b.lo;
          break;
        case Op::Mult: {
          const std::int64_t p[4] = {static_cast<std::int64_t>(a.lo) * b.lo,
                                     static_cast<std::int64_t>(a.lo) * b.hi,
                                     static_cast<std::int64_t>(a.hi) * b.lo,
                                     static_cast<std::int64_t>(a.hi) * b.hi};
          lo = std::min({p[0], p[1], p[2], p[3]});
          hi = std::max({p[0], p[1], p[2], p[3]});
          break;
        }
        default:
          applies = false;
          break;
      }
      if (applies && (hi < -32768 || lo > 32767)) {
        rep.add("RO001", Severity::Warning,
                strf("%s node %d", at.c_str(), n.id),
                strf("%s overflows the 16-bit datapath for every feasible "
                     "input (exact result in [%lld, %lld])",
                     op_name(n.op), static_cast<long long>(lo),
                     static_cast<long long>(hi)));
      }
      // RO002: a shift whose amount can never be a valid bit count --
      // eval_op silently masks it with 15, so the hardware behaves as
      // `amount & 15`, which is rarely what the designer meant.
      if ((n.op == Op::ShiftL || n.op == Op::ShiftR) && eb >= 0 &&
          (b.lo > 15 || b.hi < 0)) {
        rep.add("RO002", Severity::Warning,
                strf("%s node %d", at.c_str(), n.id),
                strf("shift amount is provably outside [0, 15] (range "
                     "[%d, %d]); the datapath masks it to `amount & 15`",
                     b.lo, b.hi));
      }
    }
  }
};

// ---- dfg-width-waste -----------------------------------------------------

class DfgWidthWastePass final : public DataflowPass {
 public:
  const char* name() const override { return "dfg-width-waste"; }

 private:
  /// Known-bits threshold above which a full-width unit is flagged.
  static constexpr int kKnownBitsWaste = 8;

  void check_dfg(const CheckContext&, const Dfg& dfg,
                 const DataflowFacts& facts, Report& rep) const override {
    const std::string at = dfg_loc(dfg);
    for (const Node& n : dfg.nodes()) {
      if (n.is_hier() || !facts.node_live[static_cast<std::size_t>(n.id)]) {
        continue;
      }
      const int eo = dfg.output_edge(n.id, 0);
      if (eo < 0) continue;
      const EdgeFact& f = facts.edges[static_cast<std::size_t>(eo)];
      if (f.is_constant()) continue;  // CF001's finding
      const int known = f.bits.num_known();
      if (known >= kKnownBitsWaste) {
        rep.add("WW001", Severity::Note,
                strf("%s node %d", at.c_str(), n.id),
                strf("%s output has %d of 16 bits statically determined; "
                     "a %d-bit unit would suffice",
                     op_name(n.op), known, 16 - known));
      } else if (f.range.width() <= 256) {
        rep.add("WW002", Severity::Note,
                strf("%s node %d", at.c_str(), n.id),
                strf("%s output spans only [%d, %d]; the value fits a "
                     "narrower datapath than 16 bits",
                     op_name(n.op), f.range.lo, f.range.hi));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_dfg_deadcode_pass() {
  return std::make_unique<DfgDeadcodePass>();
}
std::unique_ptr<Pass> make_dfg_const_fold_pass() {
  return std::make_unique<DfgConstFoldPass>();
}
std::unique_ptr<Pass> make_dfg_range_overflow_pass() {
  return std::make_unique<DfgRangeOverflowPass>();
}
std::unique_ptr<Pass> make_dfg_width_waste_pass() {
  return std::make_unique<DfgWidthWastePass>();
}

}  // namespace hsyn::lint
