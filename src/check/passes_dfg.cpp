// DFG well-formedness and hierarchy-consistency passes.
//
// Codes: DFG001-DFG008 (dfg-wellformed), HIER001-HIER006 (dfg-hierarchy).
// Both passes rebuild their facts from the raw node/edge tables -- they
// deliberately do not call Dfg::validate() or use its lookup tables, so
// they also work on (and diagnose) graphs that validate() would reject
// by throwing.
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "check/check.h"
#include "util/fmt.h"

namespace hsyn::lint {
namespace {

std::string dfg_loc(const Dfg& dfg) { return "dfg '" + dfg.name() + "'"; }

}  // namespace

std::vector<const Dfg*> context_dfgs(const CheckContext& cx) {
  std::vector<const Dfg*> out;
  std::set<const Dfg*> seen;
  auto push = [&](const Dfg* d) {
    if (d != nullptr && seen.insert(d).second) out.push_back(d);
  };
  if (cx.dfg != nullptr) {
    push(cx.dfg);
    return out;
  }
  if (cx.design != nullptr) {
    for (const std::string& n : cx.design->behavior_names()) {
      push(&cx.design->behavior(n));
    }
  }
  if (cx.dp != nullptr) {
    // Walk the datapath tree; children after their parent for stable order.
    std::vector<const Datapath*> stack{cx.dp};
    while (!stack.empty()) {
      const Datapath* dp = stack.back();
      stack.pop_back();
      for (const BehaviorImpl& bi : dp->behaviors) push(bi.dfg);
      for (const ChildUnit& c : dp->children) {
        if (c.impl) stack.push_back(c.impl.get());
      }
    }
  }
  return out;
}

namespace {

// ---- dfg-wellformed ------------------------------------------------------

class DfgWellformedPass final : public Pass {
 public:
  const char* name() const override { return "dfg-wellformed"; }
  bool applicable(const CheckContext& cx) const override {
    return cx.dfg != nullptr || cx.design != nullptr || cx.dp != nullptr;
  }
  void run(const CheckContext& cx, Report& rep) const override {
    for (const Dfg* dfg : context_dfgs(cx)) check_dfg(*dfg, rep);
  }

 private:
  static void check_dfg(const Dfg& dfg, Report& rep) {
    const std::string at = dfg_loc(dfg);
    const int nnodes = static_cast<int>(dfg.nodes().size());
    const auto node_ok = [&](int id) { return id >= 0 && id < nnodes; };

    // Endpoint validity, driver/producer counts (built from the raw edge
    // list -- this pass must not trust the validate() lookup tables).
    std::map<std::pair<int, int>, int> in_drivers;   // (node, port) -> #edges
    std::map<std::pair<int, int>, int> out_producers;
    std::vector<int> pout_drivers(static_cast<std::size_t>(
                                      std::max(0, dfg.num_outputs())), 0);
    std::vector<int> pin_used(static_cast<std::size_t>(
                                  std::max(0, dfg.num_inputs())), 0);
    for (const Edge& e : dfg.edges()) {
      const std::string eat = strf("%s edge %d", at.c_str(), e.id);
      if (e.src.node == kPrimaryIn) {
        if (e.src.port < 0 || e.src.port >= dfg.num_inputs()) {
          rep.add("DFG002", Severity::Error, eat,
                  strf("source primary input %d out of range [0, %d)",
                       e.src.port, dfg.num_inputs()));
        } else {
          pin_used[static_cast<std::size_t>(e.src.port)]++;
        }
      } else if (!node_ok(e.src.node)) {
        rep.add("DFG002", Severity::Error, eat,
                strf("source node %d does not exist", e.src.node));
      } else {
        const Node& n = dfg.node(e.src.node);
        if (e.src.port < 0 || e.src.port >= n.num_outputs) {
          rep.add("DFG002", Severity::Error, eat,
                  strf("source port %d out of range on node %d (%d outputs)",
                       e.src.port, e.src.node, n.num_outputs));
        } else {
          out_producers[{e.src.node, e.src.port}]++;
        }
      }
      if (e.dsts.empty()) {
        rep.add("DFG004", Severity::Warning, eat,
                "dangling edge: value has no consumers");
      }
      for (const PortRef& d : e.dsts) {
        if (d.node == kPrimaryOut) {
          if (d.port < 0 || d.port >= dfg.num_outputs()) {
            rep.add("DFG002", Severity::Error, eat,
                    strf("destination primary output %d out of range [0, %d)",
                         d.port, dfg.num_outputs()));
          } else {
            pout_drivers[static_cast<std::size_t>(d.port)]++;
          }
        } else if (!node_ok(d.node)) {
          rep.add("DFG002", Severity::Error, eat,
                  strf("destination node %d does not exist", d.node));
        } else {
          const Node& n = dfg.node(d.node);
          if (d.port < 0 || d.port >= n.num_inputs) {
            rep.add("DFG002", Severity::Error, eat,
                    strf("destination port %d out of range on node %d "
                         "(%d inputs)",
                         d.port, d.node, n.num_inputs));
          } else {
            in_drivers[{d.node, d.port}]++;
          }
        }
      }
    }

    // Node arity vs. operation kind; every input port driven exactly once.
    for (const Node& n : dfg.nodes()) {
      const std::string nat = strf("%s node %d (%s)", at.c_str(), n.id,
                                   n.is_hier() ? n.behavior.c_str()
                                               : op_name(n.op));
      if (!n.is_hier() && n.num_inputs != op_arity(n.op)) {
        rep.add("DFG008", Severity::Error, nat,
                strf("operation %s takes %d inputs, node declares %d",
                     op_name(n.op), op_arity(n.op), n.num_inputs));
      }
      if (!n.is_hier() && n.num_outputs != 1) {
        rep.add("DFG008", Severity::Error, nat,
                strf("operation node must have 1 output, declares %d",
                     n.num_outputs));
      }
      for (int p = 0; p < n.num_inputs; ++p) {
        const auto it = in_drivers.find({n.id, p});
        const int k = it == in_drivers.end() ? 0 : it->second;
        if (k != 1) {
          rep.add("DFG001", Severity::Error, nat,
                  strf("input port %d driven by %d edges (want exactly 1)",
                       p, k));
        }
      }
      for (int p = 0; p < n.num_outputs; ++p) {
        const auto it = out_producers.find({n.id, p});
        if (it != out_producers.end() && it->second > 1) {
          rep.add("DFG006", Severity::Error, nat,
                  strf("output port %d produces %d edges (want at most 1)",
                       p, it->second));
        }
      }
    }
    for (int o = 0; o < dfg.num_outputs(); ++o) {
      const int k = pout_drivers[static_cast<std::size_t>(o)];
      if (k == 0) {
        rep.add("DFG005", Severity::Error, at,
                strf("primary output %d is undriven", o));
      } else if (k > 1) {
        rep.add("DFG006", Severity::Error, at,
                strf("primary output %d driven by %d edges", o, k));
      }
    }
    for (int i = 0; i < dfg.num_inputs(); ++i) {
      if (pin_used[static_cast<std::size_t>(i)] == 0) {
        rep.add("DFG007", Severity::Warning, at,
                strf("primary input %d is never consumed", i));
      }
    }

    // Acyclicity (Kahn's algorithm over node-to-node data edges).
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(nnodes));
    std::vector<int> indeg(static_cast<std::size_t>(nnodes), 0);
    for (const Edge& e : dfg.edges()) {
      if (!node_ok(e.src.node)) continue;
      for (const PortRef& d : e.dsts) {
        if (!node_ok(d.node)) continue;
        adj[static_cast<std::size_t>(e.src.node)].push_back(d.node);
        indeg[static_cast<std::size_t>(d.node)]++;
      }
    }
    std::queue<int> q;
    for (int i = 0; i < nnodes; ++i) {
      if (indeg[static_cast<std::size_t>(i)] == 0) q.push(i);
    }
    int visited = 0;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      ++visited;
      for (const int v : adj[static_cast<std::size_t>(u)]) {
        if (--indeg[static_cast<std::size_t>(v)] == 0) q.push(v);
      }
    }
    if (visited != nnodes) {
      std::string on_cycle;
      for (int i = 0; i < nnodes; ++i) {
        if (indeg[static_cast<std::size_t>(i)] > 0) {
          on_cycle = strf(" (node %d participates)", i);
          break;
        }
      }
      rep.add("DFG003", Severity::Error, at,
              "data flow graph is cyclic" + on_cycle);
    }
  }
};

// ---- dfg-hierarchy -------------------------------------------------------

class DfgHierarchyPass final : public Pass {
 public:
  const char* name() const override { return "dfg-hierarchy"; }
  bool applicable(const CheckContext& cx) const override {
    return cx.design != nullptr;
  }
  void run(const CheckContext& cx, Report& rep) const override {
    const Design& design = *cx.design;
    const std::vector<std::string>& names = design.behavior_names();

    if (design.top_name().empty()) {
      rep.add("HIER006", Severity::Error, "design",
              "no top behavior declared");
    } else if (!design.has_behavior(design.top_name())) {
      rep.add("HIER006", Severity::Error, "design",
              "top behavior '" + design.top_name() + "' is not registered");
    }

    // Reference validity + port arity of hierarchical nodes.
    for (const std::string& bn : names) {
      const Dfg& dfg = design.behavior(bn);
      for (const Node& n : dfg.nodes()) {
        if (!n.is_hier()) continue;
        const std::string at =
            strf("%s node %d", dfg_loc(dfg).c_str(), n.id);
        if (!design.has_behavior(n.behavior)) {
          rep.add("HIER001", Severity::Error, at,
                  "references unregistered behavior '" + n.behavior + "'");
          continue;
        }
        const Dfg& child = design.behavior(n.behavior);
        if (n.num_inputs != child.num_inputs() ||
            n.num_outputs != child.num_outputs()) {
          rep.add("HIER002", Severity::Error, at,
                  strf("port arity %d/%d does not match behavior '%s' "
                       "(%d inputs, %d outputs)",
                       n.num_inputs, n.num_outputs, n.behavior.c_str(),
                       child.num_inputs(), child.num_outputs()));
        }
      }
    }

    // Recursion detection: DFS over the behavior-reference graph.
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::map<std::string, int> state;
    for (const std::string& bn : names) {
      dfs_recursion(design, bn, state, rep);
    }

    // Equivalence classes must share the I/O signature.
    std::set<std::string> reported;
    for (const std::string& bn : names) {
      const Dfg& dfg = design.behavior(bn);
      for (const std::string& eq : design.equivalents(bn)) {
        if (eq == bn || !design.has_behavior(eq)) continue;
        const Dfg& other = design.behavior(eq);
        if (dfg.num_inputs() != other.num_inputs() ||
            dfg.num_outputs() != other.num_outputs()) {
          const std::string key = bn < eq ? bn + "/" + eq : eq + "/" + bn;
          if (reported.insert(key).second) {
            rep.add("HIER004", Severity::Error, "design",
                    strf("equivalent behaviors '%s' (%d/%d) and '%s' (%d/%d) "
                         "have different I/O signatures",
                         bn.c_str(), dfg.num_inputs(), dfg.num_outputs(),
                         eq.c_str(), other.num_inputs(), other.num_outputs()));
          }
        }
      }
    }

    // Reachability from the top (hier references + declared equivalences).
    if (design.has_behavior(design.top_name())) {
      std::set<std::string> reach;
      std::queue<std::string> q;
      q.push(design.top_name());
      reach.insert(design.top_name());
      while (!q.empty()) {
        const std::string bn = q.front();
        q.pop();
        auto visit = [&](const std::string& next) {
          if (design.has_behavior(next) && reach.insert(next).second) {
            q.push(next);
          }
        };
        for (const std::string& eq : design.equivalents(bn)) visit(eq);
        for (const Node& n : design.behavior(bn).nodes()) {
          if (n.is_hier()) visit(n.behavior);
        }
      }
      for (const std::string& bn : names) {
        if (reach.count(bn) == 0) {
          rep.add("HIER005", Severity::Warning, "design",
                  "behavior '" + bn +
                      "' is unreachable from the top behavior");
        }
      }
    }
  }

 private:
  static void dfs_recursion(const Design& design, const std::string& bn,
                            std::map<std::string, int>& state, Report& rep) {
    auto [it, fresh] = state.emplace(bn, 1);
    if (!fresh) return;  // visited (or already reported on this path)
    if (design.has_behavior(bn)) {
      for (const Node& n : design.behavior(bn).nodes()) {
        if (!n.is_hier()) continue;
        const auto cit = state.find(n.behavior);
        if (cit != state.end() && cit->second == 1) {
          rep.add("HIER003", Severity::Error,
                  "dfg '" + bn + "' node " + strf("%d", n.id),
                  "recursive hierarchy through behavior '" + n.behavior + "'");
          continue;
        }
        dfs_recursion(design, n.behavior, state, rep);
      }
    }
    it->second = 2;
  }
};

}  // namespace

std::unique_ptr<Pass> make_dfg_wellformed_pass() {
  return std::make_unique<DfgWellformedPass>();
}
std::unique_ptr<Pass> make_dfg_hierarchy_pass() {
  return std::make_unique<DfgHierarchyPass>();
}

}  // namespace hsyn::lint
