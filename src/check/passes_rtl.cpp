// Binding-legality and schedule-legality passes.
//
// Codes: BIND001-BIND008 (rtl-binding), SCHED000-SCHED008
// (sched-legality). Both passes recurse through the datapath tree and
// recompute every derived fact (chain-internal edge sets, per-invocation
// read/write offsets, ready times, register lifetimes) from the raw
// binding tables -- independently of the scheduler's constraint-graph
// machinery -- so a schedule or binding the engine corrupted is caught
// even when the tables it filled in are self-consistent.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "check/check.h"
#include "util/fmt.h"

namespace hsyn::lint {
namespace {

/// One level of the datapath tree with its display path.
struct LevelRef {
  const Datapath* dp = nullptr;
  std::string path;
  int depth = 0;
};

/// Preorder walk; paths look like "dp 'top' / child 1 'mac'".
std::vector<LevelRef> collect_levels(const Datapath& top) {
  std::vector<LevelRef> out;
  struct Item {
    const Datapath* dp;
    std::string path;
    int depth;
  };
  std::vector<Item> stack{{&top, "dp '" + top.name + "'", 0}};
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    out.push_back({it.dp, it.path, it.depth});
    for (std::size_t c = it.dp->children.size(); c-- > 0;) {
      const ChildUnit& cu = it.dp->children[c];
      if (cu.impl) {
        stack.push_back({cu.impl.get(),
                         it.path + strf(" / child %zu '%s'", c,
                                        cu.name.c_str()),
                         it.depth + 1});
      }
    }
  }
  return out;
}

/// node -> invocation index, tolerant of corrupted tables (-1 on any
/// inconsistency; the binding pass reports those).
int inv_of_safe(const BehaviorImpl& bi, int node) {
  if (node < 0 || node >= static_cast<int>(bi.node_inv.size())) return -1;
  const int i = bi.node_inv[static_cast<std::size_t>(node)];
  if (i < 0 || i >= static_cast<int>(bi.invs.size())) return -1;
  return i;
}

/// Edge ids internal to a chained invocation (produced by a non-final
/// chain node); these are never registered and never scheduled against.
std::set<int> chain_internal_edges(const BehaviorImpl& bi) {
  std::set<int> internal;
  if (bi.dfg == nullptr || !bi.dfg->validated()) return internal;
  for (const Invocation& inv : bi.invs) {
    for (std::size_t k = 0; k + 1 < inv.nodes.size(); ++k) {
      const int eid = bi.dfg->output_edge(inv.nodes[k], 0);
      if (eid >= 0) internal.insert(eid);
    }
  }
  return internal;
}

/// Whether the behavior's tables are usable (sizes match the DFG); the
/// binding pass reports the mismatches, every other consumer skips.
bool tables_usable(const BehaviorImpl& bi) {
  return bi.dfg != nullptr && bi.dfg->validated() &&
         bi.node_inv.size() == bi.dfg->nodes().size() &&
         bi.edge_reg.size() == bi.dfg->edges().size() &&
         static_cast<int>(bi.input_arrival.size()) == bi.dfg->num_inputs();
}

// ---- rtl-binding ---------------------------------------------------------

class RtlBindingPass final : public Pass {
 public:
  const char* name() const override { return "rtl-binding"; }
  bool applicable(const CheckContext& cx) const override {
    return cx.dp != nullptr && cx.lib != nullptr;
  }
  void run(const CheckContext& cx, Report& rep) const override {
    for (const LevelRef& lv : collect_levels(*cx.dp)) {
      for (std::size_t b = 0; b < lv.dp->behaviors.size(); ++b) {
        check_behavior(*lv.dp, static_cast<int>(b), *cx.lib,
                       strf("%s behavior '%s'", lv.path.c_str(),
                            lv.dp->behaviors[b].behavior.c_str()),
                       rep);
      }
      for (std::size_t c = 0; c < lv.dp->children.size(); ++c) {
        if (!lv.dp->children[c].impl) {
          rep.add("BIND007", Severity::Error,
                  lv.path + strf(" child %zu", c),
                  "child unit has no implementation");
        }
      }
    }
  }

 private:
  static void check_behavior(const Datapath& dp, int b, const Library& lib,
                             const std::string& at, Report& rep) {
    const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
    if (bi.dfg == nullptr) {
      rep.add("BIND008", Severity::Error, at, "behavior has no DFG");
      return;
    }
    if (!bi.dfg->validated()) {
      rep.add("BIND008", Severity::Error, at,
              "behavior DFG is not validated");
      return;
    }
    bool sizes_ok = true;
    if (bi.node_inv.size() != bi.dfg->nodes().size()) {
      rep.add("BIND008", Severity::Error, at,
              strf("node_inv table has %zu entries for %zu nodes",
                   bi.node_inv.size(), bi.dfg->nodes().size()));
      sizes_ok = false;
    }
    if (bi.edge_reg.size() != bi.dfg->edges().size()) {
      rep.add("BIND008", Severity::Error, at,
              strf("edge_reg table has %zu entries for %zu edges",
                   bi.edge_reg.size(), bi.dfg->edges().size()));
      sizes_ok = false;
    }
    if (static_cast<int>(bi.input_arrival.size()) != bi.dfg->num_inputs()) {
      rep.add("BIND008", Severity::Error, at,
              strf("input_arrival has %zu entries for %d primary inputs",
                   bi.input_arrival.size(), bi.dfg->num_inputs()));
      sizes_ok = false;
    }
    if (!sizes_ok) return;

    // Coverage: every node in exactly one invocation, node_inv agreeing.
    std::vector<int> covered(bi.dfg->nodes().size(), 0);
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      const Invocation& inv = bi.invs[i];
      const std::string iat = at + strf(" inv %zu", i);
      if (inv.nodes.empty()) {
        rep.add("BIND001", Severity::Error, iat,
                "invocation executes no nodes");
        continue;
      }
      bool nodes_ok = true;
      for (const int nid : inv.nodes) {
        if (nid < 0 || nid >= static_cast<int>(covered.size())) {
          rep.add("BIND001", Severity::Error, iat,
                  strf("references nonexistent node %d", nid));
          nodes_ok = false;
          continue;
        }
        covered[static_cast<std::size_t>(nid)]++;
        if (bi.node_inv[static_cast<std::size_t>(nid)] !=
            static_cast<int>(i)) {
          rep.add("BIND001", Severity::Error, iat,
                  strf("node_inv[%d] = %d disagrees with invocation list",
                       nid, bi.node_inv[static_cast<std::size_t>(nid)]));
        }
      }
      if (!nodes_ok) continue;

      if (inv.unit.kind == UnitRef::Kind::Fu) {
        check_fu_invocation(dp, bi, inv, lib, iat, rep);
      } else {
        check_child_invocation(dp, bi, inv, iat, rep);
      }
    }
    for (std::size_t nid = 0; nid < covered.size(); ++nid) {
      if (covered[nid] != 1) {
        rep.add("BIND001", Severity::Error, at,
                strf("node %zu executed by %d invocations (want exactly 1)",
                     nid, covered[nid]));
      }
    }

    // Register table: index range + every cross-invocation value stored.
    const std::set<int> internal = chain_internal_edges(bi);
    for (const Edge& e : bi.dfg->edges()) {
      const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
      const std::string eat = at + strf(" edge %d", e.id);
      if (r >= static_cast<int>(dp.regs.size())) {
        rep.add("BIND005", Severity::Error, eat,
                strf("register %d out of range (%zu registers)", r,
                     dp.regs.size()));
        continue;
      }
      const bool is_internal = internal.count(e.id) != 0;
      if (r < 0 && !is_internal) {
        rep.add("BIND006", Severity::Error, eat,
                "value crosses invocations but is bound to no register");
      }
      if (r >= 0 && is_internal) {
        rep.add("BIND004", Severity::Error, eat,
                "chain-internal value must not be registered");
      }
    }
  }

  static void check_fu_invocation(const Datapath& dp, const BehaviorImpl& bi,
                                  const Invocation& inv, const Library& lib,
                                  const std::string& at, Report& rep) {
    if (inv.unit.idx < 0 || inv.unit.idx >= static_cast<int>(dp.fus.size())) {
      rep.add("BIND002", Severity::Error, at,
              strf("functional unit %d out of range (%zu units)",
                   inv.unit.idx, dp.fus.size()));
      return;
    }
    const FuUnit& fu = dp.fus[static_cast<std::size_t>(inv.unit.idx)];
    if (fu.type < 0 || fu.type >= lib.num_fu_types()) {
      rep.add("BIND002", Severity::Error, at,
              strf("unit '%s' has library type %d out of range (%d types)",
                   fu.name.c_str(), fu.type, lib.num_fu_types()));
      return;
    }
    const FuType& t = lib.fu(fu.type);
    if (static_cast<int>(inv.nodes.size()) > t.chain_depth) {
      rep.add("BIND003", Severity::Error, at,
              strf("chain of %zu ops exceeds depth %d of unit type %s",
                   inv.nodes.size(), t.chain_depth, t.name.c_str()));
    }
    for (const int nid : inv.nodes) {
      const Node& n = bi.dfg->node(nid);
      if (n.is_hier()) {
        rep.add("BIND003", Severity::Error, at,
                strf("hierarchical node %d bound to simple unit %s", nid,
                     t.name.c_str()));
        return;
      }
      if (!t.supports(n.op)) {
        rep.add("BIND003", Severity::Error, at,
                strf("unit type %s cannot execute %s (node %d)",
                     t.name.c_str(), op_name(n.op), nid));
      }
    }
    // Chains: contiguous single-consumer dependence chains.
    for (std::size_t k = 0; k + 1 < inv.nodes.size(); ++k) {
      const int eid = bi.dfg->output_edge(inv.nodes[k], 0);
      if (eid < 0) {
        rep.add("BIND004", Severity::Error, at,
                strf("chain link %d -> %d has no connecting edge",
                     inv.nodes[k], inv.nodes[k + 1]));
        continue;
      }
      const Edge& e = bi.dfg->edge(eid);
      if (e.dsts.size() != 1 || e.dsts[0].node != inv.nodes[k + 1]) {
        rep.add("BIND004", Severity::Error, at,
                strf("chain-intermediate value of node %d escapes the chain",
                     inv.nodes[k]));
      }
    }
  }

  static void check_child_invocation(const Datapath& dp,
                                     const BehaviorImpl& bi,
                                     const Invocation& inv,
                                     const std::string& at, Report& rep) {
    if (inv.nodes.size() != 1) {
      rep.add("BIND007", Severity::Error, at,
              strf("child invocation must hold exactly 1 node, holds %zu",
                   inv.nodes.size()));
      return;
    }
    if (inv.unit.idx < 0 ||
        inv.unit.idx >= static_cast<int>(dp.children.size())) {
      rep.add("BIND002", Severity::Error, at,
              strf("child module %d out of range (%zu children)",
                   inv.unit.idx, dp.children.size()));
      return;
    }
    const Node& n = bi.dfg->node(inv.nodes[0]);
    if (!n.is_hier()) {
      rep.add("BIND003", Severity::Error, at,
              strf("operation node %d bound to child module", n.id));
      return;
    }
    const ChildUnit& cu = dp.children[static_cast<std::size_t>(inv.unit.idx)];
    if (!cu.impl) return;  // reported once at the level walk
    if (cu.impl->find_behavior(n.behavior) < 0) {
      rep.add("BIND007", Severity::Error, at,
              strf("child '%s' does not implement behavior '%s'",
                   cu.name.c_str(), n.behavior.c_str()));
    }
  }
};

// ---- sched-legality ------------------------------------------------------

/// Independent recomputation of per-invocation timing: when the unit
/// reads each external input edge (earliest and latest port offset),
/// when it produces each output edge, and how long it occupies the unit.
struct InvTiming {
  int busy = 1;
  bool ok = false;  ///< false: timing indeterminable (diagnosed elsewhere)
  std::map<int, int> in_off;   ///< external input edge -> earliest read
  std::map<int, int> in_last;  ///< external input edge -> latest read
  std::map<int, int> out_off;  ///< output edge -> production offset
};

std::vector<InvTiming> collect_timing(const Datapath& dp, int b,
                                      const Library& lib, const OpPoint& pt,
                                      const std::string& at, Report& rep) {
  const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
  const std::set<int> internal = chain_internal_edges(bi);
  std::vector<InvTiming> out(bi.invs.size());
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    const Invocation& inv = bi.invs[i];
    InvTiming& ti = out[i];
    if (inv.nodes.empty()) continue;
    if (inv.unit.kind == UnitRef::Kind::Fu) {
      if (inv.unit.idx < 0 ||
          inv.unit.idx >= static_cast<int>(dp.fus.size())) {
        continue;
      }
      const int type = dp.fus[static_cast<std::size_t>(inv.unit.idx)].type;
      if (type < 0 || type >= lib.num_fu_types()) continue;
      const int lat = lib.cycles(type, pt);
      ti.busy = lat;
      for (const int nid : inv.nodes) {
        const Node& n = bi.dfg->node(nid);
        if (n.is_hier()) continue;
        for (int p = 0; p < n.num_inputs; ++p) {
          const int e = bi.dfg->input_edge(nid, p);
          if (e < 0 || internal.count(e) != 0) continue;
          ti.in_off.emplace(e, 0);
          ti.in_last.emplace(e, 0);
        }
      }
      const int last = inv.nodes.back();
      for (int p = 0; p < bi.dfg->node(last).num_outputs; ++p) {
        const int e = bi.dfg->output_edge(last, p);
        if (e >= 0) ti.out_off.emplace(e, lat);
      }
      ti.ok = true;
    } else {
      if (inv.unit.idx < 0 ||
          inv.unit.idx >= static_cast<int>(dp.children.size())) {
        continue;
      }
      const ChildUnit& cu =
          dp.children[static_cast<std::size_t>(inv.unit.idx)];
      const Node& n = bi.dfg->node(inv.nodes.front());
      if (!cu.impl || !n.is_hier()) continue;
      const int cb = cu.impl->find_behavior(n.behavior);
      if (cb < 0) continue;
      const BehaviorImpl& cbi =
          cu.impl->behaviors[static_cast<std::size_t>(cb)];
      if (!cbi.scheduled) {
        rep.add("SCHED008", Severity::Error, at + strf(" inv %zu", i),
                strf("child '%s' behavior '%s' is not scheduled under a "
                     "scheduled parent",
                     cu.name.c_str(), n.behavior.c_str()));
        continue;
      }
      const Profile p = cu.impl->profile(cb, lib, pt);
      ti.busy = std::max(1, p.makespan());
      for (int port = 0; port < n.num_inputs; ++port) {
        const int e = bi.dfg->input_edge(inv.nodes.front(), port);
        if (e < 0 ||
            port >= static_cast<int>(p.in.size())) {
          continue;
        }
        const int off = p.in[static_cast<std::size_t>(port)];
        auto [it, fresh] = ti.in_off.emplace(e, off);
        if (!fresh) it->second = std::min(it->second, off);
        auto [it2, fresh2] = ti.in_last.emplace(e, off);
        if (!fresh2) it2->second = std::max(it2->second, off);
      }
      for (int port = 0; port < n.num_outputs; ++port) {
        const int e = bi.dfg->output_edge(inv.nodes.front(), port);
        if (e >= 0 && port < static_cast<int>(p.out.size())) {
          ti.out_off.emplace(e, p.out[static_cast<std::size_t>(port)]);
        }
      }
      ti.ok = true;
    }
  }
  return out;
}

class SchedLegalityPass final : public Pass {
 public:
  const char* name() const override { return "sched-legality"; }
  bool applicable(const CheckContext& cx) const override {
    return cx.dp != nullptr && cx.lib != nullptr;
  }
  void run(const CheckContext& cx, Report& rep) const override {
    for (const LevelRef& lv : collect_levels(*cx.dp)) {
      for (std::size_t b = 0; b < lv.dp->behaviors.size(); ++b) {
        const BehaviorImpl& bi = lv.dp->behaviors[b];
        const std::string at =
            strf("%s behavior '%s'", lv.path.c_str(), bi.behavior.c_str());
        if (!tables_usable(bi)) continue;  // rtl-binding reports these
        if (!bi.scheduled) {
          if (lv.depth == 0 && cx.deadline > 0) {
            rep.add("SCHED000", Severity::Warning, at,
                    "behavior is not scheduled; schedule checks skipped");
          }
          continue;
        }
        check_schedule(*lv.dp, static_cast<int>(b), *cx.lib, cx.pt,
                       lv.depth == 0 ? cx.deadline : 0, at, rep);
      }
    }
  }

 private:
  static void check_schedule(const Datapath& dp, int b, const Library& lib,
                             const OpPoint& pt, int deadline,
                             const std::string& at, Report& rep) {
    const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
    const Dfg& dfg = *bi.dfg;
    if (bi.inv_start.size() != bi.invs.size()) {
      rep.add("SCHED002", Severity::Error, at,
              strf("inv_start has %zu entries for %zu invocations",
                   bi.inv_start.size(), bi.invs.size()));
      return;
    }
    const std::vector<InvTiming> timing = collect_timing(dp, b, lib, pt, at, rep);

    // Ready time of an edge under the recorded schedule; -1 when the
    // producer's timing could not be established.
    auto ready = [&](int e) -> int {
      const Edge& edge = dfg.edge(e);
      if (edge.src.node == kPrimaryIn) {
        return bi.input_arrival[static_cast<std::size_t>(edge.src.port)];
      }
      const int p = inv_of_safe(bi, edge.src.node);
      if (p < 0 || !timing[static_cast<std::size_t>(p)].ok) return -1;
      const auto it = timing[static_cast<std::size_t>(p)].out_off.find(e);
      if (it == timing[static_cast<std::size_t>(p)].out_off.end()) return -1;
      return bi.inv_start[static_cast<std::size_t>(p)] + it->second;
    };

    // SCHED002: start cycles in range.
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      if (bi.inv_start[i] < 0) {
        rep.add("SCHED002", Severity::Error, at + strf(" inv %zu", i),
                strf("starts at negative cycle %d", bi.inv_start[i]));
      }
    }

    // SCHED001: every operand produced before (or at) its read.
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      const InvTiming& ti = timing[i];
      if (!ti.ok) continue;
      for (const auto& [e, off] : ti.in_off) {
        const int r = ready(e);
        if (r < 0) continue;
        const int read_at = bi.inv_start[i] + off;
        if (read_at < r) {
          rep.add("SCHED001", Severity::Error, at + strf(" inv %zu", i),
                  strf("reads edge %d at cycle %d but it is produced at "
                       "cycle %d (precedence violated)",
                       e, read_at, r));
        }
      }
    }

    // SCHED003: shared units never double-booked.
    std::map<std::pair<int, int>, std::vector<std::size_t>> by_unit;
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      const UnitRef& u = bi.invs[i].unit;
      by_unit[{static_cast<int>(u.kind), u.idx}].push_back(i);
    }
    for (const auto& [key, list] : by_unit) {
      if (list.size() < 2) continue;
      bool pipelined = false;
      if (key.first == static_cast<int>(UnitRef::Kind::Fu) &&
          key.second >= 0 && key.second < static_cast<int>(dp.fus.size())) {
        const int type = dp.fus[static_cast<std::size_t>(key.second)].type;
        if (type >= 0 && type < lib.num_fu_types()) {
          pipelined = lib.fu(type).pipelined;
        }
      }
      std::vector<std::size_t> order = list;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
        if (bi.inv_start[a] != bi.inv_start[c]) {
          return bi.inv_start[a] < bi.inv_start[c];
        }
        return a < c;
      });
      for (std::size_t k = 0; k + 1 < order.size(); ++k) {
        const std::size_t a = order[k];
        const std::size_t c = order[k + 1];
        if (!timing[a].ok) continue;
        const int gap_needed = pipelined ? 1 : timing[a].busy;
        if (bi.inv_start[c] < bi.inv_start[a] + gap_needed) {
          rep.add("SCHED003", Severity::Error, at,
                  strf("invocations %zu and %zu double-book %s %d "
                       "(starts %d and %d, %s window %d)",
                       a, c,
                       key.first == static_cast<int>(UnitRef::Kind::Fu)
                           ? "fu"
                           : "child",
                       key.second, bi.inv_start[a], bi.inv_start[c],
                       pipelined ? "pipelined initiation" : "busy",
                       gap_needed));
        }
      }
    }

    // Register lifetimes: writes strictly ordered, every read of a value
    // strictly before the next value's write into the same register.
    check_register_lifetimes(dp, b, timing, at, rep);

    // SCHED006: the recorded makespan matches the primary-output ready
    // times; SCHED007: the throughput constraint holds.
    int recomputed = 0;
    bool complete = true;
    for (int o = 0; o < dfg.num_outputs(); ++o) {
      const int e = dfg.primary_output_edge(o);
      if (e < 0) {
        complete = false;
        continue;
      }
      const int r = ready(e);
      if (r < 0) {
        complete = false;
        continue;
      }
      recomputed = std::max(recomputed, r);
    }
    if (complete && recomputed != bi.makespan) {
      rep.add("SCHED006", Severity::Error, at,
              strf("recorded makespan %d but primary outputs complete at "
                   "cycle %d",
                   bi.makespan, recomputed));
    }
    if (deadline > 0 && bi.makespan > deadline) {
      rep.add("SCHED007", Severity::Error, at,
              strf("makespan %d exceeds the sampling-period deadline of %d "
                   "cycles (throughput constraint violated)",
                   bi.makespan, deadline));
    }
  }

  static void check_register_lifetimes(const Datapath& dp, int b,
                                       const std::vector<InvTiming>& timing,
                                       const std::string& at, Report& rep) {
    const BehaviorImpl& bi = dp.behaviors[static_cast<std::size_t>(b)];
    const Dfg& dfg = *bi.dfg;

    struct Var {
      int edge = -1;
      int write = 0;                 ///< cycle the value lands in the register
      std::vector<int> reads;        ///< absolute read cycles
      bool primary_out = false;
    };
    std::map<int, std::vector<Var>> by_reg;
    for (const Edge& e : dfg.edges()) {
      const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
      if (r < 0 || r >= static_cast<int>(dp.regs.size())) continue;
      Var v;
      v.edge = e.id;
      if (e.src.node == kPrimaryIn) {
        v.write = bi.input_arrival[static_cast<std::size_t>(e.src.port)];
      } else {
        const int p = inv_of_safe(bi, e.src.node);
        if (p < 0 || !timing[static_cast<std::size_t>(p)].ok) continue;
        const auto it = timing[static_cast<std::size_t>(p)].out_off.find(e.id);
        if (it == timing[static_cast<std::size_t>(p)].out_off.end()) continue;
        v.write = bi.inv_start[static_cast<std::size_t>(p)] + it->second;
      }
      for (const PortRef& d : e.dsts) {
        if (d.node == kPrimaryOut) {
          v.primary_out = true;
          v.reads.push_back(bi.makespan);  // live until the sample ends
          continue;
        }
        const int c = inv_of_safe(bi, d.node);
        if (c < 0 || !timing[static_cast<std::size_t>(c)].ok) continue;
        const auto it = timing[static_cast<std::size_t>(c)].in_last.find(e.id);
        const int off =
            it == timing[static_cast<std::size_t>(c)].in_last.end() ? 0
                                                                    : it->second;
        v.reads.push_back(bi.inv_start[static_cast<std::size_t>(c)] + off);
      }
      by_reg[r].push_back(v);
    }

    for (const auto& [r, vars] : by_reg) {
      if (vars.size() < 2) continue;
      int n_po = 0;
      for (const Var& v : vars) n_po += v.primary_out ? 1 : 0;
      if (n_po > 1) {
        rep.add("SCHED005", Severity::Error, at,
                strf("register r%d holds %d primary-output variables", r,
                     n_po));
      }
      std::vector<const Var*> order;
      order.reserve(vars.size());
      for (const Var& v : vars) order.push_back(&v);
      std::sort(order.begin(), order.end(), [](const Var* a, const Var* c) {
        if (a->write != c->write) return a->write < c->write;
        return a->edge < c->edge;
      });
      for (std::size_t k = 0; k + 1 < order.size(); ++k) {
        const Var& a = *order[k];
        const Var& nxt = *order[k + 1];
        if (a.write == nxt.write) {
          rep.add("SCHED004", Severity::Error, at,
                  strf("register r%d written by edges %d and %d in the same "
                       "cycle %d",
                       r, a.edge, nxt.edge, a.write));
          continue;
        }
        // Every read of every earlier value must precede this write.
        for (std::size_t j = 0; j <= k; ++j) {
          const Var& v = *order[j];
          for (const int t : v.reads) {
            if (t >= nxt.write) {
              rep.add("SCHED004", Severity::Error, at,
                      strf("register r%d: edge %d overwrites edge %d at "
                           "cycle %d while it is still read at cycle %d "
                           "(lifetimes overlap)",
                           r, nxt.edge, v.edge, nxt.write, t));
            }
          }
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_rtl_binding_pass() {
  return std::make_unique<RtlBindingPass>();
}
std::unique_ptr<Pass> make_sched_legality_pass() {
  return std::make_unique<SchedLegalityPass>();
}

}  // namespace hsyn::lint
