// Forward abstract-interpretation dataflow framework over DFGs.
//
// One topological sweep computes, per edge, a product of three value
// domains plus liveness:
//   * known-bits: masks of bits provably 0 / provably 1 in the 16-bit
//     datapath word, pushed through add/sub/mult/shift/logic transfer
//     functions (three-valued carry simulation for the adders);
//   * value range: a signed interval within [-32768, 32767];
//   * constant: derived, an edge is constant when all 16 bits are known;
//   * liveness: whether the value can influence any primary output
//     (one backward sweep; hierarchical nodes consult the child's
//     per-input liveness so a dead child input does not keep its
//     driver alive).
// DFGs are acyclic, so no fixpoint iteration is needed: every fact is
// exact after one pass of its direction.
//
// The transfer functions mirror power/trace.h's eval_op bit-for-bit
// (16-bit two's-complement wraparound, `b & 15` shift amounts,
// arithmetic right shift, Cmp producing 0/1) -- the soundness contract
// is that for every input assignment the concrete edge value lies in
// the abstract fact. tests/test_dataflow.cpp cross-checks this against
// the replay evaluator on random DFGs.
//
// Hierarchical nodes are handled interprocedurally: the child behavior
// is analyzed once with unconstrained inputs and its output facts are
// substituted at the call site (a sound context-free summary, shared
// through the cache between all call sites).
//
// Results are cached in the process-wide evaluation engine
// (eval/engine.h) under Dfg::content_hash -- the eval-cache style --
// so warm re-analysis of an unchanged graph is a lookup. The four
// dataflow lint passes (passes_dataflow.cpp) and the equivalence
// checker (equiv.h) therefore share one analysis per structural
// novelty.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "power/trace.h"

namespace hsyn::lint {

/// Bits of the 16-bit datapath word proved 0 / proved 1. A bit set in
/// neither mask is unknown; the masks are disjoint by construction.
struct KnownBits {
  std::uint16_t zeros = 0;
  std::uint16_t ones = 0;

  /// Mask of bits whose value is decided either way.
  std::uint16_t known() const { return static_cast<std::uint16_t>(zeros | ones); }
  bool all_known() const { return known() == 0xFFFFu; }
  int num_known() const { return std::popcount(known()); }

  /// The fully-known word for a constant value (sign handled by mask16).
  static KnownBits constant(std::int32_t v) {
    const auto u = static_cast<std::uint16_t>(v & 0xFFFF);
    return {static_cast<std::uint16_t>(~u), u};
  }
  /// Nothing known.
  static KnownBits top() { return {}; }

  friend bool operator==(const KnownBits&, const KnownBits&) = default;
};

/// Inclusive signed interval within the 16-bit value space.
struct ValueRange {
  std::int32_t lo = -32768;
  std::int32_t hi = 32767;

  bool is_full() const { return lo == -32768 && hi == 32767; }
  bool is_constant() const { return lo == hi; }
  bool contains(std::int32_t v) const { return lo <= v && v <= hi; }
  /// Inclusive width; 1 for a constant.
  std::int64_t width() const {
    return static_cast<std::int64_t>(hi) - lo + 1;
  }

  friend bool operator==(const ValueRange&, const ValueRange&) = default;
};

/// Everything the analysis proved about one edge (value / variable).
struct EdgeFact {
  KnownBits bits;
  ValueRange range;
  bool live = false;  ///< can influence a primary output

  /// Constant iff every bit is decided (the range then collapses too).
  bool is_constant() const { return bits.all_known(); }
  /// The constant value; meaningful only when is_constant().
  std::int32_t constant() const { return mask16(bits.ones); }
};

/// Immutable analysis result for one DFG, indexed by edge / node /
/// primary-input id. Shared via the eval cache; treat as read-only.
struct DataflowFacts {
  std::uint64_t dfg_hash = 0;          ///< Dfg::content_hash at analysis time
  std::vector<EdgeFact> edges;         ///< [edge id]
  std::vector<char> node_live;         ///< [node id] feeds a primary output
  std::vector<char> input_live;        ///< [primary input] reaches an output
  /// True when some hierarchical child could not be resolved (facts for
  /// its outputs degraded to unconstrained -- still sound).
  bool incomplete = false;

  /// Approximate heap footprint, for the eval-cache byte budget.
  std::size_t bytes() const {
    return sizeof(DataflowFacts) + edges.capacity() * sizeof(EdgeFact) +
           node_live.capacity() + input_live.capacity();
  }
};

/// Analyze `dfg` (must be validated) with unconstrained primary inputs.
/// `res` resolves hierarchical behaviors; null degrades hier outputs to
/// unconstrained facts. Cached under (content_hash, resolver identity)
/// in the eval engine; the returned facts are shared and immutable.
std::shared_ptr<const DataflowFacts> analyze_dfg(
    const Dfg& dfg, const BehaviorResolver& res = nullptr);

/// Like analyze_dfg, but the primary-input facts are seeded from the
/// samples of `trace` (per-input range, bits common to every sample,
/// constants for constant channels). The facts then bound every value
/// the DFG can take *over that stimulus* -- the form the equivalence
/// checker uses to disprove equivalence on concrete workloads, and the
/// only way constants enter an IR whose literals are primary inputs.
/// Cached under (content_hash, trace_fingerprint, resolver identity).
std::shared_ptr<const DataflowFacts> analyze_dfg(const Dfg& dfg,
                                                 const BehaviorResolver& res,
                                                 const Trace& trace);

/// Uncached single-shot analysis (tests and HSYN_EVAL_VERIFY recompute).
/// Null `trace` means unconstrained inputs.
DataflowFacts analyze_dfg_scratch(const Dfg& dfg, const BehaviorResolver& res,
                                  const Trace* trace = nullptr);

}  // namespace hsyn::lint
