#include "check/equiv.h"

#include "check/dataflow.h"
#include "runtime/stats.h"
#include "util/fmt.h"

namespace hsyn::lint {
namespace {

/// Deterministic fallback stimulus when the caller has no trace (e.g. a
/// child unit the schedule never invokes).
constexpr int kFallbackSamples = 64;
constexpr std::uint64_t kFallbackSeed = 0x5EEDFACE5EEDFACEull;

/// A provable disagreement between two facts for the same output, or
/// empty. Both facts over-approximate the feasible value set of their
/// graph's output over the same stimulus, so empty intersection means
/// the concrete outputs differ everywhere.
std::string facts_conflict(const EdgeFact& fa, const EdgeFact& fb) {
  if (fa.is_constant() && fb.is_constant() && fa.constant() != fb.constant()) {
    return strf("constant %d vs %d", fa.constant(), fb.constant());
  }
  if (fa.range.lo > fb.range.hi || fb.range.lo > fa.range.hi) {
    return strf("disjoint ranges [%d, %d] vs [%d, %d]", fa.range.lo,
                fa.range.hi, fb.range.lo, fb.range.hi);
  }
  const auto clash = static_cast<std::uint16_t>(
      (fa.bits.ones & fb.bits.zeros) | (fa.bits.zeros & fb.bits.ones));
  if (clash != 0) {
    return strf("known bits conflict (mask 0x%04x)", clash);
  }
  return {};
}

}  // namespace

EquivResult verify_equivalent(const Dfg& a, const Dfg& b, const Trace& trace,
                              const BehaviorResolver& res_a,
                              const BehaviorResolver& res_b) {
  runtime::ScopedPhase phase("verify-equivalent");
  check(a.validated() && b.validated(),
        "verify_equivalent requires validated DFGs");
  EquivResult r;

  // Interface agreement is a precondition for everything below.
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    r.method = "io-signature";
    r.detail = strf("%d-in/%d-out vs %d-in/%d-out", a.num_inputs(),
                    a.num_outputs(), b.num_inputs(), b.num_outputs());
    return r;
  }

  // Stage 1: same canonical DAG -- the rewrite only renumbered nodes.
  if (a.canonical_hash() == b.canonical_hash()) {
    r.equivalent = true;
    r.method = "canonical-hash";
    r.detail = "graphs are identical up to renumbering";
    return r;
  }

  Trace generated;
  const Trace* use = &trace;
  if (trace.empty()) {
    generated = make_trace(a.num_inputs(), kFallbackSamples, kFallbackSeed);
    use = &generated;
  }

  // Stage 2: trace-seeded dataflow facts must agree on every output.
  const auto fa = analyze_dfg(a, res_a, *use);
  const auto fb = analyze_dfg(b, res_b, *use);
  for (int o = 0; o < a.num_outputs(); ++o) {
    const int ea = a.primary_output_edge(o);
    const int eb = b.primary_output_edge(o);
    if (ea < 0 || eb < 0) continue;  // DFG004's finding, not ours
    const std::string conflict =
        facts_conflict(fa->edges[static_cast<std::size_t>(ea)],
                       fb->edges[static_cast<std::size_t>(eb)]);
    if (!conflict.empty()) {
      r.method = "dataflow-facts";
      r.detail = strf("output %d: %s", o, conflict.c_str());
      return r;
    }
  }

  // Stage 3: bitwise differential replay over the stimulus.
  const std::vector<Sample> oa = eval_dfg(a, res_a, *use);
  const std::vector<Sample> ob = eval_dfg(b, res_b, *use);
  r.method = "differential-replay";
  for (std::size_t t = 0; t < oa.size(); ++t) {
    for (std::size_t o = 0; o < oa[t].size(); ++o) {
      if (oa[t][o] != ob[t][o]) {
        r.detail = strf("output %zu differs at sample %zu: %d vs %d", o, t,
                        oa[t][o], ob[t][o]);
        return r;
      }
    }
  }
  r.equivalent = true;
  r.detail = strf("%zu samples x %d outputs bit-identical",
                  oa.size(), a.num_outputs());
  return r;
}

}  // namespace hsyn::lint
