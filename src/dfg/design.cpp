#include "dfg/design.h"

#include <functional>
#include <set>

#include "util/fmt.h"

namespace hsyn {

void Design::add_behavior(Dfg dfg) {
  if (!dfg.validated()) dfg.validate();
  const std::string name = dfg.name();
  check(!name.empty(), "behavior must be named");
  check(behaviors_.count(name) == 0, "duplicate behavior " + name);
  behaviors_.emplace(name, std::move(dfg));
  order_.push_back(name);
  eq_parent_[name] = name;
}

namespace {
std::string find_root(std::map<std::string, std::string>& parent, std::string x) {
  while (parent.at(x) != x) {
    parent[x] = parent.at(parent.at(x));
    x = parent.at(x);
  }
  return x;
}
}  // namespace

void Design::declare_equivalent(const std::string& a, const std::string& b) {
  check(has_behavior(a) && has_behavior(b), "equivalence on unknown behavior");
  const Dfg& da = behavior(a);
  const Dfg& db = behavior(b);
  check(da.num_inputs() == db.num_inputs() && da.num_outputs() == db.num_outputs(),
        strf("equivalent behaviors %s/%s must share I/O signature", a.c_str(),
             b.c_str()));
  const std::string ra = find_root(eq_parent_, a);
  const std::string rb = find_root(eq_parent_, b);
  if (ra != rb) eq_parent_[ra] = rb;
}

const Dfg& Design::behavior(const std::string& name) const {
  auto it = behaviors_.find(name);
  check(it != behaviors_.end(), "unknown behavior " + name);
  return it->second;
}

Dfg& Design::behavior_mut(const std::string& name) {
  auto it = behaviors_.find(name);
  check(it != behaviors_.end(), "unknown behavior " + name);
  return it->second;
}

std::vector<std::string> Design::equivalents(const std::string& name) const {
  check(has_behavior(name), "unknown behavior " + name);
  auto parent = eq_parent_;  // copy: find_root path-compresses
  const std::string root = find_root(parent, name);
  std::vector<std::string> out;
  for (const std::string& b : order_) {
    if (find_root(parent, b) == root) out.push_back(b);
  }
  return out;
}

void Design::validate() const {
  check(!top_.empty() && has_behavior(top_), "design top not set/registered");
  // Port-count agreement and existence.
  for (const auto& [name, dfg] : behaviors_) {
    for (const Node& n : dfg.nodes()) {
      if (!n.is_hier()) continue;
      check(has_behavior(n.behavior),
            strf("behavior %s references unknown child %s", name.c_str(),
                 n.behavior.c_str()));
      const Dfg& child = behavior(n.behavior);
      check(child.num_inputs() == n.num_inputs &&
                child.num_outputs() == n.num_outputs,
            strf("behavior %s node %d: port mismatch with child %s", name.c_str(),
                 n.id, n.behavior.c_str()));
    }
  }
  // Non-recursive hierarchy: DFS with on-stack detection.
  std::set<std::string> done;
  std::set<std::string> on_stack;
  std::function<void(const std::string&)> dfs = [&](const std::string& name) {
    if (done.count(name)) return;
    check(on_stack.insert(name).second, "recursive hierarchy at " + name);
    for (const Node& n : behavior(name).nodes()) {
      if (n.is_hier()) dfs(n.behavior);
    }
    on_stack.erase(name);
    done.insert(name);
  };
  for (const std::string& b : order_) dfs(b);
}

int Design::flattened_size(const std::string& name) const {
  const Dfg& dfg = behavior(name);
  int total = 0;
  for (const Node& n : dfg.nodes()) {
    total += n.is_hier() ? flattened_size(n.behavior) : 1;
  }
  return total;
}

int Design::depth(const std::string& name) const {
  const Dfg& dfg = behavior(name);
  int d = 0;
  for (const Node& n : dfg.nodes()) {
    if (n.is_hier()) d = std::max(d, 1 + depth(n.behavior));
  }
  return d;
}

}  // namespace hsyn
