// Hierarchical data flow graph (DFG) intermediate representation.
//
// This is the behavioral input of H-SYN (paper Section 2, Fig. 1(a)).
// A DFG has primary inputs/outputs, operation nodes (add, mult, ...) and
// *hierarchical* nodes that reference another behavior by name. Edges are
// single-producer, multi-consumer values ("variables" in the paper, each
// eventually bound to a register). Edges entering/exiting hierarchical
// nodes carry port numbers that identify the corresponding primary
// input/output of the child behavior, mirroring the paper's edge
// annotations in Fig. 1(a).
//
// Loop-carried state (the feedback edges of IIR/lattice filters) is
// modeled as a (state-in primary input, state-out primary output) pair for
// one iteration of the behavior, the standard per-sample formulation used
// by the HYPER-era benchmarks the paper evaluates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsyn {

/// Operation kinds supported by simple functional units.
enum class Op {
  Add,
  Sub,
  Mult,
  ShiftL,
  ShiftR,
  Cmp,   // less-than comparison, produces 0/1
  And,
  Or,
  Xor,
  Neg,
  Hier,  // hierarchical node: executes a named child behavior
};

/// Human-readable name of an operation kind ("add", "mult", ...).
const char* op_name(Op op);

/// Number of data inputs an operation consumes (2 except Neg). For Hier
/// nodes the count is carried by the node itself.
int op_arity(Op op);

/// True when swapping the two operands never changes the result
/// (add/mult/and/or/xor). Sub, the shifts and Cmp are order-sensitive;
/// unary and hierarchical nodes have no operand pair to swap.
bool op_commutative(Op op);

/// Marker node ids used in PortRef: an edge source/sink can be a primary
/// input/output of the DFG rather than a node terminal.
inline constexpr int kPrimaryIn = -1;
inline constexpr int kPrimaryOut = -2;

/// A terminal reference: (node id, port index), or a primary input/output
/// when node is kPrimaryIn / kPrimaryOut (port then indexes the primary).
struct PortRef {
  int node = kPrimaryIn;
  int port = 0;

  friend bool operator==(const PortRef&, const PortRef&) = default;
};

/// One node of a DFG.
struct Node {
  int id = -1;
  Op op = Op::Add;
  std::string behavior;  ///< child behavior name, only for Op::Hier
  std::string label;     ///< optional display label, e.g. "+1", "*2"
  int num_inputs = 2;
  int num_outputs = 1;

  [[nodiscard]] bool is_hier() const { return op == Op::Hier; }
};

/// One edge (value / variable). Single producer, many consumers.
struct Edge {
  int id = -1;
  PortRef src;                 ///< producer terminal or primary input
  std::vector<PortRef> dsts;   ///< consumer terminals and/or primary outputs
  std::string label;           ///< optional variable name (paper Fig. 3)
};

/// A single data flow graph. Construct with add_node / add_hier_node /
/// connect, then call validate() once before use.
class Dfg {
 public:
  Dfg() = default;
  explicit Dfg(std::string name, int num_inputs = 0, int num_outputs = 0)
      : name_(std::move(name)), num_inputs_(num_inputs), num_outputs_(num_outputs) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }
  void set_io(int ins, int outs) { num_inputs_ = ins; num_outputs_ = outs; }

  /// Add an operation node; returns its id.
  int add_node(Op op, std::string label = {});

  /// Add a hierarchical node referencing `behavior` with the given port
  /// counts; returns its id.
  int add_hier_node(std::string behavior, int num_inputs, int num_outputs,
                    std::string label = {});

  /// Create an edge from `src` to each terminal in `dsts`; returns edge id.
  int connect(PortRef src, std::vector<PortRef> dsts, std::string label = {});

  /// Append another consumer to an existing edge.
  void add_consumer(int edge_id, PortRef dst);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const Node& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  const Edge& edge(int id) const { return edges_.at(static_cast<std::size_t>(id)); }
  Node& node_mut(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
  Edge& edge_mut(int id) { return edges_.at(static_cast<std::size_t>(id)); }

  /// Edge feeding input port `port` of node `node_id` (-1 if unconnected).
  int input_edge(int node_id, int port) const;

  /// Edge produced at output port `port` of node `node_id` (-1 if none).
  int output_edge(int node_id, int port) const;

  /// Edge attached to primary input `idx` (-1 if none).
  int primary_input_edge(int idx) const;

  /// Edge feeding primary output `idx` (-1 if none).
  int primary_output_edge(int idx) const;

  /// All input edge ids of a node, in port order (-1 for unconnected ports).
  std::vector<int> node_input_edges(int node_id) const;

  /// All output edge ids of a node, in port order (-1 for missing ports).
  std::vector<int> node_output_edges(int node_id) const;

  /// Topological order of node ids. Requires validate() to have passed.
  const std::vector<int>& topo_order() const { return topo_; }

  /// True if any node is hierarchical.
  bool has_hierarchy() const;

  /// Count of operation (non-hierarchical) nodes.
  int num_operation_nodes() const;

  /// Rebuild lookup tables and check structural invariants:
  /// every node input port driven by exactly one edge, port indices in
  /// range, graph acyclic. Throws std::logic_error on violation.
  void validate();

  /// True when validate() succeeded since the last mutation.
  bool validated() const { return validated_; }

  /// Structural content hash over ops, hier behavior names, arities and the
  /// id-indexed edge structure. Two DFGs with equal node/edge tables (ids
  /// included, labels and name excluded) hash equal; any structural mutation
  /// changes the hash. Computed once by validate() and cached -- mutators
  /// invalidate, so a validated DFG's hash is always current. This is the
  /// identity used by evaluation caches, where node/edge *indices* matter
  /// (bindings and edge-value tables are id-addressed).
  std::uint64_t content_hash() const;

  /// Canonical DAG hash: invariant under node/edge renumbering and
  /// construction order. Two DFGs describing the same graph -- however their
  /// nodes were added -- hash equal; any structural change (op, wiring,
  /// arity, hier behavior) changes the hash. Computed once by validate().
  std::uint64_t canonical_hash() const;

 private:
  void invalidate() { validated_ = false; }
  void build_tables();
  void compute_topo();
  void compute_hashes();

  std::string name_;
  int num_inputs_ = 0;
  int num_outputs_ = 0;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;

  // Lookup tables, built by validate().
  bool validated_ = false;
  std::vector<std::vector<int>> node_in_;   // [node][port] -> edge id
  std::vector<std::vector<int>> node_out_;  // [node][port] -> edge id
  std::vector<int> pin_edge_;               // [primary input] -> edge id
  std::vector<int> pout_edge_;              // [primary output] -> edge id
  std::vector<int> topo_;
  std::uint64_t content_hash_ = 0;
  std::uint64_t canonical_hash_ = 0;
};

}  // namespace hsyn
