// Textual reader/writer for hierarchical DFG designs.
//
// The paper's H-SYN "reads in a textual description of the hierarchical
// DFG"; this module provides an equivalent round-trippable format:
//
//   # comment
//   dfg NAME inputs N outputs M
//     node ID OP [label=TOKEN]
//     hier ID BEHAVIOR INS OUTS [label=TOKEN]
//     edge SRC -> DST [DST ...] [label=TOKEN]
//   end
//   ...
//   equiv A B
//   top NAME
//
// where SRC is `in:K` or `NODE.PORT` and DST is `out:K` or `NODE.PORT`.
#pragma once

#include <iosfwd>
#include <string>

#include "dfg/design.h"

namespace hsyn {

/// Serialize a whole design (all behaviors, equivalences, top marker).
std::string design_to_text(const Design& design);

/// Parse a design from text. Throws std::logic_error with a line-numbered
/// message on malformed input. The returned design is validated.
Design design_from_text(const std::string& text);

}  // namespace hsyn
