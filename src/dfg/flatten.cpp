#include "dfg/flatten.h"

#include <functional>
#include <map>

#include "util/fmt.h"

namespace hsyn {
namespace {

/// Recursive inliner. `input_edges[i]` is the edge id in `out` that feeds
/// primary input i of the behavior being inlined; returns the edge ids in
/// `out` corresponding to the behavior's primary outputs.
std::vector<int> inline_behavior(const Design& design, const std::string& name,
                                 const std::vector<int>& input_edges,
                                 const std::string& prefix, Dfg& out) {
  const Dfg& src = design.behavior(name);
  check(static_cast<int>(input_edges.size()) == src.num_inputs(),
        "inline_behavior: input arity mismatch for " + name);

  // Edge id in `src` -> edge id in `out`. Primary-input edges of `src`
  // map onto the provided input edges.
  std::map<int, int> edge_map;
  for (int i = 0; i < src.num_inputs(); ++i) {
    const int eid = src.primary_input_edge(i);
    if (eid >= 0) edge_map[eid] = input_edges[static_cast<std::size_t>(i)];
  }

  // Process nodes in topological order; each non-hier node is copied,
  // each hier node recursively inlined. Output edges of each node are
  // created in `out` as they are produced.
  for (const int nid : src.topo_order()) {
    const Node& n = src.node(nid);
    std::vector<int> ins;
    ins.reserve(static_cast<std::size_t>(n.num_inputs));
    for (int p = 0; p < n.num_inputs; ++p) {
      const int se = src.input_edge(nid, p);
      check(edge_map.count(se) != 0, "inline_behavior: dangling input edge");
      ins.push_back(edge_map.at(se));
    }
    std::vector<int> outs;
    if (n.is_hier()) {
      outs = inline_behavior(design, n.behavior, ins,
                             prefix + (n.label.empty() ? n.behavior : n.label) + "/",
                             out);
    } else {
      const int new_id = out.add_node(n.op, prefix + (n.label.empty()
                                                          ? op_name(n.op)
                                                          : n.label));
      for (int p = 0; p < n.num_inputs; ++p) {
        out.add_consumer(ins[static_cast<std::size_t>(p)], PortRef{new_id, p});
      }
      for (int p = 0; p < n.num_outputs; ++p) {
        outs.push_back(out.connect(PortRef{new_id, p}, {}));
      }
    }
    // Record produced edges under the source edge ids.
    for (int p = 0; p < n.num_outputs; ++p) {
      const int se = src.output_edge(nid, p);
      if (se >= 0) edge_map[se] = outs[static_cast<std::size_t>(p)];
    }
  }

  std::vector<int> result;
  result.reserve(static_cast<std::size_t>(src.num_outputs()));
  for (int o = 0; o < src.num_outputs(); ++o) {
    const int se = src.primary_output_edge(o);
    check(edge_map.count(se) != 0, "inline_behavior: unproduced primary output");
    result.push_back(edge_map.at(se));
  }
  return result;
}

}  // namespace

Dfg flatten(const Design& design, const std::string& name) {
  const Dfg& src = design.behavior(name);
  Dfg out(src.name() + "_flat", src.num_inputs(), src.num_outputs());

  std::vector<int> input_edges;
  input_edges.reserve(static_cast<std::size_t>(src.num_inputs()));
  for (int i = 0; i < src.num_inputs(); ++i) {
    input_edges.push_back(out.connect(PortRef{kPrimaryIn, i}, {}));
  }
  const std::vector<int> outs = inline_behavior(design, name, input_edges, "", out);
  for (int o = 0; o < src.num_outputs(); ++o) {
    out.add_consumer(outs[static_cast<std::size_t>(o)], PortRef{kPrimaryOut, o});
  }
  out.validate();
  return out;
}

}  // namespace hsyn
