#include "dfg/textio.h"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/fmt.h"

namespace hsyn {
namespace {

Op op_from_name(const std::string& s, int line) {
  static const std::map<std::string, Op> table = {
      {"add", Op::Add}, {"sub", Op::Sub},   {"mult", Op::Mult}, {"shl", Op::ShiftL},
      {"shr", Op::ShiftR}, {"cmp", Op::Cmp}, {"and", Op::And},  {"or", Op::Or},
      {"xor", Op::Xor}, {"neg", Op::Neg}};
  auto it = table.find(s);
  check(it != table.end(), strf("line %d: unknown op '%s'", line, s.c_str()));
  return it->second;
}

std::string ref_to_text(const PortRef& r, bool is_src) {
  if (r.node == kPrimaryIn) return strf("in:%d", r.port);
  if (r.node == kPrimaryOut) return strf("out:%d", r.port);
  (void)is_src;
  return strf("%d.%d", r.node, r.port);
}

PortRef ref_from_text(const std::string& s, int line) {
  PortRef r;
  if (s.rfind("in:", 0) == 0) {
    r.node = kPrimaryIn;
    r.port = std::stoi(s.substr(3));
    return r;
  }
  if (s.rfind("out:", 0) == 0) {
    r.node = kPrimaryOut;
    r.port = std::stoi(s.substr(4));
    return r;
  }
  const auto dot = s.find('.');
  check(dot != std::string::npos, strf("line %d: bad port ref '%s'", line, s.c_str()));
  r.node = std::stoi(s.substr(0, dot));
  r.port = std::stoi(s.substr(dot + 1));
  return r;
}

// Extract an optional trailing `label=TOKEN` from a token list.
std::string take_label(std::vector<std::string>& toks) {
  if (!toks.empty() && toks.back().rfind("label=", 0) == 0) {
    std::string l = toks.back().substr(6);
    toks.pop_back();
    return l;
  }
  return {};
}

}  // namespace

std::string design_to_text(const Design& design) {
  std::ostringstream out;
  out << "# hsyn hierarchical DFG design\n";
  for (const std::string& name : design.behavior_names()) {
    const Dfg& d = design.behavior(name);
    out << strf("dfg %s inputs %d outputs %d\n", name.c_str(), d.num_inputs(),
                d.num_outputs());
    for (const Node& n : d.nodes()) {
      if (n.is_hier()) {
        out << strf("  hier %d %s %d %d", n.id, n.behavior.c_str(), n.num_inputs,
                    n.num_outputs);
      } else {
        out << strf("  node %d %s", n.id, op_name(n.op));
      }
      if (!n.label.empty()) out << " label=" << n.label;
      out << "\n";
    }
    for (const Edge& e : d.edges()) {
      out << "  edge " << ref_to_text(e.src, true) << " ->";
      for (const PortRef& dst : e.dsts) out << ' ' << ref_to_text(dst, false);
      if (!e.label.empty()) out << " label=" << e.label;
      out << "\n";
    }
    out << "end\n";
  }
  // Equivalence classes: emit pairwise declarations against the class head.
  std::set<std::string> emitted;
  for (const std::string& name : design.behavior_names()) {
    if (emitted.count(name)) continue;
    const auto eq = design.equivalents(name);
    for (const std::string& other : eq) emitted.insert(other);
    for (std::size_t i = 1; i < eq.size(); ++i) {
      out << strf("equiv %s %s\n", eq[0].c_str(), eq[i].c_str());
    }
  }
  if (!design.top_name().empty()) out << "top " << design.top_name() << "\n";
  return out.str();
}

Design design_from_text(const std::string& text) {
  Design design;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  Dfg cur;
  bool in_dfg = false;
  int expected_next_node = 0;

  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> toks;
    for (std::string t; ls >> t;) toks.push_back(t);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];

    if (kw == "dfg") {
      check(!in_dfg, strf("line %d: nested dfg", lineno));
      check(toks.size() == 6 && toks[2] == "inputs" && toks[4] == "outputs",
            strf("line %d: expected 'dfg NAME inputs N outputs M'", lineno));
      cur = Dfg(toks[1], std::stoi(toks[3]), std::stoi(toks[5]));
      in_dfg = true;
      expected_next_node = 0;
    } else if (kw == "node") {
      check(in_dfg, strf("line %d: node outside dfg", lineno));
      std::string label = take_label(toks);
      check(toks.size() == 3, strf("line %d: expected 'node ID OP'", lineno));
      check(std::stoi(toks[1]) == expected_next_node,
            strf("line %d: node ids must be dense and ordered", lineno));
      cur.add_node(op_from_name(toks[2], lineno), std::move(label));
      ++expected_next_node;
    } else if (kw == "hier") {
      check(in_dfg, strf("line %d: hier outside dfg", lineno));
      std::string label = take_label(toks);
      check(toks.size() == 5, strf("line %d: expected 'hier ID BEHAVIOR INS OUTS'",
                                   lineno));
      check(std::stoi(toks[1]) == expected_next_node,
            strf("line %d: node ids must be dense and ordered", lineno));
      cur.add_hier_node(toks[2], std::stoi(toks[3]), std::stoi(toks[4]),
                        std::move(label));
      ++expected_next_node;
    } else if (kw == "edge") {
      check(in_dfg, strf("line %d: edge outside dfg", lineno));
      std::string label = take_label(toks);
      check(toks.size() >= 4 && toks[2] == "->",
            strf("line %d: expected 'edge SRC -> DST...'", lineno));
      const PortRef src = ref_from_text(toks[1], lineno);
      std::vector<PortRef> dsts;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        dsts.push_back(ref_from_text(toks[i], lineno));
      }
      cur.connect(src, std::move(dsts), std::move(label));
    } else if (kw == "end") {
      check(in_dfg, strf("line %d: stray end", lineno));
      design.add_behavior(std::move(cur));
      cur = Dfg();
      in_dfg = false;
    } else if (kw == "equiv") {
      check(toks.size() == 3, strf("line %d: expected 'equiv A B'", lineno));
      design.declare_equivalent(toks[1], toks[2]);
    } else if (kw == "top") {
      check(toks.size() == 2, strf("line %d: expected 'top NAME'", lineno));
      design.set_top(toks[1]);
    } else {
      check(false, strf("line %d: unknown keyword '%s'", lineno, kw.c_str()));
    }
  }
  check(!in_dfg, "unterminated dfg block");
  design.validate();
  return design;
}

}  // namespace hsyn
