// Graphviz export of DFGs for documentation and debugging.
#pragma once

#include <string>

#include "dfg/dfg.h"

namespace hsyn {

/// Render a single DFG as a Graphviz digraph.
std::string dfg_to_dot(const Dfg& dfg);

}  // namespace hsyn
