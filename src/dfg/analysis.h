// Resource-unconstrained timing analysis of DFGs: ASAP / ALAP schedules
// and critical-path length. Used to compute the minimum sampling period
// (denominator of the paper's laxity factor) and the mobility windows that
// drive constraint derivation (Fig. 5, middle box).
#pragma once

#include <functional>
#include <vector>

#include "dfg/dfg.h"

namespace hsyn {

/// Latency oracle: cycles consumed by a node (operation or hierarchical).
using LatencyFn = std::function<int(const Node&)>;

struct AsapResult {
  std::vector<int> start;   ///< per node id, earliest start cycle
  std::vector<int> finish;  ///< per node id, earliest finish cycle
  int makespan = 0;         ///< earliest completion of all primary outputs
};

struct AlapResult {
  std::vector<int> start;   ///< per node id, latest start cycle
  std::vector<int> finish;  ///< per node id, latest finish cycle
};

/// ASAP schedule assuming unlimited resources; primary inputs arrive at 0.
AsapResult asap(const Dfg& dfg, const LatencyFn& latency);

/// ALAP schedule against `deadline` cycles.
AlapResult alap(const Dfg& dfg, const LatencyFn& latency, int deadline);

/// Critical path length in cycles = minimum achievable sampling period
/// with unlimited resources.
int critical_path(const Dfg& dfg, const LatencyFn& latency);

/// Per-node mobility (ALAP start - ASAP start) against `deadline`.
std::vector<int> mobility(const Dfg& dfg, const LatencyFn& latency, int deadline);

}  // namespace hsyn
