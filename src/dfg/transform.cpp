#include "dfg/transform.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "util/fmt.h"

namespace hsyn {
namespace {

bool is_commutative(Op op) {
  switch (op) {
    case Op::Add:
    case Op::Mult:
    case Op::And:
    case Op::Or:
    case Op::Xor: return true;
    default: return false;
  }
}

/// Copy helper: rebuilds a DFG from a keep-set, preserving structure.
/// `keep[nid]` false drops the node; every consumer of a dropped node
/// must itself be dropped (caller guarantees).
Dfg rebuild_subset(const Dfg& src, const std::vector<char>& keep,
                   const std::string& name) {
  Dfg out(name, src.num_inputs(), src.num_outputs());
  std::map<int, int> node_map;
  for (const int nid : src.topo_order()) {
    if (!keep[static_cast<std::size_t>(nid)]) continue;
    const Node& n = src.node(nid);
    const int new_id =
        n.is_hier()
            ? out.add_hier_node(n.behavior, n.num_inputs, n.num_outputs, n.label)
            : out.add_node(n.op, n.label);
    node_map[nid] = new_id;
  }
  // Edges: one per original edge whose producer survives (or primary
  // input), with surviving consumers only.
  for (const Edge& e : src.edges()) {
    PortRef new_src = e.src;
    if (e.src.node >= 0) {
      auto it = node_map.find(e.src.node);
      if (it == node_map.end()) continue;  // producer dropped
      new_src.node = it->second;
    }
    std::vector<PortRef> dsts;
    for (const PortRef& d : e.dsts) {
      if (d.node == kPrimaryOut) {
        dsts.push_back(d);
      } else if (auto it = node_map.find(d.node); it != node_map.end()) {
        dsts.push_back({it->second, d.port});
      }
    }
    if (dsts.empty() && e.src.node >= 0) continue;  // dead value
    if (dsts.empty() && e.src.node == kPrimaryIn) continue;  // unused input
    out.connect(new_src, std::move(dsts), e.label);
  }
  out.validate();
  return out;
}

/// Structural signature ignoring the graph's name (for variant dedup).
std::string structure_signature(const Dfg& d) {
  std::ostringstream s;
  s << d.num_inputs() << '/' << d.num_outputs() << ';';
  for (const Node& n : d.nodes()) {
    s << op_name(n.op) << (n.is_hier() ? n.behavior : "") << ',';
  }
  for (const Edge& e : d.edges()) {
    s << e.src.node << '.' << e.src.port << ':';
    for (const PortRef& dst : e.dsts) s << dst.node << '.' << dst.port << ' ';
    s << ';';
  }
  return s.str();
}

}  // namespace

Dfg eliminate_dead_nodes(const Dfg& dfg) {
  check(dfg.validated(), "eliminate_dead_nodes: validate first");
  std::vector<char> live(dfg.nodes().size(), 0);
  // Seed with producers of primary outputs, walk backwards.
  std::vector<int> stack;
  for (int o = 0; o < dfg.num_outputs(); ++o) {
    const Edge& e = dfg.edge(dfg.primary_output_edge(o));
    if (e.src.node >= 0 && !live[static_cast<std::size_t>(e.src.node)]) {
      live[static_cast<std::size_t>(e.src.node)] = 1;
      stack.push_back(e.src.node);
    }
  }
  while (!stack.empty()) {
    const int nid = stack.back();
    stack.pop_back();
    const Node& n = dfg.node(nid);
    for (int p = 0; p < n.num_inputs; ++p) {
      const Edge& e = dfg.edge(dfg.input_edge(nid, p));
      if (e.src.node >= 0 && !live[static_cast<std::size_t>(e.src.node)]) {
        live[static_cast<std::size_t>(e.src.node)] = 1;
        stack.push_back(e.src.node);
      }
    }
  }
  return rebuild_subset(dfg, live, dfg.name());
}

Dfg eliminate_common_subexpressions(const Dfg& dfg) {
  check(dfg.validated(), "cse: validate first");
  // Canonical value id per edge; nodes with identical (op, operand ids)
  // share one representative.
  std::map<int, std::string> edge_value;  // edge id -> canonical value id
  for (int i = 0; i < dfg.num_inputs(); ++i) {
    const int e = dfg.primary_input_edge(i);
    if (e >= 0) edge_value[e] = strf("in%d", i);
  }
  std::map<std::string, int> repr;         // value key -> representative node
  std::vector<int> replacement(dfg.nodes().size());
  std::vector<char> keep(dfg.nodes().size(), 1);
  for (const int nid : dfg.topo_order()) {
    const Node& n = dfg.node(nid);
    replacement[static_cast<std::size_t>(nid)] = nid;
    if (n.is_hier()) {
      // Hierarchical nodes are not deduplicated (their modules may be
      // customized independently); still give their outputs value ids.
      for (int p = 0; p < n.num_outputs; ++p) {
        const int e = dfg.output_edge(nid, p);
        if (e >= 0) edge_value[e] = strf("h%d.%d", nid, p);
      }
      continue;
    }
    std::vector<std::string> operands;
    for (int p = 0; p < n.num_inputs; ++p) {
      operands.push_back(edge_value.at(dfg.input_edge(nid, p)));
    }
    if (is_commutative(n.op)) std::sort(operands.begin(), operands.end());
    std::string key = op_name(n.op);
    for (const std::string& o : operands) key += "(" + o + ")";
    auto [it, inserted] = repr.emplace(key, nid);
    if (!inserted) {
      keep[static_cast<std::size_t>(nid)] = 0;
      replacement[static_cast<std::size_t>(nid)] = it->second;
    }
    const int e = dfg.output_edge(nid, 0);
    if (e >= 0) edge_value[e] = key;
  }

  // Rebuild with consumers rerouted to representatives.
  Dfg out(dfg.name(), dfg.num_inputs(), dfg.num_outputs());
  std::map<int, int> node_map;
  for (const int nid : dfg.topo_order()) {
    if (!keep[static_cast<std::size_t>(nid)]) continue;
    const Node& n = dfg.node(nid);
    node_map[nid] = n.is_hier()
                        ? out.add_hier_node(n.behavior, n.num_inputs,
                                            n.num_outputs, n.label)
                        : out.add_node(n.op, n.label);
  }
  // One new edge per (representative terminal); gather consumers.
  std::map<std::string, int> new_edges;  // terminal key -> new edge id
  auto terminal_key = [](const PortRef& r) {
    return strf("%d.%d", r.node, r.port);
  };
  auto edge_for = [&](PortRef src) {
    if (src.node >= 0) {
      src.node = node_map.at(
          replacement[static_cast<std::size_t>(src.node)]);
    }
    const std::string key =
        (src.node == kPrimaryIn ? "in" : "n") + terminal_key(src);
    auto it = new_edges.find(key);
    if (it == new_edges.end()) {
      it = new_edges.emplace(key, out.connect(src, {})).first;
    }
    return it->second;
  };
  for (const Edge& e : dfg.edges()) {
    if (e.src.node >= 0 &&
        (!keep[static_cast<std::size_t>(e.src.node)] ||
         replacement[static_cast<std::size_t>(e.src.node)] != e.src.node)) {
      continue;  // folded into a representative's edge
    }
    const int ne = edge_for(e.src);
    for (const PortRef& d : e.dsts) {
      if (d.node == kPrimaryOut) {
        out.add_consumer(ne, d);
      } else if (keep[static_cast<std::size_t>(d.node)]) {
        out.add_consumer(ne, {node_map.at(d.node), d.port});
      }
    }
  }
  // Reroute edges whose producer was deduplicated: their consumers attach
  // to the representative's edge instead.
  for (const Edge& e : dfg.edges()) {
    if (e.src.node < 0 || keep[static_cast<std::size_t>(e.src.node)]) continue;
    const int rep = replacement[static_cast<std::size_t>(e.src.node)];
    const int ne = edge_for({rep, e.src.port});
    for (const PortRef& d : e.dsts) {
      if (d.node == kPrimaryOut) {
        out.add_consumer(ne, d);
      } else if (keep[static_cast<std::size_t>(d.node)]) {
        out.add_consumer(ne, {node_map.at(d.node), d.port});
      }
    }
  }
  out.validate();
  return eliminate_dead_nodes(out);
}

Dfg reshape_reductions(const Dfg& dfg, TreeShape shape) {
  check(dfg.validated(), "reshape_reductions: validate first");

  // A node is tree-interior when it is Add/Mult and its single output
  // edge feeds exactly one consumer of the same op (and no primary
  // output).
  auto same_op_single_consumer = [&](int nid) -> int {
    const Node& n = dfg.node(nid);
    if (n.op != Op::Add && n.op != Op::Mult) return -1;
    const int e = dfg.output_edge(nid, 0);
    if (e < 0) return -1;
    const Edge& edge = dfg.edge(e);
    if (edge.dsts.size() != 1 || edge.dsts[0].node < 0) return -1;
    const Node& c = dfg.node(edge.dsts[0].node);
    return c.op == n.op ? edge.dsts[0].node : -1;
  };

  std::vector<char> interior(dfg.nodes().size(), 0);
  for (const Node& n : dfg.nodes()) {
    if (!n.is_hier() && same_op_single_consumer(n.id) >= 0) {
      interior[static_cast<std::size_t>(n.id)] = 1;
    }
  }
  // Roots: Add/Mult nodes that are not interior but have interior
  // producers (trees of size >= 2).
  auto gather_leaves = [&](int root, std::vector<int>& leaves) {
    // DFS in operand order, collecting external feeding edges.
    std::vector<int> stack = {root};
    std::vector<int> order;
    // Manual recursion preserving left-to-right operand order.
    std::function<void(int)> walk = [&](int nid) {
      const Node& n = dfg.node(nid);
      for (int p = 0; p < n.num_inputs; ++p) {
        const int e = dfg.input_edge(nid, p);
        const Edge& edge = dfg.edge(e);
        if (edge.src.node >= 0 &&
            interior[static_cast<std::size_t>(edge.src.node)] &&
            dfg.node(edge.src.node).op == n.op) {
          walk(edge.src.node);
        } else {
          leaves.push_back(e);
        }
      }
    };
    walk(root);
    (void)stack;
    (void)order;
  };

  Dfg out(dfg.name(), dfg.num_inputs(), dfg.num_outputs());
  std::map<int, int> node_map;    // surviving original node -> new node
  std::map<int, int> edge_map;    // original edge -> new edge
  auto new_edge_for = [&](int orig_edge) -> int {
    auto it = edge_map.find(orig_edge);
    if (it != edge_map.end()) return it->second;
    const Edge& e = dfg.edge(orig_edge);
    PortRef src = e.src;
    if (src.node >= 0) {
      src.node = node_map.at(src.node);
    }
    const int ne = out.connect(src, {}, e.label);
    edge_map[orig_edge] = ne;
    return ne;
  };

  for (const int nid : dfg.topo_order()) {
    if (interior[static_cast<std::size_t>(nid)]) continue;  // absorbed
    const Node& n = dfg.node(nid);
    const bool is_root =
        !n.is_hier() && (n.op == Op::Add || n.op == Op::Mult) &&
        [&] {
          for (int p = 0; p < n.num_inputs; ++p) {
            const Edge& e = dfg.edge(dfg.input_edge(nid, p));
            if (e.src.node >= 0 &&
                interior[static_cast<std::size_t>(e.src.node)]) {
              return true;
            }
          }
          return false;
        }();
    if (!is_root) {
      // Plain copy.
      const int new_id =
          n.is_hier()
              ? out.add_hier_node(n.behavior, n.num_inputs, n.num_outputs,
                                  n.label)
              : out.add_node(n.op, n.label);
      node_map[nid] = new_id;
      for (int p = 0; p < n.num_inputs; ++p) {
        out.add_consumer(new_edge_for(dfg.input_edge(nid, p)), {new_id, p});
      }
      continue;
    }
    // Restructure the tree rooted here.
    std::vector<int> leaf_edges;
    gather_leaves(nid, leaf_edges);
    std::vector<int> operands;
    operands.reserve(leaf_edges.size());
    for (const int e : leaf_edges) operands.push_back(new_edge_for(e));
    const Op op = n.op;
    auto combine = [&](int ea, int eb) {
      const int id = out.add_node(op);
      out.add_consumer(ea, {id, 0});
      out.add_consumer(eb, {id, 1});
      return out.connect({id, 0}, {});
    };
    int result;
    int last_node;
    if (shape == TreeShape::Chain) {
      int acc = operands[0];
      for (std::size_t k = 1; k < operands.size(); ++k) {
        acc = combine(acc, operands[k]);
      }
      result = acc;
    } else {
      std::vector<int> level = operands;
      while (level.size() > 1) {
        std::vector<int> next;
        for (std::size_t k = 0; k + 1 < level.size(); k += 2) {
          next.push_back(combine(level[k], level[k + 1]));
        }
        if (level.size() % 2 == 1) next.push_back(level.back());
        level = std::move(next);
      }
      result = level[0];
    }
    // The tree's result edge replaces the root's output edge; map the
    // root node to the producer of `result`.
    last_node = out.edge(result).src.node;
    node_map[nid] = last_node;
    edge_map[dfg.output_edge(nid, 0)] = result;
  }

  // Consumers: attach every original edge's destinations.
  for (const Edge& e : dfg.edges()) {
    if (e.src.node >= 0 && interior[static_cast<std::size_t>(e.src.node)]) {
      continue;  // interior values no longer exist
    }
    bool feeds_output = false;
    for (const PortRef& d : e.dsts) feeds_output |= d.node == kPrimaryOut;
    auto it = edge_map.find(e.id);
    if (it == edge_map.end()) {
      if (!feeds_output) continue;  // never referenced (dead value)
      // Pass-through (e.g. primary input straight to a primary output).
      it = edge_map.find(e.id);
      const int ne = new_edge_for(e.id);
      it = edge_map.find(e.id);
      (void)ne;
    }
    for (const PortRef& d : e.dsts) {
      if (d.node == kPrimaryOut) {
        out.add_consumer(it->second, d);
      }
      // Node consumers were attached during node construction.
    }
  }
  out.validate();
  return out;
}

std::vector<Dfg> generate_variants(const Dfg& dfg) {
  const Dfg base = eliminate_common_subexpressions(dfg);
  const std::string orig_sig = structure_signature(dfg);
  std::vector<Dfg> variants;
  std::set<std::string> seen = {orig_sig};
  for (const TreeShape shape : {TreeShape::Balanced, TreeShape::Chain}) {
    Dfg v = reshape_reductions(base, shape);
    const std::string sig = structure_signature(v);
    if (seen.insert(sig).second) {
      v.set_name(dfg.name() +
                 (shape == TreeShape::Balanced ? "__bal" : "__chain"));
      variants.push_back(std::move(v));
    }
  }
  return variants;
}

int register_variants(Design& design, const std::string& name) {
  check(design.has_behavior(name), "register_variants: unknown behavior");
  std::vector<Dfg> variants = generate_variants(design.behavior(name));
  int added = 0;
  for (Dfg& v : variants) {
    if (design.has_behavior(v.name())) continue;
    const std::string vname = v.name();
    design.add_behavior(std::move(v));
    design.declare_equivalent(name, vname);
    ++added;
  }
  return added;
}

}  // namespace hsyn
