// Hierarchy flattening: recursively inline every hierarchical node.
//
// The flattened comparator of the paper ("the flattened version of the
// same algorithm [10]") runs the identical synthesis engine on the output
// of this pass, so flattening must preserve exact dataflow semantics.
#pragma once

#include <string>

#include "dfg/design.h"

namespace hsyn {

/// Return a fully flat (operations only) DFG equivalent to behavior
/// `name` of `design`. Node labels are prefixed with their hierarchical
/// path (e.g. "DFG1/+1") for traceability.
Dfg flatten(const Design& design, const std::string& name);

/// Convenience: flatten the design's top behavior.
inline Dfg flatten_top(const Design& design) { return flatten(design, design.top_name()); }

}  // namespace hsyn
