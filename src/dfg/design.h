// A Design groups the top-level DFG with every behavior it references,
// plus the user-declared functional-equivalence classes that move A uses
// to swap anisomorphic DFGs for the same hierarchical node (paper,
// Example 2: "C1 and C2 implement functionally equivalent behavior").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dfg/dfg.h"

namespace hsyn {

class Design {
 public:
  Design() = default;

  /// Register a behavior. Its Dfg::name() is the key. Validates the DFG.
  void add_behavior(Dfg dfg);

  /// Mark two already-registered behaviors as functionally equivalent
  /// (user-supplied knowledge; transitively closed).
  void declare_equivalent(const std::string& a, const std::string& b);

  /// Set/get the name of the top-level behavior.
  void set_top(std::string name) { top_ = std::move(name); }
  const std::string& top_name() const { return top_; }
  const Dfg& top() const { return behavior(top_); }

  bool has_behavior(const std::string& name) const { return behaviors_.count(name) != 0; }
  const Dfg& behavior(const std::string& name) const;
  Dfg& behavior_mut(const std::string& name);

  /// All behavior names, in insertion order.
  const std::vector<std::string>& behavior_names() const { return order_; }

  /// All behaviors equivalent to `name`, including `name` itself.
  std::vector<std::string> equivalents(const std::string& name) const;

  /// Check that every hierarchical node references a registered behavior
  /// with matching port counts, that equivalent behaviors have identical
  /// I/O signatures, and that the hierarchy is non-recursive.
  /// Throws std::logic_error on violation.
  void validate() const;

  /// Total operation-node count of `name` with all hierarchy inlined.
  int flattened_size(const std::string& name) const;

  /// Maximum hierarchy depth below `name` (0 for a flat behavior).
  int depth(const std::string& name) const;

 private:
  int find_class(const std::string& name) const;

  std::map<std::string, Dfg> behaviors_;
  std::vector<std::string> order_;
  std::string top_;
  // Union-find over behavior names for equivalence classes.
  std::map<std::string, std::string> eq_parent_;
};

}  // namespace hsyn
