// Behavioral transformations on DFGs.
//
// The paper's related work ([4], HYPER) optimizes power with behavioral
// transformations; its own move A exploits *user-supplied* functionally
// equivalent DFG variants. This module supplies both: semantics-
// preserving rewrites (common-subexpression elimination, dead-node
// elimination) and associativity-based restructuring of add/mult
// reduction trees, which is also used to generate equivalent variants
// automatically -- a balanced tree (minimum depth, maximum parallelism)
// and a serial chain (minimum liveness, chainable onto chained_addN
// units) -- and register them with a Design's equivalence classes so
// move A can swap them without any user annotation.
//
// All transformations are exact under the datapath's wrap-around 16-bit
// arithmetic (addition and multiplication are associative and
// commutative modulo 2^16).
#pragma once

#include <string>
#include <vector>

#include "dfg/design.h"

namespace hsyn {

/// Rebuild `dfg` without nodes whose results never reach a primary
/// output. Returns the new graph (unchanged copy when nothing is dead).
Dfg eliminate_dead_nodes(const Dfg& dfg);

/// Common-subexpression elimination: operation nodes with identical
/// (op, input edges) collapse into one (commutative ops match either
/// operand order).
Dfg eliminate_common_subexpressions(const Dfg& dfg);

/// How to restructure associative reduction trees.
enum class TreeShape {
  Balanced,  ///< minimum depth: maximum parallelism
  Chain,     ///< serial: minimum register pressure, chainable
};

/// Restructure every maximal same-op tree of Add or Mult nodes (whose
/// intermediate values have no other consumers) into the given shape.
Dfg reshape_reductions(const Dfg& dfg, TreeShape shape);

/// Generate distinct equivalent variants of `dfg` (balanced / chain
/// reshapes after CSE), named `<name>__bal` / `<name>__chain`. Variants
/// identical to the input are omitted.
std::vector<Dfg> generate_variants(const Dfg& dfg);

/// Generate variants of behavior `name` and register them in `design`
/// as functional equivalents. Returns the number of variants added.
int register_variants(Design& design, const std::string& name);

}  // namespace hsyn
