#include "dfg/dfg.h"

#include <algorithm>
#include <queue>

#include "util/fmt.h"
#include "util/hash.h"

namespace hsyn {

const char* op_name(Op op) {
  switch (op) {
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mult: return "mult";
    case Op::ShiftL: return "shl";
    case Op::ShiftR: return "shr";
    case Op::Cmp: return "cmp";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Neg: return "neg";
    case Op::Hier: return "hier";
  }
  return "?";
}

int op_arity(Op op) {
  switch (op) {
    case Op::Neg: return 1;
    case Op::Hier: return -1;  // carried by node
    default: return 2;
  }
}

bool op_commutative(Op op) {
  switch (op) {
    case Op::Add:
    case Op::Mult:
    case Op::And:
    case Op::Or:
    case Op::Xor:
      return true;
    default:
      return false;
  }
}

int Dfg::add_node(Op op, std::string label) {
  check(op != Op::Hier, "use add_hier_node for hierarchical nodes");
  Node n;
  n.id = static_cast<int>(nodes_.size());
  n.op = op;
  n.label = std::move(label);
  n.num_inputs = op_arity(op);
  n.num_outputs = 1;
  nodes_.push_back(std::move(n));
  invalidate();
  return nodes_.back().id;
}

int Dfg::add_hier_node(std::string behavior, int num_inputs, int num_outputs,
                       std::string label) {
  Node n;
  n.id = static_cast<int>(nodes_.size());
  n.op = Op::Hier;
  n.behavior = std::move(behavior);
  n.label = std::move(label);
  n.num_inputs = num_inputs;
  n.num_outputs = num_outputs;
  nodes_.push_back(std::move(n));
  invalidate();
  return nodes_.back().id;
}

int Dfg::connect(PortRef src, std::vector<PortRef> dsts, std::string label) {
  Edge e;
  e.id = static_cast<int>(edges_.size());
  e.src = src;
  e.dsts = std::move(dsts);
  e.label = std::move(label);
  edges_.push_back(std::move(e));
  invalidate();
  return edges_.back().id;
}

void Dfg::add_consumer(int edge_id, PortRef dst) {
  edge_mut(edge_id).dsts.push_back(dst);
  invalidate();
}

int Dfg::input_edge(int node_id, int port) const {
  check(validated_, "Dfg::input_edge requires validate()");
  return node_in_[static_cast<std::size_t>(node_id)][static_cast<std::size_t>(port)];
}

int Dfg::output_edge(int node_id, int port) const {
  check(validated_, "Dfg::output_edge requires validate()");
  return node_out_[static_cast<std::size_t>(node_id)][static_cast<std::size_t>(port)];
}

int Dfg::primary_input_edge(int idx) const {
  check(validated_, "Dfg::primary_input_edge requires validate()");
  return pin_edge_[static_cast<std::size_t>(idx)];
}

int Dfg::primary_output_edge(int idx) const {
  check(validated_, "Dfg::primary_output_edge requires validate()");
  return pout_edge_[static_cast<std::size_t>(idx)];
}

std::vector<int> Dfg::node_input_edges(int node_id) const {
  check(validated_, "Dfg::node_input_edges requires validate()");
  return node_in_[static_cast<std::size_t>(node_id)];
}

std::vector<int> Dfg::node_output_edges(int node_id) const {
  check(validated_, "Dfg::node_output_edges requires validate()");
  return node_out_[static_cast<std::size_t>(node_id)];
}

bool Dfg::has_hierarchy() const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [](const Node& n) { return n.is_hier(); });
}

int Dfg::num_operation_nodes() const {
  return static_cast<int>(std::count_if(
      nodes_.begin(), nodes_.end(), [](const Node& n) { return !n.is_hier(); }));
}

void Dfg::build_tables() {
  node_in_.assign(nodes_.size(), {});
  node_out_.assign(nodes_.size(), {});
  for (const Node& n : nodes_) {
    node_in_[static_cast<std::size_t>(n.id)].assign(
        static_cast<std::size_t>(n.num_inputs), -1);
    node_out_[static_cast<std::size_t>(n.id)].assign(
        static_cast<std::size_t>(n.num_outputs), -1);
  }
  pin_edge_.assign(static_cast<std::size_t>(num_inputs_), -1);
  pout_edge_.assign(static_cast<std::size_t>(num_outputs_), -1);

  for (const Edge& e : edges_) {
    if (e.src.node == kPrimaryIn) {
      check(e.src.port >= 0 && e.src.port < num_inputs_,
            strf("dfg %s: edge %d primary input %d out of range", name_.c_str(),
                 e.id, e.src.port));
      check(pin_edge_[static_cast<std::size_t>(e.src.port)] == -1,
            strf("dfg %s: primary input %d driven twice", name_.c_str(), e.src.port));
      pin_edge_[static_cast<std::size_t>(e.src.port)] = e.id;
    } else {
      check(e.src.node >= 0 && e.src.node < static_cast<int>(nodes_.size()),
            strf("dfg %s: edge %d source node out of range", name_.c_str(), e.id));
      const Node& src = node(e.src.node);
      check(e.src.port >= 0 && e.src.port < src.num_outputs,
            strf("dfg %s: edge %d source port out of range", name_.c_str(), e.id));
      auto& slot = node_out_[static_cast<std::size_t>(e.src.node)]
                            [static_cast<std::size_t>(e.src.port)];
      check(slot == -1, strf("dfg %s: node %d output %d driven twice", name_.c_str(),
                             e.src.node, e.src.port));
      slot = e.id;
    }
    for (const PortRef& d : e.dsts) {
      if (d.node == kPrimaryOut) {
        check(d.port >= 0 && d.port < num_outputs_,
              strf("dfg %s: edge %d primary output %d out of range", name_.c_str(),
                   e.id, d.port));
        check(pout_edge_[static_cast<std::size_t>(d.port)] == -1,
              strf("dfg %s: primary output %d driven twice", name_.c_str(), d.port));
        pout_edge_[static_cast<std::size_t>(d.port)] = e.id;
      } else {
        check(d.node >= 0 && d.node < static_cast<int>(nodes_.size()),
              strf("dfg %s: edge %d dst node out of range", name_.c_str(), e.id));
        const Node& dst = node(d.node);
        check(d.port >= 0 && d.port < dst.num_inputs,
              strf("dfg %s: edge %d dst port %d out of range on node %d",
                   name_.c_str(), e.id, d.port, d.node));
        auto& slot = node_in_[static_cast<std::size_t>(d.node)]
                             [static_cast<std::size_t>(d.port)];
        check(slot == -1, strf("dfg %s: node %d input %d driven twice", name_.c_str(),
                               d.node, d.port));
        slot = e.id;
      }
    }
  }

  // Completeness: every node input port must be driven; every primary
  // output must be produced.
  for (const Node& n : nodes_) {
    for (int p = 0; p < n.num_inputs; ++p) {
      check(node_in_[static_cast<std::size_t>(n.id)][static_cast<std::size_t>(p)] != -1,
            strf("dfg %s: node %d (%s) input %d undriven", name_.c_str(), n.id,
                 n.label.empty() ? op_name(n.op) : n.label.c_str(), p));
    }
  }
  for (int p = 0; p < num_outputs_; ++p) {
    check(pout_edge_[static_cast<std::size_t>(p)] != -1,
          strf("dfg %s: primary output %d undriven", name_.c_str(), p));
  }
}

void Dfg::compute_topo() {
  const auto n = nodes_.size();
  std::vector<int> indeg(n, 0);
  for (const Edge& e : edges_) {
    if (e.src.node < 0) continue;
    // Count node-to-node dependencies once per (edge, dst) pair.
    for (const PortRef& d : e.dsts) {
      if (d.node >= 0) indeg[static_cast<std::size_t>(d.node)]++;
    }
  }
  // Inputs fed by primary inputs don't add in-degree, so adjust: we counted
  // only node-sourced edges above. Recompute from node_in_ for correctness.
  std::fill(indeg.begin(), indeg.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int eid : node_in_[i]) {
      if (eid >= 0 && edges_[static_cast<std::size_t>(eid)].src.node >= 0) {
        indeg[i]++;
      }
    }
  }
  std::queue<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push(static_cast<int>(i));
  }
  topo_.clear();
  topo_.reserve(n);
  while (!ready.empty()) {
    const int u = ready.front();
    ready.pop();
    topo_.push_back(u);
    for (int eid : node_out_[static_cast<std::size_t>(u)]) {
      if (eid < 0) continue;
      for (const PortRef& d : edges_[static_cast<std::size_t>(eid)].dsts) {
        if (d.node < 0) continue;
        if (--indeg[static_cast<std::size_t>(d.node)] == 0) ready.push(d.node);
      }
    }
  }
  check(topo_.size() == n, strf("dfg %s: cycle detected (topological sort visited "
                                "%zu of %zu nodes)",
                                name_.c_str(), topo_.size(), n));
}

std::uint64_t Dfg::content_hash() const {
  check(validated_, "Dfg::content_hash requires validate()");
  return content_hash_;
}

std::uint64_t Dfg::canonical_hash() const {
  check(validated_, "Dfg::canonical_hash requires validate()");
  return canonical_hash_;
}

void Dfg::compute_hashes() {
  // --- content hash: exact id-indexed structure (labels/name excluded). ---
  std::uint64_t h = kFnvOffset;
  h = hash_mix(h, static_cast<std::uint64_t>(num_inputs_));
  h = hash_mix(h, static_cast<std::uint64_t>(num_outputs_));
  h = hash_mix(h, nodes_.size());
  h = hash_mix(h, edges_.size());
  for (const Node& n : nodes_) {
    h = hash_mix(h, static_cast<std::uint64_t>(n.op));
    h = hash_str(h, n.behavior);
    h = hash_mix(h, static_cast<std::uint64_t>(n.num_inputs));
    h = hash_mix(h, static_cast<std::uint64_t>(n.num_outputs));
  }
  for (const Edge& e : edges_) {
    h = hash_mix(h, static_cast<std::uint64_t>(e.src.node));
    h = hash_mix(h, static_cast<std::uint64_t>(e.src.port));
    h = hash_mix(h, e.dsts.size());
    for (const PortRef& d : e.dsts) {
      h = hash_mix(h, static_cast<std::uint64_t>(d.node));
      h = hash_mix(h, static_cast<std::uint64_t>(d.port));
    }
  }
  content_hash_ = hash_final(h);

  // --- canonical hash: renumbering-invariant DAG hash. Each node's hash
  // depends only on its op/behavior/arity and the hashes of its input
  // sources (in port order); topo order guarantees producers are hashed
  // first. The graph hash anchors primary outputs (ordered) and folds the
  // remaining nodes in as an order-free multiset sum, so dead nodes still
  // count without introducing id sensitivity.
  std::vector<std::uint64_t> node_h(nodes_.size(), 0);
  const auto source_hash = [&](int eid) -> std::uint64_t {
    const Edge& e = edges_[static_cast<std::size_t>(eid)];
    if (e.src.node == kPrimaryIn) {
      return hash_final(hash_mix(hash_mix(kFnvOffset, 1),
                                 static_cast<std::uint64_t>(e.src.port)));
    }
    return hash_final(hash_mix(
        hash_mix(node_h[static_cast<std::size_t>(e.src.node)], 2),
        static_cast<std::uint64_t>(e.src.port)));
  };
  for (const int nid : topo_) {
    const Node& n = nodes_[static_cast<std::size_t>(nid)];
    std::uint64_t nh = kFnvOffset;
    nh = hash_mix(nh, static_cast<std::uint64_t>(n.op));
    nh = hash_str(nh, n.behavior);
    nh = hash_mix(nh, static_cast<std::uint64_t>(n.num_inputs));
    nh = hash_mix(nh, static_cast<std::uint64_t>(n.num_outputs));
    for (int p = 0; p < n.num_inputs; ++p) {
      nh = hash_mix(nh, source_hash(node_in_[static_cast<std::size_t>(nid)]
                                            [static_cast<std::size_t>(p)]));
    }
    node_h[static_cast<std::size_t>(nid)] = hash_final(nh);
  }
  std::uint64_t ch = kFnvOffset;
  ch = hash_mix(ch, static_cast<std::uint64_t>(num_inputs_));
  ch = hash_mix(ch, static_cast<std::uint64_t>(num_outputs_));
  for (int p = 0; p < num_outputs_; ++p) {
    ch = hash_mix(ch, source_hash(pout_edge_[static_cast<std::size_t>(p)]));
  }
  std::uint64_t multiset = 0;
  for (const std::uint64_t nh : node_h) {
    multiset += hash_final(nh ^ 0xa5a5a5a5a5a5a5a5ull);
  }
  ch = hash_mix(ch, multiset);
  canonical_hash_ = hash_final(ch);
}

void Dfg::validate() {
  build_tables();
  compute_topo();
  compute_hashes();
  validated_ = true;
}

}  // namespace hsyn
