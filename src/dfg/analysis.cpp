#include "dfg/analysis.h"

#include <algorithm>

#include "util/fmt.h"

namespace hsyn {

AsapResult asap(const Dfg& dfg, const LatencyFn& latency) {
  check(dfg.validated(), "asap: dfg must be validated");
  const auto n = dfg.nodes().size();
  AsapResult r;
  r.start.assign(n, 0);
  r.finish.assign(n, 0);
  for (const int nid : dfg.topo_order()) {
    const Node& node = dfg.node(nid);
    int s = 0;
    for (int p = 0; p < node.num_inputs; ++p) {
      const Edge& e = dfg.edge(dfg.input_edge(nid, p));
      if (e.src.node >= 0) {
        s = std::max(s, r.finish[static_cast<std::size_t>(e.src.node)]);
      }
    }
    r.start[static_cast<std::size_t>(nid)] = s;
    r.finish[static_cast<std::size_t>(nid)] = s + latency(node);
  }
  for (int o = 0; o < dfg.num_outputs(); ++o) {
    const Edge& e = dfg.edge(dfg.primary_output_edge(o));
    if (e.src.node >= 0) {
      r.makespan = std::max(r.makespan, r.finish[static_cast<std::size_t>(e.src.node)]);
    }
  }
  return r;
}

AlapResult alap(const Dfg& dfg, const LatencyFn& latency, int deadline) {
  check(dfg.validated(), "alap: dfg must be validated");
  const auto n = dfg.nodes().size();
  AlapResult r;
  r.start.assign(n, deadline);
  r.finish.assign(n, deadline);
  const auto& topo = dfg.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int nid = *it;
    const Node& node = dfg.node(nid);
    int f = deadline;
    for (int p = 0; p < node.num_outputs; ++p) {
      const int eid = dfg.output_edge(nid, p);
      if (eid < 0) continue;
      for (const PortRef& d : dfg.edge(eid).dsts) {
        if (d.node >= 0) {
          f = std::min(f, r.start[static_cast<std::size_t>(d.node)]);
        }
        // Primary-output consumers impose the deadline itself.
      }
    }
    r.finish[static_cast<std::size_t>(nid)] = f;
    r.start[static_cast<std::size_t>(nid)] = f - latency(node);
  }
  return r;
}

int critical_path(const Dfg& dfg, const LatencyFn& latency) {
  return asap(dfg, latency).makespan;
}

std::vector<int> mobility(const Dfg& dfg, const LatencyFn& latency, int deadline) {
  const AsapResult a = asap(dfg, latency);
  const AlapResult l = alap(dfg, latency, deadline);
  std::vector<int> m(dfg.nodes().size());
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = l.start[i] - a.start[i];
  return m;
}

}  // namespace hsyn
