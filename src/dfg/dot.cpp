#include "dfg/dot.h"

#include <sstream>

#include "util/fmt.h"

namespace hsyn {

std::string dfg_to_dot(const Dfg& dfg) {
  std::ostringstream out;
  out << "digraph \"" << dfg.name() << "\" {\n  rankdir=TB;\n";
  for (int i = 0; i < dfg.num_inputs(); ++i) {
    out << strf("  pi%d [shape=plaintext,label=\"in%d\"];\n", i, i);
  }
  for (int o = 0; o < dfg.num_outputs(); ++o) {
    out << strf("  po%d [shape=plaintext,label=\"out%d\"];\n", o, o);
  }
  for (const Node& n : dfg.nodes()) {
    const std::string label = n.label.empty()
                                  ? (n.is_hier() ? n.behavior : op_name(n.op))
                                  : n.label;
    out << strf("  n%d [shape=%s,label=\"%s\"];\n", n.id,
                n.is_hier() ? "box" : "circle", label.c_str());
  }
  for (const Edge& e : dfg.edges()) {
    const std::string src = e.src.node == kPrimaryIn ? strf("pi%d", e.src.port)
                                                     : strf("n%d", e.src.node);
    for (const PortRef& d : e.dsts) {
      const std::string dst =
          d.node == kPrimaryOut ? strf("po%d", d.port) : strf("n%d", d.node);
      out << strf("  %s -> %s [label=\"%d\"];\n", src.c_str(), dst.c_str(), d.port);
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace hsyn
