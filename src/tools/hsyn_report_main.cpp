// hsyn-report: offline analyzer joining a run's observability exports
// into one markdown report.
//
//   hsyn-report [--trace FILE] [--move-log FILE] [--metrics FILE]
//               [--telemetry FILE] [--out FILE]
//
// Inputs are the files a `hsyn` run writes with --trace-out (Chrome
// trace-event JSON), --move-log (ledger JSONL), --metrics-out (registry
// snapshot JSON) and --telemetry-out (sampler JSONL); at least one must
// be given, and each section degrades gracefully when its input is
// absent. The report goes to --out or stdout. Exit codes: 0 ok,
// 1 unreadable/unparseable input, 2 usage.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

using hsyn::JsonValue;
using hsyn::json_parse;

struct Args {
  std::string trace;
  std::string move_log;
  std::string metrics;
  std::string telemetry;
  std::string out;
};

void usage() {
  std::fprintf(stderr,
               "usage: hsyn-report [--trace FILE] [--move-log FILE] "
               "[--metrics FILE]\n"
               "                   [--telemetry FILE] [--out FILE]\n"
               "(at least one input file; each flag also accepts "
               "--flag=VALUE)\n");
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::optional<std::string> inline_val;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_val = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto next = [&]() -> const char* {
      if (inline_val) return inline_val->c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--trace") {
      if (!(v = next())) return std::nullopt;
      a.trace = v;
    } else if (arg == "--move-log") {
      if (!(v = next())) return std::nullopt;
      a.move_log = v;
    } else if (arg == "--metrics") {
      if (!(v = next())) return std::nullopt;
      a.metrics = v;
    } else if (arg == "--telemetry") {
      if (!(v = next())) return std::nullopt;
      a.telemetry = v;
    } else if (arg == "--out") {
      if (!(v = next())) return std::nullopt;
      a.out = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (a.trace.empty() && a.move_log.empty() && a.metrics.empty() &&
      a.telemetry.empty()) {
    return std::nullopt;
  }
  return a;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "hsyn-report: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Parse one-JSON-object-per-line content (ledger JSONL, telemetry
/// JSONL). Blank lines are skipped; a malformed line is an input error.
bool parse_jsonl(const std::string& text, const std::string& path,
                 std::vector<JsonValue>* out) {
  std::size_t pos = 0;
  std::size_t lineno = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue v;
    std::string err;
    if (!json_parse(line, &v, &err)) {
      std::fprintf(stderr, "hsyn-report: %s:%zu: %s\n", path.c_str(), lineno,
                   err.c_str());
      return false;
    }
    out->push_back(std::move(v));
  }
  return true;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string pct(double num, double den) {
  if (den <= 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * num / den);
  return buf;
}

/// Move class from the ledger `kind` string, mirroring the synthesizer's
/// taxonomy: module-selection rewrites ("A..."/"B...") vs sharing vs
/// splitting; anything else reports under its own first token.
std::string class_of(const std::string& kind) {
  if (kind.empty()) return "?";
  if (kind[0] == 'A' || kind[0] == 'B') return "replace";
  if (kind.find("share") != std::string::npos) return "share";
  if (kind.find("split") != std::string::npos) return "split";
  return kind.substr(0, kind.find_first_of(" :-"));
}

void section_convergence(const std::vector<JsonValue>& moves,
                         std::ostream& os) {
  // Accepted/applied records in file order trace the cost trajectory:
  // cost_after = cost_before - gain, with the running best alongside.
  struct Step {
    std::string kind;
    double gain = 0;
    double cost_after = 0;
  };
  std::vector<Step> steps;
  for (const JsonValue& r : moves) {
    const std::string status = r.str_or("status", "");
    if (status != "accepted" && status != "applied") continue;
    Step s;
    s.kind = r.str_or("kind", "?");
    s.gain = r.num_or("gain", 0);
    s.cost_after = r.num_or("cost_before", 0) - s.gain;
    steps.push_back(std::move(s));
  }
  os << "## Convergence\n\n";
  if (steps.empty()) {
    os << "No accepted moves in the move log.\n\n";
    return;
  }
  os << steps.size() << " accepted move(s).\n\n";
  os << "| step | kind | gain | cost after | best so far |\n";
  os << "|---:|---|---:|---:|---:|\n";
  // Bucket long runs down to ~20 rows so the table stays readable; the
  // last step of each bucket is shown (ends always included).
  const std::size_t n = steps.size();
  const std::size_t stride = n > 20 ? (n + 19) / 20 : 1;
  double best = steps.front().cost_after;
  for (std::size_t i = 0; i < n; ++i) {
    best = std::min(best, steps[i].cost_after);
    if (i % stride != stride - 1 && i != n - 1) continue;
    os << "| " << (i + 1) << " | " << steps[i].kind << " | "
       << fmt(steps[i].gain) << " | " << fmt(steps[i].cost_after) << " | "
       << fmt(best) << " |\n";
  }
  os << "\n";
}

void section_accept_rate(const std::vector<JsonValue>& moves,
                         std::ostream& os) {
  os << "## Accept rate by class over time\n\n";
  if (moves.empty()) {
    os << "Move log is empty.\n\n";
    return;
  }
  // 10 equal slices of the record stream; within each, attempts and
  // accepts per move class.
  const std::size_t buckets = std::min<std::size_t>(10, moves.size());
  std::vector<std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      by_bucket(buckets);
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> total;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const std::size_t b = i * buckets / moves.size();
    const std::string cls = class_of(moves[i].str_or("kind", "?"));
    const std::string status = moves[i].str_or("status", "");
    const bool accepted = status == "accepted" || status == "applied";
    auto bump = [&](auto& m) {
      auto& e = m[cls];
      e.first += 1;
      if (accepted) e.second += 1;
    };
    bump(by_bucket[b]);
    bump(total);
  }
  os << "| slice |";
  for (const auto& [cls, _] : total) os << " " << cls << " |";
  os << "\n|---:|";
  for (std::size_t i = 0; i < total.size(); ++i) os << "---:|";
  os << "\n";
  for (std::size_t b = 0; b < buckets; ++b) {
    os << "| " << (b + 1) << "/" << buckets << " |";
    for (const auto& [cls, _] : total) {
      const auto it = by_bucket[b].find(cls);
      if (it == by_bucket[b].end()) {
        os << " - |";
      } else {
        os << " " << pct(static_cast<double>(it->second.second),
                         static_cast<double>(it->second.first))
           << " (" << it->second.second << "/" << it->second.first << ") |";
      }
    }
    os << "\n";
  }
  os << "| all |";
  for (const auto& [cls, e] : total) {
    os << " " << pct(static_cast<double>(e.second),
                     static_cast<double>(e.first))
       << " (" << e.second << "/" << e.first << ") |";
  }
  os << "\n\n";
}

void section_phases(const JsonValue& trace, std::ostream& os) {
  os << "## Wall-clock by phase\n\n";
  const JsonValue* evs = trace.get("traceEvents");
  if (!evs || !evs->is_array() || evs->items().empty()) {
    os << "Trace has no span events.\n\n";
    return;
  }
  struct Agg {
    double us = 0;
    std::uint64_t count = 0;
  };
  std::map<std::string, Agg> by_name;
  double total_us = 0;
  for (const JsonValue& e : evs->items()) {
    const double dur = e.num_or("dur", 0);
    Agg& a = by_name[e.str_or("name", "?")];
    a.us += dur;
    a.count += 1;
    total_us += dur;
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.us > b.second.us;
  });
  os << "| phase | spans | total ms | share |\n";
  os << "|---|---:|---:|---:|\n";
  const std::size_t top = std::min<std::size_t>(15, rows.size());
  for (std::size_t i = 0; i < top; ++i) {
    os << "| " << rows[i].first << " | " << rows[i].second.count << " | "
       << fmt(rows[i].second.us / 1000.0) << " | "
       << pct(rows[i].second.us, total_us) << " |\n";
  }
  if (rows.size() > top) {
    os << "| (" << (rows.size() - top) << " more) | | | |\n";
  }
  os << "| **all spans** | " << evs->items().size() << " | "
     << fmt(total_us / 1000.0) << " | 100.0% |\n\n";
}

void section_cache(const std::vector<JsonValue>& samples,
                   const JsonValue* metrics, std::ostream& os) {
  os << "## Eval-cache hit rate over time\n\n";
  if (samples.size() >= 2) {
    os << "| t (ms) | hits Δ | misses Δ | hit rate | cache MB |\n";
    os << "|---:|---:|---:|---:|---:|\n";
    // Per-sample deltas; long runs bucketed down to ~20 rows.
    const std::size_t n = samples.size();
    const std::size_t stride = n > 21 ? (n + 19) / 20 : 1;
    std::uint64_t ph = 0;
    std::uint64_t pm = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t h =
          static_cast<std::uint64_t>(samples[i].int_or("cache_hits", 0));
      const std::uint64_t m =
          static_cast<std::uint64_t>(samples[i].int_or("cache_misses", 0));
      if (i != 0 && (i % stride == 0 || i == n - 1)) {
        const std::uint64_t dh = h - ph;
        const std::uint64_t dm = m - pm;
        os << "| " << samples[i].int_or("uptime_ms", 0) << " | " << dh
           << " | " << dm << " | "
           << pct(static_cast<double>(dh), static_cast<double>(dh + dm))
           << " | "
           << fmt(samples[i].num_or("cache_bytes", 0) / (1024.0 * 1024.0))
           << " |\n";
        ph = h;
        pm = m;
      } else if (i == 0) {
        ph = h;
        pm = m;
      }
    }
    os << "\n";
    return;
  }
  // No telemetry timeline: fall back to the final totals in the metrics
  // snapshot's eval sources.
  if (metrics) {
    const JsonValue* sources = metrics->get("sources");
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    if (sources && sources->is_object()) {
      for (const auto& [name, src] : sources->members()) {
        if (name.rfind("eval-", 0) != 0) continue;
        hits += static_cast<std::uint64_t>(src.int_or("hits", 0));
        misses += static_cast<std::uint64_t>(src.int_or("misses", 0));
      }
    }
    if (hits + misses > 0) {
      os << "No telemetry timeline; final totals from the metrics "
            "snapshot:\n\n";
      os << "hits " << hits << ", misses " << misses << ", hit rate "
         << pct(static_cast<double>(hits),
                static_cast<double>(hits + misses))
         << "\n\n";
      return;
    }
  }
  os << "No cache data available.\n\n";
}

void section_dropped(const JsonValue* trace,
                     const std::vector<JsonValue>& samples,
                     const JsonValue* metrics, std::ostream& os) {
  os << "## Dropped-record accounting\n\n";
  bool any = false;
  std::uint64_t spans = 0;
  std::uint64_t ledger = 0;
  if (trace) {
    if (const JsonValue* od = trace->get("otherData")) {
      spans = std::max<std::uint64_t>(
          spans, static_cast<std::uint64_t>(od->int_or("dropped_spans", 0)));
      any = true;
    }
  }
  if (!samples.empty()) {
    const JsonValue& last = samples.back();
    spans = std::max<std::uint64_t>(
        spans, static_cast<std::uint64_t>(last.int_or("spans_dropped", 0)));
    ledger = std::max<std::uint64_t>(
        ledger, static_cast<std::uint64_t>(last.int_or("ledger_dropped", 0)));
    any = true;
  }
  if (metrics) {
    if (const JsonValue* gauges = metrics->get("gauges")) {
      spans = std::max<std::uint64_t>(
          spans,
          static_cast<std::uint64_t>(gauges->int_or("obs.spans_dropped", 0)));
      ledger = std::max<std::uint64_t>(
          ledger,
          static_cast<std::uint64_t>(gauges->int_or("obs.ledger_dropped", 0)));
      any = true;
    }
  }
  if (!any) {
    os << "No drop counters in the inputs.\n\n";
    return;
  }
  if (spans == 0 && ledger == 0) {
    os << "No spans or move records were dropped; the exports are "
          "complete.\n\n";
    return;
  }
  os << "**Warning: the observability buffers overflowed.** " << spans
     << " span(s) and " << ledger
     << " move record(s) were dropped; the trace/move-log files are "
        "incomplete.\n\n";
}

void section_metrics(const JsonValue& metrics, std::ostream& os) {
  os << "## Metrics highlights\n\n";
  const JsonValue* counters = metrics.get("counters");
  const JsonValue* gauges = metrics.get("gauges");
  const bool have_counters =
      counters && counters->is_object() && !counters->members().empty();
  const bool have_gauges =
      gauges && gauges->is_object() && !gauges->members().empty();
  if (!have_counters && !have_gauges) {
    os << "Metrics snapshot has no counters or gauges.\n\n";
    return;
  }
  os << "| metric | value |\n|---|---:|\n";
  if (have_counters) {
    for (const auto& [name, v] : counters->members()) {
      os << "| " << name << " | " << fmt(v.as_number()) << " |\n";
    }
  }
  if (have_gauges) {
    for (const auto& [name, v] : gauges->members()) {
      os << "| " << name << " (gauge) | " << fmt(v.as_number()) << " |\n";
    }
  }
  os << "\n";
}

void section_jobs(const std::vector<JsonValue>& samples, std::ostream& os) {
  if (samples.empty()) return;
  // Final per-job counters from the last sample that mentions each job.
  std::map<std::uint64_t, const JsonValue*> last;
  for (const JsonValue& s : samples) {
    const JsonValue* jobs = s.get("jobs");
    if (!jobs || !jobs->is_array()) continue;
    for (const JsonValue& j : jobs->items()) {
      last[static_cast<std::uint64_t>(j.int_or("job", 0))] = &j;
    }
  }
  if (last.empty()) return;
  os << "## Per-job search state (final sample)\n\n";
  os << "| job | passes | applied | accepted | refuted | best cost | vdd | "
        "clock ns |\n";
  os << "|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& [id, j] : last) {
    os << "| " << id << " | " << j->int_or("passes", 0) << " | "
       << j->int_or("moves_applied", 0) << " | "
       << j->int_or("moves_accepted", 0) << " | "
       << j->int_or("rewrites_refuted", 0) << " | "
       << fmt(j->num_or("best_cost", 0)) << " | " << fmt(j->num_or("vdd", 0))
       << " | " << fmt(j->num_or("clock_ns", 0)) << " |\n";
  }
  os << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> args = parse(argc, argv);
  if (!args) {
    usage();
    return 2;
  }

  std::optional<JsonValue> trace;
  std::optional<JsonValue> metrics;
  std::vector<JsonValue> moves;
  std::vector<JsonValue> samples;

  if (!args->trace.empty()) {
    std::string text;
    std::string err;
    JsonValue v;
    if (!read_file(args->trace, &text)) return 1;
    if (!json_parse(text, &v, &err)) {
      std::fprintf(stderr, "hsyn-report: %s: %s\n", args->trace.c_str(),
                   err.c_str());
      return 1;
    }
    trace = std::move(v);
  }
  if (!args->metrics.empty()) {
    std::string text;
    std::string err;
    JsonValue v;
    if (!read_file(args->metrics, &text)) return 1;
    if (!json_parse(text, &v, &err)) {
      std::fprintf(stderr, "hsyn-report: %s: %s\n", args->metrics.c_str(),
                   err.c_str());
      return 1;
    }
    metrics = std::move(v);
  }
  if (!args->move_log.empty()) {
    std::string text;
    if (!read_file(args->move_log, &text)) return 1;
    if (!parse_jsonl(text, args->move_log, &moves)) return 1;
  }
  if (!args->telemetry.empty()) {
    std::string text;
    if (!read_file(args->telemetry, &text)) return 1;
    if (!parse_jsonl(text, args->telemetry, &samples)) return 1;
  }

  std::ostringstream os;
  os << "# hsyn run report\n\nInputs:\n\n";
  if (trace) os << "- trace: `" << args->trace << "`\n";
  if (!moves.empty() || !args->move_log.empty()) {
    os << "- move log: `" << args->move_log << "` (" << moves.size()
       << " record(s))\n";
  }
  if (metrics) os << "- metrics: `" << args->metrics << "`\n";
  if (!samples.empty() || !args->telemetry.empty()) {
    os << "- telemetry: `" << args->telemetry << "` (" << samples.size()
       << " sample(s))\n";
  }
  os << "\n";

  if (!args->move_log.empty()) {
    section_convergence(moves, os);
    section_accept_rate(moves, os);
  }
  if (trace) section_phases(*trace, os);
  if (!args->telemetry.empty() || metrics) {
    section_cache(samples, metrics ? &*metrics : nullptr, os);
  }
  section_jobs(samples, os);
  section_dropped(trace ? &*trace : nullptr, samples,
                  metrics ? &*metrics : nullptr, os);
  if (metrics) section_metrics(*metrics, os);

  const std::string report = os.str();
  if (args->out.empty()) {
    std::fputs(report.c_str(), stdout);
    return 0;
  }
  std::ofstream out(args->out);
  if (!out) {
    std::fprintf(stderr, "hsyn-report: cannot write %s\n", args->out.c_str());
    return 1;
  }
  out << report;
  return 0;
}
