// hsyn-lint: standalone static checker for the textual H-SYN formats.
//
//   hsyn-lint [--json] [--library FILE] [--trace FILE] [--benchmarks]
//             [--werror] [--min-severity LEVEL] [--metrics-out FILE]
//             [DESIGN.dfg ...]
//
// Each positional file is parsed as a hierarchical-DFG design and run
// through the full check-pass registry (parse failures surface as
// error[PARSE] diagnostics with the reader's line-numbered message).
// --library / --trace validate the other two textio formats the same
// way (a valid --trace additionally seeds the dataflow passes' input
// facts when linting designs); --benchmarks lints every built-in
// benchmark design. --werror fails (exit 1) on warnings, not just
// errors; --min-severity note|warning|error drops findings below the
// level from output and counts. --metrics-out snapshots the unified
// obs metrics registry (targets linted, diagnostics per severity) as
// JSON -- the same exporter the hsyn CLI uses. Exit status: 0 when no
// (counted) errors were found, 1 when any lint or parse error fired
// (or any warning under --werror), 2 on usage errors or unreadable
// files.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.h"
#include "check/check.h"
#include "dfg/textio.h"
#include "library/textio.h"
#include "obs/metrics.h"
#include "power/trace_io.h"
#include "util/json.h"

namespace {

struct Args {
  std::vector<std::string> design_files;
  std::string library_file;
  std::string trace_file;
  std::string metrics_out;
  bool benchmarks = false;
  bool json = false;
  bool werror = false;
  hsyn::lint::Severity min_severity = hsyn::lint::Severity::Note;
};

void usage() {
  std::fprintf(stderr,
               "usage: hsyn-lint [--json] [--library FILE] [--trace FILE]\n"
               "                 [--benchmarks] [--werror]\n"
               "                 [--min-severity note|warning|error]\n"
               "                 [--metrics-out FILE] [DESIGN.dfg ...]\n");
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// One lint target's outcome, printed in text or JSON form.
struct Outcome {
  std::string name;
  hsyn::lint::Report report;
  std::string parse_error;  ///< non-empty: parsing failed, no report ran
};

void print_text(const std::vector<Outcome>& outcomes) {
  for (const Outcome& o : outcomes) {
    std::printf("== %s\n", o.name.c_str());
    if (!o.parse_error.empty()) {
      std::printf("error[PARSE] %s: %s\n1 error(s), 0 warning(s)\n",
                  o.name.c_str(), o.parse_error.c_str());
    } else {
      std::fputs(o.report.to_text().c_str(), stdout);
    }
  }
}

void print_json(const std::vector<Outcome>& outcomes) {
  std::printf("[\n");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    // Names are paths/identifiers; the shared escaper (util/json.h)
    // handles quotes, backslashes, and control bytes alike.
    std::printf("{\"target\": %s, ", hsyn::json_quote(o.name).c_str());
    if (!o.parse_error.empty()) {
      hsyn::lint::Report rep;
      rep.add("PARSE", hsyn::lint::Severity::Error, o.name, o.parse_error);
      std::printf("\"result\": %s}", rep.to_json().c_str());
    } else {
      std::printf("\"result\": %s}", o.report.to_json().c_str());
    }
    std::printf("%s\n", i + 1 < outcomes.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsyn;
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // --flag=VALUE: split so both spellings hit the same handlers below.
    std::optional<std::string> inline_val;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_val = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto next = [&]() -> const char* {
      if (inline_val) return inline_val->c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--json") {
      a.json = true;
    } else if (arg == "--benchmarks") {
      a.benchmarks = true;
    } else if (arg == "--werror") {
      a.werror = true;
    } else if (arg == "--min-severity") {
      const char* v = next();
      if (!v) {
        usage();
        return 2;
      }
      if (std::strcmp(v, "note") == 0) {
        a.min_severity = lint::Severity::Note;
      } else if (std::strcmp(v, "warning") == 0) {
        a.min_severity = lint::Severity::Warning;
      } else if (std::strcmp(v, "error") == 0) {
        a.min_severity = lint::Severity::Error;
      } else {
        std::fprintf(stderr, "unknown severity: %s\n", v);
        usage();
        return 2;
      }
    } else if (arg == "--library") {
      const char* v = next();
      if (!v) {
        usage();
        return 2;
      }
      a.library_file = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) {
        usage();
        return 2;
      }
      a.trace_file = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) {
        usage();
        return 2;
      }
      a.metrics_out = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      a.design_files.push_back(arg);
    }
  }
  if (a.design_files.empty() && a.library_file.empty() &&
      a.trace_file.empty() && !a.benchmarks) {
    usage();
    return 2;
  }

  std::vector<Outcome> outcomes;
  bool any_error = false;
  auto record = [&](Outcome o) {
    // --min-severity drops findings below the floor before they are
    // printed or counted; --werror promotes surviving warnings to a
    // failing exit status (the report itself is untouched, so
    // warnings still print as warnings).
    o.report = o.report.filtered(a.min_severity);
    any_error = any_error || !o.parse_error.empty() || !o.report.ok() ||
                (a.werror && o.report.warnings() > 0);
    outcomes.push_back(std::move(o));
  };

  // Parse --trace up front: a valid trace seeds the dataflow passes'
  // input facts for every design linted below.
  std::optional<Trace> trace;
  if (!a.trace_file.empty()) {
    std::string text;
    if (!read_file(a.trace_file, &text)) {
      std::fprintf(stderr, "cannot read %s\n", a.trace_file.c_str());
      return 2;
    }
    Outcome o;
    o.name = a.trace_file;
    try {
      const Trace t = trace_from_text(text);
      if (t.empty()) {
        o.report.add("TRACE001", lint::Severity::Warning, a.trace_file,
                     "trace holds no samples");
      } else {
        trace = t;
      }
    } catch (const std::exception& e) {
      o.parse_error = e.what();
    }
    record(std::move(o));
  }
  const Trace* seed = trace ? &*trace : nullptr;

  for (const std::string& file : a.design_files) {
    std::string text;
    if (!read_file(file, &text)) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 2;
    }
    Outcome o;
    o.name = file;
    try {
      const Design design = design_from_text(text);
      o.report = lint::lint_design(design, seed);
    } catch (const std::exception& e) {
      o.parse_error = e.what();
    }
    record(std::move(o));
  }

  if (!a.library_file.empty()) {
    std::string text;
    if (!read_file(a.library_file, &text)) {
      std::fprintf(stderr, "cannot read %s\n", a.library_file.c_str());
      return 2;
    }
    Outcome o;
    o.name = a.library_file;
    try {
      const Library lib = library_from_text(text);
      if (lib.num_fu_types() == 0) {
        o.report.add("LIB001", lint::Severity::Error, a.library_file,
                     "library declares no functional-unit types");
      }
    } catch (const std::exception& e) {
      o.parse_error = e.what();
    }
    record(std::move(o));
  }

  if (a.benchmarks) {
    const Library lib = default_library();
    for (const std::string& name : benchmark_names()) {
      Outcome o;
      o.name = "benchmark:" + name;
      try {
        const Benchmark b = make_benchmark(name, lib);
        o.report = lint::lint_design(b.design, seed);
      } catch (const std::exception& e) {
        o.parse_error = e.what();
      }
      record(std::move(o));
    }
  }

  if (a.json) {
    print_json(outcomes);
  } else {
    print_text(outcomes);
  }

  if (!a.metrics_out.empty()) {
    // Feed the lint totals into the unified metrics registry so the
    // snapshot format matches the one `hsyn --metrics-out` writes.
    obs::Registry& reg = obs::Registry::instance();
    for (const Outcome& o : outcomes) {
      reg.counter("lint.targets").add(1);
      if (!o.parse_error.empty()) {
        reg.counter("lint.parse_errors").add(1);
        reg.counter("lint.errors").add(1);
      } else {
        reg.counter("lint.errors").add(
            static_cast<std::uint64_t>(o.report.errors()));
        reg.counter("lint.warnings").add(
            static_cast<std::uint64_t>(o.report.warnings()));
      }
    }
    if (!reg.write_json(a.metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", a.metrics_out.c_str());
      return 2;
    }
  }
  return any_error ? 1 : 0;
}
