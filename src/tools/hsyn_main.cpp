// The H-SYN command-line tool: reads a textual hierarchical DFG design,
// synthesizes it under a throughput constraint, and writes the RTL
// outputs (structural netlist, FSM controller, Graphviz of the input).
//
//   hsyn (--design FILE | --benchmark NAME) [--objective power|area]
//        [--mode hier|flat] [--laxity F | --period-ns T] [--netlist FILE]
//        [--fsm FILE] [--dot FILE] [--no-verify] [--seed N] [--threads N]
//        [--templates] [--verbose] [--trace-out FILE] [--move-log FILE]
//        [--metrics-out FILE]
//
// Portfolio search (src/synth/portfolio.h): --portfolio N explores N
// concurrent search strategies over the shared runtime and keeps the
// deterministic best-of; --strategies SPEC names them explicitly,
// --portfolio-rounds N adds learning rounds, and HSYN_PORTFOLIO=N is the
// environment spelling. Results are bit-identical at any thread count.
//
// Every flag also accepts the --flag=VALUE form. With --templates,
// fast/low-power/compact complex-module templates are generated for
// every non-top behavior (the Fig. 2 style library); without it,
// synthesis builds module implementations from scratch.
//
// Server mode (src/serve/, docs/PROTOCOL.md): `hsyn --serve-unix PATH`
// or `hsyn --serve PORT` runs a daemon that accepts synthesis jobs over
// a local socket and multiplexes up to --sessions of them over one
// shared runtime; `hsyn --connect ADDR` plus the normal design flags
// submits one job and renders the result bit-identically to a direct
// run. --job-time-ms / --job-cache-mb attach per-job budgets, --progress
// streams progress events to stderr, --ping / --shutdown talk to a
// running daemon.
//
// Observability (src/obs/): --trace-out writes a Chrome trace-event
// JSON of the run's spans (Perfetto-loadable; HSYN_TRACE=FILE does the
// same), --move-log records every attempted move to JSONL (or CSV when
// the path ends in .csv) and prints the per-class accept-rate table,
// --metrics-out writes the unified metrics registry snapshot. None of
// them change synthesis results. A SIGINT/SIGTERM cancels the in-flight
// run cooperatively and the exports are still flushed on the way out.
//
// Live telemetry (src/obs/telemetry.h): --telemetry-out FILE samples
// the runtime/cache/search state on a background thread (HSYN_TELEMETRY_MS,
// default 250 ms) and writes the ring as JSONL on exit; --metrics-listen
// PORT (serve mode) exposes the metrics registry as Prometheus text on
// GET /metrics; --connect plus --stats prints a one-shot daemon
// snapshot, --watch[=JOB] streams live per-job telemetry lines until
// interrupted (or until the watched job finishes). Sampling is strictly
// read-only: results stay bit-identical with telemetry on or off.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "benchmarks/benchmarks.h"
#include "dfg/dot.h"
#include "eval/engine.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "power/replay.h"
#include "rtl/controller.h"
#include "rtl/netlist.h"
#include "runtime/cancel.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/jobs.h"
#include "serve/server.h"
#include "synth/synthesizer.h"
#include "util/log.h"
#include "verilog/verilog.h"

namespace {

struct Args {
  std::string design_file;
  std::string benchmark;  ///< built-in benchmark name instead of --design
  hsyn::Objective objective = hsyn::Objective::Power;
  hsyn::Mode mode = hsyn::Mode::Hierarchical;
  double laxity = 2.2;
  std::optional<double> period_ns;
  std::string library_file;
  std::string trace_file;
  std::string netlist_file;
  std::string verilog_file;
  std::string fsm_file;
  std::string dot_file;
  bool verify = true;
  /// Re-verify all IR invariants after every accepted move (src/check/).
  bool check_moves = false;
  bool verify_rewrites = false;
  bool templates = false;
  bool auto_variants = false;
  bool verbose = false;
  std::uint64_t seed = 42;
  /// 0 = automatic (HSYN_THREADS env, else hardware_concurrency).
  /// 1 reproduces the serial engine exactly; any count yields
  /// bit-identical synthesis results (see DESIGN.md).
  int threads = 0;
  /// Evaluation-cache budget in MB. 0 = HSYN_EVAL_CACHE_MB env, else the
  /// built-in default. The cache only changes synthesis speed, never its
  /// results.
  int eval_cache_mb = 0;
  /// Trace-replay backend override (power/replay.h); empty = HSYN_REPLAY
  /// env, else the compiled kernel. Both backends are bit-identical.
  std::string replay;
  /// Replay kernel ISA override (power/replay.h); empty = HSYN_REPLAY_ISA
  /// env, else native. Every ISA produces bit-identical results.
  std::string replay_isa;
  // Observability exports (empty = off).
  std::string trace_out;    ///< Chrome trace-event JSON (or HSYN_TRACE env)
  std::string move_log;     ///< move ledger JSONL (.csv for CSV)
  std::string metrics_out;  ///< metrics registry JSON snapshot
  /// --telemetry-out FILE: run the background sampler and dump its ring
  /// as JSONL on exit (direct and serve modes).
  std::string telemetry_out;
  /// --metrics-listen PORT (serve mode): Prometheus text on /metrics.
  int metrics_listen = 0;
  bool stats = false;             ///< --connect + --stats: one-shot snapshot
  bool watch = false;             ///< --connect + --watch[=JOB]: live stream
  std::uint64_t watch_job = 0;    ///< 0 = whole server
  // Server mode.
  int serve_port = 0;        ///< --serve PORT: daemon on loopback TCP
  std::string serve_unix;    ///< --serve-unix PATH: daemon on a unix socket
  int sessions = 4;          ///< --sessions: concurrent daemon jobs
  std::string connect;       ///< --connect ADDR: submit via a daemon
  bool ping = false;         ///< --connect + --ping: liveness probe
  bool shutdown = false;     ///< --connect + --shutdown: stop the daemon
  bool progress = false;     ///< stream progress events to stderr
  std::int64_t job_time_ms = 0;   ///< per-job time budget (0 = none)
  std::int64_t job_cache_mb = 0;  ///< per-job eval-cache budget (0 = none)
  /// --portfolio N (or HSYN_PORTFOLIO): N concurrent search strategies,
  /// deterministic best-of (synth/portfolio.h). 0 = single-seed engine.
  int portfolio = 0;
  int portfolio_rounds = 1;  ///< --portfolio-rounds: learning rounds
  std::string strategies;    ///< --strategies SPEC: explicit strategy list
};

void usage() {
  std::fprintf(stderr,
               "usage: hsyn (--design FILE | --benchmark NAME) [--objective power|area]\n"
               "            [--mode hier|flat] [--laxity F | --period-ns T]\n"
               "            [--library FILE] [--trace FILE]\n"
               "            [--netlist FILE] [--verilog FILE] [--fsm FILE] [--dot FILE]\n"
               "            [--no-verify] [--check-moves] [--verify-rewrites] [--templates] [--auto-variants] [--seed N] "
               "[--threads N] [--eval-cache-mb N] [--replay interp|compiled] "
               "[--replay-isa scalar|avx2|neon|native] [--verbose]\n"
               "            [--trace-out FILE] [--move-log FILE] [--metrics-out FILE]\n"
               "            [--telemetry-out FILE]\n"
               "            [--progress] [--job-time-ms N] [--job-cache-mb N]\n"
               "            [--portfolio N] [--portfolio-rounds N] [--strategies SPEC]\n"
               "       hsyn (--serve PORT | --serve-unix PATH) [--sessions N]\n"
               "            [--metrics-listen PORT] [runtime flags]\n"
               "       hsyn --connect ADDR (design flags | --ping | --shutdown |\n"
               "            --stats | --watch[=JOB])\n"
               "(each flag also accepts the --flag=VALUE form)\n");
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // --flag=VALUE: split so both spellings hit the same handlers below.
    std::optional<std::string> inline_val;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_val = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto next = [&]() -> const char* {
      if (inline_val) return inline_val->c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--design") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.design_file = v;
    } else if (arg == "--benchmark") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.benchmark = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.trace_out = v;
    } else if (arg == "--move-log") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.move_log = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.metrics_out = v;
    } else if (arg == "--telemetry-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.telemetry_out = v;
    } else if (arg == "--metrics-listen") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.metrics_listen = std::atoi(v);
      if (a.metrics_listen <= 0 || a.metrics_listen > 65535) {
        return std::nullopt;
      }
    } else if (arg == "--stats") {
      a.stats = true;
    } else if (arg == "--watch") {
      // Bare --watch watches the whole server; only the --watch=N
      // spelling names a job (a bare flag never consumes the next arg).
      a.watch = true;
      if (inline_val) {
        a.watch_job = static_cast<std::uint64_t>(std::atoll(inline_val->c_str()));
      }
    } else if (arg == "--objective") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "power") == 0) {
        a.objective = hsyn::Objective::Power;
      } else if (std::strcmp(v, "area") == 0) {
        a.objective = hsyn::Objective::Area;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "hier") == 0) {
        a.mode = hsyn::Mode::Hierarchical;
      } else if (std::strcmp(v, "flat") == 0) {
        a.mode = hsyn::Mode::Flattened;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--laxity") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.laxity = std::atof(v);
    } else if (arg == "--period-ns") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.period_ns = std::atof(v);
    } else if (arg == "--library") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.library_file = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.trace_file = v;
    } else if (arg == "--netlist") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.netlist_file = v;
    } else if (arg == "--verilog") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.verilog_file = v;
    } else if (arg == "--fsm") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.fsm_file = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.dot_file = v;
    } else if (arg == "--no-verify") {
      a.verify = false;
    } else if (arg == "--check-moves") {
      a.check_moves = true;
    } else if (arg == "--verify-rewrites") {
      a.verify_rewrites = true;
    } else if (arg == "--templates") {
      a.templates = true;
    } else if (arg == "--auto-variants") {
      a.auto_variants = true;
    } else if (arg == "--verbose") {
      a.verbose = true;
    } else if (arg == "--progress") {
      a.progress = true;
    } else if (arg == "--ping") {
      a.ping = true;
    } else if (arg == "--shutdown") {
      a.shutdown = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.threads = std::atoi(v);
      if (a.threads < 0) return std::nullopt;
    } else if (arg == "--eval-cache-mb") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.eval_cache_mb = std::atoi(v);
      if (a.eval_cache_mb <= 0) return std::nullopt;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.replay = v;
      hsyn::ReplayMode mode;
      if (!hsyn::parse_replay_mode(a.replay, &mode)) return std::nullopt;
    } else if (arg == "--replay-isa") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.replay_isa = v;
      hsyn::ReplayIsa isa;
      if (!hsyn::parse_replay_isa(a.replay_isa, &isa)) return std::nullopt;
    } else if (arg == "--serve") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.serve_port = std::atoi(v);
      if (a.serve_port <= 0 || a.serve_port > 65535) return std::nullopt;
    } else if (arg == "--serve-unix") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.serve_unix = v;
    } else if (arg == "--sessions") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.sessions = std::atoi(v);
      if (a.sessions <= 0) return std::nullopt;
    } else if (arg == "--connect") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.connect = v;
    } else if (arg == "--job-time-ms") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.job_time_ms = std::atoll(v);
      if (a.job_time_ms <= 0) return std::nullopt;
    } else if (arg == "--job-cache-mb") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.job_cache_mb = std::atoll(v);
      if (a.job_cache_mb <= 0) return std::nullopt;
    } else if (arg == "--portfolio") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.portfolio = std::atoi(v);
      if (a.portfolio < 0) return std::nullopt;
    } else if (arg == "--portfolio-rounds") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.portfolio_rounds = std::atoi(v);
      if (a.portfolio_rounds < 1) return std::nullopt;
    } else if (arg == "--strategies") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.strategies = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  // HSYN_PORTFOLIO=N turns any run into a portfolio run without touching
  // the command line (explicit --portfolio wins).
  if (a.portfolio == 0 && a.strategies.empty()) {
    if (const char* env = std::getenv("HSYN_PORTFOLIO")) {
      const int n = std::atoi(env);
      if (n > 0) a.portfolio = n;
    }
  }
  const bool serving = a.serve_port != 0 || !a.serve_unix.empty();
  if (serving && (a.serve_port != 0 && !a.serve_unix.empty())) {
    return std::nullopt;  // one listen address
  }
  if (serving && !a.connect.empty()) return std::nullopt;
  if ((a.ping || a.shutdown) && a.connect.empty()) return std::nullopt;
  // --stats/--watch interrogate a running daemon; --metrics-listen is
  // part of the daemon itself.
  if ((a.stats || a.watch) && a.connect.empty()) return std::nullopt;
  if (a.metrics_listen != 0 && !serving) return std::nullopt;
  const bool needs_design =
      !serving && !a.ping && !a.shutdown && !a.stats && !a.watch;
  if (needs_design && a.design_file.empty() == a.benchmark.empty()) {
    return std::nullopt;  // exactly one of --design / --benchmark
  }
  return a;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Progress events go to stderr so stdout stays bit-identical to a run
/// without --progress.
void print_progress(const hsyn::SynthProgress& ev) {
  using Stage = hsyn::SynthProgress::Stage;
  switch (ev.stage) {
    case Stage::Probe:
      std::fprintf(stderr, "progress: probe vdd=%.2f feasible-clocks=%d\n",
                   ev.vdd, ev.feasible_clocks);
      break;
    case Stage::Pass:
      std::fprintf(stderr,
                   "progress: vdd=%.2f clk=%.1f pass=%d moves=%d kept=%d "
                   "cost=%.6g\n",
                   ev.vdd, ev.clock_ns, ev.pass, ev.moves_applied,
                   ev.moves_kept, ev.cost);
      break;
    case Stage::OpPoint:
      std::fprintf(stderr,
                   "progress: op-point vdd=%.2f clk=%.1f cost=%.6g "
                   "area=%.1f power=%.4f\n",
                   ev.vdd, ev.clock_ns, ev.cost, ev.area, ev.power);
      break;
    case Stage::Strategy:
      std::fprintf(stderr,
                   "progress: strategy %d done cost=%.6g area=%.1f "
                   "power=%.4f moves=%d kept=%d\n",
                   ev.pass, ev.cost, ev.area, ev.power, ev.moves_applied,
                   ev.moves_kept);
      break;
  }
}

/// Configure the shared runtime from the CLI flags (direct and serve
/// modes; a --connect client leaves all of this to the daemon).
void setup_runtime(const Args& args) {
  using namespace hsyn;
  // Parallel runtime: --threads N, else HSYN_THREADS, else all cores.
  // Synthesis results are bit-identical for every thread count.
  runtime::set_threads(args.threads);
  if (args.eval_cache_mb > 0) {
    eval::EvalEngine::instance().set_capacity_mb(
        static_cast<std::size_t>(args.eval_cache_mb));
  }
  if (!args.replay.empty()) {
    ReplayMode mode = ReplayMode::Compiled;
    parse_replay_mode(args.replay, &mode);  // validated by parse()
    set_replay_mode(mode);
  }
  if (!args.replay_isa.empty()) {
    ReplayIsa isa = ReplayIsa::Native;
    parse_replay_isa(args.replay_isa, &isa);  // validated by parse()
    set_replay_isa(isa);  // hard error if explicitly unavailable
  }
  if (args.verbose) {
    std::printf("runtime: %d thread(s)\n", runtime::threads());
    std::printf("eval cache: %zu MB\n",
                eval::EvalEngine::instance().capacity_bytes() >> 20);
    std::printf("trace replay: %s\n",
                replay_mode() == ReplayMode::Interp ? "interpreter"
                                                    : "compiled kernel");
    std::printf("replay isa: %s\n", replay_isa_name(replay_isa()));
  }
}

/// Resolve --trace-out (or HSYN_TRACE) and switch on the requested
/// observability sinks. The span tracer costs one relaxed atomic load
/// per span when disabled, so it is only enabled when an export was
/// requested.
std::string setup_obs(const Args& args) {
  std::string trace_out = args.trace_out;
  if (trace_out.empty()) {
    if (const char* env = std::getenv("HSYN_TRACE")) trace_out = env;
  }
  if (!trace_out.empty()) hsyn::obs::Tracer::instance().set_enabled(true);
  if (!args.move_log.empty()) {
    hsyn::obs::MoveLedger::instance().set_enabled(true);
  }
  // The sampler only reads; serve mode starts it unconditionally (in
  // Server::run) because stats/watch/metrics-listen read live samples.
  if (!args.telemetry_out.empty()) {
    hsyn::obs::process_uptime_ms();  // anchor uptime at startup
    hsyn::obs::Telemetry::instance().start();
  }
  return trace_out;
}

/// Flush the trace/ledger/metrics exports (the tail of a direct run, a
/// cancelled run on its way out, and daemon shutdown all come through
/// here). Returns false when a file could not be written.
bool flush_obs(const Args& args, const std::string& trace_out) {
  using namespace hsyn;
  bool ok = true;
  if (!args.move_log.empty() && obs::MoveLedger::instance().enabled() &&
      !obs::MoveLedger::instance().write(args.move_log)) {
    std::fprintf(stderr, "cannot write %s\n", args.move_log.c_str());
    ok = false;
  }
  if (!trace_out.empty()) {
    if (!obs::Tracer::instance().write_chrome_json(trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      ok = false;
    } else if (args.verbose) {
      std::printf("trace: %zu span(s) written to %s\n",
                  obs::Tracer::instance().events().size(), trace_out.c_str());
    }
  }
  // Dropped-record accounting: surface any span/ledger loss both in the
  // metrics snapshot (gauges) and as a one-line warning, so a truncated
  // export is never mistaken for a complete one.
  const std::uint64_t spans_dropped = obs::Tracer::instance().dropped();
  const std::uint64_t ledger_dropped = obs::MoveLedger::instance().dropped();
  obs::Registry::instance().gauge("obs.spans_dropped").set(
      static_cast<double>(spans_dropped));
  obs::Registry::instance().gauge("obs.ledger_dropped").set(
      static_cast<double>(ledger_dropped));
  if (!args.metrics_out.empty()) {
    // runtime counters reach the snapshot through the sources the
    // runtime registered in the obs registry (see runtime/stats.cpp).
    if (!obs::Registry::instance().write_json(args.metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_out.c_str());
      ok = false;
    }
  }
  if (spans_dropped != 0 || ledger_dropped != 0) {
    std::fprintf(stderr,
                 "hsyn: warning: observability buffers overflowed "
                 "(%llu span(s), %llu move record(s) dropped)\n",
                 static_cast<unsigned long long>(spans_dropped),
                 static_cast<unsigned long long>(ledger_dropped));
  }
  // The telemetry ring outlives the sampler thread: stop it (idempotent;
  // serve mode already did) and dump whatever was recorded.
  if (!args.telemetry_out.empty()) {
    obs::Telemetry::instance().stop();
    if (!obs::Telemetry::instance().write_jsonl(args.telemetry_out)) {
      std::fprintf(stderr, "cannot write %s\n", args.telemetry_out.c_str());
      ok = false;
    }
  }
  return ok;
}

/// Build the JobSpec both the direct path and the --connect client
/// submit; file contents are read here, on the client side.
bool spec_from_args(const Args& args, hsyn::serve::JobSpec* spec) {
  spec->benchmark = args.benchmark;
  if (!args.design_file.empty()) {
    if (!read_file(args.design_file, &spec->design_text)) return false;
    spec->design_name = args.design_file;
  }
  if (!args.library_file.empty() &&
      !read_file(args.library_file, &spec->library_text)) {
    return false;
  }
  if (!args.trace_file.empty() &&
      !read_file(args.trace_file, &spec->trace_text)) {
    return false;
  }
  spec->objective = args.objective;
  spec->mode = args.mode;
  spec->laxity = args.laxity;
  spec->period_ns = args.period_ns.value_or(0);
  spec->seed = args.seed;
  spec->templates = args.templates;
  spec->auto_variants = args.auto_variants;
  spec->verify = args.verify;
  spec->check_moves = args.check_moves;
  spec->verify_rewrites = args.verify_rewrites;
  spec->time_budget_ms = args.job_time_ms;
  spec->cache_budget_mb = args.job_cache_mb;
  spec->want_progress = args.progress;
  spec->want_ledger = !args.move_log.empty();
  spec->portfolio = args.portfolio;
  spec->portfolio_rounds = args.portfolio_rounds;
  spec->strategies = args.strategies;
  return true;
}

/// Render a finished job the way every mode does: the report verbatim
/// on stdout, the ledger table after it, errors on stderr. Returns the
/// process exit code (130 = cancelled, mirroring 128+SIGINT).
int render_outcome(const Args& args, const hsyn::serve::JobOutcome& outcome) {
  std::fputs(outcome.report.c_str(), stdout);
  if (outcome.ok && !args.move_log.empty()) {
    std::printf("\nmove ledger (%llu attempts):\n%s",
                static_cast<unsigned long long>(outcome.ledger_attempts),
                outcome.ledger_table.c_str());
  }
  if (outcome.cancelled) {
    std::fprintf(stderr, "cancelled: %s\n", outcome.error.c_str());
    return 130;
  }
  if (!outcome.ok) {
    std::fprintf(stderr, "%s\n", outcome.error.c_str());
    return 1;
  }
  if (args.verify && !outcome.verify_ok) return 1;
  return 0;
}

/// The classic one-shot CLI, now the same pipeline the daemon runs.
int run_direct(const Args& args) {
  using namespace hsyn;
  setup_runtime(args);
  const std::string trace_out = setup_obs(args);

  serve::JobSpec spec;
  if (!spec_from_args(args, &spec)) return 1;

  serve::JobHooks hooks;
  hooks.cancel = std::make_shared<runtime::CancelToken>();
  hooks.cancel->link_to_signals();
  runtime::install_signal_handlers();
  if (args.progress) hooks.progress = print_progress;
  // A per-job cache budget needs a nonzero job id for attribution; the
  // ledger and report are unaffected by the id itself.
  if (spec.cache_budget_mb > 0) hooks.job_id = 1;

  const serve::JobOutcome outcome = serve::run_job(spec, hooks);

  const int rc = render_outcome(args, outcome);
  if (!flush_obs(args, trace_out) && rc == 0) return 1;
  if (rc != 0) return rc;

  // File outputs (direct mode only; a --connect client has no Datapath).
  const SynthResult& r = *outcome.result;
  const Library& lib = *outcome.lib;
  if (!args.netlist_file.empty() &&
      !write_file(args.netlist_file, netlist_to_text(r.dp, lib))) {
    return 1;
  }
  if (!args.verilog_file.empty() &&
      !write_file(args.verilog_file, to_verilog(r.dp, lib, r.pt))) {
    return 1;
  }
  if (!args.fsm_file.empty()) {
    const Controller fsm = build_controller(r.dp, lib, r.pt);
    if (!write_file(args.fsm_file, controller_to_text(fsm))) return 1;
  }
  if (!args.dot_file.empty()) {
    const Design& design = outcome.bench ? outcome.bench->design
                                         : *outcome.design;
    if (!write_file(args.dot_file,
                    dfg_to_dot(design.behavior(design.top_name())))) {
      return 1;
    }
  }
  return 0;
}

/// `hsyn --serve[-unix]`: run the daemon until a signal or a client
/// shutdown request, then flush the observability exports.
int run_serve(const Args& args) {
  using namespace hsyn;
  setup_runtime(args);
  const std::string trace_out = setup_obs(args);
  runtime::install_signal_handlers();

  serve::ServerOptions opts;
  opts.unix_path = args.serve_unix;
  opts.tcp_port = args.serve_port;
  opts.sessions = args.sessions;
  opts.metrics_port = args.metrics_listen;
  serve::Server server(std::move(opts));
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "hsyn: %s\n", err.c_str());
    return 1;
  }
  if (!args.serve_unix.empty()) {
    std::fprintf(stderr, "hsyn: serving on %s (%d session(s), %d thread(s))\n",
                 args.serve_unix.c_str(), args.sessions, runtime::threads());
  } else {
    std::fprintf(stderr,
                 "hsyn: serving on 127.0.0.1:%d (%d session(s), %d thread(s))\n",
                 args.serve_port, args.sessions, runtime::threads());
  }
  if (args.metrics_listen > 0) {
    std::fprintf(stderr, "hsyn: metrics on http://127.0.0.1:%d/metrics\n",
                 args.metrics_listen);
  }
  const int rc = server.run();
  std::fprintf(stderr, "hsyn: daemon stopped\n");
  if (!flush_obs(args, trace_out) && rc == 0) return 1;
  return rc;
}

/// `hsyn --connect`: the CLI as a thin client of a running daemon.
int run_connect(const Args& args) {
  using namespace hsyn;
  // Everything that shapes the daemon's process (threads, caches,
  // replay backend) or needs the Datapath locally is a direct-mode
  // concern.
  if (!args.netlist_file.empty() || !args.verilog_file.empty() ||
      !args.fsm_file.empty() || !args.dot_file.empty()) {
    std::fprintf(stderr,
                 "hsyn: file outputs (--netlist/--verilog/--fsm/--dot) "
                 "require a direct run, not --connect\n");
    return 2;
  }
  if (!args.trace_out.empty() || !args.metrics_out.empty() ||
      !args.telemetry_out.empty()) {
    std::fprintf(stderr,
                 "hsyn: --trace-out/--metrics-out/--telemetry-out describe "
                 "the daemon process; pass them to --serve instead of "
                 "--connect\n");
    return 2;
  }
  if (args.threads != 0 || args.eval_cache_mb != 0 || !args.replay.empty() ||
      !args.replay_isa.empty()) {
    std::fprintf(stderr,
                 "hsyn: --threads/--eval-cache-mb/--replay/--replay-isa are "
                 "fixed by the daemon; pass them to --serve\n");
    return 2;
  }

  serve::Client client;
  std::string err;
  if (!client.connect(args.connect, &err)) {
    std::fprintf(stderr, "hsyn: %s\n", err.c_str());
    return 1;
  }
  if (args.ping) {
    if (!client.ping(&err)) {
      std::fprintf(stderr, "hsyn: %s\n", err.c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (args.shutdown) {
    if (!client.shutdown_server(&err)) {
      std::fprintf(stderr, "hsyn: %s\n", err.c_str());
      return 1;
    }
    return 0;
  }
  if (args.stats) {
    // The raw frame goes to stdout verbatim: jq-friendly, and immune to
    // any lossiness in the client-side decode.
    std::string raw;
    if (!client.stats(nullptr, nullptr, &raw, &err)) {
      std::fprintf(stderr, "hsyn: %s\n", err.c_str());
      return 1;
    }
    std::printf("%s\n", raw.c_str());
    return 0;
  }
  if (args.watch) {
    const std::uint64_t want = args.watch_job;
    const bool ok = client.watch(
        want,
        [&](const serve::TelemetryFrame& f) {
          bool keep = true;
          if (f.jobs.empty()) {
            std::printf("t=%llums jobs=0 tasks=%llu cache=%llu/%llu\n",
                        static_cast<unsigned long long>(f.uptime_ms),
                        static_cast<unsigned long long>(f.tasks),
                        static_cast<unsigned long long>(f.cache_hits),
                        static_cast<unsigned long long>(f.cache_misses));
          }
          for (const serve::JobTelemetry& j : f.jobs) {
            std::printf(
                "t=%llums job=%llu state=%s pass=%d applied=%llu "
                "accepted=%llu refuted=%llu best=%.6g cache=%llu/%llu\n",
                static_cast<unsigned long long>(f.uptime_ms),
                static_cast<unsigned long long>(j.job), j.state.c_str(),
                j.pass, static_cast<unsigned long long>(j.moves_applied),
                static_cast<unsigned long long>(j.moves_accepted),
                static_cast<unsigned long long>(j.rewrites_refuted),
                j.best_cost,
                static_cast<unsigned long long>(j.cache_hits),
                static_cast<unsigned long long>(j.cache_misses));
            // Watching one job ends when that job reaches a final state;
            // a whole-server watch streams until interrupted.
            if (want != 0 && j.job == want && j.state != "queued" &&
                j.state != "running") {
              keep = false;
            }
          }
          std::fflush(stdout);
          return keep;
        },
        &err);
    if (!ok) {
      std::fprintf(stderr, "hsyn: %s\n", err.c_str());
      return 1;
    }
    return 0;
  }

  serve::JobSpec spec;
  if (!spec_from_args(args, &spec)) return 1;
  serve::JobOutcome outcome;
  if (!client.run_job(spec, args.progress ? print_progress : nullptr,
                      &outcome, &err)) {
    std::fprintf(stderr, "hsyn: %s\n", err.c_str());
    return 1;
  }
  const int rc = render_outcome(args, outcome);
  // The move log the daemon recorded for this job, written client-side.
  // (JSONL only: group ids come from the daemon's global counter.)
  if (rc == 0 && !args.move_log.empty() &&
      !write_file(args.move_log, outcome.ledger_jsonl)) {
    return 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> args = parse(argc, argv);
  if (!args) {
    usage();
    return 2;
  }
  if (args->verbose) hsyn::set_log_level(hsyn::LogLevel::Info);
  try {
    if (args->serve_port != 0 || !args->serve_unix.empty()) {
      return run_serve(*args);
    }
    if (!args->connect.empty()) return run_connect(*args);
    return run_direct(*args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
