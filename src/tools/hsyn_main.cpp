// The H-SYN command-line tool: reads a textual hierarchical DFG design,
// synthesizes it under a throughput constraint, and writes the RTL
// outputs (structural netlist, FSM controller, Graphviz of the input).
//
//   hsyn (--design FILE | --benchmark NAME) [--objective power|area]
//        [--mode hier|flat] [--laxity F | --period-ns T] [--netlist FILE]
//        [--fsm FILE] [--dot FILE] [--no-verify] [--seed N] [--threads N]
//        [--templates] [--verbose] [--trace-out FILE] [--move-log FILE]
//        [--metrics-out FILE]
//
// Every flag also accepts the --flag=VALUE form. With --templates,
// fast/low-power/compact complex-module templates are generated for
// every non-top behavior (the Fig. 2 style library); without it,
// synthesis builds module implementations from scratch.
//
// Observability (src/obs/): --trace-out writes a Chrome trace-event
// JSON of the run's spans (Perfetto-loadable; HSYN_TRACE=FILE does the
// same), --move-log records every attempted move to JSONL (or CSV when
// the path ends in .csv) and prints the per-class accept-rate table,
// --metrics-out writes the unified metrics registry snapshot. None of
// them change synthesis results.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "benchmarks/benchmarks.h"
#include "dfg/dot.h"
#include "eval/engine.h"
#include "dfg/textio.h"
#include "dfg/transform.h"
#include "library/textio.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "power/replay.h"
#include "power/trace_io.h"
#include "power/rtlsim.h"
#include "rtl/controller.h"
#include "rtl/netlist.h"
#include "runtime/thread_pool.h"
#include "synth/report.h"
#include "synth/synthesizer.h"
#include "verilog/verilog.h"
#include "util/log.h"

namespace {

struct Args {
  std::string design_file;
  std::string benchmark;  ///< built-in benchmark name instead of --design
  hsyn::Objective objective = hsyn::Objective::Power;
  hsyn::Mode mode = hsyn::Mode::Hierarchical;
  double laxity = 2.2;
  std::optional<double> period_ns;
  std::string library_file;
  std::string trace_file;
  std::string netlist_file;
  std::string verilog_file;
  std::string fsm_file;
  std::string dot_file;
  bool verify = true;
  /// Re-verify all IR invariants after every accepted move (src/check/).
  bool check_moves = false;
  bool templates = false;
  bool auto_variants = false;
  bool verbose = false;
  std::uint64_t seed = 42;
  /// 0 = automatic (HSYN_THREADS env, else hardware_concurrency).
  /// 1 reproduces the serial engine exactly; any count yields
  /// bit-identical synthesis results (see DESIGN.md).
  int threads = 0;
  /// Evaluation-cache budget in MB. 0 = HSYN_EVAL_CACHE_MB env, else the
  /// built-in default. The cache only changes synthesis speed, never its
  /// results.
  int eval_cache_mb = 0;
  /// Trace-replay backend override (power/replay.h); empty = HSYN_REPLAY
  /// env, else the compiled kernel. Both backends are bit-identical.
  std::string replay;
  // Observability exports (empty = off).
  std::string trace_out;    ///< Chrome trace-event JSON (or HSYN_TRACE env)
  std::string move_log;     ///< move ledger JSONL (.csv for CSV)
  std::string metrics_out;  ///< metrics registry JSON snapshot
};

void usage() {
  std::fprintf(stderr,
               "usage: hsyn (--design FILE | --benchmark NAME) [--objective power|area]\n"
               "            [--mode hier|flat] [--laxity F | --period-ns T]\n"
               "            [--library FILE] [--trace FILE]\n"
               "            [--netlist FILE] [--verilog FILE] [--fsm FILE] [--dot FILE]\n"
               "            [--no-verify] [--check-moves] [--templates] [--auto-variants] [--seed N] "
               "[--threads N] [--eval-cache-mb N] [--replay interp|compiled] [--verbose]\n"
               "            [--trace-out FILE] [--move-log FILE] [--metrics-out FILE]\n"
               "(each flag also accepts the --flag=VALUE form)\n");
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // --flag=VALUE: split so both spellings hit the same handlers below.
    std::optional<std::string> inline_val;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_val = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto next = [&]() -> const char* {
      if (inline_val) return inline_val->c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--design") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.design_file = v;
    } else if (arg == "--benchmark") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.benchmark = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.trace_out = v;
    } else if (arg == "--move-log") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.move_log = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.metrics_out = v;
    } else if (arg == "--objective") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "power") == 0) {
        a.objective = hsyn::Objective::Power;
      } else if (std::strcmp(v, "area") == 0) {
        a.objective = hsyn::Objective::Area;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "hier") == 0) {
        a.mode = hsyn::Mode::Hierarchical;
      } else if (std::strcmp(v, "flat") == 0) {
        a.mode = hsyn::Mode::Flattened;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--laxity") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.laxity = std::atof(v);
    } else if (arg == "--period-ns") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.period_ns = std::atof(v);
    } else if (arg == "--library") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.library_file = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.trace_file = v;
    } else if (arg == "--netlist") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.netlist_file = v;
    } else if (arg == "--verilog") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.verilog_file = v;
    } else if (arg == "--fsm") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.fsm_file = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.dot_file = v;
    } else if (arg == "--no-verify") {
      a.verify = false;
    } else if (arg == "--check-moves") {
      a.check_moves = true;
    } else if (arg == "--templates") {
      a.templates = true;
    } else if (arg == "--auto-variants") {
      a.auto_variants = true;
    } else if (arg == "--verbose") {
      a.verbose = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.threads = std::atoi(v);
      if (a.threads < 0) return std::nullopt;
    } else if (arg == "--eval-cache-mb") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.eval_cache_mb = std::atoi(v);
      if (a.eval_cache_mb <= 0) return std::nullopt;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.replay = v;
      hsyn::ReplayMode mode;
      if (!hsyn::parse_replay_mode(a.replay, &mode)) return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (a.design_file.empty() == a.benchmark.empty()) {
    return std::nullopt;  // exactly one of --design / --benchmark
  }
  return a;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsyn;
  const std::optional<Args> args = parse(argc, argv);
  if (!args) {
    usage();
    return 2;
  }
  if (args->verbose) set_log_level(LogLevel::Info);
  // Parallel runtime: --threads N, else HSYN_THREADS, else all cores.
  // Synthesis results are bit-identical for every thread count.
  runtime::set_threads(args->threads);
  if (args->eval_cache_mb > 0) {
    eval::EvalEngine::instance().set_capacity_mb(
        static_cast<std::size_t>(args->eval_cache_mb));
  }
  if (!args->replay.empty()) {
    ReplayMode mode = ReplayMode::Compiled;
    parse_replay_mode(args->replay, &mode);  // validated by parse()
    set_replay_mode(mode);
  }
  if (args->verbose) {
    std::printf("runtime: %d thread(s)\n", runtime::threads());
    std::printf("eval cache: %zu MB\n",
                eval::EvalEngine::instance().capacity_bytes() >> 20);
    std::printf("trace replay: %s\n",
                replay_mode() == ReplayMode::Interp ? "interpreter"
                                                    : "compiled kernel");
  }

  // Observability: the span tracer costs one relaxed atomic load per
  // span when disabled, so it is only switched on when an export was
  // requested. HSYN_TRACE=FILE is the no-flag spelling of --trace-out.
  std::string trace_out = args->trace_out;
  if (trace_out.empty()) {
    if (const char* env = std::getenv("HSYN_TRACE")) trace_out = env;
  }
  if (!trace_out.empty()) obs::Tracer::instance().set_enabled(true);
  if (!args->move_log.empty()) obs::MoveLedger::instance().set_enabled(true);

  std::string design_text;
  if (args->benchmark.empty()) {
    std::ifstream in(args->design_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", args->design_file.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    design_text = buf.str();
  }

  try {
    // --benchmark keeps the whole Benchmark alive: its complex-library
    // templates point into its design (see benchmarks.h).
    std::optional<Benchmark> bench;
    Design file_design;
    Library lib = default_library();
    if (!args->benchmark.empty()) {
      bench.emplace(make_benchmark(args->benchmark, lib));
    } else {
      file_design = design_from_text(design_text);
    }
    Design& design = bench ? bench->design : file_design;
    if (args->auto_variants) {
      // Generate equivalent DFG variants (balanced / chained reduction
      // trees) for every non-top behavior so move A can swap them.
      int added = 0;
      const std::vector<std::string> names = design.behavior_names();
      for (const std::string& b : names) {
        if (b == design.top_name()) continue;
        added += register_variants(design, b);
      }
      std::printf("auto-variants: %d equivalent DFG variant(s) registered\n",
                  added);
    }
    if (!args->library_file.empty()) {
      if (bench) {
        std::fprintf(stderr,
                     "--library cannot be combined with --benchmark "
                     "(built-in benchmarks fix their library)\n");
        return 2;
      }
      std::ifstream lf(args->library_file);
      if (!lf) {
        std::fprintf(stderr, "cannot read %s\n", args->library_file.c_str());
        return 1;
      }
      std::stringstream lb;
      lb << lf.rdbuf();
      lib = library_from_text(lb.str());
      std::printf("library: %d functional-unit types loaded from %s\n",
                  lib.num_fu_types(), args->library_file.c_str());
    }
    ComplexLibrary local_clib;
    if (args->templates && !bench) {
      local_clib = default_complex_library(design, lib);
    }
    const ComplexLibrary* clib = nullptr;
    if (args->templates) clib = bench ? &bench->clib : &local_clib;

    const double min_ts = min_sample_period_ns(design, lib);
    const double ts = args->period_ns.value_or(args->laxity * min_ts);
    std::printf("design %s: top '%s', %d behaviors, %d flattened ops\n",
                bench ? bench->name.c_str() : args->design_file.c_str(),
                design.top_name().c_str(),
                static_cast<int>(design.behavior_names().size()),
                design.flattened_size(design.top_name()));
    std::printf("minimum sampling period %.1f ns, constraint %.1f ns "
                "(L.F. %.2f)\n\n",
                min_ts, ts, ts / min_ts);

    SynthOptions opts;
    opts.seed = args->seed;
    opts.check_moves = args->check_moves;
    if (!args->trace_file.empty()) {
      std::ifstream tf(args->trace_file);
      if (!tf) {
        std::fprintf(stderr, "cannot read %s\n", args->trace_file.c_str());
        return 1;
      }
      std::stringstream tb;
      tb << tf.rdbuf();
      opts.user_trace = trace_from_text(tb.str());
      std::printf("trace: %zu samples loaded from %s\n",
                  opts.user_trace.size(), args->trace_file.c_str());
    }
    const SynthResult r = synthesize(design, lib, clib, ts, args->objective,
                                     args->mode, opts);
    if (!r.ok) {
      std::fprintf(stderr, "synthesis failed: %s\n", r.fail_reason.c_str());
      return 1;
    }
    std::printf("%s\n%s", result_summary(r, lib).c_str(),
                architecture_summary(r.dp, lib).c_str());

    // ---- Observability exports (never alter synthesis results). ----------
    if (obs::MoveLedger::instance().enabled()) {
      std::printf("\nmove ledger (%zu attempts):\n%s",
                  obs::MoveLedger::instance().merged().size(),
                  obs::MoveLedger::instance().summary_table().c_str());
      if (!args->move_log.empty() &&
          !obs::MoveLedger::instance().write(args->move_log)) {
        std::fprintf(stderr, "cannot write %s\n", args->move_log.c_str());
        return 1;
      }
    }
    if (!trace_out.empty()) {
      if (!obs::Tracer::instance().write_chrome_json(trace_out)) {
        std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
        return 1;
      }
      if (args->verbose) {
        std::printf("trace: %zu span(s) written to %s\n",
                    obs::Tracer::instance().events().size(), trace_out.c_str());
      }
    }
    if (!args->metrics_out.empty()) {
      // runtime counters reach the snapshot through the sources the
      // runtime registered in the obs registry (see runtime/stats.cpp).
      if (!obs::Registry::instance().write_json(args->metrics_out)) {
        std::fprintf(stderr, "cannot write %s\n", args->metrics_out.c_str());
        return 1;
      }
    }

    if (args->verify) {
      const Trace trace =
          make_trace(r.dp.behaviors[0].dfg->num_inputs(), 32, args->seed + 1);
      const RtlSimResult sim = simulate_rtl(r.dp, 0, trace, lib, r.pt);
      std::printf("\nRTL verification: %s\n",
                  sim.ok ? "PASS (outputs match the behavioral model)"
                         : sim.violations.front().c_str());
      if (!sim.ok) return 1;
    }
    if (!args->netlist_file.empty() &&
        !write_file(args->netlist_file, netlist_to_text(r.dp, lib))) {
      return 1;
    }
    if (!args->verilog_file.empty() &&
        !write_file(args->verilog_file, to_verilog(r.dp, lib, r.pt))) {
      return 1;
    }
    if (!args->fsm_file.empty()) {
      const Controller fsm = build_controller(r.dp, lib, r.pt);
      if (!write_file(args->fsm_file, controller_to_text(fsm))) return 1;
    }
    if (!args->dot_file.empty() &&
        !write_file(args->dot_file,
                    dfg_to_dot(design.behavior(design.top_name())))) {
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
