// The H-SYN command-line tool: reads a textual hierarchical DFG design,
// synthesizes it under a throughput constraint, and writes the RTL
// outputs (structural netlist, FSM controller, Graphviz of the input).
//
//   hsyn --design FILE [--objective power|area] [--mode hier|flat]
//        [--laxity F | --period-ns T] [--netlist FILE] [--fsm FILE]
//        [--dot FILE] [--no-verify] [--seed N] [--threads N]
//        [--templates] [--verbose]
//
// With --templates, fast/low-power/compact complex-module templates are
// generated for every non-top behavior (the Fig. 2 style library);
// without it, synthesis builds module implementations from scratch.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "benchmarks/benchmarks.h"
#include "dfg/dot.h"
#include "eval/engine.h"
#include "dfg/textio.h"
#include "dfg/transform.h"
#include "library/textio.h"
#include "power/trace_io.h"
#include "power/rtlsim.h"
#include "rtl/controller.h"
#include "rtl/netlist.h"
#include "runtime/thread_pool.h"
#include "synth/report.h"
#include "synth/synthesizer.h"
#include "verilog/verilog.h"
#include "util/log.h"

namespace {

struct Args {
  std::string design_file;
  hsyn::Objective objective = hsyn::Objective::Power;
  hsyn::Mode mode = hsyn::Mode::Hierarchical;
  double laxity = 2.2;
  std::optional<double> period_ns;
  std::string library_file;
  std::string trace_file;
  std::string netlist_file;
  std::string verilog_file;
  std::string fsm_file;
  std::string dot_file;
  bool verify = true;
  /// Re-verify all IR invariants after every accepted move (src/check/).
  bool check_moves = false;
  bool templates = false;
  bool auto_variants = false;
  bool verbose = false;
  std::uint64_t seed = 42;
  /// 0 = automatic (HSYN_THREADS env, else hardware_concurrency).
  /// 1 reproduces the serial engine exactly; any count yields
  /// bit-identical synthesis results (see DESIGN.md).
  int threads = 0;
  /// Evaluation-cache budget in MB. 0 = HSYN_EVAL_CACHE_MB env, else the
  /// built-in default. The cache only changes synthesis speed, never its
  /// results.
  int eval_cache_mb = 0;
};

void usage() {
  std::fprintf(stderr,
               "usage: hsyn --design FILE [--objective power|area]\n"
               "            [--mode hier|flat] [--laxity F | --period-ns T]\n"
               "            [--library FILE] [--trace FILE]\n"
               "            [--netlist FILE] [--verilog FILE] [--fsm FILE] [--dot FILE]\n"
               "            [--no-verify] [--check-moves] [--templates] [--auto-variants] [--seed N] "
               "[--threads N] [--eval-cache-mb N] [--verbose]\n");
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--design") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.design_file = v;
    } else if (arg == "--objective") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "power") == 0) {
        a.objective = hsyn::Objective::Power;
      } else if (std::strcmp(v, "area") == 0) {
        a.objective = hsyn::Objective::Area;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "hier") == 0) {
        a.mode = hsyn::Mode::Hierarchical;
      } else if (std::strcmp(v, "flat") == 0) {
        a.mode = hsyn::Mode::Flattened;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--laxity") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.laxity = std::atof(v);
    } else if (arg == "--period-ns") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.period_ns = std::atof(v);
    } else if (arg == "--library") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.library_file = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.trace_file = v;
    } else if (arg == "--netlist") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.netlist_file = v;
    } else if (arg == "--verilog") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.verilog_file = v;
    } else if (arg == "--fsm") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.fsm_file = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.dot_file = v;
    } else if (arg == "--no-verify") {
      a.verify = false;
    } else if (arg == "--check-moves") {
      a.check_moves = true;
    } else if (arg == "--templates") {
      a.templates = true;
    } else if (arg == "--auto-variants") {
      a.auto_variants = true;
    } else if (arg == "--verbose") {
      a.verbose = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.threads = std::atoi(v);
      if (a.threads < 0) return std::nullopt;
    } else if (arg == "--eval-cache-mb") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.eval_cache_mb = std::atoi(v);
      if (a.eval_cache_mb <= 0) return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (a.design_file.empty()) return std::nullopt;
  return a;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsyn;
  const std::optional<Args> args = parse(argc, argv);
  if (!args) {
    usage();
    return 2;
  }
  if (args->verbose) set_log_level(LogLevel::Info);
  // Parallel runtime: --threads N, else HSYN_THREADS, else all cores.
  // Synthesis results are bit-identical for every thread count.
  runtime::set_threads(args->threads);
  if (args->eval_cache_mb > 0) {
    eval::EvalEngine::instance().set_capacity_mb(
        static_cast<std::size_t>(args->eval_cache_mb));
  }
  if (args->verbose) {
    std::printf("runtime: %d thread(s)\n", runtime::threads());
    std::printf("eval cache: %zu MB\n",
                eval::EvalEngine::instance().capacity_bytes() >> 20);
  }

  std::ifstream in(args->design_file);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", args->design_file.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    Design design = design_from_text(buf.str());
    if (args->auto_variants) {
      // Generate equivalent DFG variants (balanced / chained reduction
      // trees) for every non-top behavior so move A can swap them.
      int added = 0;
      const std::vector<std::string> names = design.behavior_names();
      for (const std::string& b : names) {
        if (b == design.top_name()) continue;
        added += register_variants(design, b);
      }
      std::printf("auto-variants: %d equivalent DFG variant(s) registered\n",
                  added);
    }
    Library lib = default_library();
    if (!args->library_file.empty()) {
      std::ifstream lf(args->library_file);
      if (!lf) {
        std::fprintf(stderr, "cannot read %s\n", args->library_file.c_str());
        return 1;
      }
      std::stringstream lb;
      lb << lf.rdbuf();
      lib = library_from_text(lb.str());
      std::printf("library: %d functional-unit types loaded from %s\n",
                  lib.num_fu_types(), args->library_file.c_str());
    }
    ComplexLibrary clib;
    if (args->templates) clib = default_complex_library(design, lib);

    const double min_ts = min_sample_period_ns(design, lib);
    const double ts = args->period_ns.value_or(args->laxity * min_ts);
    std::printf("design %s: top '%s', %d behaviors, %d flattened ops\n",
                args->design_file.c_str(), design.top_name().c_str(),
                static_cast<int>(design.behavior_names().size()),
                design.flattened_size(design.top_name()));
    std::printf("minimum sampling period %.1f ns, constraint %.1f ns "
                "(L.F. %.2f)\n\n",
                min_ts, ts, ts / min_ts);

    SynthOptions opts;
    opts.seed = args->seed;
    opts.check_moves = args->check_moves;
    if (!args->trace_file.empty()) {
      std::ifstream tf(args->trace_file);
      if (!tf) {
        std::fprintf(stderr, "cannot read %s\n", args->trace_file.c_str());
        return 1;
      }
      std::stringstream tb;
      tb << tf.rdbuf();
      opts.user_trace = trace_from_text(tb.str());
      std::printf("trace: %zu samples loaded from %s\n",
                  opts.user_trace.size(), args->trace_file.c_str());
    }
    const SynthResult r =
        synthesize(design, lib, args->templates ? &clib : nullptr, ts,
                   args->objective, args->mode, opts);
    if (!r.ok) {
      std::fprintf(stderr, "synthesis failed: %s\n", r.fail_reason.c_str());
      return 1;
    }
    std::printf("%s\n%s", result_summary(r, lib).c_str(),
                architecture_summary(r.dp, lib).c_str());

    if (args->verify) {
      const Trace trace =
          make_trace(r.dp.behaviors[0].dfg->num_inputs(), 32, args->seed + 1);
      const RtlSimResult sim = simulate_rtl(r.dp, 0, trace, lib, r.pt);
      std::printf("\nRTL verification: %s\n",
                  sim.ok ? "PASS (outputs match the behavioral model)"
                         : sim.violations.front().c_str());
      if (!sim.ok) return 1;
    }
    if (!args->netlist_file.empty() &&
        !write_file(args->netlist_file, netlist_to_text(r.dp, lib))) {
      return 1;
    }
    if (!args->verilog_file.empty() &&
        !write_file(args->verilog_file, to_verilog(r.dp, lib, r.pt))) {
      return 1;
    }
    if (!args->fsm_file.empty()) {
      const Controller fsm = build_controller(r.dp, lib, r.pt);
      if (!write_file(args->fsm_file, controller_to_text(fsm))) return 1;
    }
    if (!args->dot_file.empty() &&
        !write_file(args->dot_file,
                    dfg_to_dot(design.behavior(design.top_name())))) {
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
