// Top-level synthesis driver (paper Fig. 4, outer loops).
//
// SYNTHESIZE iterates over the pruned supply-voltage set and the pruned
// clock-period set; for each operating point it builds the initial
// solution and refines it by variable-depth iterative improvement,
// keeping the best solution seen. The flattened comparator of the
// paper's experiments ([10]) is the same engine run on the flattened DFG
// (Mode::Flattened).
#pragma once

#include <memory>
#include <string>

#include "synth/improve.h"
#include "synth/moves.h"

namespace hsyn {

enum class Mode { Hierarchical, Flattened };

inline const char* mode_name(Mode m) {
  return m == Mode::Hierarchical ? "hier" : "flat";
}

struct SynthResult {
  bool ok = false;
  std::string fail_reason;
  Datapath dp;
  std::shared_ptr<const Dfg> flat_dfg;  ///< keeps a flattened DFG alive
  OpPoint pt;
  double sample_period_ns = 0;
  int deadline_cycles = 0;
  int makespan = 0;
  double area = 0;
  double energy = 0;  ///< per sample, cap x V^2 units
  double power = 0;   ///< energy / sample period
  double synth_seconds = 0;
  ImproveStats stats;
  Objective obj = Objective::Area;
  Mode mode = Mode::Hierarchical;
};

/// Minimum achievable sampling period (ns) of the design at 5 V with the
/// fastest library implementations -- the denominator of the laxity
/// factor (L.F. = given sampling period / this).
double min_sample_period_ns(const Design& design, const Library& lib);

/// Synthesize the design's top behavior under a sampling-period
/// constraint. `clib` may be null (no complex templates).
SynthResult synthesize(const Design& design, const Library& lib,
                       const ComplexLibrary* clib, double sample_period_ns,
                       Objective obj, Mode mode, const SynthOptions& opts = {});

/// Voltage-scale an existing architecture: keep the binding, drop Vdd
/// (re-timing the clock) as far as the schedule still meets the sampling
/// period. Area-optimal architectures often exhaust the deadline, in
/// which case this is a no-op and the stronger form below applies.
SynthResult vdd_scale(const SynthResult& base, const Design& design,
                      const Library& lib, const SynthOptions& opts = {});

/// The paper's Table 4 "Vdd-sc" baseline: an area-optimized architecture
/// "Vdd-scaled to just meet the sampling period" -- area-objective
/// synthesis pinned to the lowest supply whose critical path still fits
/// the sampling period.
SynthResult synthesize_vdd_scaled_area(const Design& design, const Library& lib,
                                       const ComplexLibrary* clib,
                                       double sample_period_ns, Mode mode,
                                       const SynthOptions& opts = {});

}  // namespace hsyn
