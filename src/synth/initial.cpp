#include "synth/initial.h"

#include <algorithm>
#include <limits>
#include <map>

#include "obs/trace.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "util/fmt.h"

namespace hsyn {

Datapath initial_solution(const Dfg& dfg, const std::string& behavior_name,
                          const SynthContext& cx) {
  obs::Span span("initial-solution");
  const Library& lib = *cx.lib;
  Datapath dp(behavior_name + "_dp");
  BehaviorImpl bi;
  bi.behavior = behavior_name;
  bi.dfg = &dfg;
  bi.node_inv.assign(dfg.nodes().size(), -1);
  bi.edge_reg.assign(dfg.edges().size(), -1);
  bi.input_arrival.assign(static_cast<std::size_t>(dfg.num_inputs()), 0);

  for (const Node& n : dfg.nodes()) {
    Invocation inv;
    inv.nodes = {n.id};
    if (n.is_hier()) {
      check(cx.design != nullptr,
            "hierarchical node in flattened synthesis context");
      // Fastest implementation: best template vs fresh parallel module.
      std::unique_ptr<Datapath> best;
      int best_makespan = std::numeric_limits<int>::max();
      double best_area = std::numeric_limits<double>::max();
      auto consider = [&](Datapath cand) {
        const SchedResult sr =
            schedule_datapath(cand, lib, cx.pt, kNoDeadline);
        if (!sr.ok) return;
        const double area = area_of(cand, lib, /*top_level=*/false).total();
        if (sr.makespan < best_makespan ||
            (sr.makespan == best_makespan && area < best_area)) {
          best_makespan = sr.makespan;
          best_area = area;
          best = std::make_unique<Datapath>(std::move(cand));
        }
      };
      if (cx.clib != nullptr) {
        for (const ComplexLibrary::Template* t :
             cx.clib->for_behavior(*cx.design, n.behavior)) {
          consider(instantiate_scheduled(*t, n.behavior, cx));
        }
      }
      consider(initial_solution(cx.design->behavior(n.behavior), n.behavior, cx));
      check(best != nullptr, "no feasible implementation for " + n.behavior);

      ChildUnit cu;
      cu.impl = std::move(best);
      cu.name = n.label.empty() ? n.behavior : n.label;
      inv.unit = {UnitRef::Kind::Child, static_cast<int>(dp.children.size())};
      dp.children.push_back(std::move(cu));
    } else {
      const int type = lib.fastest_for(n.op, cx.pt);
      check(type >= 0, strf("no library unit executes %s", op_name(n.op)));
      inv.unit = {UnitRef::Kind::Fu, static_cast<int>(dp.fus.size())};
      dp.fus.push_back({type, n.label});
    }
    bi.node_inv[static_cast<std::size_t>(n.id)] =
        static_cast<int>(bi.invs.size());
    bi.invs.push_back(std::move(inv));
  }

  for (const Edge& e : dfg.edges()) {
    bi.edge_reg[static_cast<std::size_t>(e.id)] =
        static_cast<int>(dp.regs.size());
    dp.regs.push_back({e.label});
  }

  dp.behaviors.push_back(std::move(bi));
  return dp;
}

int align_child_profiles(Datapath& dp, const Library& lib, const OpPoint& pt,
                         int iterations) {
  // Align grandchildren first so child profiles are as tight as possible
  // before the parent reads them.
  for (ChildUnit& c : dp.children) {
    align_child_profiles(*c.impl, lib, pt, iterations);
  }
  SchedResult sr = schedule_datapath(dp, lib, pt, kNoDeadline);
  if (!sr.ok) return -1;

  for (int it = 0; it < iterations; ++it) {
    bool changed = false;
    for (std::size_t b = 0; b < dp.behaviors.size(); ++b) {
      BehaviorImpl& bi = dp.behaviors[b];
      // Desired arrival pattern per (child, behavior name): elementwise
      // minimum of the observed relative arrivals over all invocations
      // (the minimum is conservative -- smaller offsets only delay the
      // module start, never starve a read).
      std::map<std::pair<int, std::string>, std::vector<int>> want;
      for (std::size_t i = 0; i < bi.invs.size(); ++i) {
        const Invocation& inv = bi.invs[i];
        if (inv.unit.kind != UnitRef::Kind::Child) continue;
        const Node& n = bi.dfg->node(inv.nodes.front());
        std::vector<int> rel(static_cast<std::size_t>(n.num_inputs), 0);
        int earliest = 1 << 29;
        for (int p = 0; p < n.num_inputs; ++p) {
          const int e = bi.dfg->input_edge(inv.nodes.front(), p);
          rel[static_cast<std::size_t>(p)] =
              dp.edge_ready_time(static_cast<int>(b), e, lib, pt);
          earliest = std::min(earliest, rel[static_cast<std::size_t>(p)]);
        }
        for (int& v : rel) v -= earliest;
        auto [itw, inserted] = want.emplace(
            std::make_pair(inv.unit.idx, n.behavior), rel);
        if (!inserted) {
          for (std::size_t k = 0; k < rel.size(); ++k) {
            itw->second[k] = std::min(itw->second[k], rel[k]);
          }
        }
      }
      for (const auto& [key, pattern] : want) {
        Datapath& child = *dp.children[static_cast<std::size_t>(key.first)].impl;
        const int cb = child.find_behavior(key.second);
        if (cb < 0) continue;
        BehaviorImpl& cbi = child.behaviors[static_cast<std::size_t>(cb)];
        if (cbi.input_arrival == pattern) continue;
        cbi.input_arrival = pattern;
        cbi.scheduled = false;
        child.invalidate_fingerprint();
        changed = true;
      }
    }
    if (!changed) break;
    sr = schedule_datapath(dp, lib, pt, kNoDeadline);
    if (!sr.ok) return -1;
  }
  return sr.makespan;
}

}  // namespace hsyn
