// Moves A (module reselection) and B (resynthesis by hierarchy descent),
// implemented per paper Fig. 5: module-group formation -> constraint
// derivation -> resynthesis.
#include <algorithm>
#include <limits>

#include "obs/ledger.h"
#include "rtl/cost.h"
#include "runtime/parallel.h"
#include "sched/scheduler.h"
#include "sched/slack.h"
#include "synth/improve.h"
#include "synth/initial.h"
#include "synth/moves.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

struct Target {
  UnitRef unit;
  double contribution = 0;  ///< cost-share proxy used for group formation
};

/// Module-group formation: the highest cost contributors are the most
/// promising resynthesis targets.
std::vector<Target> form_groups(const Datapath& dp, const SynthContext& cx) {
  std::vector<Target> targets;
  for (std::size_t i = 0; i < dp.fus.size(); ++i) {
    const FuType& t = cx.lib->fu(dp.fus[i].type);
    const UnitRef u{UnitRef::Kind::Fu, static_cast<int>(i)};
    const double c = cx.obj == Objective::Area
                         ? t.area
                         : t.cap_sw * dp.unit_load(u);
    targets.push_back({u, c});
  }
  for (std::size_t i = 0; i < dp.children.size(); ++i) {
    const UnitRef u{UnitRef::Kind::Child, static_cast<int>(i)};
    const double area = area_of(*dp.children[i].impl, *cx.lib, false).total();
    const double c = cx.obj == Objective::Area
                         ? area
                         : area * dp.unit_load(u);  // cap scales with area
    targets.push_back({u, c});
  }
  std::sort(targets.begin(), targets.end(), [](const Target& a, const Target& b) {
    return a.contribution > b.contribution;
  });
  if (static_cast<int>(targets.size()) > cx.opts.group_size) {
    targets.resize(static_cast<std::size_t>(cx.opts.group_size));
  }
  return targets;
}

/// Move A on a simple unit: replace its library type by the best
/// alternative that fits the derived latency budget.
Move replace_fu(const Datapath& dp, int fu_idx, const SynthContext& cx,
                double cost0) {
  Move best;
  const BehaviorImpl& bi = dp.behaviors[0];
  // Usage of the unit: ops and longest chain.
  std::set<Op> ops;
  int max_chain = 1;
  int budget = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    const Invocation& inv = bi.invs[i];
    if (!(inv.unit == UnitRef{UnitRef::Kind::Fu, fu_idx})) continue;
    max_chain = std::max(max_chain, static_cast<int>(inv.nodes.size()));
    for (const int nid : inv.nodes) ops.insert(bi.dfg->node(nid).op);
    const auto b = derive_fu_latency_budget(dp, 0, static_cast<int>(i), *cx.lib,
                                            cx.pt, cx.deadline);
    if (b) budget = std::min(budget, *b);
  }
  if (ops.empty()) return best;

  const int cur_type = dp.fus[static_cast<std::size_t>(fu_idx)].type;
  // Enumerate the admissible replacement types serially (cheap filters,
  // same order and candidate cap as the serial engine), then score them
  // -- the copy + reschedule + cost part -- on the parallel runtime.
  std::vector<int> types;
  for (int t = 0; t < cx.lib->num_fu_types() &&
                  static_cast<int>(types.size()) < cx.opts.max_candidates;
       ++t) {
    if (t == cur_type) continue;
    const FuType& ft = cx.lib->fu(t);
    if (ft.chain_depth < max_chain) continue;
    bool supports_all = true;
    for (const Op op : ops) supports_all = supports_all && ft.supports(op);
    if (!supports_all) continue;
    if (cx.lib->cycles(t, cx.pt) > budget) continue;  // guide; sched verifies
    types.push_back(t);
  }
  // Ledger group id allocated here, on the (serial) enumerating thread.
  const std::uint64_t grp = obs::MoveLedger::instance().begin_group();
  return runtime::parallel_best(
      static_cast<int>(types.size()), std::move(best),
      [&](int i) {
        obs::CandidateScope oscope(grp, i);
        const int t = types[static_cast<std::size_t>(i)];
        Datapath cand = dp;
        cand.fus[static_cast<std::size_t>(fu_idx)].type = t;
        // A pure type swap rewires nothing: the base connectivity is
        // reusable verbatim.
        DirtyRegion dirty;
        dirty.binding_changed = false;
        return finish_move(std::move(cand), cx, cost0, "A:fu-select",
                           strf("fu%d %s -> %s", fu_idx,
                                cx.lib->fu(cur_type).name.c_str(),
                                cx.lib->fu(t).name.c_str()),
                           &dp, &dirty);
      },
      keep_better);
}

/// Behaviors served by a child unit (usually one).
std::vector<std::string> behaviors_served(const Datapath& dp, int child_idx) {
  std::vector<std::string> out;
  const BehaviorImpl& bi = dp.behaviors[0];
  for (const Invocation& inv : bi.invs) {
    if (inv.unit.kind != UnitRef::Kind::Child || inv.unit.idx != child_idx) continue;
    const std::string& b = bi.dfg->node(inv.nodes.front()).behavior;
    if (std::find(out.begin(), out.end(), b) == out.end()) out.push_back(b);
  }
  return out;
}

/// Move A on a complex instance: swap in a library template or a freshly
/// built implementation of an equivalent DFG ("a move of type A tries to
/// select the best DFG which describes a hierarchical node").
Move replace_child(const Datapath& dp, int child_idx, const SynthContext& cx,
                   double cost0, const ModuleConstraint& mc) {
  Move best;
  if (cx.design == nullptr) return best;
  const std::vector<std::string> served = behaviors_served(dp, child_idx);
  if (served.size() != 1) return best;  // merged modules are not reselected
  const std::string& behavior = served[0];

  // Enumerate candidates serially (template list + uncovered variants,
  // same order and cap as the serial engine); instantiation, scheduling
  // and costing run on the parallel runtime.
  struct Cand {
    const ComplexLibrary::Template* tmpl = nullptr;  ///< null: fresh variant
    std::string variant;
  };
  std::vector<Cand> cands;
  int tried = 0;
  std::set<std::string> templated_variants;
  if (cx.clib != nullptr) {
    for (const ComplexLibrary::Template* t :
         cx.clib->for_behavior(*cx.design, behavior)) {
      if (tried++ >= cx.opts.max_candidates) break;
      templated_variants.insert(t->implements);
      cands.push_back({t, ""});
    }
  }
  // Fresh fully parallel implementations of equivalent DFG variants the
  // library does not already cover.
  for (const std::string& variant : cx.design->equivalents(behavior)) {
    if (templated_variants.count(variant)) continue;
    if (tried++ >= cx.opts.max_candidates) break;
    cands.push_back({nullptr, variant});
  }

  const std::uint64_t grp = obs::MoveLedger::instance().begin_group();
  return runtime::parallel_best(
      static_cast<int>(cands.size()), std::move(best),
      [&](int i) {
        obs::CandidateScope oscope(grp, i);
        const Cand& c = cands[static_cast<std::size_t>(i)];
        Datapath impl =
            c.tmpl != nullptr
                ? instantiate_scheduled(*c.tmpl, behavior, cx)
                : initial_solution(cx.design->behavior(c.variant), behavior,
                                   cx);
        if (impl.behaviors[0].input_arrival != mc.in_arrival) {
          impl.behaviors[0].input_arrival = mc.in_arrival;
          impl.behaviors[0].scheduled = false;
          impl.behaviors[0].inv_start.clear();
          impl.invalidate_fingerprint();
        }
        Datapath cand = dp;
        cand.children[static_cast<std::size_t>(child_idx)].impl =
            std::make_unique<Datapath>(std::move(impl));
        return finish_move(
            std::move(cand), cx, cost0,
            c.tmpl != nullptr ? "A:module-select" : "A:dfg-swap",
            c.tmpl != nullptr
                ? strf("child%d <- template %s", child_idx,
                       c.tmpl->name.c_str())
                : strf("child%d <- fresh %s", child_idx, c.variant.c_str()));
      },
      keep_better);
}

/// Move B: descend into the child and re-optimize it against the relaxed
/// constraint derived from its environment.
Move resynth_child(const Datapath& dp, int child_idx, const SynthContext& cx,
                   double cost0, const ModuleConstraint& mc) {
  Move best;
  const ChildUnit& cu = dp.children[static_cast<std::size_t>(child_idx)];
  if (cu.sealed || !cx.opts.enable_resynth) return best;
  if (cu.impl->behaviors.size() != 1) return best;
  if (cx.opts.max_resynth_depth <= 0) return best;
  const std::string& behavior = cu.impl->behaviors[0].behavior;

  int inner_deadline = mc.max_busy;
  for (const int dl : mc.out_deadline) inner_deadline = std::min(inner_deadline, std::max(dl, 0));
  // Relaxation must leave at least the current makespan available to be
  // interesting; if it cannot even fit the current module, skip.
  if (inner_deadline <= 0) return best;

  Datapath child = *cu.impl;
  child.behaviors[0].input_arrival = mc.in_arrival;
  child.invalidate_fingerprint();
  if (!schedule_datapath(child, *cx.lib, cx.pt, inner_deadline).ok) return best;

  SynthContext inner = cx;
  inner.deadline = inner_deadline;
  inner.trace = child_input_trace(dp, 0, child_idx, behavior, cx);
  // Resynthesis is a nested search; keep its budget small so a single
  // move selection stays cheap (the paper's hierarchical speed advantage
  // depends on lower levels being optimized with bounded effort).
  inner.opts.max_passes = cx.opts.resynth_passes;
  inner.opts.max_moves_per_pass = std::min(cx.opts.max_moves_per_pass, 6);
  inner.opts.max_candidates = std::min(cx.opts.max_candidates, 8);
  inner.opts.group_size = std::min(cx.opts.group_size, 2);
  inner.opts.max_resynth_depth = cx.opts.max_resynth_depth - 1;

  Datapath improved = [&] {
    // The nested improvement engine's own moves are ledgered at
    // depth + 1; this runs on the enumerating thread, so inner group
    // allocation stays serial.
    obs::ResynthScope rscope;
    return improve(std::move(child), inner);
  }();
  Datapath cand = dp;
  cand.children[static_cast<std::size_t>(child_idx)].impl =
      std::make_unique<Datapath>(std::move(improved));
  const std::uint64_t grp = obs::MoveLedger::instance().begin_group();
  obs::CandidateScope oscope(grp, 0);
  best = better_move(best,
                     finish_move(std::move(cand), cx, cost0, "B:resynth",
                                 strf("resynthesized child%d (%s) against "
                                      "relaxed deadline %d",
                                      child_idx, behavior.c_str(),
                                      inner_deadline)));
  return best;
}

}  // namespace

Move best_replace_move(const Datapath& dp, const SynthContext& cx) {
  Move best;
  if (!cx.opts.enable_replace && !cx.opts.enable_resynth) return best;
  const double cost0 = cost_of(dp, cx);
  bool resynth_attempted = false;
  for (const Target& tgt : form_groups(dp, cx)) {
    if (tgt.unit.kind == UnitRef::Kind::Fu) {
      if (cx.opts.enable_replace) {
        best = better_move(best, replace_fu(dp, tgt.unit.idx, cx, cost0));
      }
    } else {
      const auto mc = derive_child_constraint(dp, 0, tgt.unit.idx, *cx.lib,
                                              cx.pt, cx.deadline);
      if (!mc) continue;
      if (cx.opts.enable_replace) {
        best = better_move(best, replace_child(dp, tgt.unit.idx, cx, cost0, *mc));
      }
      // Full resynthesis (move B) is a nested search; run it only for the
      // highest-contribution module of the group (Fig. 5's group
      // formation exists precisely to focus this effort).
      if (!resynth_attempted) {
        const Move m = resynth_child(dp, tgt.unit.idx, cx, cost0, *mc);
        resynth_attempted = resynth_attempted || m.valid;
        best = better_move(best, m);
      }
    }
  }
  return best;
}

}  // namespace hsyn
