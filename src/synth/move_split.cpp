// Move D: resource splitting (paper Section 1: "a simple (complex)
// module is split into multiple simple (complex) modules").
//
// Splitting creates new optimization opportunities and, in the power
// objective, removes the activity penalty of interleaving weakly
// correlated computations on one resource. Flavors:
//   * simple-unit split: one invocation moves to a fresh unit,
//   * register split: one variable moves to a fresh register,
//   * complex-instance split: a second copy of the module takes over
//     part of the work (also un-does RTL embedding behavior-wise),
//   * chain unfuse: a chained invocation breaks back into single ops.
#include <algorithm>

#include "obs/ledger.h"
#include "rtl/cost.h"
#include "runtime/parallel.h"
#include "synth/moves.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

// Every flavor below enumerates its candidate indices serially (cheap
// structural filters, identical order and caps to the serial engine)
// and evaluates them -- copy, mutate, reschedule, cost -- on the
// parallel runtime, reduced in enumeration order so the selected move
// is independent of the thread count.

Move split_fu(const Datapath& dp, const SynthContext& cx, double cost0) {
  const BehaviorImpl& bi = dp.behaviors[0];
  std::vector<std::size_t> targets;
  for (std::size_t i = 0;
       i < bi.invs.size() &&
       static_cast<int>(targets.size()) < cx.opts.max_candidates;
       ++i) {
    const Invocation& inv = bi.invs[i];
    if (inv.unit.kind != UnitRef::Kind::Fu) continue;
    if (dp.unit_load(inv.unit) < 2) continue;
    targets.push_back(i);
  }
  const std::uint64_t grp = obs::MoveLedger::instance().begin_group();
  return runtime::parallel_best(
      static_cast<int>(targets.size()), Move{},
      [&](int k) {
        obs::CandidateScope oscope(grp, k);
        const std::size_t i = targets[static_cast<std::size_t>(k)];
        const Invocation& inv = bi.invs[i];
        Datapath cand = dp;
        const int new_unit = static_cast<int>(cand.fus.size());
        cand.fus.push_back(cand.fus[static_cast<std::size_t>(inv.unit.idx)]);
        cand.behaviors[0].invs[i].unit.idx = new_unit;
        // Rewired rows: the vacated unit (the new one is appended and
        // implicitly dirty) plus the registers fed by the moved
        // invocation's outputs -- their producing source changed units.
        DirtyRegion dirty;
        dirty.fus.push_back(inv.unit.idx);
        for (const int nid : inv.nodes) {
          const Node& n = bi.dfg->node(nid);
          for (int p = 0; p < n.num_outputs; ++p) {
            const int e = bi.dfg->output_edge(nid, p);
            if (e < 0) continue;
            const int r = bi.edge_reg[static_cast<std::size_t>(e)];
            if (r >= 0) dirty.regs.push_back(r);
          }
        }
        return finish_move(std::move(cand), cx, cost0, "D:split-fu",
                           strf("inv%zu gets its own unit (was fu%d)", i,
                                inv.unit.idx),
                           &dp, &dirty);
      },
      keep_better);
}

Move split_reg(const Datapath& dp, const SynthContext& cx, double cost0) {
  const BehaviorImpl& bi = dp.behaviors[0];
  std::vector<std::size_t> targets;
  for (std::size_t e = 0;
       e < bi.edge_reg.size() &&
       static_cast<int>(targets.size()) < cx.opts.max_candidates;
       ++e) {
    const int r = bi.edge_reg[e];
    if (r < 0 || dp.reg_load(r) < 2) continue;
    targets.push_back(e);
  }
  const std::uint64_t grp = obs::MoveLedger::instance().begin_group();
  return runtime::parallel_best(
      static_cast<int>(targets.size()), Move{},
      [&](int k) {
        obs::CandidateScope oscope(grp, k);
        const std::size_t e = targets[static_cast<std::size_t>(k)];
        Datapath cand = dp;
        const int new_reg = static_cast<int>(cand.regs.size());
        cand.regs.push_back({});
        cand.behaviors[0].edge_reg[e] = new_reg;
        // Rewired rows: the vacated register (the new one is appended
        // and implicitly dirty) plus every unit reading the moved edge
        // -- its input port now selects the new register.
        DirtyRegion dirty;
        dirty.regs.push_back(bi.edge_reg[e]);
        for (const PortRef& d : bi.dfg->edge(static_cast<int>(e)).dsts) {
          if (d.node < 0) continue;  // primary output
          const int iv = bi.inv_of(d.node);
          if (iv < 0) continue;
          const UnitRef u = bi.invs[static_cast<std::size_t>(iv)].unit;
          (u.kind == UnitRef::Kind::Fu ? dirty.fus : dirty.children)
              .push_back(u.idx);
        }
        return finish_move(
            std::move(cand), cx, cost0, "D:split-reg",
            strf("edge%zu gets its own register (was r%d)", e, bi.edge_reg[e]),
            &dp, &dirty);
      },
      keep_better);
}

Move split_child(const Datapath& dp, const SynthContext& cx, double cost0) {
  const BehaviorImpl& bi = dp.behaviors[0];
  std::vector<std::size_t> targets;
  for (std::size_t i = 0;
       i < bi.invs.size() &&
       static_cast<int>(targets.size()) < cx.opts.max_candidates;
       ++i) {
    const Invocation& inv = bi.invs[i];
    if (inv.unit.kind != UnitRef::Kind::Child) continue;
    if (dp.unit_load(inv.unit) < 2) continue;
    targets.push_back(i);
  }
  const std::uint64_t grp = obs::MoveLedger::instance().begin_group();
  return runtime::parallel_best(
      static_cast<int>(targets.size()), Move{},
      [&](int t) {
        obs::CandidateScope oscope(grp, t);
        const std::size_t i = targets[static_cast<std::size_t>(t)];
        const Invocation& inv = bi.invs[i];
        Datapath cand = dp;
        ChildUnit copy = cand.children[static_cast<std::size_t>(inv.unit.idx)];
        copy.name += "_split";
        const int new_child = static_cast<int>(cand.children.size());
        cand.children.push_back(std::move(copy));
        cand.behaviors[0].invs[i].unit.idx = new_child;
        // Drop behaviors neither copy still executes so each copy's
        // controller shrinks (resynthesis can then shrink the datapaths).
        auto served = [&cand](int child_idx) {
          std::set<std::string> s;
          const BehaviorImpl& tb = cand.behaviors[0];
          for (const Invocation& ci : tb.invs) {
            if (ci.unit.kind == UnitRef::Kind::Child &&
                ci.unit.idx == child_idx) {
              s.insert(tb.dfg->node(ci.nodes.front()).behavior);
            }
          }
          return s;
        };
        for (const int cidx : {inv.unit.idx, new_child}) {
          Datapath& impl = *cand.children[static_cast<std::size_t>(cidx)].impl;
          const std::set<std::string> keep = served(cidx);
          std::vector<BehaviorImpl> kept;
          for (BehaviorImpl& cb : impl.behaviors) {
            if (keep.count(cb.behavior)) kept.push_back(std::move(cb));
          }
          if (!kept.empty()) {
            impl.behaviors = std::move(kept);
            impl.invalidate_fingerprint();
            impl.prune_unused();
          }
        }
        return finish_move(std::move(cand), cx, cost0, "D:split-child",
                           strf("inv%zu gets its own module instance (was "
                                "child%d)",
                                i, inv.unit.idx));
      },
      keep_better);
}

Move unfuse_chain(const Datapath& dp, const SynthContext& cx, double cost0) {
  const BehaviorImpl& bi = dp.behaviors[0];
  std::vector<std::size_t> targets;
  for (std::size_t i = 0;
       i < bi.invs.size() &&
       static_cast<int>(targets.size()) < cx.opts.max_candidates;
       ++i) {
    const Invocation& inv = bi.invs[i];
    if (inv.unit.kind != UnitRef::Kind::Fu || inv.nodes.size() < 2) continue;
    targets.push_back(i);
  }
  const std::uint64_t grp = obs::MoveLedger::instance().begin_group();
  return runtime::parallel_best(
      static_cast<int>(targets.size()), Move{},
      [&](int t) {
        obs::CandidateScope oscope(grp, t);
        const std::size_t i = targets[static_cast<std::size_t>(t)];
        const Invocation& inv = bi.invs[i];
        Datapath cand = dp;
        BehaviorImpl& cbi = cand.behaviors[0];
        const std::vector<int> nodes = inv.nodes;
        // Each node becomes its own invocation on a fresh fastest unit;
        // internal edges get registers back.
        for (std::size_t k = 0; k < nodes.size(); ++k) {
          const Op op = cbi.dfg->node(nodes[k]).op;
          const int type = cx.lib->fastest_for(op, cx.pt);
          if (k == 0) {
            cbi.invs[i].nodes = {nodes[0]};
            cbi.invs[i].unit = {UnitRef::Kind::Fu,
                                static_cast<int>(cand.fus.size())};
            cand.fus.push_back({type, ""});
          } else {
            Invocation ni;
            ni.nodes = {nodes[k]};
            ni.unit = {UnitRef::Kind::Fu, static_cast<int>(cand.fus.size())};
            cand.fus.push_back({type, ""});
            cbi.node_inv[static_cast<std::size_t>(nodes[k])] =
                static_cast<int>(cbi.invs.size());
            cbi.invs.push_back(std::move(ni));
          }
          if (k + 1 < nodes.size()) {
            const int e = cbi.dfg->output_edge(nodes[k], 0);
            cbi.edge_reg[static_cast<std::size_t>(e)] =
                static_cast<int>(cand.regs.size());
            cand.regs.push_back({});
          }
        }
        return finish_move(std::move(cand), cx, cost0, "D:chain-unfuse",
                           strf("unfuse chain inv%zu", i));
      },
      keep_better);
}

}  // namespace

Move best_splitting_move(const Datapath& dp, const SynthContext& cx) {
  Move best;
  if (!cx.opts.enable_split) return best;
  const double cost0 = cost_of(dp, cx);
  best = better_move(best, split_fu(dp, cx, cost0));
  best = better_move(best, split_reg(dp, cx, cost0));
  best = better_move(best, split_child(dp, cx, cost0));
  best = better_move(best, unfuse_chain(dp, cx, cost0));
  return best;
}

}  // namespace hsyn
