#include "synth/improve.h"

#include <utility>

#include "synth/search_core.h"

namespace hsyn {

// The legacy fixed-recipe entry point: one default-constructed
// SearchStrategy through the strategy-parameterized engine. The default
// strategy reproduces the paper's recipe exactly (move order A/B, C,
// D-when-sharing-loses; resynthesis on the first two moves of each pass;
// a single objective throughout), so this wrapper is bit-identical to
// the pre-refactor monolith. Move B's nested resynthesis calls back in
// here, so inner improvements always run the baseline recipe regardless
// of the outer strategy.
Datapath improve(Datapath dp, const SynthContext& cx, ImproveStats* stats) {
  return search_improve(std::move(dp), cx, SearchStrategy{}, stats);
}

}  // namespace hsyn
