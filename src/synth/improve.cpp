#include "synth/improve.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "check/check.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "runtime/cancel.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"
#include "util/fmt.h"
#include "util/log.h"

namespace hsyn {
namespace {

/// Progress/cancel hooks fire only from the outermost serial improvement
/// loop: move B's nested improve() runs at resynth depth > 0 (and, when
/// parallelized, on pool workers inside a region), where a sink call
/// would race and a cancel unwind would corrupt the enclosing move.
bool at_top_level() {
  return obs::ResynthScope::current_depth() == 0 &&
         !runtime::ThreadPool::in_region();
}

}  // namespace

Datapath improve(Datapath dp, const SynthContext& cx, ImproveStats* stats) {
  obs::Span improve_span("improve");
  obs::MoveLedger& ledger = obs::MoveLedger::instance();
  double cur_cost = cost_of(dp, cx);
  if (stats) stats->initial_cost = cur_cost;
  // The move-engine invariant gate: after every accepted move, re-verify
  // the whole datapath with the static-check registry and throw on the
  // first illegal circuit -- a move generator bug is then caught at the
  // move that introduced it instead of surfacing as a bad final netlist.
  const bool gate = cx.opts.check_moves || lint::env_check_moves();

  for (int pass = 0; pass < cx.opts.max_passes; ++pass) {
    if (cx.opts.cancel && at_top_level()) cx.opts.cancel->throw_if_cancelled();
    obs::Span pass_span("improve-pass");
    obs::ImproveScope pass_scope(pass);
    if (stats) ++stats->passes;
    // One pass: apply up to MAX_MOVES best moves, negative gains allowed.
    // The budget scales with the number of movable objects (KL style), so
    // flattened designs work proportionally harder per pass.
    const int objects = static_cast<int>(dp.fus.size() + dp.children.size() +
                                         dp.regs.size() / 2);
    const int budget = std::min(cx.opts.max_moves_per_pass,
                                std::max(4, objects));
    std::vector<Datapath> snapshots;
    std::vector<double> cum_gain;
    /// Ledger keys of applied moves, parallel to snapshots; used to mark
    /// accepted-vs-rolled-back after the best prefix is chosen.
    std::vector<std::pair<std::uint64_t, std::int32_t>> applied_keys;
    Datapath cur = dp;
    double cum = 0;
    for (int mi = 0; mi < budget; ++mi) {
      if (cx.opts.cancel && at_top_level()) {
        cx.opts.cancel->throw_if_cancelled();
      }
      // Full module resynthesis (move B) is the costliest generator; try
      // it early in the pass where it matters most, then fall back to
      // the cheap selection-only form.
      // Wall time of move selection (the dominant, parallelized cost);
      // only the outermost improvement loop is accounted -- move B's
      // nested improve() runs inside a region and is skipped.
      std::optional<runtime::ScopedPhase> phase;
      if (!runtime::ThreadPool::in_region()) phase.emplace("move-select");
      SynthContext move_cx = cx;
      move_cx.opts.enable_resynth = cx.opts.enable_resynth && mi < 2;
      Move m1 = best_replace_move(cur, move_cx);
      Move m3 = best_sharing_move(cur, cx);
      if (!m3.valid || m3.gain < 0) {
        // Fig. 4 statements 9-10: when the best sharing move loses,
        // consider splitting instead.
        m3 = better_move(m3, best_splitting_move(cur, cx));
      }
      const Move& m = better_move(m1, m3);
      if (!m.valid) break;
      if (!cx.opts.enable_negative_gain && m.gain <= 1e-9) break;
      log_debug(strf("pass %d move %d: %s (%s) gain %.3f", pass, mi,
                     m.kind.c_str(), m.desc.c_str(), m.gain));
      cur = m.result;
      if (gate) {
        lint::verify_move(cur, *cx.lib, cx.pt, cx.deadline,
                          strf("pass %d move %d: %s (%s)", pass, mi,
                               m.kind.c_str(), m.desc.c_str()));
      }
      cum += m.gain;
      snapshots.push_back(cur);
      cum_gain.push_back(cum);
      applied_keys.emplace_back(m.obs_group, m.obs_cand);
      if (ledger.enabled() && m.obs_cand >= 0) {
        ledger.set_status(m.obs_group, m.obs_cand, obs::MoveStatus::Applied);
      }
      if (stats) ++stats->moves_applied;
    }

    // Keep the prefix with the best cumulative gain (statement 14-16).
    int best_k = -1;
    double best_gain = 1e-9;
    for (std::size_t k = 0; k < cum_gain.size(); ++k) {
      if (cum_gain[k] > best_gain) {
        best_gain = cum_gain[k];
        best_k = static_cast<int>(k);
      }
    }
    if (ledger.enabled()) {
      for (std::size_t k = 0; k < applied_keys.size(); ++k) {
        const auto& [g, c] = applied_keys[k];
        if (c < 0) continue;
        ledger.set_status(g, c,
                          static_cast<int>(k) <= best_k
                              ? obs::MoveStatus::Accepted
                              : obs::MoveStatus::RolledBack);
      }
    }
    if (cx.opts.progress && at_top_level()) {
      SynthProgress ev;
      ev.stage = SynthProgress::Stage::Pass;
      ev.vdd = cx.pt.vdd;
      ev.clock_ns = cx.pt.clk_ns;
      ev.pass = pass;
      ev.moves_applied = static_cast<int>(snapshots.size());
      ev.moves_kept = best_k + 1;
      ev.cost = best_k < 0 ? cur_cost
                           : cost_of(snapshots[static_cast<std::size_t>(best_k)],
                                     cx);
      cx.opts.progress(ev);
    }
    if (best_k < 0) break;  // Pass_Gain <= 0
    dp = std::move(snapshots[static_cast<std::size_t>(best_k)]);
    cur_cost = cost_of(dp, cx);
    if (stats) stats->moves_kept += best_k + 1;
    log_info(strf("pass %d kept %d moves, gain %.3f, cost %.3f", pass,
                  best_k + 1, best_gain, cur_cost));
  }

  if (stats) stats->final_cost = cur_cost;
  return dp;
}

}  // namespace hsyn
