#include "synth/synthesizer.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "check/check.h"
#include "dfg/analysis.h"
#include "dfg/flatten.h"
#include "obs/trace.h"
#include "power/estimator.h"
#include "rtl/cost.h"
#include "runtime/cancel.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "util/fmt.h"
#include "util/log.h"

namespace hsyn {
namespace {

/// Longest path through the flattened DFG in nanoseconds, each operation
/// at its fastest library delay (chains allowed).
double critical_ns(const Dfg& flat, const Library& lib) {
  std::vector<double> finish(flat.nodes().size(), 0);
  double worst = 0;
  for (const int nid : flat.topo_order()) {
    const Node& n = flat.node(nid);
    double start = 0;
    for (int p = 0; p < n.num_inputs; ++p) {
      const Edge& e = flat.edge(flat.input_edge(nid, p));
      if (e.src.node >= 0) {
        start = std::max(start, finish[static_cast<std::size_t>(e.src.node)]);
      }
    }
    finish[static_cast<std::size_t>(nid)] = start + lib.min_delay_ns(n.op);
    worst = std::max(worst, finish[static_cast<std::size_t>(nid)]);
  }
  return worst;
}

double objective_value(const SynthResult& r, Objective obj) {
  return obj == Objective::Area ? r.area : r.power;
}

void fill_metrics(SynthResult& r, const Library& lib, const Trace& trace) {
  r.area = area_of(r.dp, lib).total();
  r.energy = energy_of(r.dp, 0, trace, lib, r.pt).total();
  r.power = r.energy / r.sample_period_ns;
  r.makespan = r.dp.behaviors[0].makespan;
}

}  // namespace

double min_sample_period_ns(const Design& design, const Library& lib) {
  // The attainable minimum: resource-free critical path in integer
  // cycles, minimized over the candidate clock set at 5 V. A fully
  // parallel fastest-unit architecture achieves exactly this, so
  // L.F. = 1.0 is always synthesizable in flattened mode.
  const Dfg flat = flatten_top(design);
  double best = std::numeric_limits<double>::max();
  for (const double clk : candidate_clocks(lib.fus(), kVref)) {
    const OpPoint pt{kVref, clk};
    const LatencyFn lat = [&](const Node& n) {
      return lib.cycles(lib.fastest_for(n.op, pt), pt);
    };
    best = std::min(best, critical_path(flat, lat) * clk);
  }
  check(best < std::numeric_limits<double>::max(), "empty clock candidate set");
  return best;
}

SynthResult synthesize(const Design& design, const Library& lib,
                       const ComplexLibrary* clib, double sample_period_ns,
                       Objective obj, Mode mode, const SynthOptions& opts) {
  obs::Span synth_span("synthesize");
  const auto t0 = std::chrono::steady_clock::now();

  SynthResult best;
  best.obj = obj;
  best.mode = mode;
  best.sample_period_ns = sample_period_ns;

  std::shared_ptr<const Dfg> flat;
  const Dfg* dfg = nullptr;
  std::string behavior_name;
  if (mode == Mode::Flattened) {
    flat = std::make_shared<const Dfg>(flatten_top(design));
    dfg = flat.get();
    behavior_name = flat->name();
  } else {
    dfg = &design.top();
    behavior_name = design.top_name();
  }
  best.flat_dfg = flat;

  const Dfg flat_for_analysis =
      mode == Mode::Flattened ? *dfg : flatten_top(design);
  const double crit = critical_ns(flat_for_analysis, lib);
  std::vector<double> vdds =
      obj == Objective::Area
          ? std::vector<double>{kVref}
          : prune_vdds(default_vdds(), crit, sample_period_ns);
  // Vdd pruning per [10]: the quadratic energy law makes the lowest
  // feasible supplies dominate; keep only the three lowest candidates
  // (cycle quantization occasionally favors the second- or third-lowest).
  if (obj == Objective::Power && vdds.size() > 3) {
    vdds.erase(vdds.begin(), vdds.end() - 3);
  }
  if (opts.force_vdd > 0) vdds = {opts.force_vdd};
  if (vdds.empty()) {
    best.fail_reason = "sampling period below critical path even at 5 V";
    return best;
  }

  Trace trace;
  if (!opts.user_trace.empty()) {
    check(static_cast<int>(opts.user_trace[0].size()) == dfg->num_inputs(),
          "user trace arity does not match the design's primary inputs");
    trace = opts.user_trace;
  } else {
    trace = make_trace(dfg->num_inputs(), opts.trace_samples, opts.seed);
  }

  double best_obj = std::numeric_limits<double>::max();
  for (const double vdd : vdds) {
    // Probe every candidate clock with a cheap feasibility check (build
    // the fully parallel initial solution and schedule it), then run the
    // expensive improvement only on an even sample of the feasible
    // clocks: long clocks mean few controller states, short clocks mean
    // fine-grained schedules -- both ends of the trade-off deserve a
    // look. This is the clock-set pruning of [10].
    struct Probe {
      double clk;
      int deadline;
      Datapath init;
    };
    std::vector<Probe> feasible;
    {
    obs::Span probe_span("vdd-clock-probe");
    for (const double c : candidate_clocks(lib.fus(), vdd)) {
      if (opts.cancel) opts.cancel->throw_if_cancelled();
      const int deadline = static_cast<int>(sample_period_ns / c + 1e-9);
      if (deadline < 1) continue;
      // Bound the controller: schedules beyond ~100 states per sample
      // mean a needlessly fine clock whose FSM and register clock tree
      // dwarf the datapath (real designs re-time the clock instead).
      if (deadline > 96) continue;
      SynthContext cx;
      cx.design = mode == Mode::Hierarchical ? &design : nullptr;
      cx.lib = &lib;
      cx.clib = mode == Mode::Hierarchical ? clib : nullptr;
      cx.pt = {vdd, c};
      cx.deadline = deadline;
      cx.obj = obj;
      cx.opts = opts;
      Datapath init;
      try {
        init = initial_solution(*dfg, behavior_name, cx);
      } catch (const std::logic_error& e) {
        log_warn(strf("initial solution failed at Vdd=%.1f clk=%.1f: %s", vdd,
                      c, e.what()));
        continue;
      }
      // Cheap probe first; when the unaligned schedule misses the
      // deadline, profile alignment (overlapping children with their
      // producers) often recovers it -- hierarchy otherwise serializes
      // cascades. Full alignment for every surviving clock happens once
      // below, on the picked subset only.
      if (!schedule_datapath(init, lib, cx.pt, deadline).ok) {
        align_child_profiles(init, lib, cx.pt);
        if (!schedule_datapath(init, lib, cx.pt, deadline).ok) continue;
      }
      feasible.push_back({c, deadline, std::move(init)});
    }
    }
    if (opts.progress) {
      SynthProgress ev;
      ev.stage = SynthProgress::Stage::Probe;
      ev.vdd = vdd;
      ev.feasible_clocks = static_cast<int>(feasible.size());
      opts.progress(ev);
    }
    std::vector<std::size_t> picked_idx;
    if (static_cast<int>(feasible.size()) <= opts.max_clocks) {
      for (std::size_t i = 0; i < feasible.size(); ++i) picked_idx.push_back(i);
    } else {
      const std::size_t n = feasible.size();
      for (int i = 0; i < opts.max_clocks; ++i) {
        picked_idx.push_back(i * (n - 1) /
                             static_cast<std::size_t>(opts.max_clocks - 1));
      }
      picked_idx.erase(std::unique(picked_idx.begin(), picked_idx.end()),
                       picked_idx.end());
    }

    for (const std::size_t pi : picked_idx) {
      if (opts.cancel) opts.cancel->throw_if_cancelled();
      Probe& probe = feasible[pi];
      const double clk = probe.clk;
      const int deadline = probe.deadline;
      align_child_profiles(probe.init, lib, {vdd, clk});
      if (!schedule_datapath(probe.init, lib, {vdd, clk}, deadline).ok) {
        continue;  // cannot happen in practice; alignment never worsens
      }

      SynthContext cx;
      cx.design = mode == Mode::Hierarchical ? &design : nullptr;
      cx.lib = &lib;
      cx.clib = mode == Mode::Hierarchical ? clib : nullptr;
      cx.pt = {vdd, clk};
      cx.deadline = deadline;
      cx.trace = trace;
      cx.obj = obj;
      cx.opts = opts;

      ImproveStats stats;
      Datapath improved = improve(std::move(probe.init), cx, &stats);

      SynthResult cand;
      cand.ok = true;
      cand.dp = std::move(improved);
      cand.flat_dfg = flat;
      cand.pt = cx.pt;
      cand.sample_period_ns = sample_period_ns;
      cand.deadline_cycles = deadline;
      cand.obj = obj;
      cand.mode = mode;
      cand.stats = stats;
      fill_metrics(cand, lib, trace);
      log_info(strf("config Vdd=%.1f clk=%.1fns: area %.1f energy %.1f "
                    "power %.4f",
                    vdd, clk, cand.area, cand.energy, cand.power));
      if (opts.progress) {
        SynthProgress ev;
        ev.stage = SynthProgress::Stage::OpPoint;
        ev.vdd = vdd;
        ev.clock_ns = clk;
        ev.cost = objective_value(cand, obj);
        ev.area = cand.area;
        ev.power = cand.power;
        opts.progress(ev);
      }
      // Primary comparison on the objective; near-ties (within 8%) break
      // toward lower power -- "minimum area, then minimum power" is what
      // a designer means by area-optimized, and it stops the area
      // objective from picking needlessly hot fine-grained clocks.
      const double v = objective_value(cand, obj);
      const bool better =
          v < best_obj * (1.0 - 1e-9) ||
          (best.ok && v <= best_obj * 1.08 && cand.power < best.power);
      if (!best.ok || better) {
        best_obj = std::min(v, best_obj);
        best = std::move(cand);
      }
    }
  }

  if (!best.ok) best.fail_reason = "no feasible operating point";
#ifndef NDEBUG
  if (best.ok) {
    // Debug builds always verify the winning circuit with the cheap
    // check passes; release builds opt in per move via --check-moves /
    // HSYN_CHECK_MOVES=1.
    lint::CheckContext ccx;
    ccx.design = &design;
    ccx.dp = &best.dp;
    ccx.lib = &lib;
    ccx.pt = best.pt;
    ccx.deadline = best.deadline_cycles;
    ccx.sample_period_ns = best.sample_period_ns;
    const lint::Report rep =
        lint::CheckEngine::instance().run(ccx, /*cheap_only=*/true);
    check(rep.ok(),
          "post-synthesis static checks failed:\n" + rep.to_text());
  }
#endif
  best.synth_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return best;
}

SynthResult synthesize_vdd_scaled_area(const Design& design, const Library& lib,
                                       const ComplexLibrary* clib,
                                       double sample_period_ns, Mode mode,
                                       const SynthOptions& opts) {
  const double crit = min_sample_period_ns(design, lib);
  std::vector<double> vdds = prune_vdds(default_vdds(), crit, sample_period_ns);
  if (vdds.empty()) vdds = {kVref};
  // Lowest supply first; the continuous critical-path pruning is
  // optimistic about integer-cycle schedules, so walk upward until a
  // supply actually synthesizes.
  for (auto it = vdds.rbegin(); it != vdds.rend(); ++it) {
    SynthOptions pinned = opts;
    pinned.force_vdd = *it;
    SynthResult r = synthesize(design, lib, clib, sample_period_ns,
                               Objective::Area, mode, pinned);
    if (r.ok) return r;
  }
  SynthResult fail;
  fail.fail_reason = "no supply voltage yields a feasible area-optimized design";
  fail.sample_period_ns = sample_period_ns;
  fail.mode = mode;
  return fail;
}

SynthResult vdd_scale(const SynthResult& base, const Design& design,
                      const Library& lib, const SynthOptions& opts) {
  check(base.ok, "vdd_scale: base result not ok");
  const Dfg* dfg =
      base.mode == Mode::Flattened ? base.flat_dfg.get() : &design.top();
  const Trace trace =
      opts.user_trace.empty()
          ? make_trace(dfg->num_inputs(), opts.trace_samples, opts.seed)
          : opts.user_trace;

  SynthResult best = base;
  for (const double vdd : default_vdds()) {
    if (vdd >= base.pt.vdd) continue;  // only scale downwards
    // The architecture (binding) is fixed, but the clock may be re-timed
    // for the slower logic -- the paper scales the supply of the
    // area-optimized architecture "to just meet the sampling period".
    std::vector<double> clocks = candidate_clocks(lib.fus(), vdd);
    clocks.push_back(base.pt.clk_ns);
    for (const double clk : clocks) {
      const int deadline =
          static_cast<int>(base.sample_period_ns / clk + 1e-9);
      if (deadline < 1) continue;
      SynthResult cand = base;
      cand.pt = {vdd, clk};
      cand.deadline_cycles = deadline;
      invalidate_schedules(cand.dp);
      if (!schedule_datapath(cand.dp, lib, cand.pt, deadline).ok) continue;
      fill_metrics(cand, lib, trace);
      if (cand.power < best.power) best = std::move(cand);
    }
  }
  return best;
}

}  // namespace hsyn
