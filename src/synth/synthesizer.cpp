#include "synth/synthesizer.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "check/check.h"
#include "dfg/analysis.h"
#include "dfg/flatten.h"
#include "obs/trace.h"
#include "power/estimator.h"
#include "rtl/cost.h"
#include "runtime/cancel.h"
#include "sched/scheduler.h"
#include "synth/search_core.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

void fill_metrics(SynthResult& r, const Library& lib, const Trace& trace) {
  r.area = area_of(r.dp, lib).total();
  r.energy = energy_of(r.dp, 0, trace, lib, r.pt).total();
  r.power = r.energy / r.sample_period_ns;
  r.makespan = r.dp.behaviors[0].makespan;
}

}  // namespace

double min_sample_period_ns(const Design& design, const Library& lib) {
  // The attainable minimum: resource-free critical path in integer
  // cycles, minimized over the candidate clock set at 5 V. A fully
  // parallel fastest-unit architecture achieves exactly this, so
  // L.F. = 1.0 is always synthesizable in flattened mode.
  const Dfg flat = flatten_top(design);
  double best = std::numeric_limits<double>::max();
  for (const double clk : candidate_clocks(lib.fus(), kVref)) {
    const OpPoint pt{kVref, clk};
    const LatencyFn lat = [&](const Node& n) {
      return lib.cycles(lib.fastest_for(n.op, pt), pt);
    };
    best = std::min(best, critical_path(flat, lat) * clk);
  }
  check(best < std::numeric_limits<double>::max(), "empty clock candidate set");
  return best;
}

// Thin wrapper since the portfolio refactor: one SearchCore, one
// default (baseline) strategy. The core's run() converts cancellation
// into a best-so-far outcome for the portfolio's sake; this legacy
// entry point keeps its original contract and rethrows.
SynthResult synthesize(const Design& design, const Library& lib,
                       const ComplexLibrary* clib, double sample_period_ns,
                       Objective obj, Mode mode, const SynthOptions& opts) {
  obs::Span synth_span("synthesize");
  const auto t0 = std::chrono::steady_clock::now();

  const SearchCore core(design, lib, clib, sample_period_ns, obj, mode, opts);
  SearchOutcome out = core.run(SearchStrategy{});
  if (out.cancelled) throw runtime::Cancelled(out.cancel_reason);

  SynthResult best = std::move(out.result);
  SearchCore::verify_result(best, design, lib);
  best.synth_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return best;
}

SynthResult synthesize_vdd_scaled_area(const Design& design, const Library& lib,
                                       const ComplexLibrary* clib,
                                       double sample_period_ns, Mode mode,
                                       const SynthOptions& opts) {
  const double crit = min_sample_period_ns(design, lib);
  std::vector<double> vdds = prune_vdds(default_vdds(), crit, sample_period_ns);
  if (vdds.empty()) vdds = {kVref};
  // Lowest supply first; the continuous critical-path pruning is
  // optimistic about integer-cycle schedules, so walk upward until a
  // supply actually synthesizes.
  for (auto it = vdds.rbegin(); it != vdds.rend(); ++it) {
    SynthOptions pinned = opts;
    pinned.force_vdd = *it;
    SynthResult r = synthesize(design, lib, clib, sample_period_ns,
                               Objective::Area, mode, pinned);
    if (r.ok) return r;
  }
  SynthResult fail;
  fail.fail_reason = "no supply voltage yields a feasible area-optimized design";
  fail.sample_period_ns = sample_period_ns;
  fail.mode = mode;
  return fail;
}

SynthResult vdd_scale(const SynthResult& base, const Design& design,
                      const Library& lib, const SynthOptions& opts) {
  check(base.ok, "vdd_scale: base result not ok");
  const Dfg* dfg =
      base.mode == Mode::Flattened ? base.flat_dfg.get() : &design.top();
  const Trace trace =
      opts.user_trace.empty()
          ? make_trace(dfg->num_inputs(), opts.trace_samples, opts.seed)
          : opts.user_trace;

  SynthResult best = base;
  for (const double vdd : default_vdds()) {
    if (vdd >= base.pt.vdd) continue;  // only scale downwards
    // The architecture (binding) is fixed, but the clock may be re-timed
    // for the slower logic -- the paper scales the supply of the
    // area-optimized architecture "to just meet the sampling period".
    std::vector<double> clocks = candidate_clocks(lib.fus(), vdd);
    clocks.push_back(base.pt.clk_ns);
    for (const double clk : clocks) {
      const int deadline =
          static_cast<int>(base.sample_period_ns / clk + 1e-9);
      if (deadline < 1) continue;
      SynthResult cand = base;
      cand.pt = {vdd, clk};
      cand.deadline_cycles = deadline;
      invalidate_schedules(cand.dp);
      if (!schedule_datapath(cand.dp, lib, cand.pt, deadline).ok) continue;
      fill_metrics(cand, lib, trace);
      if (cand.power < best.power) best = std::move(cand);
    }
  }
  return best;
}

}  // namespace hsyn
