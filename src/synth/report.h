// Human-readable reporting of synthesis results.
#pragma once

#include <string>

#include "synth/synthesizer.h"

namespace hsyn {

/// One-paragraph summary: operating point, schedule, area and energy
/// breakdowns, improvement statistics.
std::string result_summary(const SynthResult& r, const Library& lib);

/// Inventory of the architecture: units, registers, complex instances.
std::string architecture_summary(const Datapath& dp, const Library& lib);

}  // namespace hsyn
