// Shared context and move representation of the iterative-improvement
// engine (paper Section 4, Figs. 4 and 5).
//
// A move is represented by the *resulting* datapath (already scheduled
// and validated -- "when a move is performed, its validity is checked by
// scheduling"), plus its gain = cost(before) - cost(after) under the
// active objective. Negative-gain moves are legal: variable-depth
// improvement applies the best *prefix* of a move sequence, so a
// temporarily degraded architecture can lead out of a local minimum.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "dfg/design.h"
#include "power/trace.h"
#include "rtl/complex_library.h"
#include "rtl/datapath.h"

namespace hsyn {

namespace runtime {
class CancelToken;  // runtime/cancel.h
}

struct DirtyRegion;  // rtl/cost.h

enum class Objective { Area, Power };

inline const char* objective_name(Objective o) {
  return o == Objective::Area ? "area" : "power";
}

/// One progress beat from the synthesizer, delivered through
/// SynthOptions::progress. Events fire only from serial control points
/// of the top-level engine (never from pool workers or move B's nested
/// improvement), so a sink needs no synchronization of its own beyond
/// being callable from the thread that runs synthesize().
struct SynthProgress {
  enum class Stage {
    Probe,    ///< clock probing at one supply finished
    Pass,     ///< one improvement pass finished
    OpPoint,  ///< one (vdd, clock) candidate fully evaluated
    Strategy, ///< one portfolio strategy finished (pass = strategy index)
  };
  Stage stage = Stage::Pass;
  double vdd = 0;       ///< supply voltage of the current operating point
  double clock_ns = 0;  ///< clock period of the current operating point
  int pass = 0;         ///< improvement pass index (Pass events)
  int moves_applied = 0;  ///< moves applied during this pass
  int moves_kept = 0;     ///< best-prefix length kept after the pass
  double cost = 0;        ///< objective cost after the pass / candidate
  double area = 0;        ///< OpPoint events: candidate area
  double power = 0;       ///< OpPoint events: candidate power
  int feasible_clocks = 0;  ///< Probe events: clocks that scheduled
};

/// Tunables of the engine; also the ablation switches.
struct SynthOptions {
  /// Upper bound on MAX_MOVES of Fig. 4. The effective per-pass budget is
  /// min(this, number of movable objects), Kernighan-Lin style: each pass
  /// gets roughly one move per unit/register, so large (flattened)
  /// designs naturally take more work per pass than hierarchical ones.
  int max_moves_per_pass = 32;
  int max_passes = 8;
  int max_candidates = 24;      ///< candidate cap per move generator
  int group_size = 4;           ///< module-group formation: top-K targets
  int trace_samples = 24;
  std::uint64_t seed = 42;
  int max_clocks = 4;           ///< clock candidates kept after pruning
  int resynth_passes = 2;       ///< inner improvement budget of move B
  int max_resynth_depth = 4;    ///< hierarchy depth move B may descend
  double force_vdd = 0;         ///< >0: restrict the Vdd loop to this supply
  /// Non-empty: use this user-supplied typical input trace instead of a
  /// generated one (the paper's "typical input traces" synthesis input).
  Trace user_trace;
  // Ablation switches (all on for the full algorithm).
  bool enable_replace = true;   ///< move A
  bool enable_resynth = true;   ///< move B
  bool enable_share = true;     ///< move C
  bool enable_split = true;     ///< move D
  bool enable_negative_gain = true;  ///< variable-depth (vs greedy-only)
  /// Re-run the full static-check registry (src/check/) on the datapath
  /// after every accepted move and abort on any invariant violation.
  /// Also enabled by HSYN_CHECK_MOVES=1. Read-only over the IR, so
  /// results are bit-identical with or without it.
  bool check_moves = false;
  /// Validate every applied Move A/B whose child DFG changed against
  /// the pre-move DFG with the rewrite-equivalence checker
  /// (check/equiv.h: canonical hash, dataflow facts, differential
  /// replay). A refuted rewrite is not applied and is stamped into the
  /// move ledger as rejected-equiv. Also enabled by
  /// HSYN_VERIFY_REWRITES=1. Read-only over the IR: genuine moves all
  /// verify, so gated runs are bit-identical to ungated ones.
  bool verify_rewrites = false;
  /// Cooperative cancellation: checked at serial control points (per
  /// improvement move, per pass, per operating point). On a cancelled
  /// token the engine throws runtime::Cancelled out of synthesize().
  /// Null disables the checks. Cancellation never corrupts state -- it
  /// unwinds between moves, so catching the exception is safe.
  std::shared_ptr<runtime::CancelToken> cancel;
  /// Progress sink (see SynthProgress). Null disables events. Invoked
  /// synchronously from the engine's serial control thread only, never
  /// from inside a parallel region or a nested (move B) improvement.
  std::function<void(const SynthProgress&)> progress;
};

/// Cache of library templates already instantiated and scheduled at an
/// operating point, shared across SynthContext copies. Guarded by a
/// mutex because candidate evaluation runs on the parallel runtime
/// (runtime/parallel.h) and workers may instantiate concurrently.
/// Bounded (LRU over instantiations) and instrumented: aggregate
/// hit/miss/eviction/entry counters over every instance are reported
/// through runtime/stats as the "template-cache" counter source, so they
/// show up in any stats_snapshot() printout (e.g. filter_explorer's).
class TemplateCache {
 public:
  TemplateCache();

  /// Deep copy of the cached datapath, or nullopt. Refreshes recency.
  std::optional<Datapath> get(const std::string& key);

  /// Insert (or refresh) `key`; evicts the least recently used entries
  /// beyond the bound.
  void put(const std::string& key, Datapath dp);

  std::size_t size() const;

 private:
  static constexpr std::size_t kMaxEntries = 64;

  struct Entry {
    std::string key;
    Datapath dp;
  };

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<std::string, std::list<Entry>::iterator> index_;
};

/// Everything a move generator needs to know about the synthesis run.
struct SynthContext {
  const Design* design = nullptr;  ///< null during flattened synthesis
  const Library* lib = nullptr;
  const ComplexLibrary* clib = nullptr;  ///< may be null
  OpPoint pt;
  int deadline = 0;  ///< sampling period in cycles at `pt`
  Trace trace;       ///< typical top-level input trace
  Objective obj = Objective::Power;
  SynthOptions opts;
  /// Shared template cache (keyed by template/behavior/operating point)
  /// so move selection does not re-schedule the same template hundreds
  /// of times per pass.
  std::shared_ptr<TemplateCache> template_cache =
      std::make_shared<TemplateCache>();
};

/// Instantiate template `t` to serve `behavior`, scheduled at cx.pt
/// (memoized in cx.template_cache).
Datapath instantiate_scheduled(const ComplexLibrary::Template& t,
                               const std::string& behavior,
                               const SynthContext& cx);

/// Objective cost of a scheduled datapath: total area, or total energy
/// per sample (power differs only by the fixed sampling period).
double cost_of(const Datapath& dp, const SynthContext& cx);

/// A candidate move with its (scheduled) result.
struct Move {
  bool valid = false;
  std::string kind;  ///< "A:...", "B:...", "C:...", "D:..."
  std::string desc;
  double gain = 0;   ///< cost(before) - cost(after); positive = better
  Datapath result;
  /// Move-ledger key of this evaluation (obs::MoveLedger), set by
  /// finish_move when the ledger is recording; cand -1 otherwise. The
  /// improvement loop uses it to mark the applied/accepted outcome.
  std::uint64_t obs_group = 0;
  std::int32_t obs_cand = -1;
};

/// Evaluate a mutated datapath: schedule against the context deadline,
/// and if feasible fill in a Move with the given labels and the gain
/// relative to `cost_before`. Invalid move (valid=false) otherwise.
///
/// Generators that know exactly which rows of the level they rewired may
/// pass the pre-move datapath and a DirtyRegion hint; the candidate's
/// connectivity is then derived incrementally from the base's instead of
/// recomputed, and primed into the evaluation cache where the area and
/// energy costing below will find it. The hint is ignored whenever
/// prune_unused() compacted the candidate (indices would no longer
/// match) -- the full recompute is always the fallback.
Move finish_move(Datapath cand, const SynthContext& cx, double cost_before,
                 std::string kind, std::string desc,
                 const Datapath* base = nullptr,
                 const DirtyRegion* dirty = nullptr);

/// Best of two candidate moves by gain (invalid moves lose).
const Move& better_move(const Move& a, const Move& b);

/// Fold `cand` into `best` with better_move's exact semantics (`best`
/// wins ties). This is the ordered-reduction combiner the parallel
/// candidate evaluation uses: folding candidates left-to-right through
/// keep_better selects the same move as the serial better_move chain.
void keep_better(Move& best, Move&& cand);

/// Typical input trace observed by child unit `child_idx` of `dp` for
/// interface behavior `behavior`, derived from the top-level trace
/// (inputs seen by each invocation, per sample, in schedule order).
Trace child_input_trace(const Datapath& dp, int b, int child_idx,
                        const std::string& behavior, const SynthContext& cx);

// ---- Move generators (one per paper move class) --------------------------

/// Moves A and B combined (Fig. 5): module-group formation, constraint
/// derivation, then reselection (A) and resynthesis (B) of the targets.
Move best_replace_move(const Datapath& dp, const SynthContext& cx);

/// Move C: resource sharing -- functional-unit merging, register merging,
/// complex-instance reuse and RTL embedding.
Move best_sharing_move(const Datapath& dp, const SynthContext& cx);

/// Move D: resource splitting -- de-share a unit or register.
Move best_splitting_move(const Datapath& dp, const SynthContext& cx);

}  // namespace hsyn
