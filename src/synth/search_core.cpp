#include "synth/search_core.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "check/check.h"
#include "check/equiv.h"
#include "dfg/analysis.h"
#include "dfg/flatten.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "power/estimator.h"
#include "rtl/cost.h"
#include "runtime/cancel.h"
#include "runtime/stats.h"
#include "runtime/task_rng.h"
#include "runtime/thread_pool.h"
#include "sched/scheduler.h"
#include "synth/initial.h"
#include "util/fmt.h"
#include "util/log.h"

namespace hsyn {
namespace {

/// Progress/cancel hooks fire only from strategy-serial code: move B's
/// nested improvement runs at resynth depth > 0 (and, when parallelized,
/// on pool workers inside a region), where a sink call would race and a
/// cancel unwind would corrupt the enclosing move. A portfolio explorer
/// *is* strategy-serial even though it runs inside the portfolio's pool
/// region (nested regions execute inline on its lane), so an active
/// StrategyScope re-enables the checks there.
bool at_search_top() {
  return obs::ResynthScope::current_depth() == 0 &&
         (obs::StrategyScope::active() || !runtime::ThreadPool::in_region());
}

/// Longest path through the flattened DFG in nanoseconds, each operation
/// at its fastest library delay (chains allowed).
double critical_ns(const Dfg& flat, const Library& lib) {
  std::vector<double> finish(flat.nodes().size(), 0);
  double worst = 0;
  for (const int nid : flat.topo_order()) {
    const Node& n = flat.node(nid);
    double start = 0;
    for (int p = 0; p < n.num_inputs; ++p) {
      const Edge& e = flat.edge(flat.input_edge(nid, p));
      if (e.src.node >= 0) {
        start = std::max(start, finish[static_cast<std::size_t>(e.src.node)]);
      }
    }
    finish[static_cast<std::size_t>(nid)] = start + lib.min_delay_ns(n.op);
    worst = std::max(worst, finish[static_cast<std::size_t>(nid)]);
  }
  return worst;
}

double objective_value(const SynthResult& r, Objective obj) {
  return obj == Objective::Area ? r.area : r.power;
}

void fill_metrics(SynthResult& r, const Library& lib, const Trace& trace) {
  r.area = area_of(r.dp, lib).total();
  r.energy = energy_of(r.dp, 0, trace, lib, r.pt).total();
  r.power = r.energy / r.sample_period_ns;
  r.makespan = r.dp.behaviors[0].makespan;
}

/// The rewrite-equivalence gate (--verify-rewrites): before a chosen
/// Move A/B is applied, every top-level child whose behavior DFG was
/// swapped for a structurally different one must prove equivalent to
/// the DFG it replaces (check/equiv.h), on the trace that child
/// actually observes. Returns false with the refutation in `why`.
/// Moves that merely re-bind units or re-schedule (identical content
/// hashes) are skipped, so the gate costs one cached analysis/replay
/// per genuinely rewritten DFG.
bool rewrite_verified(const Datapath& before, const Move& m,
                      const SynthContext& cx, std::string* why) {
  runtime::ScopedPhase phase("verify-rewrites");
  const Datapath& after = m.result;
  const std::size_t n =
      std::min(before.children.size(), after.children.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Datapath* bi = before.children[i].impl.get();
    const Datapath* ai = after.children[i].impl.get();
    if (bi == nullptr || ai == nullptr || bi->behaviors.empty() ||
        ai->behaviors.empty()) {
      continue;
    }
    // A move may retarget a child to a different interface behavior;
    // only same-behavior DFG swaps are rewrites this gate can judge.
    if (bi->behaviors[0].behavior != ai->behaviors[0].behavior) continue;
    const Dfg* bd = bi->behaviors[0].dfg;
    const Dfg* ad = ai->behaviors[0].dfg;
    if (bd == nullptr || ad == nullptr || bd == ad) continue;
    if (!bd->validated() || !ad->validated()) continue;
    if (bd->content_hash() == ad->content_hash()) continue;
    Trace t = child_input_trace(before, 0, static_cast<int>(i),
                                bi->behaviors[0].behavior, cx);
    const lint::EquivResult r = lint::verify_equivalent(
        *bd, *ad, t, resolver_of(*bi), resolver_of(*ai));
    if (!r.equivalent) {
      *why = strf("child %zu behavior '%s': %s (%s)", i,
                  bi->behaviors[0].behavior.c_str(), r.detail.c_str(),
                  r.method.c_str());
      return false;
    }
  }
  return true;
}

/// Top-level class of a recorded move kind ("A:..."/"B:..." -> Replace).
MoveClass class_of_kind(const std::string& kind) {
  switch (kind.empty() ? 'A' : kind[0]) {
    case 'C': return MoveClass::Share;
    case 'D': return MoveClass::Split;
    default: return MoveClass::Replace;
  }
}

}  // namespace

void merge_stats(ImproveStats& into, const ImproveStats& from) {
  into.passes += from.passes;
  into.moves_applied += from.moves_applied;
  into.moves_kept += from.moves_kept;
  for (std::size_t i = 0; i < into.by_class.size(); ++i) {
    into.by_class[i].applied += from.by_class[i].applied;
    into.by_class[i].accepted += from.by_class[i].accepted;
    into.by_class[i].accepted_gain += from.by_class[i].accepted_gain;
  }
}

Datapath search_improve(Datapath dp, const SynthContext& cx,
                        const SearchStrategy& strat, ImproveStats* stats) {
  obs::Span improve_span("improve");
  obs::MoveLedger& ledger = obs::MoveLedger::instance();
  // Live-telemetry slot for the thread's current job. The engine only
  // ever *writes* it (relaxed atomics, nothing read back into
  // decisions), so the sampler being on or off cannot change results.
  // Nested resynthesis (move B) skips publication: only top-level
  // passes describe the job's visible progress.
  obs::JobSearchState& js = obs::current_job_state();
  const bool publish = obs::ResynthScope::current_depth() == 0;
  static obs::Counter& refuted_ctr =
      obs::Registry::instance().counter("synth.rewrites_refuted");
  const int max_passes =
      strat.max_passes > 0 ? strat.max_passes : cx.opts.max_passes;
  const int max_moves = strat.max_moves_per_pass > 0 ? strat.max_moves_per_pass
                                                     : cx.opts.max_moves_per_pass;
  double cur_cost = cost_of(dp, cx);
  if (stats) stats->initial_cost = cur_cost;
  // The move-engine invariant gate: after every accepted move, re-verify
  // the whole datapath with the static-check registry and throw on the
  // first illegal circuit -- a move generator bug is then caught at the
  // move that introduced it instead of surfacing as a bad final netlist.
  const bool gate = cx.opts.check_moves || lint::env_check_moves();
  // The rewrite-equivalence gate (check/equiv.h): refuse to apply a
  // chosen Move A/B whose swapped-in DFG is not provably equivalent to
  // the one it replaces. Genuine moves all verify, so the gate is
  // read-only and gated runs stay bit-identical to ungated ones.
  const bool vgate = cx.opts.verify_rewrites || lint::env_verify_rewrites();
  // Tie-jitter stream: a pure function of (seed, offset, strategy index),
  // consumed only when the strategy asks for jitter, so the default
  // strategy draws nothing and matches the legacy engine exactly.
  Rng jitter = runtime::task_rng(cx.opts.seed + strat.seed_offset,
                                 static_cast<std::uint64_t>(strat.index));

  for (int pass = 0; pass < max_passes; ++pass) {
    if (cx.opts.cancel && at_search_top()) cx.opts.cancel->throw_if_cancelled();
    obs::Span pass_span("improve-pass");
    obs::ImproveScope pass_scope(pass);
    if (stats) ++stats->passes;
    // Objective schedule: warm passes may optimize the other metric to
    // escape the real objective's local minima; prefix selection inside
    // the pass follows the warm objective, the cross-pass `cur_cost`
    // always the real one.
    SynthContext pass_cx = cx;
    bool warm = false;
    if (strat.schedule != ObjSchedule::Fixed && pass < strat.warm_passes) {
      pass_cx.obj = strat.schedule == ObjSchedule::AreaFirst ? Objective::Area
                                                             : Objective::Power;
      warm = pass_cx.obj != cx.obj;
    }
    // One pass: apply up to MAX_MOVES best moves, negative gains allowed.
    // The budget scales with the number of movable objects (KL style), so
    // flattened designs work proportionally harder per pass.
    const int objects = static_cast<int>(dp.fus.size() + dp.children.size() +
                                         dp.regs.size() / 2);
    const int budget = std::min(max_moves, std::max(4, objects));
    std::vector<Datapath> snapshots;
    std::vector<double> cum_gain;
    /// Ledger keys of applied moves, parallel to snapshots; used to mark
    /// accepted-vs-rolled-back after the best prefix is chosen.
    std::vector<std::pair<std::uint64_t, std::int32_t>> applied_keys;
    std::vector<std::pair<MoveClass, double>> applied_class;
    Datapath cur = dp;
    double cum = 0;
    for (int mi = 0; mi < budget; ++mi) {
      if (cx.opts.cancel && at_search_top()) {
        cx.opts.cancel->throw_if_cancelled();
      }
      // Wall time of move selection (the dominant, parallelized cost);
      // only the outermost improvement loop is accounted -- move B's
      // nested improve() runs inside a region and is skipped.
      std::optional<runtime::ScopedPhase> phase;
      if (!runtime::ThreadPool::in_region()) phase.emplace("move-select");
      // Full module resynthesis (move B) is the costliest generator; try
      // it early in the pass where it matters most, then fall back to
      // the cheap selection-only form.
      SynthContext move_cx = pass_cx;
      move_cx.opts.enable_resynth =
          pass_cx.opts.enable_resynth && mi < strat.resynth_head;
      std::vector<MoveClass> order = strat.move_order;
      if (strat.seed_offset != 0 && order.size() > 1) {
        const auto r = jitter.below(order.size());
        std::rotate(order.begin(), order.begin() + static_cast<long>(r),
                    order.end());
      }
      // Collect each generator's best candidate in strategy order. The
      // selection loop below reproduces keep_better's semantics exactly
      // (strict gain >, earlier generator wins ties), so when nothing is
      // refuted the chosen move is identical to the legacy fold; keeping
      // the runners-up lets the equivalence gate fall back to the
      // next-best candidate instead of ending the pass.
      std::vector<Move> cands;
      bool share_ran = false;
      bool share_lost = true;
      for (const MoveClass mc : order) {
        switch (mc) {
          case MoveClass::Replace: {
            Move c = best_replace_move(cur, move_cx);
            if (c.valid) cands.push_back(std::move(c));
            break;
          }
          case MoveClass::Share: {
            Move c = best_sharing_move(cur, pass_cx);
            share_ran = true;
            share_lost = !c.valid || c.gain < 0;
            if (c.valid) cands.push_back(std::move(c));
            break;
          }
          case MoveClass::Split:
            // Fig. 4 statements 9-10: when the best sharing move loses,
            // consider splitting instead. (Strategies may force it, or
            // order split before share -- then it always runs.)
            if (strat.always_split || !share_ran || share_lost) {
              Move c = best_splitting_move(cur, pass_cx);
              if (c.valid) cands.push_back(std::move(c));
            }
            break;
        }
      }
      std::vector<char> refuted(cands.size(), 0);
      int picked = -1;
      for (;;) {
        int sel = -1;
        for (std::size_t ci = 0; ci < cands.size(); ++ci) {
          if (refuted[ci]) continue;
          if (sel < 0 ||
              cands[ci].gain > cands[static_cast<std::size_t>(sel)].gain) {
            sel = static_cast<int>(ci);
          }
        }
        if (sel < 0) break;
        const Move& c = cands[static_cast<std::size_t>(sel)];
        if (!cx.opts.enable_negative_gain && c.gain <= 1e-9) break;
        log_debug(strf("pass %d move %d: %s (%s) gain %.3f", pass, mi,
                       c.kind.c_str(), c.desc.c_str(), c.gain));
        if (vgate && !c.kind.empty() && (c.kind[0] == 'A' || c.kind[0] == 'B')) {
          std::string why;
          if (!rewrite_verified(cur, c, cx, &why)) {
            if (ledger.enabled() && c.obs_cand >= 0) {
              ledger.set_status(c.obs_group, c.obs_cand,
                                obs::MoveStatus::RejectedByVerifier);
            }
            refuted_ctr.add();
            js.rewrites_refuted.fetch_add(1, std::memory_order_relaxed);
            log_warn(strf("pass %d move %d: %s (%s) rejected by the "
                          "equivalence gate: %s -- trying the next-best "
                          "candidate",
                          pass, mi, c.kind.c_str(), c.desc.c_str(),
                          why.c_str()));
            refuted[static_cast<std::size_t>(sel)] = 1;
            continue;  // deterministic fallback, pass continues
          }
        }
        picked = sel;
        break;
      }
      if (picked < 0) break;
      Move& m = cands[static_cast<std::size_t>(picked)];
      cur = std::move(m.result);
      if (gate) {
        lint::verify_move(cur, *cx.lib, cx.pt, cx.deadline,
                          strf("pass %d move %d: %s (%s)", pass, mi,
                               m.kind.c_str(), m.desc.c_str()));
      }
      cum += m.gain;
      snapshots.push_back(cur);
      cum_gain.push_back(cum);
      applied_keys.emplace_back(m.obs_group, m.obs_cand);
      applied_class.emplace_back(class_of_kind(m.kind), m.gain);
      if (ledger.enabled() && m.obs_cand >= 0) {
        ledger.set_status(m.obs_group, m.obs_cand, obs::MoveStatus::Applied);
      }
      if (stats) {
        ++stats->moves_applied;
        ++stats->by_class[static_cast<std::size_t>(applied_class.back().first)]
              .applied;
      }
    }

    // Keep the prefix with the best cumulative gain (statement 14-16).
    int best_k = -1;
    double best_gain = 1e-9;
    for (std::size_t k = 0; k < cum_gain.size(); ++k) {
      if (cum_gain[k] > best_gain) {
        best_gain = cum_gain[k];
        best_k = static_cast<int>(k);
      }
    }
    if (ledger.enabled()) {
      for (std::size_t k = 0; k < applied_keys.size(); ++k) {
        const auto& [g, c] = applied_keys[k];
        if (c < 0) continue;
        ledger.set_status(g, c,
                          static_cast<int>(k) <= best_k
                              ? obs::MoveStatus::Accepted
                              : obs::MoveStatus::RolledBack);
      }
    }
    if (stats) {
      for (int k = 0; k <= best_k; ++k) {
        const auto& [mc, gain] = applied_class[static_cast<std::size_t>(k)];
        ++stats->by_class[static_cast<std::size_t>(mc)].accepted;
        stats->by_class[static_cast<std::size_t>(mc)].accepted_gain += gain;
      }
    }
    if (publish) {
      js.passes.fetch_add(1, std::memory_order_relaxed);
      js.pass.store(pass, std::memory_order_relaxed);
      js.depth.store(best_k + 1, std::memory_order_relaxed);
      js.moves_applied.fetch_add(applied_class.size(),
                                 std::memory_order_relaxed);
      js.moves_accepted.fetch_add(static_cast<std::uint64_t>(best_k + 1),
                                  std::memory_order_relaxed);
      for (std::size_t k = 0; k < applied_class.size(); ++k) {
        const auto mc = static_cast<std::size_t>(applied_class[k].first);
        js.applied_by_class[mc].fetch_add(1, std::memory_order_relaxed);
        if (static_cast<int>(k) <= best_k) {
          js.accepted_by_class[mc].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (cx.opts.progress && at_search_top()) {
      SynthProgress ev;
      ev.stage = SynthProgress::Stage::Pass;
      ev.vdd = cx.pt.vdd;
      ev.clock_ns = cx.pt.clk_ns;
      ev.pass = pass;
      ev.moves_applied = static_cast<int>(snapshots.size());
      ev.moves_kept = best_k + 1;
      ev.cost = best_k < 0 ? cur_cost
                           : cost_of(snapshots[static_cast<std::size_t>(best_k)],
                                     pass_cx);
      cx.opts.progress(ev);
    }
    if (best_k < 0) {
      // Pass_Gain <= 0. A dry warm pass only ends the warm phase (the
      // real objective still deserves its passes); a dry pass under the
      // real objective ends the search, exactly as in Fig. 4.
      if (warm) continue;
      break;
    }
    dp = std::move(snapshots[static_cast<std::size_t>(best_k)]);
    cur_cost = cost_of(dp, cx);
    if (publish) js.note_best(cur_cost);
    if (stats) stats->moves_kept += best_k + 1;
    log_info(strf("pass %d kept %d moves, gain %.3f, cost %.3f", pass,
                  best_k + 1, best_gain, cur_cost));
  }

  if (stats) stats->final_cost = cur_cost;
  return dp;
}

SearchCore::SearchCore(const Design& design, const Library& lib,
                       const ComplexLibrary* clib, double sample_period_ns,
                       Objective obj, Mode mode, const SynthOptions& opts)
    : design_(design),
      lib_(lib),
      clib_(clib),
      sample_period_ns_(sample_period_ns),
      obj_(obj),
      mode_(mode),
      opts_(opts) {
  if (mode == Mode::Flattened) {
    flat_ = std::make_shared<const Dfg>(flatten_top(design));
    dfg_ = flat_.get();
    behavior_name_ = flat_->name();
  } else {
    dfg_ = &design.top();
    behavior_name_ = design.top_name();
  }

  const double crit = mode == Mode::Flattened
                          ? critical_ns(*dfg_, lib)
                          : critical_ns(flatten_top(design), lib);
  vdds_ = obj == Objective::Area
              ? std::vector<double>{kVref}
              : prune_vdds(default_vdds(), crit, sample_period_ns);
  // Vdd pruning per [10]: the quadratic energy law makes the lowest
  // feasible supplies dominate; keep only the three lowest candidates
  // (cycle quantization occasionally favors the second- or third-lowest).
  if (obj == Objective::Power && vdds_.size() > 3) {
    vdds_.erase(vdds_.begin(), vdds_.end() - 3);
  }
  if (opts.force_vdd > 0) vdds_ = {opts.force_vdd};
  if (vdds_.empty()) {
    viable_ = false;
    fail_reason_ = "sampling period below critical path even at 5 V";
    return;
  }

  if (!opts.user_trace.empty()) {
    check(static_cast<int>(opts.user_trace[0].size()) == dfg_->num_inputs(),
          "user trace arity does not match the design's primary inputs");
    trace_ = opts.user_trace;
  } else {
    trace_ = make_trace(dfg_->num_inputs(), opts.trace_samples, opts.seed);
  }
}

SearchOutcome SearchCore::run(const SearchStrategy& strat) const {
  SearchOutcome out;
  SynthResult& best = out.result;
  best.obj = obj_;
  best.mode = mode_;
  best.sample_period_ns = sample_period_ns_;
  best.flat_dfg = flat_;
  if (!viable_) {
    best.fail_reason = fail_reason_;
    return out;
  }

  SynthOptions opts = opts_;
  if (strat.max_resynth_depth > 0) opts.max_resynth_depth = strat.max_resynth_depth;

  std::vector<double> vdds = vdds_;
  if (strat.reverse_vdds) std::reverse(vdds.begin(), vdds.end());

  double best_obj = std::numeric_limits<double>::max();
  try {
    for (const double vdd : vdds) {
      // Probe every candidate clock with a cheap feasibility check (build
      // the fully parallel initial solution and schedule it), then run the
      // expensive improvement only on an even sample of the feasible
      // clocks: long clocks mean few controller states, short clocks mean
      // fine-grained schedules -- both ends of the trade-off deserve a
      // look. This is the clock-set pruning of [10].
      struct Probe {
        double clk;
        int deadline;
        Datapath init;
      };
      std::vector<Probe> feasible;
      {
        obs::Span probe_span("vdd-clock-probe");
        for (const double c : candidate_clocks(lib_.fus(), vdd)) {
          if (opts.cancel) opts.cancel->throw_if_cancelled();
          const int deadline = static_cast<int>(sample_period_ns_ / c + 1e-9);
          if (deadline < 1) continue;
          // Bound the controller: schedules beyond ~100 states per sample
          // mean a needlessly fine clock whose FSM and register clock tree
          // dwarf the datapath (real designs re-time the clock instead).
          if (deadline > 96) continue;
          SynthContext cx;
          cx.design = mode_ == Mode::Hierarchical ? &design_ : nullptr;
          cx.lib = &lib_;
          cx.clib = mode_ == Mode::Hierarchical ? clib_ : nullptr;
          cx.pt = {vdd, c};
          cx.deadline = deadline;
          cx.obj = obj_;
          cx.opts = opts;
          Datapath init;
          try {
            init = initial_solution(*dfg_, behavior_name_, cx);
          } catch (const std::logic_error& e) {
            log_warn(strf("initial solution failed at Vdd=%.1f clk=%.1f: %s",
                          vdd, c, e.what()));
            continue;
          }
          // Cheap probe first; when the unaligned schedule misses the
          // deadline, profile alignment (overlapping children with their
          // producers) often recovers it -- hierarchy otherwise serializes
          // cascades. Full alignment for every surviving clock happens once
          // below, on the picked subset only.
          if (!schedule_datapath(init, lib_, cx.pt, deadline).ok) {
            align_child_profiles(init, lib_, cx.pt);
            if (!schedule_datapath(init, lib_, cx.pt, deadline).ok) continue;
          }
          feasible.push_back({c, deadline, std::move(init)});
        }
      }
      if (opts.progress) {
        SynthProgress ev;
        ev.stage = SynthProgress::Stage::Probe;
        ev.vdd = vdd;
        ev.feasible_clocks = static_cast<int>(feasible.size());
        opts.progress(ev);
      }
      std::vector<std::size_t> picked_idx;
      if (static_cast<int>(feasible.size()) <= opts.max_clocks) {
        for (std::size_t i = 0; i < feasible.size(); ++i)
          picked_idx.push_back(i);
      } else {
        const std::size_t n = feasible.size();
        for (int i = 0; i < opts.max_clocks; ++i) {
          picked_idx.push_back(i * (n - 1) /
                               static_cast<std::size_t>(opts.max_clocks - 1));
        }
        picked_idx.erase(std::unique(picked_idx.begin(), picked_idx.end()),
                         picked_idx.end());
      }
      if (strat.reverse_clocks) {
        std::reverse(picked_idx.begin(), picked_idx.end());
      }

      for (const std::size_t pi : picked_idx) {
        if (opts.cancel) opts.cancel->throw_if_cancelled();
        Probe& probe = feasible[pi];
        const double clk = probe.clk;
        const int deadline = probe.deadline;
        align_child_profiles(probe.init, lib_, {vdd, clk});
        if (!schedule_datapath(probe.init, lib_, {vdd, clk}, deadline).ok) {
          continue;  // cannot happen in practice; alignment never worsens
        }

        SynthContext cx;
        cx.design = mode_ == Mode::Hierarchical ? &design_ : nullptr;
        cx.lib = &lib_;
        cx.clib = mode_ == Mode::Hierarchical ? clib_ : nullptr;
        cx.pt = {vdd, clk};
        cx.deadline = deadline;
        cx.trace = trace_;
        cx.obj = obj_;
        cx.opts = opts;

        {
          obs::JobSearchState& js = obs::current_job_state();
          js.vdd.store(vdd, std::memory_order_relaxed);
          js.clock_ns.store(clk, std::memory_order_relaxed);
        }
        ImproveStats stats;
        Datapath improved = search_improve(std::move(probe.init), cx, strat,
                                           &stats);
        merge_stats(out.total_stats, stats);

        SynthResult cand;
        cand.ok = true;
        cand.dp = std::move(improved);
        cand.flat_dfg = flat_;
        cand.pt = cx.pt;
        cand.sample_period_ns = sample_period_ns_;
        cand.deadline_cycles = deadline;
        cand.obj = obj_;
        cand.mode = mode_;
        cand.stats = stats;
        fill_metrics(cand, lib_, trace_);
        log_info(strf("config Vdd=%.1f clk=%.1fns: area %.1f energy %.1f "
                      "power %.4f",
                      vdd, clk, cand.area, cand.energy, cand.power));
        if (opts.progress) {
          SynthProgress ev;
          ev.stage = SynthProgress::Stage::OpPoint;
          ev.vdd = vdd;
          ev.clock_ns = clk;
          ev.cost = objective_value(cand, obj_);
          ev.area = cand.area;
          ev.power = cand.power;
          opts.progress(ev);
        }
        // Primary comparison on the objective; near-ties (within 8%) break
        // toward lower power -- "minimum area, then minimum power" is what
        // a designer means by area-optimized, and it stops the area
        // objective from picking needlessly hot fine-grained clocks.
        const double v = objective_value(cand, obj_);
        obs::current_job_state().note_best(v);
        const bool better =
            v < best_obj * (1.0 - 1e-9) ||
            (best.ok && v <= best_obj * 1.08 && cand.power < best.power);
        if (!best.ok || better) {
          best_obj = std::min(v, best_obj);
          best = std::move(cand);
        }
      }
    }
  } catch (const runtime::Cancelled& e) {
    // Best-so-far semantics at a strategy-serial boundary: everything
    // under the unwound frames was owned by them, `best` is intact.
    out.cancelled = true;
    out.cancel_reason = e.what();
  }

  if (!best.ok && best.fail_reason.empty()) {
    best.fail_reason = out.cancelled
                           ? "cancelled before any feasible operating point"
                           : "no feasible operating point";
  }
  return out;
}

void SearchCore::verify_result(const SynthResult& r, const Design& design,
                               const Library& lib) {
#ifndef NDEBUG
  if (!r.ok) return;
  // Debug builds always verify the winning circuit with the cheap
  // check passes; release builds opt in per move via --check-moves /
  // HSYN_CHECK_MOVES=1.
  lint::CheckContext ccx;
  ccx.design = &design;
  ccx.dp = &r.dp;
  ccx.lib = &lib;
  ccx.pt = r.pt;
  ccx.deadline = r.deadline_cycles;
  ccx.sample_period_ns = r.sample_period_ns;
  const lint::Report rep =
      lint::CheckEngine::instance().run(ccx, /*cheap_only=*/true);
  check(rep.ok(), "post-synthesis static checks failed:\n" + rep.to_text());
#else
  (void)r;
  (void)design;
  (void)lib;
#endif
}

}  // namespace hsyn
