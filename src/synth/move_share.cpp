// Move C: resource sharing (paper Sections 1 and 3).
//
// Four sharing flavors are generated:
//   * functional-unit merging (two simple units -> one, possibly with a
//     wider multifunction type),
//   * register merging (lifetime compatibility is checked by the
//     scheduler's write-after-read ordering),
//   * complex-instance reuse (two instances executing the same behavior
//     collapse into one),
//   * RTL embedding (two instances executing *different* behaviors merge
//     into one module that embeds both -- the paper's novel move), and
//   * chain fusion (dependent same-op invocations fuse onto a chained
//     unit, e.g. three add1's onto one chained_add3 -- module C5).
//
// Candidates are ranked by a cheap structural saving estimate and the
// best few are fully evaluated (copy, mutate, schedule, cost).
#include <algorithm>
#include <set>

#include "embed/embedder.h"
#include "obs/ledger.h"
#include "rtl/cost.h"
#include "runtime/parallel.h"
#include "synth/moves.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

struct Candidate {
  double priority = 0;  ///< estimated saving, for ranking only
  enum class Kind { FuMerge, RegMerge, ChildReuse, Embed, ChainFuse } kind;
  int a = -1;
  int b = -1;
  int merged_type = -1;  // FuMerge
  int inv_a = -1;        // ChainFuse: producer invocation
  int inv_b = -1;        // ChainFuse: consumer invocation
  int fuse_type = -1;    // ChainFuse: chained unit type
};

void gather_fu_merges(const Datapath& dp, const SynthContext& cx,
                      std::vector<Candidate>& out) {
  std::vector<FuMergeUsage> use;
  for (std::size_t i = 0; i < dp.fus.size(); ++i) {
    use.push_back(fu_merge_usage(dp, static_cast<int>(i), *cx.lib, cx.pt));
  }
  for (std::size_t i = 0; i < dp.fus.size(); ++i) {
    for (std::size_t j = i + 1; j < dp.fus.size(); ++j) {
      const int t = merged_fu_type(use[i], use[j], *cx.lib, cx.pt);
      if (t < 0) continue;
      const double saving = cx.lib->fu(dp.fus[i].type).area +
                            cx.lib->fu(dp.fus[j].type).area -
                            cx.lib->fu(t).area;
      Candidate c;
      c.kind = Candidate::Kind::FuMerge;
      c.priority = saving;
      c.a = static_cast<int>(i);
      c.b = static_cast<int>(j);
      c.merged_type = t;
      out.push_back(c);
    }
  }
}

void gather_reg_merges(const Datapath& dp, const SynthContext& cx,
                       std::vector<Candidate>& out) {
  // Merging registers whose contents come from the same source costs no
  // extra mux input; prefer those.
  const Connectivity conn = connectivity_of(dp);
  for (std::size_t i = 0; i < dp.regs.size(); ++i) {
    for (std::size_t j = i + 1; j < dp.regs.size(); ++j) {
      std::set<SourceKey> un = conn.reg_srcs[i];
      un.insert(conn.reg_srcs[j].begin(), conn.reg_srcs[j].end());
      const int extra_mux =
          std::max(0, static_cast<int>(un.size()) - 1) -
          std::max(0, static_cast<int>(conn.reg_srcs[i].size()) - 1) -
          std::max(0, static_cast<int>(conn.reg_srcs[j].size()) - 1);
      Candidate c;
      c.kind = Candidate::Kind::RegMerge;
      c.priority = cx.lib->reg().area -
                   cx.lib->costs().mux_area_per_input * extra_mux;
      c.a = static_cast<int>(i);
      c.b = static_cast<int>(j);
      out.push_back(c);
    }
  }
}

void gather_child_merges(const Datapath& dp, const SynthContext& cx,
                         std::vector<Candidate>& out) {
  auto behaviors_of = [&](int idx) {
    std::set<std::string> s;
    for (const BehaviorImpl& bi : dp.children[static_cast<std::size_t>(idx)]
                                      .impl->behaviors) {
      s.insert(bi.behavior);
    }
    return s;
  };
  for (std::size_t i = 0; i < dp.children.size(); ++i) {
    const double area_i =
        area_of(*dp.children[i].impl, *cx.lib, false).total();
    for (std::size_t j = i + 1; j < dp.children.size(); ++j) {
      const double area_j =
          area_of(*dp.children[j].impl, *cx.lib, false).total();
      const std::set<std::string> bi = behaviors_of(static_cast<int>(i));
      const std::set<std::string> bj = behaviors_of(static_cast<int>(j));
      const bool j_in_i = std::includes(bi.begin(), bi.end(), bj.begin(), bj.end());
      const bool i_in_j = std::includes(bj.begin(), bj.end(), bi.begin(), bi.end());
      bool disjoint = true;
      for (const std::string& s : bj) disjoint = disjoint && !bi.count(s);
      Candidate c;
      c.a = static_cast<int>(i);
      c.b = static_cast<int>(j);
      if (j_in_i) {
        c.kind = Candidate::Kind::ChildReuse;
        c.priority = area_j;
        out.push_back(c);
      } else if (i_in_j) {
        // The other containment direction: keep j, retire i.
        c.kind = Candidate::Kind::ChildReuse;
        c.a = static_cast<int>(j);
        c.b = static_cast<int>(i);
        c.priority = area_i;
        out.push_back(c);
      } else if (disjoint) {
        c.kind = Candidate::Kind::Embed;
        c.priority = std::min(area_i, area_j) * 0.8;
        out.push_back(c);
      }
    }
  }
}

void gather_chain_fusions(const Datapath& dp, const SynthContext& cx,
                          std::vector<Candidate>& out) {
  const BehaviorImpl& bi = dp.behaviors[0];
  const Dfg& dfg = *bi.dfg;
  for (std::size_t p = 0; p < bi.invs.size(); ++p) {
    const Invocation& prod = bi.invs[p];
    if (prod.unit.kind != UnitRef::Kind::Fu) continue;
    const int oe = dfg.output_edge(prod.nodes.back(), 0);
    if (oe < 0) continue;
    const Edge& e = dfg.edge(oe);
    if (e.dsts.size() != 1 || e.dsts[0].node < 0) continue;
    const int ci = bi.inv_of(e.dsts[0].node);
    if (ci == static_cast<int>(p)) continue;
    const Invocation& cons = bi.invs[static_cast<std::size_t>(ci)];
    if (cons.unit.kind != UnitRef::Kind::Fu) continue;
    if (cons.nodes.front() != e.dsts[0].node) continue;
    // Find a chained type able to absorb the whole fused chain.
    FuMergeUsage u;
    u.max_chain = static_cast<int>(prod.nodes.size() + cons.nodes.size());
    for (const int nid : prod.nodes) u.ops.insert(dfg.node(nid).op);
    for (const int nid : cons.nodes) u.ops.insert(dfg.node(nid).op);
    int best_t = -1;
    double best_area = 1e18;
    for (int t = 0; t < cx.lib->num_fu_types(); ++t) {
      const FuType& ft = cx.lib->fu(t);
      if (ft.chain_depth < u.max_chain) continue;
      bool ok = true;
      for (const Op op : u.ops) ok = ok && ft.supports(op);
      if (!ok) continue;
      if (ft.area < best_area) {
        best_area = ft.area;
        best_t = t;
      }
    }
    if (best_t < 0) continue;
    Candidate c;
    c.kind = Candidate::Kind::ChainFuse;
    // Saves the producer+consumer units and the intermediate register in
    // exchange for the chained unit.
    c.priority =
        cx.lib->fu(dp.fus[static_cast<std::size_t>(prod.unit.idx)].type).area +
        cx.lib->fu(dp.fus[static_cast<std::size_t>(cons.unit.idx)].type).area +
        cx.lib->reg().area - best_area;
    c.inv_a = static_cast<int>(p);
    c.inv_b = ci;
    c.fuse_type = best_t;
    out.push_back(c);
  }
}

Datapath apply_candidate(const Datapath& dp, const Candidate& c,
                         const SynthContext& cx, std::string& desc) {
  Datapath cand = dp;
  BehaviorImpl& bi = cand.behaviors[0];
  switch (c.kind) {
    case Candidate::Kind::FuMerge: {
      cand.fus[static_cast<std::size_t>(c.a)].type = c.merged_type;
      for (Invocation& inv : bi.invs) {
        if (inv.unit == UnitRef{UnitRef::Kind::Fu, c.b}) {
          inv.unit.idx = c.a;
        }
      }
      desc = strf("merge fu%d into fu%d as %s", c.b, c.a,
                  cx.lib->fu(c.merged_type).name.c_str());
      break;
    }
    case Candidate::Kind::RegMerge: {
      for (int& r : bi.edge_reg) {
        if (r == c.b) r = c.a;
      }
      desc = strf("merge reg%d into reg%d", c.b, c.a);
      break;
    }
    case Candidate::Kind::ChildReuse: {
      for (Invocation& inv : bi.invs) {
        if (inv.unit == UnitRef{UnitRef::Kind::Child, c.b}) {
          inv.unit.idx = c.a;
        }
      }
      desc = strf("reuse child%d for child%d's work", c.a, c.b);
      break;
    }
    case Candidate::Kind::Embed: {
      auto merged = embed_modules(*dp.children[static_cast<std::size_t>(c.a)].impl,
                                  *dp.children[static_cast<std::size_t>(c.b)].impl,
                                  *cx.lib, cx.pt);
      if (!merged) {
        desc.clear();
        return cand;  // caller treats empty desc as failure
      }
      cand.children[static_cast<std::size_t>(c.a)].impl =
          std::make_unique<Datapath>(std::move(*merged));
      cand.children[static_cast<std::size_t>(c.a)].sealed =
          dp.children[static_cast<std::size_t>(c.a)].sealed ||
          dp.children[static_cast<std::size_t>(c.b)].sealed;
      for (Invocation& inv : bi.invs) {
        if (inv.unit == UnitRef{UnitRef::Kind::Child, c.b}) {
          inv.unit.idx = c.a;
        }
      }
      desc = strf("embed child%d and child%d into one module", c.a, c.b);
      break;
    }
    case Candidate::Kind::ChainFuse: {
      Invocation& prod = bi.invs[static_cast<std::size_t>(c.inv_a)];
      Invocation& cons = bi.invs[static_cast<std::size_t>(c.inv_b)];
      // Intermediate edge loses its register (lives inside the chain).
      const int oe = bi.dfg->output_edge(prod.nodes.back(), 0);
      bi.edge_reg[static_cast<std::size_t>(oe)] = -1;
      // Fused invocation replaces the consumer on a new chained unit.
      const int new_unit = static_cast<int>(cand.fus.size());
      cand.fus.push_back({c.fuse_type, ""});
      std::vector<int> nodes = prod.nodes;
      nodes.insert(nodes.end(), cons.nodes.begin(), cons.nodes.end());
      cons.nodes = std::move(nodes);
      cons.unit = {UnitRef::Kind::Fu, new_unit};
      for (const int nid : cons.nodes) {
        bi.node_inv[static_cast<std::size_t>(nid)] = c.inv_b;
      }
      // Remove the producer invocation (swap-erase with index fixups).
      const std::size_t last = bi.invs.size() - 1;
      if (static_cast<std::size_t>(c.inv_a) != last) {
        bi.invs[static_cast<std::size_t>(c.inv_a)] = std::move(bi.invs[last]);
        for (const int nid : bi.invs[static_cast<std::size_t>(c.inv_a)].nodes) {
          bi.node_inv[static_cast<std::size_t>(nid)] = c.inv_a;
        }
      }
      bi.invs.pop_back();
      desc = strf("fuse chain onto %s", cx.lib->fu(c.fuse_type).name.c_str());
      break;
    }
  }
  return cand;
}

}  // namespace

Move best_sharing_move(const Datapath& dp, const SynthContext& cx) {
  Move best;
  if (!cx.opts.enable_share) return best;
  const double cost0 = cost_of(dp, cx);

  std::vector<Candidate> cands;
  gather_fu_merges(dp, cx, cands);
  gather_reg_merges(dp, cx, cands);
  gather_child_merges(dp, cx, cands);
  gather_chain_fusions(dp, cx, cands);
  std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    return a.priority > b.priority;
  });
  if (static_cast<int>(cands.size()) > cx.opts.max_candidates) {
    cands.resize(static_cast<std::size_t>(cx.opts.max_candidates));
  }
  // Candidates are independent: apply + reschedule + cost each on the
  // parallel runtime, reduced in enumeration order.
  const std::uint64_t grp = obs::MoveLedger::instance().begin_group();
  return runtime::parallel_best(
      static_cast<int>(cands.size()), std::move(best),
      [&](int i) {
        obs::CandidateScope oscope(grp, i);
        const Candidate& c = cands[static_cast<std::size_t>(i)];
        std::string desc;
        Datapath cand = apply_candidate(dp, c, cx, desc);
        if (desc.empty()) return Move{};  // e.g. embedding failed
        const char* kind = c.kind == Candidate::Kind::Embed ? "C:embed"
                           : c.kind == Candidate::Kind::ChainFuse
                               ? "C:chain-fuse"
                               : "C:share";
        return finish_move(std::move(cand), cx, cost0, kind, desc);
      },
      keep_better);
}

}  // namespace hsyn
