#include "synth/moves.h"

#include "power/estimator.h"
#include "rtl/cost.h"
#include "sched/scheduler.h"
#include "util/fmt.h"

namespace hsyn {

Datapath instantiate_scheduled(const ComplexLibrary::Template& t,
                               const std::string& behavior,
                               const SynthContext& cx) {
  const std::string key = t.name + "/" + behavior + "/" +
                          strf("%.3f/%.3f", cx.pt.vdd, cx.pt.clk_ns);
  {
    std::lock_guard<std::mutex> lock(cx.template_cache->mu);
    auto it = cx.template_cache->map.find(key);
    // Deep copy under the lock; schedules stay valid in the copy.
    if (it != cx.template_cache->map.end()) return it->second;
  }
  // Instantiate and schedule outside the lock -- several workers may
  // build the same template concurrently, but the result is a pure
  // function of the key, so whichever insert wins the race is correct.
  Datapath inst = ComplexLibrary::instantiate(t, behavior);
  schedule_datapath(inst, *cx.lib, cx.pt, kNoDeadline);
  std::lock_guard<std::mutex> lock(cx.template_cache->mu);
  auto [it, inserted] = cx.template_cache->map.emplace(key, std::move(inst));
  (void)inserted;
  return it->second;
}

double cost_of(const Datapath& dp, const SynthContext& cx) {
  if (cx.obj == Objective::Area) {
    return area_of(dp, *cx.lib).total();
  }
  return energy_of(dp, 0, cx.trace, *cx.lib, cx.pt).total();
}

Move finish_move(Datapath cand, const SynthContext& cx, double cost_before,
                 std::string kind, std::string desc) {
  Move m;
  m.kind = std::move(kind);
  m.desc = std::move(desc);
  cand.prune_unused();
  const SchedResult sr = schedule_datapath(cand, *cx.lib, cx.pt, cx.deadline);
  if (!sr.ok) return m;
  m.gain = cost_before - cost_of(cand, cx);
  m.result = std::move(cand);
  m.valid = true;
  return m;
}

const Move& better_move(const Move& a, const Move& b) {
  if (!a.valid) return b;
  if (!b.valid) return a;
  return a.gain >= b.gain ? a : b;
}

void keep_better(Move& best, Move&& cand) {
  if (!cand.valid) return;
  if (!best.valid || cand.gain > best.gain) best = std::move(cand);
}

Trace child_input_trace(const Datapath& dp, int b, int child_idx,
                        const std::string& behavior, const SynthContext& cx) {
  const BehaviorImpl& bi = dp.behaviors.at(static_cast<std::size_t>(b));
  const auto edge_vals = eval_dfg_edges(*bi.dfg, resolver_of(dp), cx.trace);
  // Invocations of this child+behavior, in schedule order.
  std::vector<std::pair<int, int>> invs;  // (start, inv)
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    const Invocation& inv = bi.invs[i];
    if (inv.unit.kind != UnitRef::Kind::Child || inv.unit.idx != child_idx) continue;
    if (bi.dfg->node(inv.nodes.front()).behavior != behavior) continue;
    invs.push_back({bi.scheduled ? bi.inv_start[i] : 0, static_cast<int>(i)});
  }
  std::sort(invs.begin(), invs.end());
  Trace out;
  out.reserve(cx.trace.size() * invs.size());
  for (std::size_t t = 0; t < cx.trace.size(); ++t) {
    for (const auto& [start, i] : invs) {
      (void)start;
      const Node& n = bi.dfg->node(bi.invs[static_cast<std::size_t>(i)].nodes.front());
      Sample s(static_cast<std::size_t>(n.num_inputs));
      for (int p = 0; p < n.num_inputs; ++p) {
        s[static_cast<std::size_t>(p)] =
            edge_vals[t][static_cast<std::size_t>(
                bi.dfg->input_edge(bi.invs[static_cast<std::size_t>(i)].nodes.front(), p))];
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace hsyn
