#include "synth/moves.h"

#include <atomic>

#include "eval/engine.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "power/estimator.h"
#include "power/replay.h"
#include "rtl/cost.h"
#include "runtime/stats.h"
#include "sched/scheduler.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

// Aggregate TemplateCache counters across every instance (a synthesis
// run creates one per SynthContext chain), polled by runtime/stats.
std::atomic<std::uint64_t> g_tmpl_hits{0};
std::atomic<std::uint64_t> g_tmpl_misses{0};
std::atomic<std::uint64_t> g_tmpl_insertions{0};
std::atomic<std::uint64_t> g_tmpl_evictions{0};
std::atomic<std::uint64_t> g_tmpl_entries{0};

void register_template_cache_stats() {
  static const bool once = [] {
    runtime::register_counter_source("template-cache", [] {
      return std::map<std::string, std::uint64_t>{
          {"hits", g_tmpl_hits.load(std::memory_order_relaxed)},
          {"misses", g_tmpl_misses.load(std::memory_order_relaxed)},
          {"insertions", g_tmpl_insertions.load(std::memory_order_relaxed)},
          {"evictions", g_tmpl_evictions.load(std::memory_order_relaxed)},
          {"entries", g_tmpl_entries.load(std::memory_order_relaxed)}};
    });
    return true;
  }();
  (void)once;
}

}  // namespace

TemplateCache::TemplateCache() { register_template_cache_stats(); }

std::optional<Datapath> TemplateCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    g_tmpl_misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  g_tmpl_hits.fetch_add(1, std::memory_order_relaxed);
  // Deep copy under the lock; schedules stay valid in the copy.
  return it->second->dp;
}

void TemplateCache::put(const std::string& key, Datapath dp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->dp = std::move(dp);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(dp)});
  index_.emplace(key, lru_.begin());
  g_tmpl_insertions.fetch_add(1, std::memory_order_relaxed);
  g_tmpl_entries.fetch_add(1, std::memory_order_relaxed);
  while (lru_.size() > kMaxEntries) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    g_tmpl_evictions.fetch_add(1, std::memory_order_relaxed);
    g_tmpl_entries.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t TemplateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

Datapath instantiate_scheduled(const ComplexLibrary::Template& t,
                               const std::string& behavior,
                               const SynthContext& cx) {
  const std::string key = t.name + "/" + behavior + "/" +
                          strf("%.3f/%.3f", cx.pt.vdd, cx.pt.clk_ns);
  if (auto hit = cx.template_cache->get(key)) return std::move(*hit);
  // Instantiate and schedule outside the lock -- several workers may
  // build the same template concurrently, but the result is a pure
  // function of the key, so whichever insert wins the race is correct.
  Datapath inst = ComplexLibrary::instantiate(t, behavior);
  schedule_datapath(inst, *cx.lib, cx.pt, kNoDeadline);
  cx.template_cache->put(key, inst);
  return inst;
}

double cost_of(const Datapath& dp, const SynthContext& cx) {
  if (cx.obj == Objective::Area) {
    return area_of(dp, *cx.lib).total();
  }
  return energy_of(dp, 0, cx.trace, *cx.lib, cx.pt).total();
}

Move finish_move(Datapath cand, const SynthContext& cx, double cost_before,
                 std::string kind, std::string desc, const Datapath* base,
                 const DirtyRegion* dirty) {
  obs::Span span("eval-move");
  // Ledger bookkeeping only when recording AND this evaluation runs
  // under a tagged candidate scope; off means zero extra clock reads.
  obs::MoveLedger& ledger = obs::MoveLedger::instance();
  const bool rec = ledger.enabled() && obs::CandidateScope::active();
  const std::uint64_t t0 = rec ? obs::now_ns() : 0;
  const std::uint64_t hits0 = rec ? eval::thread_cache_hits() : 0;
  const std::uint64_t misses0 = rec ? eval::thread_cache_misses() : 0;

  Move m;
  m.kind = std::move(kind);
  m.desc = std::move(desc);
  const bool pruned = cand.prune_unused();
  const SchedResult sr = schedule_datapath(cand, *cx.lib, cx.pt, cx.deadline);
  if (sr.ok) {
    if (base != nullptr && dirty != nullptr && !pruned) {
      // Seed the evaluation cache with the candidate's connectivity,
      // derived incrementally from the base level's. Must happen after
      // scheduling (the cache key is the post-schedule fingerprint) and
      // only when pruning kept indices stable. Priming never changes what
      // cost_of returns -- a complete hint yields exactly
      // connectivity_of(cand) -- it only skips the recompute.
      eval::EvalEngine& eng = eval::EvalEngine::instance();
      eng.prime_connectivity(cand, eng.connectivity(*base), *dirty);
    }
    m.gain = cost_before - cost_of(cand, cx);
    m.result = std::move(cand);
    m.valid = true;
  }

  if (rec) {
    m.obs_group = obs::CandidateScope::current_group();
    m.obs_cand = obs::CandidateScope::current_cand();
    obs::MoveRecord r;
    r.group = m.obs_group;
    r.cand = m.obs_cand;
    r.kind = m.kind;
    r.desc = m.desc;
    r.pass = obs::ImproveScope::current_pass();
    r.depth = obs::ResynthScope::current_depth();
    r.gain = m.gain;
    r.cost_before = cost_before;
    r.status =
        m.valid ? obs::MoveStatus::Evaluated : obs::MoveStatus::Infeasible;
    const std::uint64_t eval_ns = obs::now_ns() - t0;
    r.eval_us = static_cast<double>(eval_ns) * 1e-3;
    r.cache_hits = eval::thread_cache_hits() - hits0;
    r.cache_misses = eval::thread_cache_misses() - misses0;
    ledger.record(std::move(r));
    static obs::Histogram& eval_hist =
        obs::Registry::instance().histogram("eval.move_us");
    eval_hist.observe(eval_ns / 1000);
  }
  return m;
}

const Move& better_move(const Move& a, const Move& b) {
  if (!a.valid) return b;
  if (!b.valid) return a;
  return a.gain >= b.gain ? a : b;
}

void keep_better(Move& best, Move&& cand) {
  if (!cand.valid) return;
  if (!best.valid || cand.gain > best.gain) best = std::move(cand);
}

Trace child_input_trace(const Datapath& dp, int b, int child_idx,
                        const std::string& behavior, const SynthContext& cx) {
  const BehaviorImpl& bi = dp.behaviors.at(static_cast<std::size_t>(b));
  const auto edge_vals_ptr =
      eval_dfg_edges_shared(*bi.dfg, resolver_of(dp), cx.trace);
  const EdgeMatrix& edge_vals = *edge_vals_ptr;
  // Invocations of this child+behavior, in schedule order.
  std::vector<std::pair<int, int>> invs;  // (start, inv)
  for (std::size_t i = 0; i < bi.invs.size(); ++i) {
    const Invocation& inv = bi.invs[i];
    if (inv.unit.kind != UnitRef::Kind::Child || inv.unit.idx != child_idx) continue;
    if (bi.dfg->node(inv.nodes.front()).behavior != behavior) continue;
    invs.push_back({bi.scheduled ? bi.inv_start[i] : 0, static_cast<int>(i)});
  }
  std::sort(invs.begin(), invs.end());
  Trace out;
  out.reserve(cx.trace.size() * invs.size());
  for (std::size_t t = 0; t < cx.trace.size(); ++t) {
    for (const auto& [start, i] : invs) {
      (void)start;
      const Node& n = bi.dfg->node(bi.invs[static_cast<std::size_t>(i)].nodes.front());
      Sample s(static_cast<std::size_t>(n.num_inputs));
      for (int p = 0; p < n.num_inputs; ++p) {
        s[static_cast<std::size_t>(p)] = edge_vals.at(
            bi.dfg->input_edge(bi.invs[static_cast<std::size_t>(i)].nodes.front(), p),
            t);
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace hsyn
