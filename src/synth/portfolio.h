// Portfolio search: N SearchStrategy trajectories explored concurrently
// over the deterministic runtime pool, best-of kept.
//
// Each strategy is one chunk of a top-level parallel region; nested
// regions execute inline on the calling lane (runtime/thread_pool.h), so
// a strategy's whole trajectory -- including its own parallel_best move
// evaluations -- runs serially on one lane and is a pure function of
// (design, options, strategy). The best-of reduction uses the explicit
// (cost, strategy index) comparator of runtime/parallel.h, so the
// portfolio winner is bit-identical at 1, 2 or 8 threads.
//
// Explorers share work instead of multiplying it: every strategy prices
// moves through the shared EvalEngine caches against the *same* typical
// input trace (strategy rng offsets never perturb the trace), so a
// schedule/cost evaluated by one explorer is a cache hit for the rest.
//
// Learning loop: the per-strategy move outcome tallies (ImproveStats
// per-class counters, mirrored in the move ledger's per-strategy rollup)
// are folded into accept-rate priors between rounds; strategies marked
// `adaptive` re-order their move classes by prior score in round r+1.
// Strategy 0 is always the untouched baseline, which guarantees the
// portfolio never returns a worse solution than single-seed synthesize().
#pragma once

#include <string>
#include <vector>

#include "synth/search_core.h"
#include "synth/strategy.h"

namespace hsyn {

struct PortfolioOptions {
  /// Strategy count when `strategies` is empty (clamped to >= 1);
  /// filled from default_portfolio().
  int num_strategies = 4;
  /// Portfolio rounds: after each round, accept-rate priors learned from
  /// all explorers re-order the adaptive strategies' move classes.
  int rounds = 1;
  /// Explicit strategy list (--strategies SPEC); indexes are reassigned
  /// to list order.
  std::vector<SearchStrategy> strategies;
};

/// One row of the portfolio outcome table: how one strategy fared in one
/// round.
struct StrategyReport {
  SearchStrategy strategy;
  int round = 0;
  bool ok = false;
  bool cancelled = false;
  double area = 0;
  double power = 0;
  double cost = 0;  ///< objective value (area or power)
  ImproveStats stats;
  bool winner = false;
};

struct PortfolioResult {
  /// Best solution across every strategy and round (ties break toward
  /// the lowest (round, strategy) index -- strategy 0 being the baseline,
  /// a tie means "the baseline was never beaten").
  SynthResult best;
  /// Index into `reports` of the winning run (-1 when nothing succeeded).
  int winner = -1;
  /// Some strategy was cut short by the CancelToken; `best` still holds
  /// the best solution found before the cut.
  bool cancelled = false;
  std::string cancel_reason;
  /// One row per (round, strategy), rounds outermost, strategy order
  /// within a round -- fully deterministic.
  std::vector<StrategyReport> reports;
  /// Move-class order the priors settled on (= the order adaptive
  /// strategies would use in a further round).
  std::vector<MoveClass> prior_order;

  /// The per-strategy win-rate table for the final report.
  std::string summary_table() const;
};

/// Derive the prior move-class order from aggregated per-class stats:
/// classes sort by accepted gain, then accept rate, then the legacy
/// order. Deterministic.
std::vector<MoveClass> prior_move_order(const ImproveStats& totals);

/// Run a portfolio synthesis. Never throws Cancelled: a tripped token
/// yields cancelled=true and the best-so-far solution, exactly once.
PortfolioResult portfolio_synthesize(const Design& design, const Library& lib,
                                     const ComplexLibrary* clib,
                                     double sample_period_ns, Objective obj,
                                     Mode mode, const SynthOptions& opts,
                                     const PortfolioOptions& popts);

}  // namespace hsyn
