#include "synth/report.h"

#include <map>
#include <sstream>

#include "rtl/cost.h"
#include "util/fmt.h"

namespace hsyn {

std::string result_summary(const SynthResult& r, const Library& lib) {
  std::ostringstream out;
  if (!r.ok) {
    out << "synthesis failed: " << r.fail_reason << "\n";
    return out.str();
  }
  out << strf("%s-optimized (%s synthesis)\n", objective_name(r.obj),
              mode_name(r.mode));
  out << strf("  operating point : Vdd %.1f V, clock %.1f ns\n", r.pt.vdd,
              r.pt.clk_ns);
  out << strf("  sampling period : %.1f ns (%d cycles), schedule %d cycles\n",
              r.sample_period_ns, r.deadline_cycles, r.makespan);
  const AreaBreakdown a = area_of(r.dp, lib);
  out << strf("  area            : %.1f (fu %.1f, reg %.1f, mux %.1f, wire "
              "%.1f, ctrl %.1f, modules %.1f)\n",
              a.total(), a.fu, a.reg, a.mux, a.wire, a.ctrl, a.children);
  out << strf("  energy/sample   : %.1f  power: %.4f\n", r.energy, r.power);
  out << strf("  improvement     : %d passes, %d moves applied, %d kept, "
              "cost %.1f -> %.1f\n",
              r.stats.passes, r.stats.moves_applied, r.stats.moves_kept,
              r.stats.initial_cost, r.stats.final_cost);
  out << strf("  synthesis time  : %.2f s\n", r.synth_seconds);
  return out.str();
}

std::string architecture_summary(const Datapath& dp, const Library& lib) {
  std::ostringstream out;
  std::map<std::string, int> counts;
  for (const FuUnit& fu : dp.fus) counts[lib.fu(fu.type).name]++;
  out << strf("%s: ", dp.name.empty() ? "datapath" : dp.name.c_str());
  bool first = true;
  for (const auto& [name, n] : counts) {
    out << (first ? "" : ", ") << n << "x " << name;
    first = false;
  }
  if (!dp.fus.empty()) out << ", ";
  out << dp.regs.size() << " registers";
  if (!dp.children.empty()) {
    out << strf(", %zu complex instance(s):\n", dp.children.size());
    for (const ChildUnit& c : dp.children) {
      out << "  - " << architecture_summary(*c.impl, lib);
    }
  } else {
    out << "\n";
  }
  return out.str();
}

}  // namespace hsyn
