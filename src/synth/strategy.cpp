#include "synth/strategy.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace hsyn {

namespace {

const std::vector<MoveClass> kLegacyOrder = {MoveClass::Replace,
                                             MoveClass::Share,
                                             MoveClass::Split};

char move_class_letter(MoveClass c) {
  switch (c) {
    case MoveClass::Replace: return 'a';
    case MoveClass::Share: return 'c';
    case MoveClass::Split: return 'd';
  }
  return '?';
}

bool parse_order(const std::string& letters, std::vector<MoveClass>* out,
                 std::string* err) {
  std::vector<MoveClass> order;
  for (char ch : letters) {
    MoveClass c;
    switch (ch) {
      case 'a': case 'A': case 'b': case 'B': c = MoveClass::Replace; break;
      case 'c': case 'C': c = MoveClass::Share; break;
      case 'd': case 'D': c = MoveClass::Split; break;
      default:
        *err = std::string("unknown move-class letter '") + ch +
               "' in order=" + letters;
        return false;
    }
    if (std::find(order.begin(), order.end(), c) == order.end())
      order.push_back(c);
  }
  if (order.empty()) {
    *err = "order= must name at least one move class";
    return false;
  }
  *out = std::move(order);
  return true;
}

bool parse_int(const std::string& key, const std::string& val, int* out,
               std::string* err) {
  char* end = nullptr;
  const long v = std::strtol(val.c_str(), &end, 10);
  if (end == val.c_str() || *end != '\0' || v < 0 || v > 1'000'000) {
    *err = key + "= expects a small non-negative integer, got '" + val + "'";
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

/// The named presets of default_portfolio(), reachable from specs via
/// preset=NAME so a hand-written spec can start from a stock variant.
bool apply_preset(const std::string& name, Objective obj, SearchStrategy* s,
                  std::string* err) {
  *s = SearchStrategy{};
  s->name = name;
  if (name == "base") {
    return true;
  }
  if (name == "share-first") {
    s->move_order = {MoveClass::Share, MoveClass::Replace, MoveClass::Split};
    s->always_split = true;
    s->adaptive = true;
    return true;
  }
  if (name == "rev-probe") {
    s->reverse_vdds = true;
    s->reverse_clocks = true;
    s->adaptive = true;
    return true;
  }
  if (name == "obj-flip") {
    s->schedule =
        obj == Objective::Power ? ObjSchedule::AreaFirst : ObjSchedule::PowerFirst;
    s->warm_passes = 2;
    s->adaptive = true;
    return true;
  }
  if (name == "split-happy") {
    s->move_order = {MoveClass::Split, MoveClass::Replace, MoveClass::Share};
    s->always_split = true;
    s->reverse_clocks = true;
    s->adaptive = true;
    return true;
  }
  if (name == "deep") {
    s->resynth_head = 4;
    s->max_passes = 12;
    s->adaptive = true;
    return true;
  }
  if (name == "jitter") {
    s->seed_offset = 0x9e37;
    s->adaptive = true;
    return true;
  }
  *err = "unknown preset '" + name + "'";
  return false;
}

bool parse_one(const std::string& field, Objective obj, SearchStrategy* out,
               std::string* err) {
  SearchStrategy s;
  bool named = false;
  std::istringstream pairs(field);
  std::string pair;
  while (std::getline(pairs, pair, ',')) {
    if (pair.empty()) continue;
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      *err = "expected key=value, got '" + pair + "'";
      return false;
    }
    const std::string key = pair.substr(0, eq);
    const std::string val = pair.substr(eq + 1);
    if (key == "preset") {
      const std::string keep_name = named ? s.name : "";
      if (!apply_preset(val, obj, &s, err)) return false;
      if (named) s.name = keep_name;
    } else if (key == "name") {
      s.name = val;
      named = true;
    } else if (key == "order") {
      if (!parse_order(val, &s.move_order, err)) return false;
    } else if (key == "vdd") {
      if (val != "asc" && val != "desc") {
        *err = "vdd= expects asc or desc";
        return false;
      }
      s.reverse_vdds = (val == "desc");
    } else if (key == "clocks") {
      if (val != "asc" && val != "desc") {
        *err = "clocks= expects asc or desc";
        return false;
      }
      s.reverse_clocks = (val == "desc");
    } else if (key == "schedule") {
      if (val == "fixed") {
        s.schedule = ObjSchedule::Fixed;
      } else if (val == "area-first") {
        s.schedule = ObjSchedule::AreaFirst;
      } else if (val == "power-first") {
        s.schedule = ObjSchedule::PowerFirst;
      } else {
        *err = "schedule= expects fixed, area-first or power-first";
        return false;
      }
    } else if (key == "warm") {
      if (!parse_int(key, val, &s.warm_passes, err)) return false;
    } else if (key == "seed") {
      int v = 0;
      if (!parse_int(key, val, &v, err)) return false;
      s.seed_offset = static_cast<std::uint64_t>(v);
    } else if (key == "split") {
      if (val == "always") {
        s.always_split = true;
      } else if (val == "after-share") {
        s.always_split = false;
      } else {
        *err = "split= expects always or after-share";
        return false;
      }
    } else if (key == "passes") {
      if (!parse_int(key, val, &s.max_passes, err)) return false;
    } else if (key == "moves") {
      if (!parse_int(key, val, &s.max_moves_per_pass, err)) return false;
    } else if (key == "depth") {
      if (!parse_int(key, val, &s.max_resynth_depth, err)) return false;
    } else if (key == "resynth-head") {
      if (!parse_int(key, val, &s.resynth_head, err)) return false;
    } else if (key == "adaptive") {
      if (val != "0" && val != "1") {
        *err = "adaptive= expects 0 or 1";
        return false;
      }
      s.adaptive = (val == "1");
    } else {
      *err = "unknown strategy key '" + key + "'";
      return false;
    }
  }
  *out = std::move(s);
  return true;
}

}  // namespace

const char* move_class_name(MoveClass c) {
  switch (c) {
    case MoveClass::Replace: return "replace";
    case MoveClass::Share: return "share";
    case MoveClass::Split: return "split";
  }
  return "?";
}

const char* obj_schedule_name(ObjSchedule s) {
  switch (s) {
    case ObjSchedule::Fixed: return "fixed";
    case ObjSchedule::AreaFirst: return "area-first";
    case ObjSchedule::PowerFirst: return "power-first";
  }
  return "?";
}

bool SearchStrategy::is_baseline() const {
  return seed_offset == 0 && move_order == kLegacyOrder && !always_split &&
         !reverse_vdds && !reverse_clocks && schedule == ObjSchedule::Fixed &&
         max_passes == 0 && max_moves_per_pass == 0 && max_resynth_depth == 0 &&
         resynth_head == 2 && !adaptive;
}

std::vector<SearchStrategy> default_portfolio(int n, Objective obj) {
  // Index 0 is always the untouched baseline so the portfolio's best-of
  // can never lose to the single-seed engine. The rest cycle through the
  // stock presets; past one full cycle, repeats get increasing rng
  // jitter so no two strategies follow identical trajectories.
  static const char* kCycle[] = {"share-first", "rev-probe",   "obj-flip",
                                 "split-happy", "deep",        "jitter"};
  constexpr int kCycleLen = static_cast<int>(sizeof(kCycle) / sizeof(kCycle[0]));
  std::vector<SearchStrategy> out;
  if (n <= 0) return out;
  out.reserve(static_cast<std::size_t>(n));
  std::string err;
  SearchStrategy base;
  out.push_back(base);
  for (int i = 1; i < n; ++i) {
    SearchStrategy s;
    const int slot = (i - 1) % kCycleLen;
    const int lap = (i - 1) / kCycleLen;
    apply_preset(kCycle[slot], obj, &s, &err);
    if (lap > 0) {
      s.seed_offset += static_cast<std::uint64_t>(lap) * 0x1009ULL;
      s.name += "+" + std::to_string(lap);
    }
    out.push_back(std::move(s));
  }
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)].index = i;
  return out;
}

bool parse_strategies(const std::string& spec, Objective obj,
                      std::vector<SearchStrategy>* out, int* rounds,
                      std::string* err) {
  out->clear();
  std::istringstream fields(spec);
  std::string field;
  bool first = true;
  while (std::getline(fields, field, ';')) {
    if (field.empty()) continue;
    if (first && field.rfind("rounds=", 0) == 0) {
      first = false;
      int r = 0;
      if (!parse_int("rounds", field.substr(7), &r, err)) return false;
      if (r < 1) {
        *err = "rounds= must be >= 1";
        return false;
      }
      if (rounds) *rounds = r;
      continue;
    }
    first = false;
    SearchStrategy s;
    if (!parse_one(field, obj, &s, err)) return false;
    s.index = static_cast<int>(out->size());
    out->push_back(std::move(s));
  }
  if (out->empty()) {
    *err = "strategy spec defines no strategies";
    return false;
  }
  return true;
}

std::string strategy_to_string(const SearchStrategy& s) {
  std::ostringstream o;
  o << "name=" << s.name;
  if (s.move_order != kLegacyOrder) {
    o << ",order=";
    for (MoveClass c : s.move_order) o << move_class_letter(c);
  }
  if (s.reverse_vdds) o << ",vdd=desc";
  if (s.reverse_clocks) o << ",clocks=desc";
  if (s.schedule != ObjSchedule::Fixed)
    o << ",schedule=" << obj_schedule_name(s.schedule) << ",warm="
      << s.warm_passes;
  if (s.seed_offset != 0) o << ",seed=" << s.seed_offset;
  if (s.always_split) o << ",split=always";
  if (s.max_passes != 0) o << ",passes=" << s.max_passes;
  if (s.max_moves_per_pass != 0) o << ",moves=" << s.max_moves_per_pass;
  if (s.max_resynth_depth != 0) o << ",depth=" << s.max_resynth_depth;
  if (s.resynth_head != 2) o << ",resynth-head=" << s.resynth_head;
  if (s.adaptive) o << ",adaptive=1";
  return o.str();
}

}  // namespace hsyn
