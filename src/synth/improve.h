// Variable-depth iterative improvement (paper Fig. 4, inner loops).
//
// Starting from a scheduled solution, repeatedly runs passes of up to
// MAX_MOVES moves. Within a pass every move applies the best candidate
// even when its gain is negative; at the end of the pass the prefix with
// the best cumulative gain is kept (classic Kernighan-Lin variable-depth
// search [11]). Passes repeat until one yields no positive gain.
#pragma once

#include "synth/moves.h"

namespace hsyn {

struct ImproveStats {
  int passes = 0;
  int moves_applied = 0;
  int moves_kept = 0;
  double initial_cost = 0;
  double final_cost = 0;
};

/// Improve `dp` (must be scheduled and feasible) under `cx`. Returns the
/// best solution found.
Datapath improve(Datapath dp, const SynthContext& cx, ImproveStats* stats = nullptr);

}  // namespace hsyn
