// Variable-depth iterative improvement (paper Fig. 4, inner loops).
//
// Starting from a scheduled solution, repeatedly runs passes of up to
// MAX_MOVES moves. Within a pass every move applies the best candidate
// even when its gain is negative; at the end of the pass the prefix with
// the best cumulative gain is kept (classic Kernighan-Lin variable-depth
// search [11]). Passes repeat until one yields no positive gain.
//
// improve() is the legacy-recipe entry point; the strategy-parameterized
// engine it wraps lives in synth/search_core.h.
#pragma once

#include <array>

#include "synth/moves.h"

namespace hsyn {

/// Outcome tallies for one top-level move class (replace/share/split;
/// moves A and B share the replace slot). The portfolio engine folds
/// these across strategies into accept-rate priors that reorder
/// adaptive strategies' move_order in later rounds.
struct MoveClassCounters {
  int applied = 0;        ///< moves of this class applied during passes
  int accepted = 0;       ///< applied moves kept by best-prefix selection
  double accepted_gain = 0;  ///< cumulative gain of the accepted moves
};

struct ImproveStats {
  int passes = 0;
  int moves_applied = 0;
  int moves_kept = 0;
  double initial_cost = 0;
  double final_cost = 0;
  /// Indexed by MoveClass (synth/strategy.h): 0 replace, 1 share, 2 split.
  std::array<MoveClassCounters, 3> by_class{};
};

/// Fold `from` into `into` (counter-wise; costs keep `into`'s). Used to
/// aggregate stats across the operating points of one search trajectory.
void merge_stats(ImproveStats& into, const ImproveStats& from);

/// Improve `dp` (must be scheduled and feasible) under `cx`. Returns the
/// best solution found.
Datapath improve(Datapath dp, const SynthContext& cx, ImproveStats* stats = nullptr);

}  // namespace hsyn
