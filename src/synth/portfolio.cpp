#include "synth/portfolio.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <utility>

#include "obs/ledger.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "util/fmt.h"
#include "util/log.h"
#include "util/table.h"

namespace hsyn {
namespace {

double objective_value(const SynthResult& r, Objective obj) {
  return obj == Objective::Area ? r.area : r.power;
}

}  // namespace

std::vector<MoveClass> prior_move_order(const ImproveStats& totals) {
  std::array<MoveClass, 3> order = {MoveClass::Replace, MoveClass::Share,
                                    MoveClass::Split};
  const auto score = [&](MoveClass c) {
    const MoveClassCounters& k = totals.by_class[static_cast<std::size_t>(c)];
    return std::pair<double, double>(
        k.accepted_gain,
        k.applied > 0 ? static_cast<double>(k.accepted) / k.applied : 0.0);
  };
  // stable_sort keeps the legacy order among fully tied classes, so a
  // prior learned from zero moves is the legacy order itself.
  std::stable_sort(order.begin(), order.end(), [&](MoveClass a, MoveClass b) {
    return score(a) > score(b);
  });
  return {order.begin(), order.end()};
}

PortfolioResult portfolio_synthesize(const Design& design, const Library& lib,
                                     const ComplexLibrary* clib,
                                     double sample_period_ns, Objective obj,
                                     Mode mode, const SynthOptions& opts,
                                     const PortfolioOptions& popts) {
  obs::Span span("portfolio");
  const auto t0 = std::chrono::steady_clock::now();

  PortfolioResult out;
  std::vector<SearchStrategy> strategies =
      popts.strategies.empty()
          ? default_portfolio(std::max(1, popts.num_strategies), obj)
          : popts.strategies;
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    strategies[i].index = static_cast<int>(i);
  }
  const int n = static_cast<int>(strategies.size());
  const int rounds = std::max(1, popts.rounds);

  // Strategies run concurrently, so the per-strategy engines must not
  // call the (single-threaded) progress sink; the portfolio narrates at
  // its own serial boundaries instead.
  SynthOptions core_opts = opts;
  core_opts.progress = nullptr;
  const SearchCore core(design, lib, clib, sample_period_ns, obj, mode,
                        core_opts);

  runtime::Scored<SynthResult> best;
  ImproveStats prior_totals;
  for (int round = 0; round < rounds; ++round) {
    std::vector<SearchStrategy> cohort = strategies;
    if (round > 0) {
      const std::vector<MoveClass> order = prior_move_order(prior_totals);
      for (SearchStrategy& s : cohort) {
        if (s.adaptive) s.move_order = order;
      }
    }

    // One strategy per region chunk. Nested regions run inline on the
    // lane, so each trajectory is strategy-serial; outcomes land in
    // index order regardless of which worker ran them.
    const std::vector<SearchOutcome> outcomes =
        runtime::parallel_map(n, [&](int i) {
          obs::StrategyScope scope(round * n + i);
          SearchOutcome oc = core.run(cohort[static_cast<std::size_t>(i)]);
          // Telemetry only (relaxed, never read back): the lane carries
          // the job tag, so the count lands on the right job.
          obs::current_job_state().strategies_done.fetch_add(
              1, std::memory_order_relaxed);
          return oc;
        });

    for (int i = 0; i < n; ++i) {
      const SearchOutcome& oc = outcomes[static_cast<std::size_t>(i)];
      StrategyReport rep;
      rep.strategy = cohort[static_cast<std::size_t>(i)];
      rep.round = round;
      rep.ok = oc.result.ok;
      rep.cancelled = oc.cancelled;
      rep.stats = oc.total_stats;
      if (oc.result.ok) {
        rep.area = oc.result.area;
        rep.power = oc.result.power;
        rep.cost = objective_value(oc.result, obj);
      }
      if (oc.cancelled && !out.cancelled) {
        out.cancelled = true;
        out.cancel_reason = oc.cancel_reason;
      }
      merge_stats(prior_totals, oc.total_stats);
      if (oc.result.ok) {
        runtime::keep_scored(
            best, runtime::Scored<SynthResult>{rep.cost, round * n + i,
                                               oc.result});
      }
      if (opts.progress && !oc.cancelled) {
        SynthProgress ev;
        ev.stage = SynthProgress::Stage::Strategy;
        ev.pass = round * n + i;
        ev.cost = rep.cost;
        ev.area = rep.area;
        ev.power = rep.power;
        ev.moves_applied = rep.stats.moves_applied;
        ev.moves_kept = rep.stats.moves_kept;
        opts.progress(ev);
      }
      out.reports.push_back(std::move(rep));
    }
    if (out.cancelled) break;  // no further rounds after a trip
  }
  out.prior_order = prior_move_order(prior_totals);

  if (best.index >= 0) {
    out.best = std::move(best.value);
    out.winner = best.index;
    out.reports[static_cast<std::size_t>(best.index)].winner = true;
    SearchCore::verify_result(out.best, design, lib);
  } else {
    out.best.obj = obj;
    out.best.mode = mode;
    out.best.sample_period_ns = sample_period_ns;
    out.best.fail_reason = out.cancelled
                               ? "cancelled before any strategy finished"
                               : (core.viable() ? "no feasible operating point"
                                                : core.fail_reason());
  }
  out.best.synth_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  log_info(strf("portfolio: %d strategies x %d round(s), winner %d (%s)",
                n, rounds, out.winner,
                out.winner >= 0
                    ? out.reports[static_cast<std::size_t>(out.winner)]
                          .strategy.name.c_str()
                    : "none"));
  return out;
}

std::string PortfolioResult::summary_table() const {
  TextTable t;
  t.row({"#", "strategy", "round", "status", "area", "power", "cost",
         "applied", "accepted", "acc-gain"});
  t.rule();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const StrategyReport& r = reports[i];
    int applied = 0;
    int accepted = 0;
    double gain = 0;
    for (const MoveClassCounters& k : r.stats.by_class) {
      applied += k.applied;
      accepted += k.accepted;
      gain += k.accepted_gain;
    }
    t.row({std::to_string(i),
           r.strategy.name + (r.winner ? " *" : ""),
           std::to_string(r.round),
           r.cancelled ? "cancelled" : (r.ok ? "ok" : "failed"),
           r.ok ? strf("%.1f", r.area) : "-",
           r.ok ? strf("%.4f", r.power) : "-",
           r.ok ? strf("%.4f", r.cost) : "-",
           std::to_string(applied),
           std::to_string(accepted),
           strf("%.3f", gain)});
  }
  std::string order;
  for (const MoveClass c : prior_order) {
    if (!order.empty()) order += " > ";
    order += move_class_name(c);
  }
  return t.render() + "prior move order: " + order + "\n";
}

}  // namespace hsyn
