// INITIAL_SOLUTION (paper Fig. 4, statement 2).
//
// "This routine maps each simple node in the DFG to the fastest
// implementation available in the library. DFGs which represent
// hierarchical nodes are handled in the same manner. Each operation is
// mapped to a separate functional unit, and each variable to a separate
// register, resulting in a completely parallel architecture."
//
// For hierarchical nodes the fastest implementation is chosen among the
// complex-library templates for the behavior (and its equivalents) and a
// recursively constructed fully parallel module.
#pragma once

#include "synth/moves.h"

namespace hsyn {

/// Build the completely parallel fastest implementation of `dfg`,
/// labeled as implementing `behavior_name`. Unscheduled children are
/// scheduled internally for template comparison; the returned datapath
/// itself still needs schedule_datapath().
Datapath initial_solution(const Dfg& dfg, const std::string& behavior_name,
                          const SynthContext& cx);

/// Profile alignment: set every child's assumed input-arrival offsets to
/// the (elementwise-earliest) pattern the parent schedule actually
/// delivers, recursively, iterating to a fixed point. This recovers the
/// fine-grain overlap plain hierarchy hides -- a cascade stage's
/// data-independent operations can start while the previous stage is
/// still producing the serial value (the paper's profiles, Example 1,
/// exist for exactly this). Safe by construction: a module started per
/// its profile never reads an operand before the scheduler guarantees
/// its arrival. Returns the final unbounded makespan of behavior 0, or
/// -1 when scheduling failed.
int align_child_profiles(Datapath& dp, const Library& lib, const OpPoint& pt,
                         int iterations = 8);

}  // namespace hsyn
