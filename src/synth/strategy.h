// SearchStrategy: the descriptor that parameterizes one trajectory of
// the variable-depth improvement engine (src/synth/search_core.h).
//
// The paper's engine is greedy from one initial solution under one
// fixed recipe: probe supplies low-to-high, clocks coarse-to-fine, try
// move A/B first, share before split, one objective throughout. A
// SearchStrategy makes every one of those choices explicit so a
// portfolio (src/synth/portfolio.h) can run many deterministic
// variations concurrently and keep the best. The default-constructed
// strategy reproduces the legacy engine exactly, bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/moves.h"

namespace hsyn {

/// The three top-level move-generator slots of one improvement step
/// (paper Fig. 4). Replace covers moves A and B (reselection and
/// resynthesis share a generator), Share is move C, Split is move D.
enum class MoveClass : std::uint8_t { Replace, Share, Split };

const char* move_class_name(MoveClass c);

/// Objective played during the first `warm_passes` improvement passes;
/// the run's real objective always ranks the final candidates.
enum class ObjSchedule : std::uint8_t {
  Fixed,      ///< every pass optimizes the job objective (legacy)
  AreaFirst,  ///< warm passes minimize area, then switch to the objective
  PowerFirst, ///< warm passes minimize energy, then switch
};

const char* obj_schedule_name(ObjSchedule s);

struct SearchStrategy {
  /// Label for reports and the portfolio win table.
  std::string name = "base";

  /// Position in the portfolio. Tie-break of the best-of reduction
  /// (equal cost -> lowest index wins) and the strategy's rng stream
  /// selector; assigned by the portfolio engine.
  int index = 0;

  /// Nonzero: a per-strategy SplitMix64 stream (seeded with
  /// opts.seed + seed_offset, decorrelated by index) rotates the
  /// move-class order before every improvement step, deterministically
  /// jittering which generator wins equal-gain ties. Zero: no jitter
  /// (the legacy fixed order).
  std::uint64_t seed_offset = 0;

  /// Order the move generators are evaluated in within one improvement
  /// step. Earlier wins equal-gain ties (the fold keeps the first
  /// best). The default is the paper's order.
  std::vector<MoveClass> move_order = {MoveClass::Replace, MoveClass::Share,
                                       MoveClass::Split};

  /// Legacy Fig. 4 statements 9-10: the split generator runs only when
  /// the best sharing move of this step lost (invalid or negative
  /// gain). true: always consider splitting.
  bool always_split = false;

  /// Probe supply voltages highest-first instead of lowest-first. The
  /// op-point near-tie rule (8% band toward lower power) makes the
  /// visit order part of the result.
  bool reverse_vdds = false;

  /// Visit the picked clock candidates fine-to-coarse instead of
  /// coarse-to-fine.
  bool reverse_clocks = false;

  ObjSchedule schedule = ObjSchedule::Fixed;
  int warm_passes = 1;  ///< passes played under `schedule` (when not Fixed)

  // Depth limits; 0 = inherit the SynthOptions value.
  int max_passes = 0;
  int max_moves_per_pass = 0;
  int max_resynth_depth = 0;

  /// Moves at the head of each pass allowed to attempt full module
  /// resynthesis (move B, the costliest generator). The legacy engine
  /// hard-codes 2.
  int resynth_head = 2;

  /// Portfolio rounds > 0 may overwrite move_order with the accept-rate
  /// priors learned from the previous round's ledger. The baseline
  /// strategy keeps adaptive = false so the portfolio always contains
  /// one exact replica of the single-seed engine.
  bool adaptive = false;

  /// True when every field still has its default value (the strategy is
  /// an exact replica of the legacy single-seed engine).
  bool is_baseline() const;
};

/// `n` deterministic, diverse strategies: index 0 is always the exact
/// baseline; the rest cycle through probe-order reversals, move-order
/// permutations, objective warm-ups, split policies, and rng jitter.
/// `obj` picks the flip direction of the objective-schedule variants.
std::vector<SearchStrategy> default_portfolio(int n, Objective obj);

/// Parse a --strategies spec: strategies separated by ';', each a
/// comma-separated list of key=value pairs:
///
///   preset=NAME        base | share-first | rev-probe | obj-flip |
///                      split-happy | deep | jitter  (start from it)
///   order=LETTERS      permutation of "acd" (a=replace, c=share, d=split)
///   vdd=asc|desc       supply probe order
///   clocks=asc|desc    clock visit order
///   schedule=fixed|area-first|power-first
///   warm=N             warm passes under the schedule objective
///   seed=N             rng jitter offset (0 = none)
///   split=always|after-share
///   passes=N moves=N depth=N resynth-head=N   depth limits (0 = inherit)
///   adaptive=0|1       may be reordered by learned priors
///   name=LABEL
///
/// A leading `rounds=N` element (its own ';'-separated field) sets the
/// portfolio round count instead of defining a strategy.
/// Returns false (and *err) on an unknown key or malformed value.
bool parse_strategies(const std::string& spec, Objective obj,
                      std::vector<SearchStrategy>* out, int* rounds,
                      std::string* err);

/// One-line render of a strategy (spec syntax, round-trippable through
/// parse_strategies).
std::string strategy_to_string(const SearchStrategy& s);

}  // namespace hsyn
