// SearchCore: the re-entrant, strategy-parameterized synthesis engine.
//
// The legacy entry points -- improve() (synth/improve.h) and
// synthesize() (synth/synthesizer.h) -- are thin wrappers that run one
// default-constructed SearchStrategy through this core; the portfolio
// engine (synth/portfolio.h) runs many strategies concurrently over the
// same core instance.
//
// Construction does all the strategy-independent work once: flattening,
// critical-path analysis, supply-voltage pruning and typical-trace
// generation. run(strategy) is const and touches only immutable state
// plus its own locals, so N concurrent run() calls (one per pool lane;
// nested parallel regions execute inline on the calling lane) are safe
// and each is a pure function of (core inputs, strategy) -- the basis of
// the portfolio's thread-count-independence guarantee.
//
// Determinism note: the typical input trace is derived from
// SynthOptions::seed only. Strategy seed offsets deliberately do NOT
// perturb the trace -- all strategies price moves against identical
// traces, so concurrent explorers share evaluation-cache entries instead
// of each paying full price.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "synth/strategy.h"
#include "synth/synthesizer.h"

namespace hsyn {

/// The result of running one strategy to completion (or cancellation).
struct SearchOutcome {
  SynthResult result;  ///< best solution found (ok=false when none)
  /// The run was cut short by its CancelToken. `result` still holds the
  /// best solution found before the cut (best-so-far semantics); the
  /// legacy synthesize() wrapper rethrows instead.
  bool cancelled = false;
  std::string cancel_reason;
  /// Stats aggregated over every operating point the strategy explored
  /// (result.stats covers only the winning point). Feeds the portfolio's
  /// accept-rate priors.
  ImproveStats total_stats;
};

class SearchCore {
 public:
  /// Strategy-independent setup. May throw (bad user trace). The design
  /// and library must outlive the core.
  SearchCore(const Design& design, const Library& lib,
             const ComplexLibrary* clib, double sample_period_ns,
             Objective obj, Mode mode, const SynthOptions& opts);

  /// False when no supply voltage can meet the sampling period;
  /// fail_reason() says why and run() returns an immediate failure.
  bool viable() const { return viable_; }
  const std::string& fail_reason() const { return fail_reason_; }

  /// Run one complete search trajectory under `strat`. Re-entrant: safe
  /// to call concurrently from multiple pool lanes. Cancellation is
  /// caught at a strategy-serial boundary and reported via the outcome
  /// (never thrown).
  SearchOutcome run(const SearchStrategy& strat) const;

  const Trace& trace() const { return trace_; }
  Objective objective() const { return obj_; }
  const SynthOptions& options() const { return opts_; }

  /// Debug-build invariant gate over a finished result (no-op in release
  /// builds): run the cheap static-check registry on the winning circuit.
  static void verify_result(const SynthResult& r, const Design& design,
                            const Library& lib);

 private:
  const Design& design_;
  const Library& lib_;
  const ComplexLibrary* clib_;
  double sample_period_ns_;
  Objective obj_;
  Mode mode_;
  SynthOptions opts_;

  std::shared_ptr<const Dfg> flat_;  ///< owns the flattened DFG (flat mode)
  const Dfg* dfg_ = nullptr;
  std::string behavior_name_;
  std::vector<double> vdds_;  ///< pruned supply candidates, ascending
  Trace trace_;
  bool viable_ = true;
  std::string fail_reason_;
};

/// The strategy-parameterized variable-depth improvement loop.
/// `search_improve(dp, cx, SearchStrategy{}, stats)` is bit-identical to
/// the legacy improve(): the default move order folds the generators in
/// the paper's sequence with first-wins tie-breaking, and the split
/// generator runs exactly when the legacy conditional ran it.
Datapath search_improve(Datapath dp, const SynthContext& cx,
                        const SearchStrategy& strat, ImproveStats* stats);

}  // namespace hsyn
