#include "library/library.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "util/fmt.h"

namespace hsyn {

void Library::refresh_uid() {
  static std::atomic<std::uint64_t> counter{1};
  uid_ = counter.fetch_add(1, std::memory_order_relaxed);
}

int Library::add_fu(FuType fu) {
  refresh_uid();
  check(!fu.name.empty(), "functional unit type must be named");
  check(find_fu(fu.name) == -1, "duplicate fu type " + fu.name);
  check(!fu.ops.empty() && fu.area > 0 && fu.delay_ns > 0,
        "fu type " + fu.name + " malformed");
  fus_.push_back(std::move(fu));
  return static_cast<int>(fus_.size()) - 1;
}

int Library::find_fu(const std::string& name) const {
  for (std::size_t i = 0; i < fus_.size(); ++i) {
    if (fus_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Library::types_for(Op op) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < fus_.size(); ++i) {
    if (fus_[i].supports(op)) out.push_back(static_cast<int>(i));
  }
  return out;
}

int Library::cycles(int type_id, const OpPoint& pt) const {
  return cycles_at(fu(type_id).delay_ns, pt.vdd, pt.clk_ns);
}

int Library::fastest_for(Op op, const OpPoint& pt, bool allow_chained) const {
  int best = -1;
  int best_cyc = std::numeric_limits<int>::max();
  double best_area = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < fus_.size(); ++i) {
    const FuType& fu = fus_[i];
    if (!fu.supports(op)) continue;
    if (fu.chain_depth > 1 && !allow_chained) continue;
    const int c = cycles(static_cast<int>(i), pt);
    if (c < best_cyc || (c == best_cyc && fu.area < best_area)) {
      best = static_cast<int>(i);
      best_cyc = c;
      best_area = fu.area;
    }
  }
  return best;
}

double Library::min_delay_ns(Op op) const {
  double best = std::numeric_limits<double>::max();
  for (const FuType& fu : fus_) {
    if (!fu.supports(op)) continue;
    best = std::min(best, fu.delay_ns / fu.chain_depth);
  }
  check(best < std::numeric_limits<double>::max(),
        strf("no library type supports op %s", op_name(op)));
  return best;
}

Library default_library() {
  Library lib;
  // Paper Table 1 at 5 V / 20 ns clock. Delays chosen so cycles match:
  // ceil(20/20)=1, ceil(38/20)=2, ceil(55/20)=3, ceil(95/20)=5.
  lib.add_fu({.name = "add1", .ops = {Op::Add}, .chain_depth = 1, .area = 30,
              .delay_ns = 20, .cap_sw = 9});
  lib.add_fu({.name = "add2", .ops = {Op::Add}, .chain_depth = 1, .area = 20,
              .delay_ns = 38, .cap_sw = 5.5});
  lib.add_fu({.name = "chained_add2", .ops = {Op::Add}, .chain_depth = 2,
              .area = 60, .delay_ns = 22, .cap_sw = 17});
  lib.add_fu({.name = "chained_add3", .ops = {Op::Add}, .chain_depth = 3,
              .area = 90, .delay_ns = 24, .cap_sw = 25});
  lib.add_fu({.name = "mult1", .ops = {Op::Mult}, .chain_depth = 1, .area = 150,
              .delay_ns = 55, .cap_sw = 130});
  lib.add_fu({.name = "mult2", .ops = {Op::Mult}, .chain_depth = 1, .area = 100,
              .delay_ns = 95, .cap_sw = 62});
  // Pipelined multiplier: same latency as mult1 but accepts new operands
  // every cycle (initiation interval 1). Larger and hotter than mult1, so
  // it only wins where one multiplier serves many closely packed
  // multiplications.
  lib.add_fu({.name = "mult1p", .ops = {Op::Mult}, .chain_depth = 1,
              .area = 180, .delay_ns = 55, .cap_sw = 145, .pipelined = true});
  // Companion types beyond Table 1 needed by the filter/DCT benchmarks.
  lib.add_fu({.name = "sub1", .ops = {Op::Sub}, .chain_depth = 1, .area = 32,
              .delay_ns = 20, .cap_sw = 9.5});
  lib.add_fu({.name = "sub2", .ops = {Op::Sub}, .chain_depth = 1, .area = 22,
              .delay_ns = 38, .cap_sw = 6});
  lib.add_fu({.name = "alu1", .ops = {Op::Add, Op::Sub, Op::Cmp, Op::And, Op::Or,
                                       Op::Xor, Op::Neg},
              .chain_depth = 1, .area = 44, .delay_ns = 24, .cap_sw = 13});
  lib.add_fu({.name = "cmp1", .ops = {Op::Cmp}, .chain_depth = 1, .area = 14,
              .delay_ns = 14, .cap_sw = 3.5});
  lib.add_fu({.name = "shift1", .ops = {Op::ShiftL, Op::ShiftR}, .chain_depth = 1,
              .area = 12, .delay_ns = 10, .cap_sw = 2.5});
  lib.add_fu({.name = "logic1", .ops = {Op::And, Op::Or, Op::Xor, Op::Neg},
              .chain_depth = 1, .area = 10, .delay_ns = 8, .cap_sw = 2});
  lib.set_reg(RegType{.name = "reg1", .area = 10, .cap_sw = 2});
  return lib;
}

}  // namespace hsyn
