// Textual module-library format.
//
// The paper's H-SYN takes "a library of modules" as an input; this
// reader/writer makes the simple-module library a first-class textual
// artifact (the complex-module library is built from DFGs and templates
// at run time):
//
//   # comment
//   fu NAME ops=add,sub area=30 delay=20 cap=9 [chain=3] [pipelined]
//   reg NAME area=10 cap=2
//   costs mux_area=8 mux_cap=0.8 wire_area_local=1 wire_area_global=3
//         wire_cap_local=0.3 wire_cap_global=1.6 ctrl_state=3
//         ctrl_signal=1.5 ctrl_cap=1 clock_cap=0.35
//
// Unknown cost keys are rejected; omitted ones keep their defaults.
#pragma once

#include <string>

#include "library/library.h"

namespace hsyn {

/// Serialize a library (round-trips through library_from_text).
std::string library_to_text(const Library& lib);

/// Parse a library. Throws std::logic_error with a line-numbered message
/// on malformed input.
Library library_from_text(const std::string& text);

}  // namespace hsyn
