#include "library/profile.h"

#include <algorithm>
#include <limits>

#include "util/fmt.h"

namespace hsyn {

int Profile::start_time(const std::vector<int>& arrivals) const {
  check(arrivals.size() == in.size(), "profile/arrival arity mismatch");
  int s = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    s = std::max(s, arrivals[i] - in[i]);
  }
  return s;
}

std::vector<int> Profile::output_times(const std::vector<int>& arrivals) const {
  const int s = start_time(arrivals);
  std::vector<int> t(out.size());
  for (std::size_t j = 0; j < out.size(); ++j) t[j] = s + out[j];
  return t;
}

int Profile::makespan() const {
  int m = 0;
  for (int o : out) m = std::max(m, o);
  return m;
}

bool Environment::admits(const Profile& p) const { return slack(p) >= 0; }

int Environment::slack(const Profile& p) const {
  check(deadline.size() == p.out.size(), "environment/profile arity mismatch");
  const std::vector<int> t = p.output_times(arrival);
  int s = std::numeric_limits<int>::max();
  for (std::size_t j = 0; j < t.size(); ++j) {
    s = std::min(s, deadline[j] - t[j]);
  }
  return t.empty() ? 0 : s;
}

}  // namespace hsyn
