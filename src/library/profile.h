// Profiles and environments of RTL modules (paper Section 2, Example 1).
//
// The *profile* of an RTL module for a behavior is the ordered set of
// expected input arrival times followed by output production times,
// relative to the module's own start. The *environment* is the actual
// input arrival times and output consumption deadlines imposed by the
// surrounding scheduled circuit. A module fits an environment when,
// started at the time its profile and the arrivals dictate, every output
// is produced no later than its consumption deadline.
#pragma once

#include <vector>

namespace hsyn {

/// Profile: expected input arrival offsets and output production offsets,
/// in cycles, relative to invocation start.
struct Profile {
  std::vector<int> in;   ///< per input port, expected arrival offset
  std::vector<int> out;  ///< per output port, production offset

  /// Earliest start given actual arrival times: max_i(arrival_i - in_i),
  /// clamped at 0 (Example 1: arrivals {2,5,3,7} against {0,0,2,4} -> 5).
  [[nodiscard]] int start_time(const std::vector<int>& arrivals) const;

  /// Output times for given arrivals: start_time(arrivals) + out[j].
  [[nodiscard]] std::vector<int> output_times(const std::vector<int>& arrivals) const;

  /// Total span in cycles (max output offset); the busy time of a
  /// non-pipelined module per invocation.
  [[nodiscard]] int makespan() const;

  friend bool operator==(const Profile&, const Profile&) = default;
};

/// Environment: actual input arrival times and output consumption
/// deadlines in the surrounding schedule (absolute cycles).
struct Environment {
  std::vector<int> arrival;   ///< per input port
  std::vector<int> deadline;  ///< per output port

  /// True if a module with `p` started per its profile meets every
  /// output deadline.
  [[nodiscard]] bool admits(const Profile& p) const;

  /// Slack of the profile in this environment: min over outputs of
  /// (deadline - production time). Negative when the profile is too slow.
  [[nodiscard]] int slack(const Profile& p) const;
};

}  // namespace hsyn
