// The simple-module library: functional-unit types, the register type and
// derived-structure cost coefficients, with operating-point queries.
//
// The default library reproduces the paper's Table 1 at its reference
// operating point (5 V, 20 ns clock): add1 = 1 cycle / area 30,
// add2 = 2 cycles / area 20, chained_add2 and chained_add3 = 1 cycle,
// mult1 = 3 cycles / area 150, mult2 = 5 cycles / area 100, reg = 10.
// mult2 "consumes much less power than mult1" -- its switched capacitance
// is roughly half. Additional subtractor / ALU / comparator / shifter
// types round out the library for the filter and DCT benchmarks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "library/module_types.h"
#include "library/vdd.h"

namespace hsyn {

/// An operating point for synthesis: supply voltage and clock period.
struct OpPoint {
  double vdd = 5.0;
  double clk_ns = 20.0;

  friend bool operator==(const OpPoint&, const OpPoint&) = default;
};

class Library {
 public:
  /// Register a functional-unit type; returns its type id.
  int add_fu(FuType fu);

  const std::vector<FuType>& fus() const { return fus_; }
  const FuType& fu(int type_id) const { return fus_.at(static_cast<std::size_t>(type_id)); }
  int num_fu_types() const { return static_cast<int>(fus_.size()); }

  /// Type id by name; -1 when absent.
  int find_fu(const std::string& name) const;

  const RegType& reg() const { return reg_; }
  void set_reg(RegType r) {
    reg_ = r;
    refresh_uid();
  }

  const StructureCosts& costs() const { return costs_; }
  StructureCosts& costs_mut() {
    refresh_uid();
    return costs_;
  }

  /// Stable identity for evaluation-cache keys. A fresh id is drawn from a
  /// process-wide counter at construction and after every mutating access
  /// (add_fu / set_reg / costs_mut), so a cost cached under one uid can
  /// never be served after the library changed -- unlike hashing `this`,
  /// which aliases under allocator address reuse. Copies keep the source's
  /// uid (they are content-equal until mutated).
  std::uint64_t uid() const { return uid_; }

  /// Ids of all types that can execute `op`.
  std::vector<int> types_for(Op op) const;

  /// Cycles taken by type `type_id` at operating point `pt`.
  int cycles(int type_id, const OpPoint& pt) const;

  /// Fastest (fewest cycles, area as tie-break) type for `op` at `pt`;
  /// -1 when no type supports the op. Chained types are only considered
  /// when `allow_chained`.
  int fastest_for(Op op, const OpPoint& pt, bool allow_chained = false) const;

  /// Minimum delay in ns at 5 V over the types supporting `op`
  /// (per-element delay for chained types). Used for critical-path and
  /// Vdd-pruning estimates.
  double min_delay_ns(Op op) const;

 private:
  void refresh_uid();

  std::vector<FuType> fus_;
  RegType reg_;
  StructureCosts costs_;
  std::uint64_t uid_ = 0;
};

/// Build the default library described above.
Library default_library();

}  // namespace hsyn
