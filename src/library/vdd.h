// Supply-voltage scaling model and candidate-set generation/pruning.
//
// Delay follows Sakurai-Newton's alpha-power law, the model the
// low-power HLS literature of the paper's era uses ([10]); with velocity
// saturation alpha is well below 2:
//
//   delay(Vdd) = delay(Vref) * [Vdd/(Vdd-Vt)^a] / [Vref/(Vref-Vt)^a],
//   a = 1.4, Vref = 5 V, Vt = 0.8 V.
//
// Dynamic energy scales as Vdd^2. At a = 1.4 a 3.3 V supply costs ~36%
// speed for 2.3x energy savings -- the trade that makes the paper's
// voltage scaling profitable even at small laxity factors.
//
// The paper prunes the Vdd and clock-period sets "using a procedure from
// [10] to obtain the subset that needs to be considered"; we reproduce
// that: Vdds that cannot meet the sampling period even with the fastest
// library configuration are dropped, and candidate clock periods are the
// distinct unit delays and their integer fractions, deduplicated by their
// cycle-count signature across the library.
#pragma once

#include <vector>

#include "library/module_types.h"

namespace hsyn {

inline constexpr double kVref = 5.0;
inline constexpr double kVt = 0.8;
inline constexpr double kAlpha = 1.4;  ///< velocity-saturation exponent

/// Multiplicative delay factor at `vdd` relative to 5 V (1.0 at 5 V).
double delay_scale(double vdd);

/// Energy factor at `vdd` relative to 5 V (Vdd^2 law; 1.0 at 5 V).
double energy_scale(double vdd);

/// Cycles a delay of `delay_ns` (referenced to 5 V) takes at the given
/// operating point; at least 1.
int cycles_at(double delay_ns, double vdd, double clk_ns);

/// Candidate clock periods (ns) for a library at a given Vdd: scaled unit
/// delays and their /2, /3 fractions, clamped to [min_clk, max_clk] and
/// deduplicated by the vector of per-type cycle counts they induce.
std::vector<double> candidate_clocks(const std::vector<FuType>& fus, double vdd,
                                     double min_clk = 5.0, double max_clk = 120.0);

/// The default candidate supply set of the paper's technology era.
std::vector<double> default_vdds();

/// Prune `vdds`: keep only supplies at which `critical_ns` (the 5 V
/// critical path in ns through the fastest units) still fits in
/// `sample_period_ns`.
std::vector<double> prune_vdds(const std::vector<double>& vdds, double critical_ns,
                               double sample_period_ns);

}  // namespace hsyn
