// Simple RTL module (functional unit) and register type descriptions.
//
// Delay is stored in nanoseconds at the 5 V reference supply; the cycle
// count of a unit at a given (Vdd, clock period) operating point is
// derived via the Vdd scaling model in library/vdd.h, which is how the
// paper's Table 1 cycle counts arise at its reference clock.
//
// Energy is modeled as effective switched capacitance: one evaluation of
// the unit dissipates cap_sw * activity * Vdd^2 (arbitrary capacitance
// units), where activity in [0,1] is the measured input toggle density.
#pragma once

#include <string>
#include <vector>

#include "dfg/dfg.h"

namespace hsyn {

/// A simple functional-unit type from the module library. Multifunction
/// ALUs list several ops; chained units (chain_depth > 1) execute a chain
/// of dependent operations of the same kind in a single invocation.
struct FuType {
  std::string name;
  std::vector<Op> ops;        ///< operations this unit can execute
  int chain_depth = 1;        ///< max dependent ops fused per invocation
  double area = 0;            ///< area units
  double delay_ns = 0;        ///< propagation delay at 5 V (whole chain)
  double cap_sw = 0;          ///< effective switched capacitance per eval
  bool pipelined = false;     ///< can accept new inputs every cycle

  [[nodiscard]] bool supports(Op op) const;
};

/// Register type (the paper's `reg1`).
struct RegType {
  std::string name = "reg1";
  double area = 10;
  double cap_sw = 2;  ///< per write
};

/// Cost coefficients of structures that are derived rather than selected:
/// multiplexers, wiring and the FSM controller. Interconnect inside a
/// complex RTL module is local and cheaper than top-level (global)
/// interconnect -- the locality benefit hierarchical synthesis exploits.
struct StructureCosts {
  double mux_area_per_input = 8;     ///< (k-1) of these per k-input mux
  double mux_cap_per_input = 0.8;    ///< switched cap per traversal
  double wire_area_local = 1.0;      ///< per net sink, inside a module
  double wire_area_global = 3.0;     ///< per net sink, at the top level
  double wire_cap_local = 0.3;       ///< switched cap per transfer, local
  double wire_cap_global = 1.6;      ///< switched cap per transfer, global
  double ctrl_area_per_state = 3.0;
  double ctrl_area_per_signal = 1.5;
  double ctrl_cap_per_cycle = 1.0;   ///< controller switching per clock
  /// Clock-pin capacitance switched per register per clocked cycle.
  /// Complex RTL modules are clock-gated: their registers are clocked
  /// only during an invocation -- a genuine power advantage of
  /// hierarchical designs (locality), and the reason power optimization
  /// still shares registers when lifetimes allow.
  double clock_cap_per_reg = 0.35;
};

}  // namespace hsyn
