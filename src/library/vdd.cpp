#include "library/vdd.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/fmt.h"

namespace hsyn {

double delay_scale(double vdd) {
  check(vdd > kVt, "Vdd must exceed Vt");
  const double ref = kVref / std::pow(kVref - kVt, kAlpha);
  const double cur = vdd / std::pow(vdd - kVt, kAlpha);
  return cur / ref;
}

double energy_scale(double vdd) { return (vdd * vdd) / (kVref * kVref); }

int cycles_at(double delay_ns, double vdd, double clk_ns) {
  check(clk_ns > 0, "clock period must be positive");
  const double d = delay_ns * delay_scale(vdd);
  return std::max(1, static_cast<int>(std::ceil(d / clk_ns - 1e-9)));
}

std::vector<double> candidate_clocks(const std::vector<FuType>& fus, double vdd,
                                     double min_clk, double max_clk) {
  std::vector<double> raw;
  for (const FuType& fu : fus) {
    const double d = fu.delay_ns * delay_scale(vdd);
    for (int div = 1; div <= 3; ++div) {
      const double c = d / div;
      if (c >= min_clk && c <= max_clk) raw.push_back(c);
    }
  }
  std::sort(raw.begin(), raw.end(), std::greater<>());
  // Deduplicate by cycle-count signature: two clocks that induce the same
  // cycle count for every library type are interchangeable; keep the
  // longer one (less controller switching for identical schedules).
  std::map<std::vector<int>, double> seen;
  std::vector<double> out;
  for (double c : raw) {
    std::vector<int> sig;
    sig.reserve(fus.size());
    for (const FuType& fu : fus) sig.push_back(cycles_at(fu.delay_ns, vdd, c));
    if (seen.emplace(std::move(sig), c).second) out.push_back(c);
  }
  return out;
}

std::vector<double> default_vdds() {
  return {5.0, 4.0, 3.3, 2.9, 2.4, 1.9, 1.5};
}

std::vector<double> prune_vdds(const std::vector<double>& vdds, double critical_ns,
                               double sample_period_ns) {
  std::vector<double> out;
  for (double v : vdds) {
    if (critical_ns * delay_scale(v) <= sample_period_ns + 1e-9) out.push_back(v);
  }
  return out;
}

}  // namespace hsyn
