#include "library/module_types.h"

#include <algorithm>

namespace hsyn {

bool FuType::supports(Op op) const {
  return std::find(ops.begin(), ops.end(), op) != ops.end();
}

}  // namespace hsyn
