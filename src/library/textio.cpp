#include "library/textio.h"

#include <map>
#include <sstream>
#include <vector>

#include "util/fmt.h"

namespace hsyn {
namespace {

const std::map<std::string, Op>& op_table() {
  static const std::map<std::string, Op> table = {
      {"add", Op::Add}, {"sub", Op::Sub},   {"mult", Op::Mult},
      {"shl", Op::ShiftL}, {"shr", Op::ShiftR}, {"cmp", Op::Cmp},
      {"and", Op::And}, {"or", Op::Or},     {"xor", Op::Xor},
      {"neg", Op::Neg}};
  return table;
}

std::string ops_to_text(const std::vector<Op>& ops) {
  std::string out;
  for (const Op op : ops) {
    out += std::string(out.empty() ? "" : ",") + op_name(op);
  }
  return out;
}

/// Split "key=value" (value may be empty for flags).
std::pair<std::string, std::string> split_kv(const std::string& tok) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos) return {tok, ""};
  return {tok.substr(0, eq), tok.substr(eq + 1)};
}

double parse_num(const std::string& v, int line, const std::string& key) {
  check(!v.empty(), strf("line %d: %s needs a value", line, key.c_str()));
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  check(end && *end == '\0', strf("line %d: bad number for %s", line, key.c_str()));
  return d;
}

}  // namespace

std::string library_to_text(const Library& lib) {
  std::ostringstream out;
  out << "# hsyn module library\n";
  for (int i = 0; i < lib.num_fu_types(); ++i) {
    const FuType& fu = lib.fu(i);
    out << strf("fu %s ops=%s area=%g delay=%g cap=%g", fu.name.c_str(),
                ops_to_text(fu.ops).c_str(), fu.area, fu.delay_ns, fu.cap_sw);
    if (fu.chain_depth > 1) out << strf(" chain=%d", fu.chain_depth);
    if (fu.pipelined) out << " pipelined";
    out << "\n";
  }
  out << strf("reg %s area=%g cap=%g\n", lib.reg().name.c_str(), lib.reg().area,
              lib.reg().cap_sw);
  const StructureCosts& c = lib.costs();
  out << strf("costs mux_area=%g mux_cap=%g wire_area_local=%g "
              "wire_area_global=%g wire_cap_local=%g wire_cap_global=%g "
              "ctrl_state=%g ctrl_signal=%g ctrl_cap=%g clock_cap=%g\n",
              c.mux_area_per_input, c.mux_cap_per_input, c.wire_area_local,
              c.wire_area_global, c.wire_cap_local, c.wire_cap_global,
              c.ctrl_area_per_state, c.ctrl_area_per_signal,
              c.ctrl_cap_per_cycle, c.clock_cap_per_reg);
  return out.str();
}

Library library_from_text(const std::string& text) {
  Library lib;
  bool have_fu = false;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> toks;
    for (std::string t; ls >> t;) toks.push_back(t);
    if (toks.empty()) continue;

    if (toks[0] == "fu") {
      check(toks.size() >= 2, strf("line %d: fu needs a name", lineno));
      FuType fu;
      fu.name = toks[1];
      for (std::size_t i = 2; i < toks.size(); ++i) {
        const auto [key, value] = split_kv(toks[i]);
        if (key == "ops") {
          std::istringstream os(value);
          for (std::string op; std::getline(os, op, ',');) {
            auto it = op_table().find(op);
            check(it != op_table().end(),
                  strf("line %d: unknown op '%s'", lineno, op.c_str()));
            fu.ops.push_back(it->second);
          }
        } else if (key == "area") {
          fu.area = parse_num(value, lineno, key);
        } else if (key == "delay") {
          fu.delay_ns = parse_num(value, lineno, key);
        } else if (key == "cap") {
          fu.cap_sw = parse_num(value, lineno, key);
        } else if (key == "chain") {
          fu.chain_depth = static_cast<int>(parse_num(value, lineno, key));
        } else if (key == "pipelined") {
          fu.pipelined = true;
        } else {
          check(false, strf("line %d: unknown fu key '%s'", lineno, key.c_str()));
        }
      }
      lib.add_fu(std::move(fu));
      have_fu = true;
    } else if (toks[0] == "reg") {
      check(toks.size() >= 2, strf("line %d: reg needs a name", lineno));
      RegType r;
      r.name = toks[1];
      for (std::size_t i = 2; i < toks.size(); ++i) {
        const auto [key, value] = split_kv(toks[i]);
        if (key == "area") {
          r.area = parse_num(value, lineno, key);
        } else if (key == "cap") {
          r.cap_sw = parse_num(value, lineno, key);
        } else {
          check(false, strf("line %d: unknown reg key '%s'", lineno, key.c_str()));
        }
      }
      lib.set_reg(r);
    } else if (toks[0] == "costs") {
      StructureCosts& c = lib.costs_mut();
      for (std::size_t i = 1; i < toks.size(); ++i) {
        const auto [key, value] = split_kv(toks[i]);
        const double v = parse_num(value, lineno, key);
        if (key == "mux_area") {
          c.mux_area_per_input = v;
        } else if (key == "mux_cap") {
          c.mux_cap_per_input = v;
        } else if (key == "wire_area_local") {
          c.wire_area_local = v;
        } else if (key == "wire_area_global") {
          c.wire_area_global = v;
        } else if (key == "wire_cap_local") {
          c.wire_cap_local = v;
        } else if (key == "wire_cap_global") {
          c.wire_cap_global = v;
        } else if (key == "ctrl_state") {
          c.ctrl_area_per_state = v;
        } else if (key == "ctrl_signal") {
          c.ctrl_area_per_signal = v;
        } else if (key == "ctrl_cap") {
          c.ctrl_cap_per_cycle = v;
        } else if (key == "clock_cap") {
          c.clock_cap_per_reg = v;
        } else {
          check(false,
                strf("line %d: unknown cost key '%s'", lineno, key.c_str()));
        }
      }
    } else {
      check(false, strf("line %d: unknown keyword '%s'", lineno,
                        toks[0].c_str()));
    }
  }
  check(have_fu, "library has no functional units");
  return lib;
}

}  // namespace hsyn
