// Filter benchmarks: iir (biquad cascade), lat (lattice filter) and
// avenhaus_cascade (cascade of direct-form-I second-order sections).
// Loop-carried state enters/leaves as primary I/O for one sample
// iteration (see benchmarks.h).
#include "benchmarks/benchmarks.h"
#include "benchmarks/detail.h"
#include "benchmarks/dfg_build.h"

namespace hsyn {

Dfg make_biquad(const std::string& name) {
  using namespace dfg_build;
  // Direct form II transposed:
  //   y   = b0*x + s1
  //   s1' = b1*x + s2 - a1*y
  //   s2' = b2*x - a2*y
  // inputs: 0:x 1:s1 2:s2 3:b0 4:b1 5:b2 6:a1 7:a2; outputs: y, s1', s2'.
  Dfg d(name, 8, 3);
  const int x = in(d, 0), s1 = in(d, 1), s2 = in(d, 2);
  const int b0 = in(d, 3), b1 = in(d, 4), b2 = in(d, 5);
  const int a1 = in(d, 6), a2 = in(d, 7);
  const int y = op2(d, Op::Add, op2(d, Op::Mult, b0, x, "b0x"), s1, "y");
  const int t1 = op2(d, Op::Add, op2(d, Op::Mult, b1, x, "b1x"), s2, "b1x+s2");
  const int s1n = op2(d, Op::Sub, t1, op2(d, Op::Mult, a1, y, "a1y"), "s1n");
  const int s2n = op2(d, Op::Sub, op2(d, Op::Mult, b2, x, "b2x"),
                      op2(d, Op::Mult, a2, y, "a2y"), "s2n");
  out(d, y, 0);
  out(d, s1n, 1);
  out(d, s2n, 2);
  d.validate();
  return d;
}

Dfg make_sos(const std::string& name) {
  using namespace dfg_build;
  // Direct form I with explicit delay-line pass-throughs:
  //   y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2
  //   x1' = x, x2' = x1, y1' = y, y2' = y1
  // inputs: 0:x 1:x1 2:x2 3:y1 4:y2 5:b0 6:b1 7:b2 8:a1 9:a2
  // outputs: 0:y 1:x1' 2:x2' 3:y1' 4:y2'
  Dfg d(name, 10, 5);
  const int x = in(d, 0), x1 = in(d, 1), x2 = in(d, 2);
  const int y1 = in(d, 3), y2 = in(d, 4);
  const int b0 = in(d, 5), b1 = in(d, 6), b2 = in(d, 7);
  const int a1 = in(d, 8), a2 = in(d, 9);
  const int ff = op2(d, Op::Add,
                     op2(d, Op::Add, op2(d, Op::Mult, b0, x, "b0x"),
                         op2(d, Op::Mult, b1, x1, "b1x1"), "ff1"),
                     op2(d, Op::Mult, b2, x2, "b2x2"), "ff");
  const int fb = op2(d, Op::Add, op2(d, Op::Mult, a1, y1, "a1y1"),
                     op2(d, Op::Mult, a2, y2, "a2y2"), "fb");
  const int y = op2(d, Op::Sub, ff, fb, "y");
  out(d, y, 0);
  out(d, x, 1);   // x1' = x (pass-through)
  out(d, x1, 2);  // x2' = x1
  out(d, y, 3);   // y1' = y
  out(d, y1, 4);  // y2' = y1
  d.validate();
  return d;
}

Dfg make_lattice_stage(const std::string& name) {
  using namespace dfg_build;
  // Two-multiplier lattice stage:
  //   f' = f - k*g
  //   g' = g + k*f'
  // inputs: 0:f 1:g 2:k; outputs: 0:f' 1:g'.
  Dfg d(name, 3, 2);
  const int f = in(d, 0), g = in(d, 1), k = in(d, 2);
  const int fp = op2(d, Op::Sub, f, op2(d, Op::Mult, k, g, "kg"), "f'");
  const int gp = op2(d, Op::Add, g, op2(d, Op::Mult, k, fp, "kf'"), "g'");
  out(d, fp, 0);
  out(d, gp, 1);
  d.validate();
  return d;
}

namespace {

Dfg make_iir_top(int stages) {
  using namespace dfg_build;
  // inputs: x, then per stage: s1,s2,b0,b1,b2,a1,a2 (7 each)
  // outputs: y, then per stage: s1', s2'.
  Dfg d("iir", 1 + 7 * stages, 1 + 2 * stages);
  int x = in(d, 0);
  for (int k = 0; k < stages; ++k) {
    const int base = 1 + 7 * k;
    std::vector<int> ins = {x};
    for (int p = 0; p < 7; ++p) ins.push_back(in(d, base + p));
    const auto outs = hier(d, "biquad", ins, 3, "bq" + std::to_string(k));
    x = outs[0];
    out(d, outs[1], 1 + 2 * k);
    out(d, outs[2], 2 + 2 * k);
  }
  out(d, x, 0);
  d.validate();
  return d;
}

Dfg make_lat_top(int stages) {
  using namespace dfg_build;
  // inputs: f, then per stage: g_k (delay state), k_k; outputs: f_out and
  // per stage the updated state g'_k.
  Dfg d("lat", 1 + 2 * stages, 1 + stages);
  int f = in(d, 0);
  for (int k = 0; k < stages; ++k) {
    const int g = in(d, 1 + 2 * k);
    const int kk = in(d, 2 + 2 * k);
    const auto outs = hier(d, "latstage", {f, g, kk}, 2, "st" + std::to_string(k));
    f = outs[0];
    out(d, outs[1], 1 + k);
  }
  out(d, f, 0);
  d.validate();
  return d;
}

Dfg make_avenhaus_top(int sections) {
  using namespace dfg_build;
  // inputs: x, then per section: x1,x2,y1,y2,b0,b1,b2,a1,a2 (9 each)
  // outputs: y, then per section the four updated delay-line states.
  Dfg d("avenhaus_cascade", 1 + 9 * sections, 1 + 4 * sections);
  int x = in(d, 0);
  for (int k = 0; k < sections; ++k) {
    const int base = 1 + 9 * k;
    std::vector<int> ins = {x};
    for (int p = 0; p < 9; ++p) ins.push_back(in(d, base + p));
    const auto outs = hier(d, "sos", ins, 5, "sos" + std::to_string(k));
    x = outs[0];
    for (int p = 0; p < 4; ++p) out(d, outs[1 + p], 1 + 4 * k + p);
  }
  out(d, x, 0);
  d.validate();
  return d;
}

}  // namespace

namespace bench_detail {

Design make_iir_design() {
  Design design;
  design.add_behavior(make_biquad());
  design.add_behavior(make_iir_top(3));
  design.set_top("iir");
  design.validate();
  return design;
}

Design make_lat_design() {
  Design design;
  design.add_behavior(make_lattice_stage());
  design.add_behavior(make_lat_top(5));
  design.set_top("lat");
  design.validate();
  return design;
}

Design make_avenhaus_design() {
  Design design;
  design.add_behavior(make_sos());
  design.add_behavior(make_avenhaus_top(4));
  design.set_top("avenhaus_cascade");
  design.validate();
  return design;
}

}  // namespace bench_detail

}  // namespace hsyn
