// fir16: a 16-tap FIR filter assembled from dot-product building blocks
// ("many hierarchical DFGs are constructed out of several commonly-used
// building blocks like dot-product, butterfly, etc." -- paper, Section 3).
// Two equivalent dot-product DFG variants are registered: a balanced
// multiply-add tree (dot4) and a sequential MAC chain (dot4_seq), giving
// move A a genuine anisomorphic-DFG swap beyond the paper's original six
// circuits.
#include "benchmarks/benchmarks.h"
#include "benchmarks/detail.h"
#include "benchmarks/dfg_build.h"

namespace hsyn {

Dfg make_dot4(const std::string& name) {
  using namespace dfg_build;
  // (x0..x3, c0..c3) -> x0*c0 + x1*c1 + x2*c2 + x3*c3, balanced tree.
  Dfg d(name, 8, 1);
  int p[4];
  for (int i = 0; i < 4; ++i) {
    p[i] = op2(d, Op::Mult, in(d, i), in(d, 4 + i), "m" + std::to_string(i));
  }
  out(d, op2(d, Op::Add, op2(d, Op::Add, p[0], p[1], "s0"),
             op2(d, Op::Add, p[2], p[3], "s1"), "s2"),
      0);
  d.validate();
  return d;
}

Dfg make_dot4_seq(const std::string& name) {
  using namespace dfg_build;
  // Same function as a sequential MAC chain ((m0+m1)+m2)+m3.
  Dfg d(name, 8, 1);
  int acc = -1;
  for (int i = 0; i < 4; ++i) {
    const int p =
        op2(d, Op::Mult, in(d, i), in(d, 4 + i), "m" + std::to_string(i));
    acc = i == 0 ? p : op2(d, Op::Add, acc, p, "acc" + std::to_string(i));
  }
  out(d, acc, 0);
  d.validate();
  return d;
}

namespace bench_detail {

Design make_fir16_design() {
  using namespace dfg_build;
  Design design;
  design.add_behavior(make_dot4());
  design.add_behavior(make_dot4_seq());

  // Top level: four dot-products over tap groups, summed by a tree.
  // inputs: x0..x15 then c0..c15; output: the filtered sample.
  Dfg d("fir16", 32, 1);
  int partial[4];
  for (int g = 0; g < 4; ++g) {
    std::vector<int> ins;
    for (int i = 0; i < 4; ++i) ins.push_back(in(d, 4 * g + i));
    for (int i = 0; i < 4; ++i) ins.push_back(in(d, 16 + 4 * g + i));
    partial[g] = hier(d, "dot4", ins, 1, "dp" + std::to_string(g))[0];
  }
  out(d, op2(d, Op::Add, op2(d, Op::Add, partial[0], partial[1], "t0"),
             op2(d, Op::Add, partial[2], partial[3], "t1"), "y"),
      0);
  d.validate();
  design.add_behavior(std::move(d));
  design.declare_equivalent("dot4", "dot4_seq");
  design.set_top("fir16");
  design.validate();
  return design;
}

}  // namespace bench_detail

}  // namespace hsyn
