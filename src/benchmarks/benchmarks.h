// Benchmark designs of the paper's experimental section, reconstructed
// from the open literature (see DESIGN.md, substitutions table):
//
//   * test1            -- the hierarchical DFG of Fig. 1(a), with the
//                         complex-module library of Fig. 2 (C1..C5),
//   * hier_paulin      -- the Paulin/HAL differential-equation solver,
//                         unrolled with one hierarchical node per
//                         iteration (plus flat `paulin`),
//   * dct              -- 8-point DCT built from butterfly and rotation
//                         building blocks,
//   * iir              -- cascade of direct-form-II-transposed biquads,
//   * lat              -- lattice filter stages,
//   * avenhaus_cascade -- Avenhaus filter as a cascade of second-order
//                         sections (direct form I, with state
//                         pass-throughs).
//
// Loop-carried filter state is modeled as (state-in, state-out) primary
// I/O pairs for one sample iteration, the standard HLS formulation.
#pragma once

#include <string>
#include <vector>

#include "dfg/design.h"
#include "library/library.h"
#include "rtl/complex_library.h"

namespace hsyn {

struct Benchmark {
  std::string name;
  Design design;
  ComplexLibrary clib;  ///< templates reference DFGs owned by `design`

  Benchmark() = default;
  Benchmark(Benchmark&&) = default;
  Benchmark& operator=(Benchmark&&) = default;
  // Templates hold pointers into `design`; copying would dangle.
  Benchmark(const Benchmark&) = delete;
  Benchmark& operator=(const Benchmark&) = delete;
};

/// Names accepted by make_benchmark (the paper's Table 3 rows).
std::vector<std::string> benchmark_names();

/// Build a benchmark (design + complex library) by name.
Benchmark make_benchmark(const std::string& name, const Library& lib);

// ---- Building-block DFG constructors (exposed for tests) -----------------

/// One Paulin/HAL diffeq iteration: inputs x,y,u,dx,a,three ->
/// outputs x1,y1,u1,cond.
Dfg make_paulin_iter(const std::string& name = "paulin_iter");

/// Butterfly: (a,b) -> (a+b, a-b).
Dfg make_butterfly(const std::string& name = "butterfly");

/// Plane rotation: (a,b,c1,c2) -> (a*c1 + b*c2, b*c1 - a*c2).
Dfg make_rotation(const std::string& name = "rot");

/// Direct-form-II-transposed biquad:
/// (x,s1,s2,b0,b1,b2,a1,a2) -> (y, s1', s2').
Dfg make_biquad(const std::string& name = "biquad");

/// Direct-form-I second-order section with state pass-throughs.
Dfg make_sos(const std::string& name = "sos");

/// Two-multiplier lattice stage: (f,g,k) -> (f', g').
Dfg make_lattice_stage(const std::string& name = "latstage");

/// Four-term dot product as a balanced multiply-add tree.
Dfg make_dot4(const std::string& name = "dot4");

/// The same dot product as a sequential MAC chain (declared equivalent).
Dfg make_dot4_seq(const std::string& name = "dot4_seq");

// ---- Template builders (exposed for tests and examples) ------------------

/// Fully parallel fastest-unit module for `dfg` (power-friendly at high
/// speed; the style of the paper's C1).
Datapath make_template_fast(const Dfg& dfg, const Library& lib);

/// Fully parallel module built from the lowest switched-capacitance unit
/// types (slower, low power; the style the paper's move B discovers).
Datapath make_template_lowpower(const Dfg& dfg, const Library& lib);

/// Area-optimized module: iterative improvement under a relaxed deadline
/// (deadline = `laxity` x critical path at the reference point).
Datapath make_template_compact(const Dfg& dfg, const Design& design,
                               const Library& lib, double laxity = 3.0);

/// Fast/low-power/compact templates for every non-top behavior of
/// `design`.
ComplexLibrary default_complex_library(const Design& design, const Library& lib);

}  // namespace hsyn
