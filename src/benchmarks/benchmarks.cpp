#include "benchmarks/benchmarks.h"

#include "benchmarks/detail.h"
#include "util/fmt.h"

namespace hsyn {

std::vector<std::string> benchmark_names() {
  return {"avenhaus_cascade", "lat", "dct", "iir", "hier_paulin", "test1"};
}

Benchmark make_benchmark(const std::string& name, const Library& lib) {
  Benchmark b;
  b.name = name;
  if (name == "hier_paulin") {
    b.design = bench_detail::make_hier_paulin_design();
  } else if (name == "dct") {
    b.design = bench_detail::make_dct_design();
  } else if (name == "iir") {
    b.design = bench_detail::make_iir_design();
  } else if (name == "lat") {
    b.design = bench_detail::make_lat_design();
  } else if (name == "avenhaus_cascade") {
    b.design = bench_detail::make_avenhaus_design();
  } else if (name == "test1") {
    b.design = bench_detail::make_test1_design();
  } else if (name == "fir16") {
    b.design = bench_detail::make_fir16_design();
  } else if (name == "dct2d") {
    b.design = bench_detail::make_dct2d_design();
  } else {
    check(false, "unknown benchmark " + name);
  }
  // Templates reference DFGs stored in b.design's node-based map, so the
  // pointers stay valid for the Benchmark's lifetime (it is move-only).
  b.clib = default_complex_library(b.design, lib);
  return b;
}

}  // namespace hsyn
