// Internal: per-file design constructors wired together by benchmarks.cpp.
#pragma once

#include "dfg/design.h"

namespace hsyn::bench_detail {

Design make_hier_paulin_design();
Design make_dct_design();
Design make_iir_design();
Design make_lat_design();
Design make_avenhaus_design();
Design make_test1_design();
Design make_fir16_design();
Design make_dct2d_design();

}  // namespace hsyn::bench_detail
