// 8-point DCT built hierarchically from butterfly and plane-rotation
// building blocks (the decomposition style of the fast-DCT literature the
// HYPER benchmarks draw on).
#include "benchmarks/benchmarks.h"
#include "benchmarks/detail.h"
#include "benchmarks/dfg_build.h"

namespace hsyn {

Dfg make_butterfly(const std::string& name) {
  using namespace dfg_build;
  Dfg d(name, 2, 2);
  const int a = in(d, 0), b = in(d, 1);
  out(d, op2(d, Op::Add, a, b, "sum"), 0);
  out(d, op2(d, Op::Sub, a, b, "diff"), 1);
  d.validate();
  return d;
}

Dfg make_rotation(const std::string& name) {
  using namespace dfg_build;
  // (a, b, c1, c2) -> (a*c1 + b*c2, b*c1 - a*c2)
  Dfg d(name, 4, 2);
  const int a = in(d, 0), b = in(d, 1), c1 = in(d, 2), c2 = in(d, 3);
  const int p1 = op2(d, Op::Mult, a, c1, "a.c1");
  const int p2 = op2(d, Op::Mult, b, c2, "b.c2");
  const int p3 = op2(d, Op::Mult, b, c1, "b.c1");
  const int p4 = op2(d, Op::Mult, a, c2, "a.c2");
  out(d, op2(d, Op::Add, p1, p2, "re"), 0);
  out(d, op2(d, Op::Sub, p3, p4, "im"), 1);
  d.validate();
  return d;
}

namespace {

Dfg make_dct8_top() {
  using namespace dfg_build;
  // inputs: x0..x7, cosine constants c0..c3; outputs: X0..X7.
  Dfg d("dct", 12, 8);
  int x[8];
  for (int i = 0; i < 8; ++i) x[i] = in(d, i);
  const int c0 = in(d, 8), c1 = in(d, 9), c2 = in(d, 10), c3 = in(d, 11);

  // Stage 1: butterflies on (x0,x7) (x1,x6) (x2,x5) (x3,x4).
  const auto b0 = hier(d, "butterfly", {x[0], x[7]}, 2, "bf0");
  const auto b1 = hier(d, "butterfly", {x[1], x[6]}, 2, "bf1");
  const auto b2 = hier(d, "butterfly", {x[2], x[5]}, 2, "bf2");
  const auto b3 = hier(d, "butterfly", {x[3], x[4]}, 2, "bf3");

  // Even half: butterflies then a rotation.
  const auto e0 = hier(d, "butterfly", {b0[0], b3[0]}, 2, "bf4");
  const auto e1 = hier(d, "butterfly", {b1[0], b2[0]}, 2, "bf5");
  const auto r0 = hier(d, "rot", {e0[0], e1[0], c0, c0}, 2, "rot0");
  const auto r1 = hier(d, "rot", {e0[1], e1[1], c1, c3}, 2, "rot1");

  // Odd half: two rotations and a final butterfly.
  const auto r2 = hier(d, "rot", {b0[1], b3[1], c1, c2}, 2, "rot2");
  const auto r3 = hier(d, "rot", {b1[1], b2[1], c3, c2}, 2, "rot3");
  const auto o0 = hier(d, "butterfly", {r2[0], r3[0]}, 2, "bf6");
  const auto o1 = hier(d, "butterfly", {r2[1], r3[1]}, 2, "bf7");

  out(d, r0[0], 0);
  out(d, r1[0], 2);
  out(d, r0[1], 4);
  out(d, r1[1], 6);
  out(d, o0[0], 1);
  out(d, o1[0], 3);
  out(d, o1[1], 5);
  out(d, o0[1], 7);
  d.validate();
  return d;
}

/// 4-point DCT from butterflies and one rotation -- itself hierarchical,
/// so dct2d below is a depth-2 hierarchy.
Dfg make_dct4() {
  using namespace dfg_build;
  // inputs: x0..x3, c0, c1; outputs: X0..X3.
  Dfg d("dct4", 6, 4);
  const int x0 = in(d, 0), x1 = in(d, 1), x2 = in(d, 2), x3 = in(d, 3);
  const int c0 = in(d, 4), c1 = in(d, 5);
  const auto b0 = hier(d, "butterfly", {x0, x3}, 2, "bf0");
  const auto b1 = hier(d, "butterfly", {x1, x2}, 2, "bf1");
  const auto e = hier(d, "butterfly", {b0[0], b1[0]}, 2, "bf2");
  const auto r = hier(d, "rot", {b0[1], b1[1], c0, c1}, 2, "rot0");
  out(d, e[0], 0);
  out(d, r[0], 1);
  out(d, e[1], 2);
  out(d, r[1], 3);
  d.validate();
  return d;
}

/// 2-D DCT on a 4x4 block by row-column decomposition: four row
/// transforms feeding four column transforms (16 data inputs + 2 shared
/// cosine constants).
Dfg make_dct2d_top() {
  using namespace dfg_build;
  Dfg d("dct2d", 18, 16);
  const int c0 = in(d, 16), c1 = in(d, 17);
  int row_out[4][4];
  for (int r = 0; r < 4; ++r) {
    std::vector<int> ins;
    for (int c = 0; c < 4; ++c) ins.push_back(in(d, 4 * r + c));
    ins.push_back(c0);
    ins.push_back(c1);
    const auto outs = hier(d, "dct4", ins, 4, "row" + std::to_string(r));
    for (int c = 0; c < 4; ++c) row_out[r][c] = outs[static_cast<std::size_t>(c)];
  }
  for (int c = 0; c < 4; ++c) {
    std::vector<int> ins;
    for (int r = 0; r < 4; ++r) ins.push_back(row_out[r][c]);
    ins.push_back(c0);
    ins.push_back(c1);
    const auto outs = hier(d, "dct4", ins, 4, "col" + std::to_string(c));
    for (int r = 0; r < 4; ++r) {
      out(d, outs[static_cast<std::size_t>(r)], 4 * r + c);
    }
  }
  d.validate();
  return d;
}

}  // namespace

namespace bench_detail {

Design make_dct_design() {
  Design design;
  design.add_behavior(make_butterfly());
  design.add_behavior(make_rotation());
  design.add_behavior(make_dct8_top());
  design.set_top("dct");
  design.validate();
  return design;
}

Design make_dct2d_design() {
  Design design;
  design.add_behavior(make_butterfly());
  design.add_behavior(make_rotation());
  design.add_behavior(make_dct4());
  design.add_behavior(make_dct2d_top());
  design.set_top("dct2d");
  design.validate();
  return design;
}

}  // namespace bench_detail

}  // namespace hsyn
