// Complex-module template builders (paper Fig. 2 style libraries).
//
// Three styles per behavior, mirroring the trade-offs the paper's library
// exposes: `fast` (fully parallel, fastest units -- think C1), `lowpower`
// (fully parallel, lowest switched-capacitance units -- what move B's
// resynthesis discovers, e.g. mult2 for mult1), and `compact`
// (area-optimized by iterative improvement under a relaxed deadline).
// A fourth builder maps pure operation chains onto chained units (C5).
#include <limits>

#include "benchmarks/benchmarks.h"
#include "dfg/analysis.h"
#include "sched/scheduler.h"
#include "synth/improve.h"
#include "synth/initial.h"
#include "util/fmt.h"

namespace hsyn {
namespace {

const OpPoint kRefPoint{5.0, 20.0};

SynthContext template_context(const Design& design, const Library& lib) {
  SynthContext cx;
  cx.design = &design;
  cx.lib = &lib;
  cx.clib = nullptr;
  cx.pt = kRefPoint;
  cx.deadline = kNoDeadline;
  cx.obj = Objective::Area;
  cx.opts.max_passes = 4;
  cx.opts.max_candidates = 16;
  return cx;
}

/// Fully parallel module with one unit per op chosen by `pick_type`.
Datapath parallel_module(const Dfg& dfg,
                         const std::function<int(Op)>& pick_type) {
  check(!dfg.has_hierarchy(), "template builders take flat building blocks");
  Datapath dp(dfg.name() + "_dp");
  BehaviorImpl bi;
  bi.behavior = dfg.name();
  bi.dfg = &dfg;
  bi.node_inv.assign(dfg.nodes().size(), -1);
  bi.edge_reg.assign(dfg.edges().size(), -1);
  bi.input_arrival.assign(static_cast<std::size_t>(dfg.num_inputs()), 0);
  for (const Node& n : dfg.nodes()) {
    const int type = pick_type(n.op);
    check(type >= 0, strf("no unit type for %s", op_name(n.op)));
    Invocation inv;
    inv.nodes = {n.id};
    inv.unit = {UnitRef::Kind::Fu, static_cast<int>(dp.fus.size())};
    dp.fus.push_back({type, n.label});
    bi.node_inv[static_cast<std::size_t>(n.id)] = static_cast<int>(bi.invs.size());
    bi.invs.push_back(std::move(inv));
  }
  for (const Edge& e : dfg.edges()) {
    bi.edge_reg[static_cast<std::size_t>(e.id)] = static_cast<int>(dp.regs.size());
    dp.regs.push_back({e.label});
  }
  dp.behaviors.push_back(std::move(bi));
  return dp;
}

/// Lowest switched-capacitance type supporting `op`.
int lowest_cap_type(const Library& lib, Op op) {
  int best = -1;
  double best_cap = std::numeric_limits<double>::max();
  for (int t = 0; t < lib.num_fu_types(); ++t) {
    const FuType& ft = lib.fu(t);
    if (!ft.supports(op) || ft.chain_depth > 1) continue;
    if (ft.cap_sw < best_cap) {
      best_cap = ft.cap_sw;
      best = t;
    }
  }
  return best;
}

/// True when `dfg` is a single dependence chain of identical ops whose
/// intermediate values have no other consumers.
bool is_pure_chain(const Dfg& dfg, std::vector<int>& chain_nodes) {
  chain_nodes.clear();
  for (const int nid : dfg.topo_order()) {
    const Node& n = dfg.node(nid);
    if (n.is_hier()) return false;
    if (!chain_nodes.empty()) {
      if (n.op != dfg.node(chain_nodes.front()).op) return false;
      const int prev = chain_nodes.back();
      const int e = dfg.output_edge(prev, 0);
      const Edge& edge = dfg.edge(e);
      if (edge.dsts.size() != 1 || edge.dsts[0].node != nid) return false;
    }
    chain_nodes.push_back(nid);
  }
  return chain_nodes.size() >= 2;
}

}  // namespace

Datapath make_template_fast(const Dfg& dfg, const Library& lib) {
  return parallel_module(dfg, [&lib](Op op) {
    return lib.fastest_for(op, kRefPoint);
  });
}

Datapath make_template_lowpower(const Dfg& dfg, const Library& lib) {
  return parallel_module(dfg, [&lib](Op op) {
    return lowest_cap_type(lib, op);
  });
}

Datapath make_template_compact(const Dfg& dfg, const Design& design,
                               const Library& lib, double laxity) {
  SynthContext cx = template_context(design, lib);
  const LatencyFn lat = [&](const Node& n) {
    return lib.cycles(lib.fastest_for(n.op, kRefPoint), kRefPoint);
  };
  cx.deadline = std::max(1, static_cast<int>(critical_path(dfg, lat) * laxity));
  Datapath init = initial_solution(dfg, dfg.name(), cx);
  const SchedResult sr = schedule_datapath(init, lib, cx.pt, cx.deadline);
  check(sr.ok, "template scheduling failed for " + dfg.name());
  return improve(std::move(init), cx);
}

namespace {

/// Deepest-enough cheapest chained unit for `chain`; -1 when the library
/// has none (e.g. multiplier chains).
int chain_unit_type(const Dfg& dfg, const std::vector<int>& chain,
                    const Library& lib) {
  const Op op = dfg.node(chain.front()).op;
  int best = -1;
  double best_area = std::numeric_limits<double>::max();
  for (int t = 0; t < lib.num_fu_types(); ++t) {
    const FuType& ft = lib.fu(t);
    if (!ft.supports(op) || ft.chain_depth < static_cast<int>(chain.size())) {
      continue;
    }
    if (ft.area < best_area) {
      best_area = ft.area;
      best = t;
    }
  }
  return best;
}

/// Chain module: the whole DFG as one invocation of a chained unit.
Datapath make_template_chain(const Dfg& dfg, const Library& lib) {
  std::vector<int> chain;
  check(is_pure_chain(dfg, chain), dfg.name() + " is not a pure chain");
  const int best = chain_unit_type(dfg, chain, lib);
  check(best >= 0, "no chained unit deep enough for " + dfg.name());

  Datapath dp(dfg.name() + "_chain");
  BehaviorImpl bi;
  bi.behavior = dfg.name();
  bi.dfg = &dfg;
  bi.node_inv.assign(dfg.nodes().size(), -1);
  bi.edge_reg.assign(dfg.edges().size(), -1);
  bi.input_arrival.assign(static_cast<std::size_t>(dfg.num_inputs()), 0);
  Invocation inv;
  inv.nodes = chain;
  inv.unit = {UnitRef::Kind::Fu, 0};
  dp.fus.push_back({best, "chain"});
  for (const int nid : chain) {
    bi.node_inv[static_cast<std::size_t>(nid)] = 0;
  }
  bi.invs.push_back(std::move(inv));
  for (const Edge& e : dfg.edges()) {
    // Chain-internal edges stay unregistered.
    const bool internal =
        e.src.node >= 0 && e.dsts.size() == 1 && e.dsts[0].node >= 0;
    if (internal) continue;
    bi.edge_reg[static_cast<std::size_t>(e.id)] = static_cast<int>(dp.regs.size());
    dp.regs.push_back({e.label});
  }
  dp.behaviors.push_back(std::move(bi));
  return dp;
}

}  // namespace

ComplexLibrary default_complex_library(const Design& design, const Library& lib) {
  ComplexLibrary clib;
  for (const std::string& name : design.behavior_names()) {
    if (name == design.top_name()) continue;
    const Dfg& dfg = design.behavior(name);
    if (dfg.has_hierarchy()) continue;  // templates are leaf modules
    {
      ComplexLibrary::Template t;
      t.name = name + "_fast";
      t.implements = name;
      t.impl = make_template_fast(dfg, lib);
      clib.add(std::move(t));
    }
    {
      ComplexLibrary::Template t;
      t.name = name + "_lp";
      t.implements = name;
      t.impl = make_template_lowpower(dfg, lib);
      clib.add(std::move(t));
    }
    {
      ComplexLibrary::Template t;
      t.name = name + "_compact";
      t.implements = name;
      t.impl = make_template_compact(dfg, design, lib);
      clib.add(std::move(t));
    }
    std::vector<int> chain;
    if (is_pure_chain(dfg, chain) && chain_unit_type(dfg, chain, lib) >= 0) {
      ComplexLibrary::Template t;
      t.name = name + "_chain";
      t.implements = name;
      t.impl = make_template_chain(dfg, lib);
      clib.add(std::move(t));
    }
  }
  return clib;
}

}  // namespace hsyn
