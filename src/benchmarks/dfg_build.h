// Internal helpers for terse DFG construction in the benchmark builders.
#pragma once

#include <string>
#include <vector>

#include "dfg/dfg.h"

namespace hsyn::dfg_build {

/// Edge from primary input `k`.
inline int in(Dfg& d, int k) { return d.connect({kPrimaryIn, k}, {}); }

/// Route edge `e` to primary output `k`.
inline void out(Dfg& d, int e, int k) { d.add_consumer(e, {kPrimaryOut, k}); }

/// Binary operation node consuming edges `ea`, `eb`; returns output edge.
inline int op2(Dfg& d, Op op, int ea, int eb, std::string label = {}) {
  const int n = d.add_node(op, std::move(label));
  d.add_consumer(ea, {n, 0});
  d.add_consumer(eb, {n, 1});
  return d.connect({n, 0}, {});
}

/// Unary operation node.
inline int op1(Dfg& d, Op op, int ea, std::string label = {}) {
  const int n = d.add_node(op, std::move(label));
  d.add_consumer(ea, {n, 0});
  return d.connect({n, 0}, {});
}

/// Hierarchical node executing `behavior`; returns its output edges.
inline std::vector<int> hier(Dfg& d, const std::string& behavior,
                             const std::vector<int>& ins, int nouts,
                             std::string label = {}) {
  const int n = d.add_hier_node(behavior, static_cast<int>(ins.size()), nouts,
                                std::move(label));
  for (std::size_t p = 0; p < ins.size(); ++p) {
    d.add_consumer(ins[p], {n, static_cast<int>(p)});
  }
  std::vector<int> outs;
  outs.reserve(static_cast<std::size_t>(nouts));
  for (int p = 0; p < nouts; ++p) outs.push_back(d.connect({n, p}, {}));
  return outs;
}

}  // namespace hsyn::dfg_build
