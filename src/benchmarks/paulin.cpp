// The Paulin/HAL differential-equation benchmark and its unrolled
// hierarchical variant `hier_paulin` (paper: "a hierarchical DFG obtained
// by unrolling the well-known benchmark, Paulin").
//
// One Euler iteration of y'' + 3xy' + 3y = 0:
//   x1   = x + dx
//   y1   = y + u*dx
//   u1   = u - (3*x)*(u*dx) - (3*y)*dx
//   cond = x1 < a
// Constants (3, a) enter as primary inputs so the datapath stays pure.
#include "benchmarks/benchmarks.h"
#include "benchmarks/dfg_build.h"

namespace hsyn {

Dfg make_paulin_iter(const std::string& name) {
  using namespace dfg_build;
  // inputs: 0:x 1:y 2:u 3:dx 4:a 5:three
  // outputs: 0:x1 1:y1 2:u1 3:cond
  Dfg d(name, 6, 4);
  const int x = in(d, 0), y = in(d, 1), u = in(d, 2), dx = in(d, 3),
            a = in(d, 4), three = in(d, 5);
  const int m1 = op2(d, Op::Mult, three, x, "3x");
  const int m2 = op2(d, Op::Mult, u, dx, "u.dx");
  const int m3 = op2(d, Op::Mult, m1, m2, "3x.u.dx");
  const int m4 = op2(d, Op::Mult, three, y, "3y");
  const int m5 = op2(d, Op::Mult, m4, dx, "3y.dx");
  const int s1 = op2(d, Op::Sub, u, m3, "u-3xudx");
  const int u1 = op2(d, Op::Sub, s1, m5, "u1");
  const int y1 = op2(d, Op::Add, y, m2, "y1");
  const int x1 = op2(d, Op::Add, x, dx, "x1");
  const int cond = op2(d, Op::Cmp, x1, a, "x1<a");
  out(d, x1, 0);
  out(d, y1, 1);
  out(d, u1, 2);
  out(d, cond, 3);
  d.validate();
  return d;
}

namespace {

/// Top-level of hier_paulin: `iters` chained iteration nodes.
Dfg make_hier_paulin_top(int iters) {
  using namespace dfg_build;
  // inputs: x,y,u,dx,a,three; outputs: x,y,u of the last iteration plus
  // the termination flag of each iteration.
  Dfg d("hier_paulin", 6, 3 + iters);
  int x = in(d, 0), y = in(d, 1), u = in(d, 2);
  const int dx = in(d, 3), a = in(d, 4), three = in(d, 5);
  for (int k = 0; k < iters; ++k) {
    const auto outs = hier(d, "paulin_iter", {x, y, u, dx, a, three}, 4,
                           "iter" + std::to_string(k));
    x = outs[0];
    y = outs[1];
    u = outs[2];
    out(d, outs[3], 3 + k);
  }
  out(d, x, 0);
  out(d, y, 1);
  out(d, u, 2);
  d.validate();
  return d;
}

}  // namespace

namespace bench_detail {

Design make_hier_paulin_design() {
  Design design;
  design.add_behavior(make_paulin_iter());
  design.add_behavior(make_hier_paulin_top(3));
  design.set_top("hier_paulin");
  design.validate();
  return design;
}

}  // namespace bench_detail

}  // namespace hsyn
