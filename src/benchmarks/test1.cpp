// `test1`: the hierarchical DFG of the paper's Fig. 1(a), reconstructed
// from the textual description (Examples 1 and 2), together with the
// building-block behaviors its hierarchical nodes execute and the
// functional equivalences move A exploits:
//
//   * b3mul / b3mul_alt   -- triple product under two factorizations
//                            (the paper's "C1 and C2 implement
//                            functionally equivalent behavior"),
//   * maddpair            -- two multipliers + adder, two outputs (the
//                            module whose resynthesis swaps mult1 for
//                            mult2 in Example 2),
//   * seqmac              -- sequential add-mult-add with a staggered
//                            input profile (the paper's RTL3, profile
//                            {0,0,2,4,7}),
//   * addtree/addtree_seq -- 4-input addition as a balanced tree vs a
//                            chain (chainable onto chained_add3, the
//                            paper's C5).
#include "benchmarks/benchmarks.h"
#include "benchmarks/detail.h"
#include "benchmarks/dfg_build.h"

namespace hsyn {
namespace {

Dfg make_b3mul() {
  using namespace dfg_build;
  Dfg d("b3mul", 4, 1);
  const int a = in(d, 0), b = in(d, 1), c = in(d, 2), e = in(d, 3);
  const int p = op2(d, Op::Mult, a, b, "M1");
  const int q = op2(d, Op::Mult, c, e, "M2");
  out(d, op2(d, Op::Mult, p, q, "M3"), 0);
  d.validate();
  return d;
}

Dfg make_b3mul_alt() {
  using namespace dfg_build;
  // ((a*b)*c)*e -- same function over wrap-around arithmetic, different
  // DFG shape (deeper, but one value live at a time).
  Dfg d("b3mul_alt", 4, 1);
  const int a = in(d, 0), b = in(d, 1), c = in(d, 2), e = in(d, 3);
  const int p = op2(d, Op::Mult, a, b, "M1");
  const int q = op2(d, Op::Mult, p, c, "M2");
  out(d, op2(d, Op::Mult, q, e, "M3"), 0);
  d.validate();
  return d;
}

Dfg make_maddpair() {
  using namespace dfg_build;
  // out0 = a*b + c*e ; out1 = a*b
  Dfg d("maddpair", 4, 2);
  const int a = in(d, 0), b = in(d, 1), c = in(d, 2), e = in(d, 3);
  const int m4 = op2(d, Op::Mult, a, b, "M4");
  const int m5 = op2(d, Op::Mult, c, e, "M5");
  out(d, op2(d, Op::Add, m4, m5, "A1"), 0);
  out(d, m4, 1);
  d.validate();
  return d;
}

Dfg make_seqmac() {
  using namespace dfg_build;
  // ((i0 + i1) * i2) + i3 -- inputs wanted progressively later, giving
  // the staggered profile of the paper's RTL3.
  Dfg d("seqmac", 4, 1);
  const int i0 = in(d, 0), i1 = in(d, 1), i2 = in(d, 2), i3 = in(d, 3);
  const int t1 = op2(d, Op::Add, i0, i1, "A1");
  const int t2 = op2(d, Op::Mult, t1, i2, "M1");
  out(d, op2(d, Op::Add, t2, i3, "A2"), 0);
  d.validate();
  return d;
}

Dfg make_addtree() {
  using namespace dfg_build;
  Dfg d("addtree", 4, 1);
  const int a = in(d, 0), b = in(d, 1), c = in(d, 2), e = in(d, 3);
  out(d, op2(d, Op::Add, op2(d, Op::Add, a, b, "+1"),
             op2(d, Op::Add, c, e, "+2"), "+3"),
      0);
  d.validate();
  return d;
}

Dfg make_addtree_seq() {
  using namespace dfg_build;
  // ((a+b)+c)+e -- a pure chain, implementable on one chained_add3.
  Dfg d("addtree_seq", 4, 1);
  const int a = in(d, 0), b = in(d, 1), c = in(d, 2), e = in(d, 3);
  out(d, op2(d, Op::Add, op2(d, Op::Add, op2(d, Op::Add, a, b, "+1"), c, "+2"),
             e, "+3"),
      0);
  d.validate();
  return d;
}

Dfg make_test1_top() {
  using namespace dfg_build;
  Dfg d("test1", 8, 2);
  int x[8];
  for (int i = 0; i < 8; ++i) x[i] = in(d, i);
  const auto n1 = hier(d, "b3mul", {x[0], x[1], x[2], x[3]}, 1, "DFG1");
  const auto n2 = hier(d, "maddpair", {x[2], x[3], x[4], x[5]}, 2, "DFG2");
  const auto n3 = hier(d, "seqmac", {x[4], x[5], x[6], x[7]}, 1, "DFG3");
  const auto n4 =
      hier(d, "addtree", {n1[0], n2[0], n2[1], n3[0]}, 1, "DFG4");
  const auto n5 = hier(d, "addtree", {n4[0], x[0], x[6], x[7]}, 1, "DFG5");
  out(d, n5[0], 0);
  out(d, n3[0], 1);
  d.validate();
  return d;
}

}  // namespace

namespace bench_detail {

Design make_test1_design() {
  Design design;
  design.add_behavior(make_b3mul());
  design.add_behavior(make_b3mul_alt());
  design.add_behavior(make_maddpair());
  design.add_behavior(make_seqmac());
  design.add_behavior(make_addtree());
  design.add_behavior(make_addtree_seq());
  design.add_behavior(make_test1_top());
  design.declare_equivalent("b3mul", "b3mul_alt");
  design.declare_equivalent("addtree", "addtree_seq");
  design.set_top("test1");
  design.validate();
  return design;
}

}  // namespace bench_detail

}  // namespace hsyn
