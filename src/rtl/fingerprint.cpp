#include "rtl/fingerprint.h"

#include "util/fmt.h"
#include "util/hash.h"

namespace hsyn {
namespace {

// Hash of one datapath level (everything except nested children's
// internals). `child_fp(i)` supplies each child's subtree hash, letting the
// cached and scratch paths share the traversal.
template <typename ChildFp>
std::uint64_t level_hash(const Datapath& dp, ChildFp&& child_fp) {
  std::uint64_t h = kFnvOffset;
  h = hash_mix(h, dp.fus.size());
  for (const FuUnit& fu : dp.fus) {
    h = hash_mix(h, static_cast<std::uint64_t>(fu.type));
  }
  h = hash_mix(h, dp.regs.size());
  h = hash_mix(h, dp.children.size());
  for (std::size_t c = 0; c < dp.children.size(); ++c) {
    const ChildUnit& cu = dp.children[c];
    h = hash_mix(h, cu.sealed ? 1u : 2u);
    h = hash_mix(h, child_fp(static_cast<int>(c)));
  }
  h = hash_mix(h, dp.behaviors.size());
  for (const BehaviorImpl& bi : dp.behaviors) {
    h = hash_str(h, bi.behavior);
    check(bi.dfg != nullptr, "fingerprint: behavior without dfg");
    h = hash_mix(h, bi.dfg->content_hash());
    h = hash_mix(h, bi.invs.size());
    for (const Invocation& inv : bi.invs) {
      h = hash_mix(h, inv.unit.kind == UnitRef::Kind::Fu ? 1u : 2u);
      h = hash_mix(h, static_cast<std::uint64_t>(inv.unit.idx));
      h = hash_mix(h, inv.nodes.size());
      for (const int nid : inv.nodes) {
        h = hash_mix(h, static_cast<std::uint64_t>(nid));
      }
    }
    h = hash_mix(h, bi.edge_reg.size());
    for (const int r : bi.edge_reg) {
      h = hash_mix(h, static_cast<std::uint64_t>(r));
    }
    h = hash_mix(h, bi.input_arrival.size());
    for (const int a : bi.input_arrival) {
      h = hash_mix(h, static_cast<std::uint64_t>(a));
    }
    h = hash_mix(h, bi.scheduled ? 1u : 2u);
    if (bi.scheduled) {
      h = hash_mix(h, static_cast<std::uint64_t>(bi.makespan));
      h = hash_mix(h, bi.inv_start.size());
      for (const int s : bi.inv_start) {
        h = hash_mix(h, static_cast<std::uint64_t>(s));
      }
    }
  }
  return hash_final(h);
}

}  // namespace

std::uint64_t Datapath::fingerprint() const {
  const std::uint64_t cached = fp_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  std::uint64_t fp = level_hash(*this, [this](int c) {
    return children[static_cast<std::size_t>(c)].impl->fingerprint();
  });
  if (fp == 0) fp = kFnvPrime;  // keep clear of the "not cached" sentinel
  fp_cache_.store(fp, std::memory_order_relaxed);
  return fp;
}

std::uint64_t Datapath::fingerprint_scratch() const {
  std::uint64_t fp = level_hash(*this, [this](int c) {
    return children[static_cast<std::size_t>(c)].impl->fingerprint_scratch();
  });
  if (fp == 0) fp = kFnvPrime;
  return fp;
}

}  // namespace hsyn
