// RTL datapath intermediate representation -- the "solution" the
// iterative-improvement engine manipulates.
//
// A Datapath is a set of physical components (simple functional units,
// registers, and nested child datapaths = complex RTL module instances)
// together with one or more *behavior implementations* bound onto those
// components. A single-behavior Datapath is an ordinary synthesized
// circuit; a multi-behavior Datapath is exactly the paper's merged RTL
// module produced by RTL embedding (Example 3): several DFGs time-share
// one component set, each keeping its own schedule and binding.
//
// The same recursive type therefore represents:
//   * the top-level solution under synthesis,
//   * complex library module templates (paper Fig. 2, C1..C5),
//   * customized modules produced by move B (resynthesis), and
//   * merged modules produced by move C (RTL embedding).
//
// DFG pointers are non-owning; the Design (and any flattened DFG held by
// the synthesizer) must outlive every Datapath referencing them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfg/dfg.h"
#include "library/library.h"
#include "library/profile.h"

namespace hsyn {

/// Reference to a component able to execute invocations.
struct UnitRef {
  enum class Kind { Fu, Child };
  Kind kind = Kind::Fu;
  int idx = -1;

  friend bool operator==(const UnitRef&, const UnitRef&) = default;
};

/// One invocation: the atomic unit of scheduling. A simple-operation
/// invocation carries one node; a *chained* invocation carries a chain of
/// dependent same-op nodes executed combinationally in one pass through a
/// chained unit (paper: "chains of functional units", module C5); a
/// hierarchical invocation carries one hier node executed on a child.
struct Invocation {
  UnitRef unit;
  std::vector<int> nodes;  ///< DFG node ids; >1 only for chained groups
};

/// Binding + schedule of one behavior onto the component set.
struct BehaviorImpl {
  std::string behavior;      ///< interface behavior name (hier nodes bind by this)
  const Dfg* dfg = nullptr;  ///< DFG variant actually implemented
  std::vector<Invocation> invs;
  std::vector<int> node_inv;        ///< node id -> invocation index
  std::vector<int> edge_reg;        ///< edge id -> register unit (-1: chain-internal)
  std::vector<int> input_arrival;   ///< assumed primary-input arrival cycles
  // Filled in by the scheduler:
  std::vector<int> inv_start;       ///< invocation start cycles
  int makespan = 0;                 ///< completion cycle of all primary outputs
  bool scheduled = false;

  /// Invocation index executing `node` (checked).
  [[nodiscard]] int inv_of(int node) const;
};

/// A simple functional-unit instance.
struct FuUnit {
  int type = -1;  ///< index into Library::fus()
  std::string name;
};

/// A register instance.
struct RegUnit {
  std::string name;
};

class Datapath;

/// Flat behavior-name -> DFG table over every descendant module of a
/// datapath: the sorted-vector backing of resolver_of (power/estimator.h).
/// Built once per structural fingerprint and cached inside the Datapath,
/// so the table (and the Dfg pointers it holds) can never outlive the
/// datapath tree that owns them -- unlike a process-wide cache keyed by
/// fingerprint, which a structurally identical datapath built after the
/// original's destruction would alias.
struct BehaviorTable {
  std::uint64_t fp = 0;  ///< fingerprint the table was built against
  /// Sorted by name; duplicates resolved first-seen-wins in pre-order
  /// (matching the std::map::emplace semantics of the old per-call
  /// collector).
  std::vector<std::pair<std::string, const Dfg*>> entries;

  /// nullptr when `name` is implemented by no descendant.
  [[nodiscard]] const Dfg* find(const std::string& name) const;
};

/// A complex RTL module instance: an owned nested datapath.
struct ChildUnit {
  std::unique_ptr<Datapath> impl;
  std::string name;
  bool sealed = false;  ///< internal description may not be altered (no move B)

  ChildUnit() = default;
  ChildUnit(const ChildUnit& other);
  ChildUnit& operator=(const ChildUnit& other);
  ChildUnit(ChildUnit&&) noexcept = default;
  ChildUnit& operator=(ChildUnit&&) noexcept = default;
  ~ChildUnit();
};

class Datapath {
 public:
  std::string name;
  std::vector<FuUnit> fus;
  std::vector<RegUnit> regs;
  std::vector<ChildUnit> children;
  std::vector<BehaviorImpl> behaviors;

  Datapath() = default;
  explicit Datapath(std::string n) : name(std::move(n)) {}
  // The fingerprint cache is an atomic (shared candidate bases are read
  // concurrently by runtime workers), so copies are spelled out; a copy is
  // content-equal and keeps the cached fingerprint.
  Datapath(const Datapath& other);
  Datapath& operator=(const Datapath& other);
  Datapath(Datapath&& other) noexcept;
  Datapath& operator=(Datapath&& other) noexcept;

  // ---- Behavior queries -------------------------------------------------

  /// Index of the implementation of `behavior`; -1 when absent.
  [[nodiscard]] int find_behavior(const std::string& behavior) const;

  /// Profile of this module for behavior index `b` (requires scheduled).
  /// in[i] = assumed arrival of primary input i; out[j] = production cycle
  /// of primary output j.
  [[nodiscard]] Profile profile(int b, const Library& lib, const OpPoint& pt) const;

  /// Busy time per invocation of behavior `b` = its scheduled makespan
  /// (the module is non-pipelined across behaviors).
  [[nodiscard]] int busy_cycles(int b) const;

  // ---- Structural queries ------------------------------------------------

  /// Latency in cycles of one invocation on this datapath's unit `u` for
  /// behavior `b`'s invocation `i` (fu cycles or child makespan).
  [[nodiscard]] int inv_latency(int b, int i, const Library& lib,
                                const OpPoint& pt) const;

  /// Number of invocations bound to a unit across all behaviors.
  [[nodiscard]] int unit_load(const UnitRef& u) const;

  /// Number of variables bound to register `r` across all behaviors.
  [[nodiscard]] int reg_load(int r) const;

  /// External input edges of invocation `i` of behavior `b`, in physical
  /// port order (chain-internal edges excluded). Each entry is an edge id
  /// of the behavior's DFG.
  [[nodiscard]] std::vector<int> inv_input_edges(int b, int i) const;

  /// Output edges of invocation `i` of behavior `b`, in port order.
  /// For chains, the final node's output; for hier nodes, all outputs.
  [[nodiscard]] std::vector<int> inv_output_edges(int b, int i) const;

  /// Production cycle of edge `e` in behavior `b` (arrival time for
  /// primary-input edges; requires scheduled).
  [[nodiscard]] int edge_ready_time(int b, int e, const Library& lib,
                                    const OpPoint& pt) const;

  /// Drop invocations/registers with no bound work and compact indices.
  /// Returns true when anything changed (units/regs removed, indices
  /// compacted) -- callers use this to decide whether incremental cost
  /// hints computed against pre-prune indices are still valid.
  bool prune_unused();

  /// Structural invariants: every node covered by exactly one invocation,
  /// unit kinds compatible with bound ops, chain groups contiguous
  /// dependence chains, every edge that crosses invocations registered.
  /// Throws std::logic_error on violation.
  void validate(const Library& lib) const;

  /// Total number of component instances (recursively).
  [[nodiscard]] int total_components() const;

  // ---- Structural fingerprint (defined in rtl/fingerprint.cpp) ----------

  /// Cached structural fingerprint of this subtree: component set, bindings,
  /// register assignment, schedules, and each behavior DFG's content hash.
  /// Maintained incrementally -- mutation sites call invalidate_fingerprint()
  /// and untouched children keep their cached values, so steady-state cost
  /// queries are O(changed region), not O(design).
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Cache-free recompute of the whole subtree (verification/debugging).
  [[nodiscard]] std::uint64_t fingerprint_scratch() const;

  /// Drop the cached fingerprint of *this level* (children keep theirs).
  /// Must be called after any structural/schedule mutation that does not go
  /// through prune_unused() or the scheduler.
  void invalidate_fingerprint() {
    fp_cache_.store(0, std::memory_order_relaxed);
  }

  /// The flat descendant-behavior table, built at most once per
  /// structural fingerprint (stale tables are detected by their stored
  /// fingerprint and rebuilt). Shared so resolvers stay valid while a
  /// caller holds them even if the datapath mutates meanwhile.
  [[nodiscard]] std::shared_ptr<const BehaviorTable> behavior_table() const;

 private:
  // 0 = not cached. Computed fingerprints are remapped away from 0. Benign
  // racing recomputes store the same value, so relaxed ordering suffices.
  mutable std::atomic<std::uint64_t> fp_cache_{0};
  // Cached behavior table; like fp_cache_, benign races rebuild equal
  // tables. Not copied (a copy re-derives its own on first use).
  mutable std::atomic<std::shared_ptr<const BehaviorTable>> beh_table_{};
};

}  // namespace hsyn
