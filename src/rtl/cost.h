// Area model and structural connectivity analysis of datapaths.
//
// Substitution for the paper's MSU-standard-cell + OCTTOOLS layout flow
// (see DESIGN.md): area is estimated at the RTL level as the sum of
// component areas, derived multiplexers (one (k-1)-slice cost per k-input
// port), interconnect (per net sink; *global* at the top level, *local*
// inside complex modules -- the locality advantage hierarchy buys), and
// FSM controller area proportional to states and control signals.
#pragma once

#include <set>
#include <vector>

#include "rtl/datapath.h"

namespace hsyn {

/// A data source feeding a port: a register, another unit's output, or a
/// primary input. Encoded for set-keying.
struct SourceKey {
  int kind = 0;  ///< 0 = reg, 1 = fu out, 2 = child out, 3 = primary input
  int idx = 0;
  int port = 0;

  friend auto operator<=>(const SourceKey&, const SourceKey&) = default;
};

/// Structural connectivity of one datapath level (children summarized,
/// not expanded): which sources feed every unit input port and register.
struct Connectivity {
  /// [fu][port] -> distinct register sources.
  std::vector<std::vector<std::set<int>>> fu_port_srcs;
  /// [child][port] -> distinct register sources.
  std::vector<std::vector<std::set<int>>> child_port_srcs;
  /// [reg] -> distinct producing sources.
  std::vector<std::set<SourceKey>> reg_srcs;

  /// Total mux data inputs: sum over ports of max(0, |sources| - 1).
  [[nodiscard]] int mux_inputs() const;

  /// Total point-to-point connections (net sinks).
  [[nodiscard]] int net_sinks() const;

  /// Number of mux select / register enable control signals.
  [[nodiscard]] int control_signals() const;
};

/// Compute connectivity across all behaviors of `dp` (this level only).
Connectivity connectivity_of(const Datapath& dp);

struct AreaBreakdown {
  double fu = 0;
  double reg = 0;
  double mux = 0;
  double wire = 0;
  double ctrl = 0;
  double children = 0;

  [[nodiscard]] double total() const { return fu + reg + mux + wire + ctrl + children; }
};

/// Recursive area of a datapath. `top_level` selects global wire pricing
/// at this level; nested levels always price wires locally.
AreaBreakdown area_of(const Datapath& dp, const Library& lib, bool top_level = true);

/// Number of controller states at this level: behaviors time-share one
/// FSM, so states add up across behaviors.
int controller_states(const Datapath& dp);

}  // namespace hsyn
