// Area model and structural connectivity analysis of datapaths.
//
// Substitution for the paper's MSU-standard-cell + OCTTOOLS layout flow
// (see DESIGN.md): area is estimated at the RTL level as the sum of
// component areas, derived multiplexers (one (k-1)-slice cost per k-input
// port), interconnect (per net sink; *global* at the top level, *local*
// inside complex modules -- the locality advantage hierarchy buys), and
// FSM controller area proportional to states and control signals.
#pragma once

#include <set>
#include <vector>

#include "rtl/datapath.h"

namespace hsyn {

/// A data source feeding a port: a register, another unit's output, or a
/// primary input. Encoded for set-keying.
struct SourceKey {
  int kind = 0;  ///< 0 = reg, 1 = fu out, 2 = child out, 3 = primary input
  int idx = 0;
  int port = 0;

  friend auto operator<=>(const SourceKey&, const SourceKey&) = default;
};

/// Structural connectivity of one datapath level (children summarized,
/// not expanded): which sources feed every unit input port and register.
struct Connectivity {
  /// [fu][port] -> distinct register sources.
  std::vector<std::vector<std::set<int>>> fu_port_srcs;
  /// [child][port] -> distinct register sources.
  std::vector<std::vector<std::set<int>>> child_port_srcs;
  /// [reg] -> distinct producing sources.
  std::vector<std::set<SourceKey>> reg_srcs;

  /// Total mux data inputs: sum over ports of max(0, |sources| - 1).
  [[nodiscard]] int mux_inputs() const;

  /// Total point-to-point connections (net sinks).
  [[nodiscard]] int net_sinks() const;

  /// Number of mux select / register enable control signals.
  [[nodiscard]] int control_signals() const;

  friend bool operator==(const Connectivity&, const Connectivity&) = default;
};

/// Compute connectivity across all behaviors of `dp` (this level only).
Connectivity connectivity_of(const Datapath& dp);

/// The part of a datapath level a move touched, as reported by the move
/// generator. Indices refer to the *mutated* datapath; a hint is only
/// valid while those indices match the datapath it was derived for (in
/// particular, not across prune_unused() compaction). Listing a row that
/// did not actually change is harmless -- it is rebuilt to the same
/// content; omitting a changed row is not.
struct DirtyRegion {
  std::vector<int> fus;       ///< fu indices whose input wiring may differ
  std::vector<int> children;  ///< child indices whose input wiring may differ
  std::vector<int> regs;      ///< registers whose producing sources may differ
  /// false: the move provably did not change any binding (e.g. a pure
  /// library-type swap), so the base connectivity is reusable verbatim.
  bool binding_changed = true;
};

/// Incrementally derive `dp`'s connectivity from `base` (the pre-move
/// level's connectivity) by rebuilding only the rows named in `dirty`
/// plus any rows appended since `base`. With a complete hint this equals
/// connectivity_of(dp) exactly; callers unsure of completeness fall back
/// to the full recompute.
Connectivity refresh_connectivity(const Datapath& dp, const Connectivity& base,
                                  const DirtyRegion& dirty);

struct AreaBreakdown {
  double fu = 0;
  double reg = 0;
  double mux = 0;
  double wire = 0;
  double ctrl = 0;
  double children = 0;

  [[nodiscard]] double total() const { return fu + reg + mux + wire + ctrl + children; }
};

/// Recursive area of a datapath. `top_level` selects global wire pricing
/// at this level; nested levels always price wires locally. Memoized on
/// the datapath's structural fingerprint (eval::EvalEngine).
AreaBreakdown area_of(const Datapath& dp, const Library& lib, bool top_level = true);

/// Area of this level only (children excluded, `children` field left 0),
/// against a precomputed connectivity. area_of() == area_of_level of
/// every level plus the recursive child totals, summed in child order.
AreaBreakdown area_of_level(const Datapath& dp, const Library& lib,
                            bool top_level, const Connectivity& conn);

/// Wire-length scale factor of the placed layout: average wire length --
/// and hence wire/mux capacitance -- grows with the layout's linear
/// dimension (~sqrt(area), clamped to [0.7, 2.5] around a 1500-unit
/// reference block). Backed by the eval engine's area cache, so the
/// power estimator and the RTL simulator never recompute layout per
/// simulation. This couples power to area the way placed-and-routed
/// designs experience it, and is what stops the power objective from
/// inflating the datapath without bound.
double wire_scale_of(const Datapath& dp, const Library& lib, bool top_level);

/// Number of controller states at this level: behaviors time-share one
/// FSM, so states add up across behaviors.
int controller_states(const Datapath& dp);

}  // namespace hsyn
