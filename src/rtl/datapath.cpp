#include "rtl/datapath.h"

#include <algorithm>
#include <set>

#include "util/fmt.h"

namespace hsyn {

ChildUnit::ChildUnit(const ChildUnit& other)
    : impl(other.impl ? std::make_unique<Datapath>(*other.impl) : nullptr),
      name(other.name),
      sealed(other.sealed) {}

ChildUnit& ChildUnit::operator=(const ChildUnit& other) {
  if (this != &other) {
    impl = other.impl ? std::make_unique<Datapath>(*other.impl) : nullptr;
    name = other.name;
    sealed = other.sealed;
  }
  return *this;
}

ChildUnit::~ChildUnit() = default;

Datapath::Datapath(const Datapath& other)
    : name(other.name),
      fus(other.fus),
      regs(other.regs),
      children(other.children),
      behaviors(other.behaviors),
      fp_cache_(other.fp_cache_.load(std::memory_order_relaxed)) {}

Datapath& Datapath::operator=(const Datapath& other) {
  if (this != &other) {
    name = other.name;
    fus = other.fus;
    regs = other.regs;
    children = other.children;
    behaviors = other.behaviors;
    fp_cache_.store(other.fp_cache_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
  return *this;
}

Datapath::Datapath(Datapath&& other) noexcept
    : name(std::move(other.name)),
      fus(std::move(other.fus)),
      regs(std::move(other.regs)),
      children(std::move(other.children)),
      behaviors(std::move(other.behaviors)),
      fp_cache_(other.fp_cache_.load(std::memory_order_relaxed)) {}

Datapath& Datapath::operator=(Datapath&& other) noexcept {
  if (this != &other) {
    name = std::move(other.name);
    fus = std::move(other.fus);
    regs = std::move(other.regs);
    children = std::move(other.children);
    behaviors = std::move(other.behaviors);
    fp_cache_.store(other.fp_cache_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
  return *this;
}

const Dfg* BehaviorTable::find(const std::string& name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  return it != entries.end() && it->first == name ? it->second : nullptr;
}

namespace {

void collect_behaviors(const Datapath& dp,
                       std::vector<std::pair<std::string, const Dfg*>>& out) {
  for (const ChildUnit& c : dp.children) {
    for (const BehaviorImpl& bi : c.impl->behaviors) {
      out.emplace_back(bi.behavior, bi.dfg);
    }
    collect_behaviors(*c.impl, out);
  }
}

}  // namespace

std::shared_ptr<const BehaviorTable> Datapath::behavior_table() const {
  const std::uint64_t fp = fingerprint();
  auto cur = beh_table_.load(std::memory_order_acquire);
  if (cur != nullptr && cur->fp == fp) return cur;
  auto table = std::make_shared<BehaviorTable>();
  table->fp = fp;
  collect_behaviors(*this, table->entries);
  // Stable sort + first-wins dedup preserves pre-order priority for
  // duplicate behavior names, matching the old std::map::emplace
  // collector (any implementation of a name is value-equivalent by the
  // BehaviorResolver contract, but determinism wants one canonical pick).
  std::stable_sort(table->entries.begin(), table->entries.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  table->entries.erase(
      std::unique(table->entries.begin(), table->entries.end(),
                  [](const auto& a, const auto& b) { return a.first == b.first; }),
      table->entries.end());
  beh_table_.store(table, std::memory_order_release);
  return table;
}

int BehaviorImpl::inv_of(int node) const {
  check(node >= 0 && node < static_cast<int>(node_inv.size()),
        "inv_of: node out of range");
  const int i = node_inv[static_cast<std::size_t>(node)];
  check(i >= 0, "inv_of: node not bound to an invocation");
  return i;
}

int Datapath::find_behavior(const std::string& behavior) const {
  for (std::size_t i = 0; i < behaviors.size(); ++i) {
    if (behaviors[i].behavior == behavior) return static_cast<int>(i);
  }
  return -1;
}

int Datapath::inv_latency(int b, int i, const Library& lib, const OpPoint& pt) const {
  const BehaviorImpl& bi = behaviors.at(static_cast<std::size_t>(b));
  const Invocation& inv = bi.invs.at(static_cast<std::size_t>(i));
  if (inv.unit.kind == UnitRef::Kind::Fu) {
    return lib.cycles(fus.at(static_cast<std::size_t>(inv.unit.idx)).type, pt);
  }
  const Datapath& child = *children.at(static_cast<std::size_t>(inv.unit.idx)).impl;
  const Node& n = bi.dfg->node(inv.nodes.front());
  const int cb = child.find_behavior(n.behavior);
  check(cb >= 0, "child lacks behavior " + n.behavior);
  return child.busy_cycles(cb);
}

int Datapath::busy_cycles(int b) const {
  const BehaviorImpl& bi = behaviors.at(static_cast<std::size_t>(b));
  check(bi.scheduled, "busy_cycles: behavior not scheduled");
  return bi.makespan;
}

int Datapath::unit_load(const UnitRef& u) const {
  int load = 0;
  for (const BehaviorImpl& bi : behaviors) {
    for (const Invocation& inv : bi.invs) {
      if (inv.unit == u) ++load;
    }
  }
  return load;
}

int Datapath::reg_load(int r) const {
  int load = 0;
  for (const BehaviorImpl& bi : behaviors) {
    for (int er : bi.edge_reg) {
      if (er == r) ++load;
    }
  }
  return load;
}

std::vector<int> Datapath::inv_input_edges(int b, int i) const {
  const BehaviorImpl& bi = behaviors.at(static_cast<std::size_t>(b));
  const Invocation& inv = bi.invs.at(static_cast<std::size_t>(i));
  std::set<int> internal;
  if (inv.nodes.size() > 1) {
    for (std::size_t k = 0; k + 1 < inv.nodes.size(); ++k) {
      const int eid = bi.dfg->output_edge(inv.nodes[k], 0);
      if (eid >= 0) internal.insert(eid);
    }
  }
  std::vector<int> out;
  for (const int nid : inv.nodes) {
    const Node& n = bi.dfg->node(nid);
    for (int p = 0; p < n.num_inputs; ++p) {
      const int eid = bi.dfg->input_edge(nid, p);
      if (!internal.count(eid)) out.push_back(eid);
    }
  }
  return out;
}

std::vector<int> Datapath::inv_output_edges(int b, int i) const {
  const BehaviorImpl& bi = behaviors.at(static_cast<std::size_t>(b));
  const Invocation& inv = bi.invs.at(static_cast<std::size_t>(i));
  const int last = inv.nodes.back();
  const Node& n = bi.dfg->node(last);
  std::vector<int> out;
  for (int p = 0; p < n.num_outputs; ++p) {
    const int eid = bi.dfg->output_edge(last, p);
    if (eid >= 0) out.push_back(eid);
  }
  return out;
}

int Datapath::edge_ready_time(int b, int e, const Library& lib,
                              const OpPoint& pt) const {
  const BehaviorImpl& bi = behaviors.at(static_cast<std::size_t>(b));
  check(bi.scheduled, "edge_ready_time: behavior not scheduled");
  const Edge& edge = bi.dfg->edge(e);
  if (edge.src.node == kPrimaryIn) {
    return bi.input_arrival.at(static_cast<std::size_t>(edge.src.port));
  }
  check(edge.src.node >= 0, "edge_ready_time: edge has no producer");
  const int i = bi.inv_of(edge.src.node);
  const Invocation& inv = bi.invs.at(static_cast<std::size_t>(i));
  const int start = bi.inv_start.at(static_cast<std::size_t>(i));
  if (inv.unit.kind == UnitRef::Kind::Child) {
    const Datapath& child = *children.at(static_cast<std::size_t>(inv.unit.idx)).impl;
    const Node& n = bi.dfg->node(inv.nodes.front());
    const int cb = child.find_behavior(n.behavior);
    check(cb >= 0, "child lacks behavior " + n.behavior);
    const Profile p = child.profile(cb, lib, pt);
    return start + p.out.at(static_cast<std::size_t>(edge.src.port));
  }
  // Chain-internal producers complete with the whole chain.
  return start + inv_latency(b, i, lib, pt);
}

Profile Datapath::profile(int b, const Library& lib, const OpPoint& pt) const {
  const BehaviorImpl& bi = behaviors.at(static_cast<std::size_t>(b));
  check(bi.scheduled, "profile: behavior not scheduled");
  Profile p;
  p.in = bi.input_arrival;
  p.out.resize(static_cast<std::size_t>(bi.dfg->num_outputs()));
  for (int o = 0; o < bi.dfg->num_outputs(); ++o) {
    p.out[static_cast<std::size_t>(o)] =
        edge_ready_time(b, bi.dfg->primary_output_edge(o), lib, pt);
  }
  return p;
}

int Datapath::total_components() const {
  int n = static_cast<int>(fus.size() + regs.size());
  for (const ChildUnit& c : children) {
    if (c.impl) n += c.impl->total_components();
  }
  return n;
}

bool Datapath::prune_unused() {
  std::vector<int> fu_map(fus.size(), -1);
  std::vector<int> child_map(children.size(), -1);
  std::vector<int> reg_map(regs.size(), -1);
  for (const BehaviorImpl& bi : behaviors) {
    for (const Invocation& inv : bi.invs) {
      if (inv.unit.kind == UnitRef::Kind::Fu) {
        fu_map[static_cast<std::size_t>(inv.unit.idx)] = 0;
      } else {
        child_map[static_cast<std::size_t>(inv.unit.idx)] = 0;
      }
    }
    for (const int r : bi.edge_reg) {
      if (r >= 0) reg_map[static_cast<std::size_t>(r)] = 0;
    }
  }
  // Compact.
  std::vector<FuUnit> new_fus;
  for (std::size_t i = 0; i < fus.size(); ++i) {
    if (fu_map[i] == 0) {
      fu_map[i] = static_cast<int>(new_fus.size());
      new_fus.push_back(fus[i]);
    }
  }
  std::vector<ChildUnit> new_children;
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (child_map[i] == 0) {
      child_map[i] = static_cast<int>(new_children.size());
      new_children.push_back(std::move(children[i]));
    }
  }
  std::vector<RegUnit> new_regs;
  for (std::size_t i = 0; i < regs.size(); ++i) {
    if (reg_map[i] == 0) {
      reg_map[i] = static_cast<int>(new_regs.size());
      new_regs.push_back(regs[i]);
    }
  }
  const bool changed = new_fus.size() != fus.size() ||
                       new_children.size() != children.size() ||
                       new_regs.size() != regs.size();
  fus = std::move(new_fus);
  children = std::move(new_children);
  regs = std::move(new_regs);
  for (BehaviorImpl& bi : behaviors) {
    for (Invocation& inv : bi.invs) {
      auto& map = inv.unit.kind == UnitRef::Kind::Fu ? fu_map : child_map;
      inv.unit.idx = map[static_cast<std::size_t>(inv.unit.idx)];
    }
    for (int& r : bi.edge_reg) {
      if (r >= 0) r = reg_map[static_cast<std::size_t>(r)];
    }
  }
  if (changed) invalidate_fingerprint();
  return changed;
}

void Datapath::validate(const Library& lib) const {
  for (std::size_t b = 0; b < behaviors.size(); ++b) {
    const BehaviorImpl& bi = behaviors[b];
    check(bi.dfg != nullptr, "behavior without dfg");
    check(bi.dfg->validated(), "behavior dfg not validated");
    check(bi.node_inv.size() == bi.dfg->nodes().size(), "node_inv size mismatch");
    check(bi.edge_reg.size() == bi.dfg->edges().size(), "edge_reg size mismatch");
    check(static_cast<int>(bi.input_arrival.size()) == bi.dfg->num_inputs(),
          "input_arrival size mismatch");
    // Every node in exactly one invocation.
    std::vector<int> covered(bi.dfg->nodes().size(), 0);
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      const Invocation& inv = bi.invs[i];
      check(!inv.nodes.empty(), "empty invocation");
      for (const int nid : inv.nodes) {
        covered[static_cast<std::size_t>(nid)]++;
        check(bi.node_inv[static_cast<std::size_t>(nid)] == static_cast<int>(i),
              "node_inv inconsistent");
      }
      if (inv.unit.kind == UnitRef::Kind::Fu) {
        check(inv.unit.idx >= 0 && inv.unit.idx < static_cast<int>(fus.size()),
              "fu index out of range");
        const FuType& t = lib.fu(fus[static_cast<std::size_t>(inv.unit.idx)].type);
        check(static_cast<int>(inv.nodes.size()) <= t.chain_depth,
              "chain longer than unit depth on " + t.name);
        for (const int nid : inv.nodes) {
          const Node& n = bi.dfg->node(nid);
          check(!n.is_hier(), "hier node bound to simple unit");
          check(t.supports(n.op),
                strf("unit %s cannot execute %s", t.name.c_str(), op_name(n.op)));
        }
        // Chains must be contiguous dependence chains whose intermediate
        // values have no external consumers (they are never latched).
        for (std::size_t k = 0; k + 1 < inv.nodes.size(); ++k) {
          const int eid = bi.dfg->output_edge(inv.nodes[k], 0);
          check(eid >= 0, "chain link missing edge");
          const Edge& e = bi.dfg->edge(eid);
          check(e.dsts.size() == 1 && e.dsts[0].node == inv.nodes[k + 1],
                "chain intermediate value escapes the chain");
          check(bi.edge_reg[static_cast<std::size_t>(eid)] == -1,
                "chain-internal edge must not be registered");
        }
      } else {
        check(inv.nodes.size() == 1, "child invocation must hold one node");
        check(inv.unit.idx >= 0 && inv.unit.idx < static_cast<int>(children.size()),
              "child index out of range");
        const Node& n = bi.dfg->node(inv.nodes[0]);
        check(n.is_hier(), "operation node bound to child module");
        const Datapath& child = *children[static_cast<std::size_t>(inv.unit.idx)].impl;
        check(child.find_behavior(n.behavior) >= 0,
              "child does not implement behavior " + n.behavior);
      }
    }
    for (std::size_t nid = 0; nid < covered.size(); ++nid) {
      check(covered[nid] == 1, strf("node %zu covered %d times", nid, covered[nid]));
    }
    // Every non-chain-internal edge must have a register.
    for (const Edge& e : bi.dfg->edges()) {
      const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
      if (r >= 0) {
        check(r < static_cast<int>(regs.size()), "register index out of range");
      }
    }
  }
  for (const ChildUnit& c : children) {
    check(c.impl != nullptr, "null child impl");
    c.impl->validate(lib);
  }
}

}  // namespace hsyn
