// FSM controller generation.
//
// H-SYN's output is "a datapath netlist and a finite-state machine
// description of the controller". This module derives the FSM from the
// schedule and binding: one state per cycle per behavior (behaviors of a
// merged module time-share the FSM via disjoint state ranges), and per
// state the asserted control signals: mux selects for every operand
// steering and register load enables for every write.
#pragma once

#include <string>
#include <vector>

#include "rtl/datapath.h"

namespace hsyn {

/// One asserted control signal in a state.
struct ControlAssert {
  enum class Kind { MuxSelect, RegLoad, UnitStart };
  Kind kind = Kind::UnitStart;
  std::string target;  ///< e.g. "mux:fu3.p1", "reg:r2", "fu:fu3"
  std::string detail;  ///< e.g. selected source, loaded edge
};

struct FsmState {
  int id = 0;
  std::string behavior;
  int cycle = 0;
  std::vector<ControlAssert> asserts;
};

struct Controller {
  std::vector<FsmState> states;
  int num_signals = 0;
};

/// Derive the controller of (all behaviors of) a scheduled datapath.
Controller build_controller(const Datapath& dp, const Library& lib,
                            const OpPoint& pt);

/// Human-readable FSM table.
std::string controller_to_text(const Controller& c);

}  // namespace hsyn
