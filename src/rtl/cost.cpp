#include "rtl/cost.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "eval/engine.h"
#include "util/fmt.h"

namespace hsyn {

int Connectivity::mux_inputs() const {
  int total = 0;
  auto count = [&total](const std::vector<std::set<int>>& ports) {
    for (const auto& srcs : ports) {
      total += std::max(0, static_cast<int>(srcs.size()) - 1);
    }
  };
  for (const auto& ports : fu_port_srcs) count(ports);
  for (const auto& ports : child_port_srcs) count(ports);
  for (const auto& srcs : reg_srcs) {
    total += std::max(0, static_cast<int>(srcs.size()) - 1);
  }
  return total;
}

int Connectivity::net_sinks() const {
  int total = 0;
  for (const auto& ports : fu_port_srcs) {
    for (const auto& srcs : ports) total += static_cast<int>(srcs.size());
  }
  for (const auto& ports : child_port_srcs) {
    for (const auto& srcs : ports) total += static_cast<int>(srcs.size());
  }
  for (const auto& srcs : reg_srcs) total += static_cast<int>(srcs.size());
  return total;
}

int Connectivity::control_signals() const {
  int total = 0;
  auto muxed = [&total](const std::vector<std::set<int>>& ports) {
    for (const auto& srcs : ports) {
      if (srcs.size() > 1) ++total;  // one select bundle per muxed port
    }
  };
  for (const auto& ports : fu_port_srcs) muxed(ports);
  for (const auto& ports : child_port_srcs) muxed(ports);
  for (const auto& srcs : reg_srcs) {
    if (srcs.size() > 1) ++total;
  }
  total += static_cast<int>(reg_srcs.size());  // one enable per register
  return total;
}

namespace {

SourceKey edge_source(const Datapath& dp, const BehaviorImpl& bi, int eid) {
  const Edge& e = bi.dfg->edge(eid);
  if (e.src.node == kPrimaryIn) return {3, e.src.port, 0};
  const int i = bi.inv_of(e.src.node);
  const Invocation& inv = bi.invs[static_cast<std::size_t>(i)];
  (void)dp;
  if (inv.unit.kind == UnitRef::Kind::Fu) return {1, inv.unit.idx, 0};
  return {2, inv.unit.idx, e.src.port};
}

}  // namespace

Connectivity connectivity_of(const Datapath& dp) {
  Connectivity c;
  c.fu_port_srcs.resize(dp.fus.size());
  c.child_port_srcs.resize(dp.children.size());
  c.reg_srcs.resize(dp.regs.size());

  for (std::size_t b = 0; b < dp.behaviors.size(); ++b) {
    const BehaviorImpl& bi = dp.behaviors[b];
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      const Invocation& inv = bi.invs[i];
      const std::vector<int> ins = dp.inv_input_edges(static_cast<int>(b),
                                                      static_cast<int>(i));
      auto& ports = inv.unit.kind == UnitRef::Kind::Fu
                        ? c.fu_port_srcs[static_cast<std::size_t>(inv.unit.idx)]
                        : c.child_port_srcs[static_cast<std::size_t>(inv.unit.idx)];
      if (ports.size() < ins.size()) ports.resize(ins.size());
      for (std::size_t p = 0; p < ins.size(); ++p) {
        const int r = bi.edge_reg[static_cast<std::size_t>(ins[p])];
        // Chain-internal edges never appear here (excluded by
        // inv_input_edges); unregistered external edges would be a
        // validation error.
        if (r >= 0) ports[p].insert(r);
      }
    }
    for (const Edge& e : bi.dfg->edges()) {
      const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
      if (r < 0) continue;
      c.reg_srcs[static_cast<std::size_t>(r)].insert(edge_source(dp, bi, e.id));
    }
  }
  return c;
}

Connectivity refresh_connectivity(const Datapath& dp, const Connectivity& base,
                                  const DirtyRegion& dirty) {
  Connectivity c = base;
  // Rows appended since `base` start empty and are treated as dirty.
  std::set<int> dirty_fus(dirty.fus.begin(), dirty.fus.end());
  std::set<int> dirty_children(dirty.children.begin(), dirty.children.end());
  std::set<int> dirty_regs(dirty.regs.begin(), dirty.regs.end());
  for (std::size_t i = c.fu_port_srcs.size(); i < dp.fus.size(); ++i) {
    dirty_fus.insert(static_cast<int>(i));
  }
  for (std::size_t i = c.child_port_srcs.size(); i < dp.children.size(); ++i) {
    dirty_children.insert(static_cast<int>(i));
  }
  for (std::size_t i = c.reg_srcs.size(); i < dp.regs.size(); ++i) {
    dirty_regs.insert(static_cast<int>(i));
  }
  c.fu_port_srcs.resize(dp.fus.size());
  c.child_port_srcs.resize(dp.children.size());
  c.reg_srcs.resize(dp.regs.size());
  for (const int f : dirty_fus) {
    if (f >= 0 && f < static_cast<int>(c.fu_port_srcs.size())) {
      c.fu_port_srcs[static_cast<std::size_t>(f)].clear();
    }
  }
  for (const int ch : dirty_children) {
    if (ch >= 0 && ch < static_cast<int>(c.child_port_srcs.size())) {
      c.child_port_srcs[static_cast<std::size_t>(ch)].clear();
    }
  }
  for (const int r : dirty_regs) {
    if (r >= 0 && r < static_cast<int>(c.reg_srcs.size())) {
      c.reg_srcs[static_cast<std::size_t>(r)].clear();
    }
  }

  // Same traversal as connectivity_of, restricted to the dirty rows.
  for (std::size_t b = 0; b < dp.behaviors.size(); ++b) {
    const BehaviorImpl& bi = dp.behaviors[b];
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      const Invocation& inv = bi.invs[i];
      const bool is_fu = inv.unit.kind == UnitRef::Kind::Fu;
      if (is_fu ? !dirty_fus.count(inv.unit.idx)
                : !dirty_children.count(inv.unit.idx)) {
        continue;
      }
      const std::vector<int> ins = dp.inv_input_edges(static_cast<int>(b),
                                                      static_cast<int>(i));
      auto& ports = is_fu
                        ? c.fu_port_srcs[static_cast<std::size_t>(inv.unit.idx)]
                        : c.child_port_srcs[static_cast<std::size_t>(inv.unit.idx)];
      if (ports.size() < ins.size()) ports.resize(ins.size());
      for (std::size_t p = 0; p < ins.size(); ++p) {
        const int r = bi.edge_reg[static_cast<std::size_t>(ins[p])];
        if (r >= 0) ports[p].insert(r);
      }
    }
    for (const Edge& e : bi.dfg->edges()) {
      const int r = bi.edge_reg[static_cast<std::size_t>(e.id)];
      if (r < 0 || !dirty_regs.count(r)) continue;
      c.reg_srcs[static_cast<std::size_t>(r)].insert(edge_source(dp, bi, e.id));
    }
  }
  return c;
}

int controller_states(const Datapath& dp) {
  int states = 0;
  for (const BehaviorImpl& bi : dp.behaviors) {
    check(bi.scheduled, "controller_states: behavior not scheduled");
    states += bi.makespan + 1;
  }
  return states;
}

AreaBreakdown area_of_level(const Datapath& dp, const Library& lib,
                            bool top_level, const Connectivity& conn) {
  const StructureCosts& sc = lib.costs();
  AreaBreakdown a;
  for (const FuUnit& fu : dp.fus) {
    a.fu += lib.fu(fu.type).area;
  }
  a.reg = static_cast<double>(dp.regs.size()) * lib.reg().area;
  a.mux = sc.mux_area_per_input * conn.mux_inputs();
  a.wire = (top_level ? sc.wire_area_global : sc.wire_area_local) * conn.net_sinks();
  a.ctrl = sc.ctrl_area_per_state * controller_states(dp) +
           sc.ctrl_area_per_signal * conn.control_signals();
  return a;
}

AreaBreakdown area_of(const Datapath& dp, const Library& lib, bool top_level) {
  return eval::EvalEngine::instance().area(dp, lib, top_level);
}

double wire_scale_of(const Datapath& dp, const Library& lib, bool top_level) {
  const double layout = area_of(dp, lib, top_level).total();
  return std::clamp(std::sqrt(layout / 1500.0), 0.7, 2.5);
}

}  // namespace hsyn
