// Library of complex RTL module templates (paper Fig. 2: C1..C5).
//
// A template is a pre-designed RTL module bound to one DFG variant. Move
// A may instantiate a template for any hierarchical node whose behavior
// is the variant itself or a user-declared functional equivalent of it
// (Example 2: C2 replaces C1 because "C1 and C2 implement functionally
// equivalent behavior"). Sealed templates may be instantiated but never
// resynthesized by move B ("modules whose internal descriptions are not
// available or cannot be altered are not resynthesized").
#pragma once

#include <string>
#include <vector>

#include "dfg/design.h"
#include "rtl/datapath.h"

namespace hsyn {

class ComplexLibrary {
 public:
  struct Template {
    std::string name;        ///< library name, e.g. "C1"
    std::string implements;  ///< DFG (variant) name the module executes
    Datapath impl;           ///< single-behavior module; unscheduled is fine
    bool sealed = false;
  };

  void add(Template t);

  const std::vector<Template>& all() const { return templates_; }
  bool empty() const { return templates_.empty(); }

  /// Template by name; nullptr when absent.
  const Template* find(const std::string& name) const;

  /// Templates usable for interface behavior `behavior`, i.e. whose
  /// variant is `behavior` or an equivalent of it per `design`.
  std::vector<const Template*> for_behavior(const Design& design,
                                            const std::string& behavior) const;

  /// Instantiate `t` to serve interface behavior `behavior`: a deep copy
  /// whose BehaviorImpl is relabeled to the interface name (its DFG stays
  /// the template's variant). Unscheduled.
  static Datapath instantiate(const Template& t, const std::string& behavior);

 private:
  std::vector<Template> templates_;
};

}  // namespace hsyn
