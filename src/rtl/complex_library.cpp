#include "rtl/complex_library.h"

#include <algorithm>

#include "util/fmt.h"

namespace hsyn {

void ComplexLibrary::add(Template t) {
  check(!t.name.empty(), "template must be named");
  check(find(t.name) == nullptr, "duplicate template " + t.name);
  check(t.impl.behaviors.size() == 1, "templates are single-behavior modules");
  check(t.impl.behaviors[0].behavior == t.implements,
        "template behavior label must match `implements`");
  templates_.push_back(std::move(t));
}

const ComplexLibrary::Template* ComplexLibrary::find(const std::string& name) const {
  for (const Template& t : templates_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::vector<const ComplexLibrary::Template*> ComplexLibrary::for_behavior(
    const Design& design, const std::string& behavior) const {
  std::vector<const Template*> out;
  if (!design.has_behavior(behavior)) return out;
  const std::vector<std::string> eq = design.equivalents(behavior);
  for (const Template& t : templates_) {
    if (std::find(eq.begin(), eq.end(), t.implements) != eq.end()) {
      out.push_back(&t);
    }
  }
  return out;
}

Datapath ComplexLibrary::instantiate(const Template& t, const std::string& behavior) {
  Datapath dp = t.impl;  // deep copy
  dp.name = t.name;
  dp.behaviors[0].behavior = behavior;
  dp.behaviors[0].scheduled = false;
  dp.behaviors[0].inv_start.clear();
  dp.behaviors[0].makespan = 0;
  return dp;
}

}  // namespace hsyn
