// First-class structural fingerprints for RTL datapaths.
//
// The fingerprint is the candidate *identity* used by the evaluation cache
// (src/eval/): two datapaths with equal fingerprints are structurally equal
// in every way that affects scheduling, area, and trace-driven power --
// component set, invocation bindings, register assignment, schedules, and
// the content hash of every bound DFG. Names and labels are excluded (they
// never affect cost).
//
// Maintenance is incremental: each Datapath level caches its own hash and
// mutation sites invalidate only the touched level (prune_unused(), the
// scheduler, profile re-alignment). Children keep their cached values, so
// after a local move the top-level fingerprint costs O(level), not
// O(design). fingerprint_scratch() recomputes the whole subtree without
// caches and must always agree -- tests and HSYN_EVAL_VERIFY=1 check this.
//
// This replaces the old private `structure_fingerprint` in
// power/estimator.cpp, which was recomputed O(n) per query and mixed raw
// Dfg pointers into the key (unsound under address reuse).
#pragma once

#include <cstdint>

#include "rtl/datapath.h"

namespace hsyn {

/// Structural fingerprint of `dp` (cached, incrementally maintained).
/// Equivalent to dp.fingerprint(); kept as a free function so callers can
/// name the concept without spelling the member.
inline std::uint64_t structure_fingerprint(const Datapath& dp) {
  return dp.fingerprint();
}

}  // namespace hsyn
