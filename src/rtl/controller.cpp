#include "rtl/controller.h"

#include <map>
#include <set>
#include <sstream>

#include "rtl/cost.h"
#include "util/fmt.h"
#include "util/log.h"

namespace hsyn {

Controller build_controller(const Datapath& dp, const Library& lib,
                            const OpPoint& pt) {
  Controller c;
  std::set<std::string> signals;
  for (std::size_t b = 0; b < dp.behaviors.size(); ++b) {
    const BehaviorImpl& bi = dp.behaviors[b];
    HSYN_CHECK(bi.scheduled,
               strf("build_controller: behavior '%s' not scheduled",
                    bi.behavior.c_str()));
    const int base = static_cast<int>(c.states.size());
    for (int cyc = 0; cyc <= bi.makespan; ++cyc) {
      FsmState st;
      st.id = base + cyc;
      st.behavior = bi.behavior;
      st.cycle = cyc;
      c.states.push_back(std::move(st));
    }
    for (std::size_t i = 0; i < bi.invs.size(); ++i) {
      const Invocation& inv = bi.invs[i];
      const int start = bi.inv_start[i];
      FsmState& st = c.states[static_cast<std::size_t>(base + start)];
      const std::string uname =
          inv.unit.kind == UnitRef::Kind::Fu
              ? strf("fu%d", inv.unit.idx)
              : strf("child%d", inv.unit.idx);
      st.asserts.push_back(
          {ControlAssert::Kind::UnitStart, "fu:" + uname,
           strf("inv%zu", i)});
      signals.insert("start:" + uname);
      const std::vector<int> ins = dp.inv_input_edges(static_cast<int>(b),
                                                      static_cast<int>(i));
      for (std::size_t p = 0; p < ins.size(); ++p) {
        const int r = bi.edge_reg[static_cast<std::size_t>(ins[p])];
        if (r < 0) continue;
        const std::string mux = strf("mux:%s.p%zu", uname.c_str(), p);
        st.asserts.push_back(
            {ControlAssert::Kind::MuxSelect, mux, strf("r%d", r)});
        signals.insert(mux);
      }
      // Register loads at output-ready times.
      for (const int e : dp.inv_output_edges(static_cast<int>(b),
                                             static_cast<int>(i))) {
        const int r = bi.edge_reg[static_cast<std::size_t>(e)];
        if (r < 0) continue;
        const int ready =
            dp.edge_ready_time(static_cast<int>(b), e, lib, pt);
        if (ready >= 0 && ready <= bi.makespan) {
          FsmState& wst = c.states[static_cast<std::size_t>(base + ready)];
          wst.asserts.push_back(
              {ControlAssert::Kind::RegLoad, strf("reg:r%d", r),
               strf("edge%d", e)});
          signals.insert(strf("load:r%d", r));
        }
      }
    }
  }
  c.num_signals = static_cast<int>(signals.size());
  return c;
}

std::string controller_to_text(const Controller& c) {
  std::ostringstream out;
  out << strf("fsm: %zu states, %d signals\n", c.states.size(), c.num_signals);
  for (const FsmState& st : c.states) {
    out << strf("state %3d (%s cycle %d):", st.id, st.behavior.c_str(), st.cycle);
    if (st.asserts.empty()) out << " -";
    for (const ControlAssert& a : st.asserts) {
      const char* k = a.kind == ControlAssert::Kind::MuxSelect ? "sel"
                      : a.kind == ControlAssert::Kind::RegLoad ? "load"
                                                               : "start";
      out << strf(" %s(%s<=%s)", k, a.target.c_str(), a.detail.c_str());
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace hsyn
